"""Extension: the *structural* face of Table 1 — equilibrium tree shapes.

The PoA gaps of Table 1 come from shape: pairwise-stable trees may stretch
(spiders of depth ~ sqrt(alpha)) while swap-stable trees must stay shallow
(Lemma 3.4: depth <= (1 + 2 alpha/n) log2 n from a 1-median).  This bench
measures depth/diameter across the *entire* equilibrium families on n = 9
trees and checks the lemma's bound family-wide, plus the certified
constructions at scale.
"""

from repro.analysis.structure import equilibrium_family_shape, tree_shape
from repro.analysis.tables import render_table
from repro.constructions.spiders import ps_lower_bound_spider
from repro.constructions.stretched import bge_lower_bound_star
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)

from _harness import emit, once


def family_shapes():
    rows = []
    for alpha in (2, 8, 32):
        ps = equilibrium_family_shape(9, alpha, Concept.PS)
        bge = equilibrium_family_shape(9, alpha, Concept.BGE)
        bswe = equilibrium_family_shape(9, alpha, Concept.BSWE)
        rows.append(
            [
                alpha,
                ps.count,
                ps.max_diameter,
                bge.count,
                bge.max_diameter,
                f"{bswe.lemma_3_4_bound:.2f}",
                bswe.depth_within_lemma_3_4,
            ]
        )
    return rows


def test_family_shapes(benchmark):
    rows = once(benchmark, family_shapes)
    emit(
        "structure_families",
        render_table(
            ["alpha", "#PS", "max diam (PS)", "#BGE", "max diam (BGE)",
             "lemma 3.4 depth bound", "BSwE within bound"],
            rows,
            title="Extension -- shapes of whole equilibrium families, "
            "all trees n = 9 (BGE refines PS; BSwE obeys Lemma 3.4)",
        ),
    )
    for alpha, ps_count, ps_diam, bge_count, bge_diam, _, within in rows:
        assert within  # every BSwE tree fits Lemma 3.4's depth bound
        assert bge_diam <= ps_diam  # the refinement never stretches
        assert bge_count <= ps_count


def construction_shapes():
    spider = ps_lower_bound_spider(513, 512)
    spider_state = GameState(spider, 512)
    assert is_pairwise_stable(spider_state)
    star = bge_lower_bound_star(600, eta=600)
    star_state = GameState(star.graph, 600)
    assert is_bilateral_greedy_equilibrium(star_state)
    rows = []
    for name, state in (
        ("PS spider (n=513, a=512)", spider_state),
        ("BGE stretched star (n=621, a=600)", star_state),
    ):
        depth, diameter, degree = tree_shape(state)
        rows.append([name, depth, diameter, degree, float(state.rho())])
    return rows


def test_construction_shapes(benchmark):
    rows = once(benchmark, construction_shapes)
    emit(
        "structure_constructions",
        render_table(
            ["construction", "depth", "diameter", "max degree", "rho"],
            rows,
            title="Extension -- certified worst-case families: the PS "
            "family is deep, the BGE family is logarithmically shallow",
        ),
    )
    spider_depth = rows[0][1]
    star_depth = rows[1][1]
    # sqrt(512) ~ 22-deep legs vs log-depth star
    assert spider_depth > 2 * star_depth
