"""Extension: do improving dynamics actually reach the good equilibria?

The paper's conclusion asks how agents *reach* the states its PoA bounds
describe (convergence of network creation dynamics is studied by Kawald
and Lenzner, SPAA 2013).  This bench runs seeded ensembles of improving
dynamics from random trees under increasing cooperation and reports
convergence rate, path length, final quality, and the starting states'
approximate-stability factor.

The reproduced qualitative claims: dynamics under each concept terminate
at checker-certified equilibria, and more cooperative move spaces end at
states that are no worse (here: strictly better on average) than pairwise
negotiation alone.
"""

from repro.analysis.tables import render_table
from repro.core.concepts import Concept
from repro.dynamics.convergence import convergence_study

from _harness import emit, once


def study():
    rows = []
    for concept in (Concept.RE, Concept.PS, Concept.BGE):
        stats = convergence_study(
            concept, n=14, alpha=6, runs=12, seed=42, max_rounds=3000
        )
        rows.append(
            [
                concept.value,
                stats.runs,
                stats.converged,
                stats.cycled,
                stats.mean_rounds,
                stats.mean_start_instability,
                stats.mean_final_rho,
                stats.worst_final_rho,
            ]
        )
    return rows


def test_dynamics_convergence(benchmark):
    rows = once(benchmark, study)
    emit(
        "dynamics_convergence",
        render_table(
            ["move space", "runs", "converged", "cycled", "mean moves",
             "start instability beta", "mean final rho", "worst final rho"],
            rows,
            title="Extension -- improving dynamics from random trees "
            "(n = 14, alpha = 6)",
        ),
    )
    by_concept = {row[0]: row for row in rows}
    # trees admit no improving removal: RE dynamics converge instantly
    assert by_concept["remove-equilibrium"][4] == 0
    # PS and BGE dynamics all terminate at certified equilibria
    for name in ("pairwise-stability", "bilateral-greedy-equilibrium"):
        assert by_concept[name][2] == by_concept[name][1]  # all converged
        assert by_concept[name][6] >= 1
    # richer move spaces do not end worse on average
    assert (
        by_concept["bilateral-greedy-equilibrium"][6]
        <= by_concept["pairwise-stability"][6] + 1e-9
    )
