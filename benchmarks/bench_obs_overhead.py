"""Perf: what the telemetry layer costs per best-response round.

PR 10 moved every module-global spy into the ``repro.obs`` registry
(locked increments) and wired trace spans into the sweep path, so the
hot loop now pays: one ``span("engine.sweep")`` per ``best()`` call,
one dispatch-arm counter per same-type run, and one ``note_evaluations``
counter per run.  This benchmark measures that cost where it matters —
the per-round wall time of a best-response sweep over a full improving-
move pool — under both trace arms:

``disabled``
    ``REPRO_TRACE`` off: ``span()`` is one module-flag check returning a
    shared no-op.  The design budget is <= 1% of a round.
``enabled``
    Tracing on, spans written to a throwaway sink — one JSON line per
    round.  The design budget is <= 3% of a round.

Both arms run the *identical* deterministic sweep (telemetry never
alters results — ``tests/test_obs.py`` asserts byte-identity), so the
ratio isolates pure telemetry cost.  A micro-timing of the disabled-path
null span is reported alongside (the per-span cost that the <= 1%
budget divides by the round time).

``speedup`` (disabled/enabled seconds) is tracked by
``check_regression.py`` against ``baselines/BENCH_obs_overhead.json``:
a telemetry change that makes enabled tracing expensive fails the gate.

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import os
import random
import statistics
import time

from repro.analysis.tables import render_table
from repro.core.concepts import Concept
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.dynamics.movegen import improving_moves
from repro.graphs.generation import random_connected_gnp
from repro.obs import trace as trace_mod

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

N = 30 if QUICK else 48
ROUNDS = 30 if QUICK else 60
REPEATS = 3 if QUICK else 5
NULL_SPAN_ITERS = 20_000 if QUICK else 100_000


def _workload():
    graph = random_connected_gnp(N, 0.1, random.Random(23))
    state = GameState(graph, 3)
    state.dist  # one APSP build up front, outside the timed region
    pool = list(improving_moves(state, Concept.BGE))
    return state, pool


def _time_pass(spec, pool) -> float:
    """Seconds per sweep round, one timing pass."""
    start = time.perf_counter()
    for _ in range(ROUNDS):
        spec.best(pool)
    return (time.perf_counter() - start) / ROUNDS


def _time_arms(state, pool, sink) -> tuple[float, float]:
    """Interleaved disabled/enabled per-round times (min over passes).

    Alternating the arms inside every repeat keeps slow drift on a
    shared runner (thermal, noisy neighbours) from landing entirely on
    one arm and manufacturing a phantom overhead — or a phantom speedup.
    """
    spec = SpeculativeEvaluator(state)
    spec.best(pool)  # warm the kernels/allocator outside the timing
    disabled, enabled = [], []
    for _ in range(REPEATS):
        trace_mod.disable_trace()
        disabled.append(_time_pass(spec, pool))
        trace_mod.enable_trace(sink)
        try:
            enabled.append(_time_pass(spec, pool))
        finally:
            trace_mod.disable_trace()
    return min(disabled), min(enabled)


def _null_span_ns() -> float:
    """Median nanoseconds of one disabled-path span round trip."""
    assert not trace_mod.trace_enabled()
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter_ns()
        for _ in range(NULL_SPAN_ITERS):
            with trace_mod.span("bench.null"):
                pass
        samples.append((time.perf_counter_ns() - start) / NULL_SPAN_ITERS)
    return statistics.median(samples)


def study():
    state, pool = _workload()

    sink = RESULTS_DIR / "obs_overhead_trace.jsonl"
    RESULTS_DIR.mkdir(exist_ok=True)
    sink.unlink(missing_ok=True)
    trace_mod.disable_trace()
    try:
        disabled_s, enabled_s = _time_arms(state, pool, sink)
        null_ns = _null_span_ns()
    finally:
        trace_mod.disable_trace()
        sink.unlink(missing_ok=True)

    overhead_pct = (enabled_s / disabled_s - 1.0) * 100.0
    # the disabled arm's span cost, as a share of one measured round
    disabled_pct = null_ns / (disabled_s * 1e9) * 100.0
    payload = {
        "best_response_round": {
            "n": N,
            "pool": len(pool),
            "disabled_ms": disabled_s * 1e3,
            "enabled_ms": enabled_s * 1e3,
            "enabled_overhead_pct": overhead_pct,
            "speedup": disabled_s / enabled_s,
        },
    }
    micro = {
        "null_span_ns": null_ns,
        "disabled_span_share_pct": disabled_pct,
    }
    write_bench_json(
        "BENCH_obs_overhead",
        {"quick": QUICK, "workloads": payload, "micro": micro},
    )
    return payload, micro


def test_obs_overhead(benchmark):
    payload, micro = once(benchmark, study)
    round_stats = payload["best_response_round"]
    emit(
        "obs_overhead",
        render_table(
            ["arm", "ms/round", "overhead %"],
            [
                ["trace disabled", f"{round_stats['disabled_ms']:.3f}",
                 f"{micro['disabled_span_share_pct']:.4f} (null span)"],
                ["trace enabled", f"{round_stats['enabled_ms']:.3f}",
                 f"{round_stats['enabled_overhead_pct']:.2f}"],
            ],
            title=(
                f"telemetry overhead per best-response round "
                f"(n={round_stats['n']}, pool={round_stats['pool']}, "
                f"null span {micro['null_span_ns']:.0f}ns)"
            ),
        ),
    )
    # design budgets are 3% enabled / 1% disabled; the asserted bounds
    # are looser so a noisy shared CI runner cannot flake the suite —
    # the committed baseline's speedup gate tracks the precise ratio
    assert round_stats["enabled_overhead_pct"] < 10.0
    assert micro["disabled_span_share_pct"] < 1.0
    assert micro["null_span_ns"] < 10_000
