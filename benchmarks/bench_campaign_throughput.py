"""Perf: campaign trials/sec, serial vs sharded multiprocessing pool.

Runs the same dynamics campaign grid twice through
:func:`repro.campaigns.run_campaign` — once in-process serial, once on a
4-worker pool — asserts the two produce *bit-identical* per-trial
records (the campaign determinism contract), and reports throughput in
trials/sec.  Results land in
``benchmarks/results/BENCH_campaign_throughput.json`` (tracked by
``check_regression.py`` against the committed baseline, so the
pool-vs-serial ratio is gated relative to the hardware it was measured
on rather than by an absolute wall time).

Scaling expectation: per-trial work here is ~50-400 ms of pure-Python
engine time, far above pool IPC cost, so on >= 4 real cores the pooled
run reaches >= 2.5x serial throughput; on fewer cores the ratio
degrades toward 1x (the determinism assertions still bite).  The
absolute numbers for the current machine are always printed and
recorded.

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import json
import os
import time

from repro.analysis.tables import render_table
from repro.campaigns import CampaignSpec, CampaignStore, run_campaign

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

WORKERS = 4


def throughput_spec() -> CampaignSpec:
    n = 26 if QUICK else 32
    runs = 6 if QUICK else 8
    return CampaignSpec(
        name="campaign-throughput",
        kind="dynamics",
        seed=7,
        grids=(
            {
                "concept": ["PS", "BGE"],
                "n": n,
                "alpha": [2, 3],
                "max_rounds": 1000,
                "index": {"$range": runs},
            },
        ),
    )


def _strip(record):
    record = dict(record)
    record.pop("elapsed")  # wall time is the one legitimately varying field
    return record


def _run(spec, workers):
    store = CampaignStore(None)
    start = time.perf_counter()
    stats = run_campaign(spec, store, workers=workers)
    elapsed = time.perf_counter() - start
    assert stats.failed == 0, "a throughput trial failed"
    records = {
        record["key"]: _strip(record) for record in store.ok_records()
    }
    return elapsed, stats.executed, records


def study():
    spec = throughput_spec()
    serial_s, trials, serial_records = _run(spec, workers=1)
    pooled_s, pooled_trials, pooled_records = _run(spec, workers=WORKERS)
    assert trials == pooled_trials == len(spec.trials())
    assert serial_records == pooled_records, (
        "pooled campaign records differ from serial"
    )
    serial_tps = trials / serial_s
    pooled_tps = trials / pooled_s
    speedup = pooled_tps / serial_tps
    payload = {
        "quick": {
            "trials": trials,
            "workers": WORKERS,
            "cpus": os.cpu_count() or 1,
            "serial_seconds": serial_s,
            "pooled_seconds": pooled_s,
            "serial_trials_per_sec": serial_tps,
            "pooled_trials_per_sec": pooled_tps,
            "speedup": speedup,
        }
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_campaign_throughput", {"quick": QUICK, "grids": payload})
    return payload


def test_campaign_throughput(benchmark):
    payload = once(benchmark, study)
    stats = payload["quick"]
    emit(
        "campaign_throughput",
        render_table(
            ["trials", "workers", "cpus", "serial tps", "pooled tps",
             "speedup"],
            [[
                stats["trials"],
                stats["workers"],
                stats["cpus"],
                f"{stats['serial_trials_per_sec']:.2f}",
                f"{stats['pooled_trials_per_sec']:.2f}",
                f"{stats['speedup']:.2f}x",
            ]],
            title="Campaign throughput: serial vs 4-worker pool "
            "(records asserted bit-identical)",
        ),
    )
    assert stats["serial_trials_per_sec"] > 0
    # a hard scaling floor only on unambiguous multicore hardware; below
    # that (shared 4-vCPU CI runners, laptops under load) the committed-
    # baseline ratio gate in check_regression.py is the portable check
    if (os.cpu_count() or 1) >= 8:
        assert stats["speedup"] >= 2.5, stats
