"""Perf: speculative-kernel BNE / 3-BSE searches vs pre-refactor baselines.

The baselines are verbatim ports of the searchers as they stood before the
speculative-kernel refactor: the BNE search copied the graph and ran one
fresh BFS per beneficiary per candidate; the coalition search rebuilt a
list-of-sets adjacency and ran a pure-Python BFS per member per candidate.
The refactored searchers evaluate every candidate on the cached distance
engine through LIFO undo tokens (one apply + one undo per candidate via
DFS prefix sharing, plus a sound member-dominance prune).

Both implementations share the same prefilters and budget accounting, and
their stability verdicts are asserted identical on every workload.  The
table and ``benchmarks/results/BENCH_equilibria_search.json`` record the
speedups; the headline assertion is the >= 3x target on the BNE and 3-BSE
search workloads.

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import itertools
import json
import os
import random
import time

import networkx as nx

from repro.analysis.tables import render_table
from repro.core.costs import all_strictly_improve
from repro.core.moves import CoalitionMove, NeighborhoodMove
from repro.core.state import GameState
from repro.equilibria.neighborhood import (
    find_improving_neighborhood_move,
    willing_partners,
)
from repro.equilibria.strong import (
    _coalition_edge_space,
    find_improving_coalition_move,
)
from repro.graphs.generation import random_tree

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


# -- pre-refactor baselines --------------------------------------------------


def baseline_neighborhood_search(state, max_add, max_remove):
    """The old BNE search: graph copy + fresh BFS per candidate."""
    alpha = state.alpha
    for center in range(state.n):
        neighbors = sorted(state.graph.neighbors(center))
        willing = willing_partners(state, center)
        center_dist = state.dist.total(center)
        slack = center_dist - (state.n - 1)
        remove_cap = min(len(neighbors), max_remove)
        add_cap = min(len(willing), max_add)
        for removed_size in range(remove_cap + 1):
            for removed in itertools.combinations(neighbors, removed_size):
                for added_size in range(add_cap + 1):
                    if removed_size == 0 and added_size == 0:
                        continue
                    if alpha * (added_size - removed_size) >= slack:
                        break
                    for added in itertools.combinations(willing, added_size):
                        move = NeighborhoodMove(
                            center=center, removed=removed, added=added
                        )
                        graph_after = move.apply(state.graph)
                        if all_strictly_improve(
                            state, graph_after, move.beneficiaries()
                        ):
                            return move
    return None


def _baseline_dist_total(adjacency, source, unreachable):
    n = len(adjacency)
    dist = [-1] * n
    dist[source] = 0
    queue = [source]
    head = 0
    total = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for neighbor in adjacency[node]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[node] + 1
                total += dist[neighbor]
                queue.append(neighbor)
    return total + (n - len(queue)) * unreachable


def _baseline_powerset(items):
    return itertools.chain.from_iterable(
        itertools.combinations(items, size) for size in range(len(items) + 1)
    )


def baseline_coalition_search(state, coalitions):
    """The old k-BSE search: adjacency rebuild + Python BFS per member."""
    base_dist = {u: state.dist.total(u) for u in range(state.n)}
    base_adjacency = [set() for _ in range(state.n)]
    for u, v in state.graph.edges:
        base_adjacency[u].add(v)
        base_adjacency[v].add(u)
    for coalition in coalitions:
        removable, addable = _coalition_edge_space(state, coalition)
        members = list(coalition)
        for removed in _baseline_powerset(removable):
            for added in _baseline_powerset(addable):
                if not removed and not added:
                    continue
                adjacency = [set(neighbors) for neighbors in base_adjacency]
                for u, v in removed:
                    adjacency[u].discard(v)
                    adjacency[v].discard(u)
                for u, v in added:
                    adjacency[u].add(v)
                    adjacency[v].add(u)
                improving = True
                for member in members:
                    new_dist = _baseline_dist_total(
                        adjacency, member, state.m_constant
                    )
                    delta_buy = len(adjacency[member]) - state.graph.degree(
                        member
                    )
                    if not state.alpha * delta_buy < (
                        base_dist[member] - new_dist
                    ):
                        improving = False
                        break
                if improving:
                    return CoalitionMove(
                        coalition=tuple(coalition),
                        removed_edges=tuple(removed),
                        added_edges=tuple(added),
                    )
    return None


# -- workloads ---------------------------------------------------------------


def _bne_workload():
    """Stable trees whose willing-partner lists stay populated.

    On a tree every removal disconnects (never improving) and ``alpha``
    sits above the best achievable addition gain, so both searchers walk
    the full bounded candidate space; the willing-partner *bound* is loose
    enough to keep the space non-trivial.
    """
    n = 24 if QUICK else 44
    alpha = 260 if QUICK else 640
    instances = [
        ("path", nx.path_graph(n), alpha),
        ("tree", random_tree(n, random.Random(5)), alpha),
    ]
    caps = {"max_add": 2, "max_remove": 2}
    return instances, caps


def _bse_workload():
    """Stable trees plus a seeded 3-coalition sample at larger n."""
    n = 52 if QUICK else 88
    alpha = 3000 if QUICK else 8200
    count = 100 if QUICK else 200
    rng = random.Random(9)
    graph = random_tree(n, rng)
    coalitions = [
        tuple(sorted(rng.sample(range(n), 3))) for _ in range(count)
    ]
    return graph, alpha, coalitions


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def study():
    rows = []
    payload = {}

    instances, caps = _bne_workload()
    baseline_s = kernel_s = 0.0
    for name, graph, alpha in instances:
        state = GameState(graph, alpha)
        state.dist  # both regimes start from a materialised engine
        spent, theirs = _timed(
            lambda: baseline_neighborhood_search(state, **caps)
        )
        baseline_s += spent
        spent, ours = _timed(
            lambda: find_improving_neighborhood_move(
                state, max_evaluations=50_000_000, **caps
            )
        )
        kernel_s += spent
        assert (ours is None) == (theirs is None), (name, ours, theirs)
    speedup = baseline_s / kernel_s if kernel_s > 0 else float("inf")
    rows.append(
        [
            "BNE search",
            f"{baseline_s * 1e3:.0f}",
            f"{kernel_s * 1e3:.0f}",
            f"{speedup:.1f}x",
        ]
    )
    payload["bne"] = {
        "baseline_seconds": baseline_s,
        "kernel_seconds": kernel_s,
        "speedup": speedup,
    }

    graph, alpha, coalitions = _bse_workload()
    state = GameState(graph, alpha)
    state.dist
    baseline_s, theirs = _timed(
        lambda: baseline_coalition_search(state, coalitions)
    )
    kernel_s, ours = _timed(
        lambda: find_improving_coalition_move(
            state, 3, coalitions=coalitions, max_evaluations=500_000_000
        )
    )
    assert (ours is None) == (theirs is None), (ours, theirs)
    speedup = baseline_s / kernel_s if kernel_s > 0 else float("inf")
    rows.append(
        [
            "3-BSE search",
            f"{baseline_s * 1e3:.0f}",
            f"{kernel_s * 1e3:.0f}",
            f"{speedup:.1f}x",
        ]
    )
    payload["bse3"] = {
        "baseline_seconds": baseline_s,
        "kernel_seconds": kernel_s,
        "speedup": speedup,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_equilibria_search", {"quick": QUICK, "workloads": payload})
    return rows, payload


def test_equilibria_search(benchmark):
    rows, payload = once(benchmark, study)
    emit(
        "equilibria_search",
        render_table(
            ["workload", "baseline ms", "kernel ms", "speedup"],
            rows,
            title="Speculative kernel vs per-candidate BFS search",
        ),
    )
    # the tentpole target: >= 3x on the full-size workloads (the committed
    # results record that run).  Quick mode runs sizes too small for the
    # asymptotic margin, so it only sanity-checks that the kernel wins;
    # drift is caught by check_regression.py against the quick baseline.
    floor = 1.5 if QUICK else 3
    for name, stats in payload.items():
        assert stats["speedup"] >= floor, (name, stats)
