"""Table 1, row BGE (trees): PoA = Theta(log alpha), tight.

Theorem 3.10's lower-bound family — stretched tree stars with ``k = 1``,
``t = alpha / 15`` — is *certified* in BGE by the exact polynomial checkers
(RE is free on trees, BAE and BSwE run in full), measured over an alpha
sweep, and the measured rho must

* stay above the theorem's finite-size guarantee
  ``log2(alpha)/4 - 17/8``,
* stay below Theorem 3.6's ``2 + 2 log2 alpha`` (BGE is a subset of BSwE),
* grow with a stable positive slope against ``log2 alpha``.
"""

from repro.analysis.bounds import bge_tree_lower_bound, bswe_tree_upper_bound
from repro.analysis.fitting import fit_log_slope
from repro.analysis.tables import render_table
from repro.constructions.stretched import bge_lower_bound_star
from repro.core.state import GameState
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium

from _harness import emit, once

ALPHAS = (60, 120, 240, 480, 960, 1920)


def lower_bound_sweep():
    rows = []
    for alpha in ALPHAS:
        star = bge_lower_bound_star(alpha, eta=max(600, alpha))
        state = GameState(star.graph, alpha)
        assert is_bilateral_greedy_equilibrium(state), alpha
        rho = float(state.rho())
        rows.append(
            [
                alpha,
                state.n,
                rho,
                float(bge_tree_lower_bound(alpha)),
                bswe_tree_upper_bound(alpha),
            ]
        )
    return rows


def test_bge_log_alpha_family(benchmark):
    rows = once(benchmark, lower_bound_sweep)
    fit = fit_log_slope([row[0] for row in rows], [row[2] for row in rows])
    emit(
        "table1_bge",
        render_table(
            ["alpha", "n", "rho (measured)", "thm 3.10 lower",
             "thm 3.6 upper"],
            rows,
            title="Table 1 / BGE on trees -- certified BGE stretched tree "
            "stars (Theorem 3.10, k=1, t=alpha/15)",
        )
        + f"\n\nlog-slope fit: rho ~ {fit.slope:.3f} * log2(alpha) + "
        f"{fit.intercept:.3f} (R^2 = {fit.r_squared:.4f}); paper: "
        "Theta(log alpha), slope between 1/4 and 2",
    )
    for alpha, _, rho, lower, upper in rows:
        assert rho >= lower - 1e-9, (alpha, rho, lower)
        assert rho <= upper + 1e-9, (alpha, rho, upper)
    assert 0.1 <= fit.slope <= 2.0
    assert fit.r_squared > 0.9
    # strictly increasing in alpha across the sweep
    rhos = [row[2] for row in rows]
    assert all(a < b for a, b in zip(rhos, rhos[1:]))
