"""Table 1, row PS (trees): PoA = Theta(min(sqrt(alpha), n / sqrt(alpha))).

Three measurements regenerate the row:

* **shape** — certified-PS spiders at fixed n over an alpha sweep; the
  measured rho must correlate linearly with ``min(sqrt a, n/sqrt a)``,
  rise below the ``alpha ~ n`` crossover, peak there, and decay after;
* **scaling** — at the worst price ``alpha = n`` the family's rho must grow
  roughly like ``sqrt(n)`` as n doubles (ratio ~ 1.41 per doubling), which
  is exactly how the Theta(min(...)) envelope scales at its peak;
* **exhaustive** — over *all* trees at n = 10, PS is confirmed to be the
  outermost rung: every stronger concept has weakly smaller worst case and
  strictly fewer equilibria (at small n the numeric gap between sqrt(alpha)
  and log(alpha) families is not yet visible — reported, not hidden).
"""

import math

import numpy as np

from repro.analysis.poa import empirical_tree_poa
from repro.analysis.tables import render_table
from repro.constructions.spiders import ps_lower_bound_spider
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.pairwise import is_pairwise_stable

from _harness import emit, once


def spider_shape_sweep():
    n = 513
    alphas = (16, 64, 256, 512, 2048, 8192, 32768)
    rows = []
    for alpha in alphas:
        graph = ps_lower_bound_spider(n, alpha)
        state = GameState(graph, alpha)
        assert is_pairwise_stable(state), f"spider not PS at alpha={alpha}"
        rho = float(state.rho())
        shape = min(math.sqrt(alpha), state.n / math.sqrt(alpha))
        rows.append([alpha, state.n, rho, shape, rho / shape])
    return rows


def test_ps_spider_shape(benchmark):
    rows = once(benchmark, spider_shape_sweep)
    rhos = np.array([row[2] for row in rows])
    shapes = np.array([row[3] for row in rows])
    correlation = float(np.corrcoef(rhos, shapes)[0, 1])
    emit(
        "table1_ps_spiders",
        render_table(
            ["alpha", "n", "rho (measured)", "min(sqrt a, n/sqrt a)",
             "rho/shape"],
            rows,
            title="Table 1 / PS on trees -- certified PS spiders, n = 513",
        )
        + f"\n\ncorrelation(rho, paper shape) = {correlation:.4f}; "
        "paper: rho = Theta(min(sqrt a, n/sqrt a))",
    )
    assert correlation > 0.9
    # rises below the crossover, peaks near alpha ~ n, decays above
    peak = int(np.argmax(rhos))
    assert rows[peak][0] in (256, 512, 2048)
    assert rhos[0] < rhos[peak] and rhos[-1] < rhos[peak]
    # within a constant factor of the shape everywhere
    for row in rows:
        assert 0.2 <= row[4] <= 5.0, row


def spider_peak_scaling():
    rows = []
    for n in (129, 257, 513, 1025):
        alpha = n - 1
        graph = ps_lower_bound_spider(n, alpha)
        state = GameState(graph, alpha)
        assert is_pairwise_stable(state)
        rows.append([n, alpha, float(state.rho()), math.sqrt(alpha)])
    return rows


def test_ps_peak_grows_like_sqrt_n(benchmark):
    rows = once(benchmark, spider_peak_scaling)
    ratios = [rows[i + 1][2] / rows[i][2] for i in range(len(rows) - 1)]
    emit(
        "table1_ps_scaling",
        render_table(
            ["n", "alpha = n-1", "rho (measured)", "sqrt(alpha)"],
            rows,
            title="Table 1 / PS on trees -- peak scaling at alpha = n",
        )
        + f"\n\nper-doubling growth ratios: "
        + ", ".join(f"{r:.3f}" for r in ratios)
        + " (sqrt scaling predicts ~1.414)",
    )
    for ratio in ratios:
        assert 1.15 <= ratio <= 1.7, ratios  # clearly growing, sqrt-like
    # the family sits within a constant factor of sqrt(alpha)
    for n, alpha, rho, root in rows:
        assert 0.2 * root <= rho <= root


def exhaustive_worst_case():
    rows = []
    for alpha in (4, 9, 16, 36):
        ps = empirical_tree_poa(10, alpha, Concept.PS)
        bge = empirical_tree_poa(10, alpha, Concept.BGE)
        rows.append(
            [alpha, float(ps.poa), float(bge.poa), ps.equilibria,
             bge.equilibria]
        )
    return rows


def test_ps_exhaustive_small_n(benchmark):
    rows = once(benchmark, exhaustive_worst_case)
    emit(
        "table1_ps_exhaustive",
        render_table(
            ["alpha", "PoA(PS)", "PoA(BGE)", "#PS trees", "#BGE trees"],
            rows,
            title="Table 1 / PS vs BGE -- exact worst case over all 106 "
            "trees, n = 10",
        )
        + "\n\nnote: at n = 10 the sqrt-vs-log separation is below the "
        "resolution of exhaustive enumeration; the construction-based "
        "benches above carry the asymptotic content.",
    )
    for alpha, ps_poa, bge_poa, ps_count, bge_count in rows:
        assert ps_poa >= bge_poa  # cooperation can only help
        assert bge_count <= ps_count  # BGE refines PS
    assert any(row[4] < row[3] for row in rows)  # strictly fewer somewhere
