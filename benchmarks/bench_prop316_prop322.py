"""Propositions 3.16 and 3.22: the boundary structure of BSE.

* **3.16** — at ``alpha < 1`` the clique is the (only) BSE; at ``alpha = 1``
  BSE are exactly the diameter <= 2 graphs; for ``alpha > 1`` the star is
  joined by others (a path of four nodes at alpha = 100).  All verified by
  the exact BSE checker over the full five-node atlas;
* **3.22** — at ``alpha = n`` no family keeps every agent's cost within a
  constant multiple of ``alpha + n - 1``: the flattest d-ary profile grows
  with n, which is why the paper's Lemma 3.17 technique cannot close the
  ``alpha ~ n`` gap.
"""

from fractions import Fraction

import networkx as nx

from repro.analysis.tables import render_table
from repro.core.state import GameState
from repro.equilibria.strong import is_strong_equilibrium
from repro.graphs.generation import all_connected_graphs
from repro.verification.propositions import minimum_max_cost_profile

from _harness import emit, once


def atlas_bse_structure():
    rows = []
    for alpha in (Fraction(1, 2), 1, 2):
        for graph in all_connected_graphs(5):
            state = GameState(graph, alpha)
            if is_strong_equilibrium(state):
                diameter = state.dist.diameter()
                edges = graph.number_of_edges()
                rows.append([float(alpha), edges, diameter])
    return rows


def test_prop_3_16_structure(benchmark):
    rows = once(benchmark, atlas_bse_structure)
    emit(
        "prop316_bse_structure",
        render_table(
            ["alpha", "m (edges)", "diameter"],
            rows,
            title="Prop 3.16 -- every exact BSE among the 21 connected "
            "5-node graphs",
        ),
    )
    below = [row for row in rows if row[0] < 1]
    at_one = [row for row in rows if row[0] == 1]
    above = [row for row in rows if row[0] > 1]
    # alpha < 1: only the clique (10 edges on 5 nodes)
    assert below == [[0.5, 10, 1]]
    # alpha = 1: exactly the diameter <= 2 graphs
    assert at_one and all(row[2] <= 2 for row in at_one)
    assert len(at_one) > 1
    # alpha > 1: the star is present, and it is not alone
    assert any(row[1] == 4 and row[2] == 2 for row in above)
    assert len(above) >= 2
    # the standalone P4-at-alpha-100 example
    assert is_strong_equilibrium(GameState(nx.path_graph(4), 100))


def profile_growth():
    rows = []
    for n in (64, 256, 1024, 4096):
        value = float(minimum_max_cost_profile(n))
        rows.append([n, value])
    return rows


def test_prop_3_22_no_flat_profile(benchmark):
    rows = once(benchmark, profile_growth)
    emit(
        "prop322_profile",
        render_table(
            ["n", "min over d of max_u cost(u) / (alpha + n - 1)"],
            rows,
            title="Prop 3.22 -- at alpha = n the flattest d-ary cost "
            "profile still grows with n",
        ),
    )
    values = [row[1] for row in rows]
    assert all(a < b for a, b in zip(values, values[1:]))
    assert values[-1] > values[0] * 1.5
