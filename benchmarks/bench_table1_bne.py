"""Table 1, row BNE (trees): Theta(log alpha) for large alpha, but a
*constant* PoA (<= 4) once ``alpha <= sqrt n`` (Theorems 3.12 / 3.13).

* **log regime** — Theorem 3.12's stretched tree stars: Lemma 3.11's
  sufficient condition is evaluated exactly (certifying BNE membership),
  BGE membership (a necessary condition, BNE ⊆ BGE) is verified by the
  exact polynomial checkers, and seeded randomized neighborhood probing
  finds no improving move; measured rho grows with log alpha;
* **constant regime** — BNE ⊆ BGE, so the exhaustively measured worst BGE
  tree at ``alpha <= sqrt n`` upper-bounds the BNE PoA; it must be <= 4.
  The paper's contrast — the same machinery at large alpha exceeds it —
  is reported alongside.
"""

import random

from repro.analysis.fitting import fit_log_slope
from repro.analysis.tables import render_table
from repro.campaigns import (
    CampaignSpec,
    CampaignStore,
    run_campaign,
    trial_key,
)
from repro.constructions.stretched import stretched_tree_star
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.neighborhood import probe_neighborhood_moves
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium
from repro.verification.lemmas import check_lemma_3_11_condition

from _harness import emit, once


def _tuned_star(eta: int, alpha: int):
    """Largest-t stretched star (k=1) whose Lemma 3.11 condition holds."""
    best = None
    t = 3
    while t <= eta // 2 - 1:
        star = stretched_tree_star(k=1, t=t, eta=eta)
        if check_lemma_3_11_condition(star, alpha).holds:
            best = star
        t = int(t * 1.15) + 1
    if best is None:
        raise AssertionError(f"no Lemma 3.11-feasible t at eta={eta}")
    return best


def log_regime_sweep():
    rows = []
    rng = random.Random(7)
    for eta in (500, 1000, 3000):
        alpha = eta  # top of Theorem 3.12's case-(ii) range
        star = _tuned_star(eta, alpha)
        state = GameState(star.graph, alpha)
        in_bge = is_bilateral_greedy_equilibrium(state)
        probe = probe_neighborhood_moves(state, rng, samples=200)
        rows.append(
            [
                alpha,
                state.n,
                float(star.t),
                float(state.rho()),
                in_bge,
                probe is None,
            ]
        )
    return rows


def test_bne_log_regime(benchmark):
    rows = once(benchmark, log_regime_sweep)
    fit = fit_log_slope([row[0] for row in rows], [row[3] for row in rows])
    emit(
        "table1_bne_log",
        render_table(
            ["alpha = eta", "n", "t (tuned)", "rho", "in BGE",
             "probe found nothing"],
            rows,
            title="Table 1 / BNE on trees, alpha >= n^(1/2+eps) -- "
            "Lemma 3.11-certified stretched stars at alpha = eta",
        )
        + f"\n\nlog-slope fit: {fit.slope:.3f} * log2(alpha) "
        f"(R^2 = {fit.r_squared:.4f}); paper: Theta(log alpha). "
        "Every row passes Lemma 3.11's sufficient condition by "
        "construction.",
    )
    for alpha, n, t, rho, in_bge, probe_clean in rows:
        assert in_bge  # necessary condition for BNE (BNE subset of BGE)
        assert probe_clean  # randomized refuter found no violation
    rhos = [row[3] for row in rows]
    assert rhos[-1] > rhos[0] + 0.5  # clear growth across the sweep
    assert fit.slope > 0.1
    assert fit.r_squared > 0.8


#: (n, alpha in the constant regime, alpha in the contrast regime)
_CONSTANT_REGIME_CASES = ((11, 3, 60), (12, 3, 80), (13, 3, 100))


def constant_regime():
    # the sweep is a campaign: the same spec shape as the committed
    # campaigns/cooperation_ladder.json, run against an in-memory store
    spec = CampaignSpec(
        name="table1-bne-constant-regime",
        kind="tree_poa",
        grids=tuple(
            {"n": n, "alpha": [small, large], "concept": "BGE"}
            for n, small, large in _CONSTANT_REGIME_CASES
        ),
    )
    store = CampaignStore(None)
    stats = run_campaign(spec, store)
    assert stats.failed == 0, "a constant-regime trial failed"

    def poa(n, alpha):
        result = store.result(
            trial_key("tree_poa", {"n": n, "alpha": alpha, "concept": Concept.BGE})
        )
        return float(result["poa"])

    return [
        [n, small, poa(n, small), large, poa(n, large)]
        for n, small, large in _CONSTANT_REGIME_CASES
    ]


def test_bne_constant_regime(benchmark):
    rows = once(benchmark, constant_regime)
    emit(
        "table1_bne_constant",
        render_table(
            ["n", "alpha <= sqrt n", "PoA bound via BGE", "alpha large",
             "PoA via BGE (contrast)"],
            rows,
            title="Table 1 / BNE on trees, alpha <= sqrt(n) -- exhaustive "
            "BGE superset bound (BNE subset of BGE)",
        )
        + "\n\npaper (Theorem 3.13): rho <= 4 in the small-alpha regime",
    )
    for n, alpha_small, small_poa, alpha_large, large_poa in rows:
        assert alpha_small**2 <= n
        assert small_poa <= 4.0, (n, alpha_small, small_poa)
