"""Benchmark regression gate for CI.

Compares freshly produced ``benchmarks/results/BENCH_*.json`` speedups
against the committed quick-mode baselines in ``benchmarks/baselines/``
and exits non-zero when any tracked speedup fell below ``TOLERANCE``
times its baseline (i.e. more than a 30% relative slowdown).  Speedup
ratios — incremental vs rebuild, kernel vs BFS — are used instead of
absolute wall times so the gate is portable across runner hardware.

Usage::

    python check_regression.py            # checks every tracked benchmark
    python check_regression.py NAME...    # checks a subset (file stems)
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

#: fail when a fresh speedup drops below 70% of its committed baseline
TOLERANCE = 0.7

#: benchmark file stem -> (top-level key holding named entries, metric)
TRACKED = {
    "BENCH_campaign_throughput": ("grids", "speedup"),
    "BENCH_distance_engine": ("families", "speedup"),
    "BENCH_dynamics_rounds": ("rounds", "speedup"),
    "BENCH_equilibria_search": ("workloads", "speedup"),
    # weighted-traffic overhead: speedup = uniform/weighted seconds, so
    # the 0.7 tolerance on a ~0.9 baseline caps the weighted engine at
    # ~1.6x of uniform — well past the 1.3x design target
    "BENCH_weighted_totals": ("workloads", "speedup"),
    # cost-model overhead: speedup = base/modeled seconds on identical
    # workloads (LinearCost dispatch, f-table sweeps/trajectories, the
    # max aggregate's max-with-counts maintenance)
    "BENCH_costmodel_overhead": ("workloads", "speedup"),
    # canonical-key layer dedup vs pairwise nx.is_isomorphic on the
    # same extension streams (trees + connected graphs)
    "BENCH_enumeration": ("workloads", "speedup"),
    # serve warm-engine cache vs cold rebuilds on a replayed request
    # trace (speedup = cold/warm seconds at the ServeApp.handle layer)
    "BENCH_serve_qps": ("workloads", "speedup"),
    # telemetry cost: speedup = trace-disabled/trace-enabled seconds per
    # best-response sweep round (~1.0 by design; the 0.7 floor fails a
    # change that makes enabled tracing eat >40% of a round)
    "BENCH_obs_overhead": ("workloads", "speedup"),
}


def check(name: str) -> list[str]:
    group_key, metric = TRACKED[name]
    fresh_path = RESULTS_DIR / f"{name}.json"
    baseline_path = BASELINES_DIR / f"{name}.json"
    if not fresh_path.exists():
        return [f"{name}: missing fresh results at {fresh_path}"]
    if not baseline_path.exists():
        return [f"{name}: missing committed baseline at {baseline_path}"]
    fresh = json.loads(fresh_path.read_text())[group_key]
    baseline = json.loads(baseline_path.read_text())[group_key]
    failures = []
    for entry, stats in baseline.items():
        reference = stats[metric]
        if entry not in fresh:
            failures.append(f"{name}/{entry}: entry missing from fresh run")
            continue
        measured = fresh[entry][metric]
        floor = reference * TOLERANCE
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"{name}/{entry}: {metric} {measured:.2f} "
            f"(baseline {reference:.2f}, floor {floor:.2f}) {verdict}"
        )
        if measured < floor:
            failures.append(
                f"{name}/{entry}: {metric} {measured:.2f} < "
                f"{floor:.2f} (= {TOLERANCE} * baseline {reference:.2f})"
            )
    return failures


def main(argv: list[str]) -> int:
    names = argv or sorted(TRACKED)
    unknown = [name for name in names if name not in TRACKED]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    failures = []
    for name in names:
        failures.extend(check(name))
    if failures:
        print("\nperformance regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall tracked benchmark speedups within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
