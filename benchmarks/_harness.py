"""Shared benchmark plumbing.

Every benchmark regenerates one table row or figure of the paper, prints
the reproduced rows, *asserts* the paper's finite-size claims, and stores
the rendered table under ``benchmarks/results/`` so the artefacts survive
pytest's output capture.

``write_bench_json`` is the one way BENCH_*.json files get written: it
stamps every payload with a ``meta`` block (platform, python, numpy,
active kernel backend) so perf trajectories compared across machines are
interpretable.  ``check_regression.py`` indexes only its tracked group
key, so the block never participates in the gate.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Any, Mapping

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def bench_meta() -> dict[str, str]:
    """Machine/toolchain provenance stamped into every BENCH_*.json."""
    import numpy

    from repro._backend import active_name

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "backend": active_name(),
    }


def write_bench_json(name: str, payload: Mapping[str, Any]) -> None:
    """Persist one benchmark's JSON results, stamped with ``meta``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps({"meta": bench_meta(), **payload}, indent=2) + "\n"
    )
