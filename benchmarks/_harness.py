"""Shared benchmark plumbing.

Every benchmark regenerates one table row or figure of the paper, prints
the reproduced rows, *asserts* the paper's finite-size claims, and stores
the rendered table under ``benchmarks/results/`` so the artefacts survive
pytest's output capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
