"""Figures 1a + 1b: the subset lattice of solution concepts and the
RE/BAE/BSwE Venn diagram.

* **1a** — every inclusion arrow is verified over all connected graphs on
  up to 5 nodes times an alpha grid (no counterexample may exist), and
  every inclusion is certified *proper* by an explicit witness;
* **1b** — all eight Venn regions are populated: the frozen witnesses are
  re-verified and the atlas search re-finds witnesses from scratch.
"""

from fractions import Fraction

from repro.analysis.search import classify_re_bae_bswe, search_venn_witnesses
from repro.analysis.tables import render_table
from repro.constructions.figures import (
    figure5_bae_bge_not_bne,
    figure6_bne_not_2bse,
)
from repro.constructions.venn import VENN_WITNESSES
from repro.core.state import GameState
from repro.equilibria.add import is_bilateral_add_equilibrium
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.remove import is_remove_equilibrium
from repro.equilibria.strong import is_k_strong_equilibrium
from repro.equilibria.swap import is_bilateral_swap_equilibrium
from repro.graphs.generation import all_connected_graphs

from _harness import emit, once

ALPHAS = (Fraction(1, 2), 1, Fraction(3, 2), 2, 3, 5)


def lattice_scan():
    arrows = {
        "PS -> RE": 0,
        "PS -> BAE": 0,
        "BGE -> PS": 0,
        "BGE -> BSwE": 0,
        "BNE -> BGE": 0,
        "2-BSE -> BGE": 0,
        "3-BSE -> 2-BSE": 0,
        "BSE -> 3-BSE": 0,
    }
    states = 0
    for n in (3, 4, 5):
        for graph in all_connected_graphs(n):
            for alpha in ALPHAS:
                state = GameState(graph, alpha)
                states += 1
                ps = is_pairwise_stable(state)
                bge = is_bilateral_greedy_equilibrium(state)
                bne = is_neighborhood_equilibrium(state)
                k2 = is_k_strong_equilibrium(state, 2)
                k3 = is_k_strong_equilibrium(state, 3)
                bse = is_k_strong_equilibrium(state, n)
                implications = [
                    ("PS -> RE", ps, is_remove_equilibrium(state)),
                    ("PS -> BAE", ps, is_bilateral_add_equilibrium(state)),
                    ("BGE -> PS", bge, ps),
                    ("BGE -> BSwE", bge, is_bilateral_swap_equilibrium(state)),
                    ("BNE -> BGE", bne, bge),
                    ("2-BSE -> BGE", k2, bge),
                    ("3-BSE -> 2-BSE", k3, k2),
                    ("BSE -> 3-BSE", bse, k3),
                ]
                for name, premise, conclusion in implications:
                    if premise and not conclusion:
                        raise AssertionError(
                            f"{name} fails on {sorted(graph.edges)} at "
                            f"alpha={alpha}"
                        )
                    if premise:
                        arrows[name] += 1
    return states, arrows


def test_fig1a_lattice(benchmark):
    states, arrows = once(benchmark, lattice_scan)
    rows = [[name, count] for name, count in arrows.items()]
    emit(
        "fig1a_lattice",
        render_table(
            ["inclusion", "#states exercising it"],
            rows,
            title=f"Figure 1a -- all inclusion arrows hold over {states} "
            "(graph, alpha) states (n <= 5)",
        ),
    )
    assert all(count > 0 for count in arrows.values())


def test_fig1a_properness(benchmark):
    def properness():
        fig5 = figure5_bae_bge_not_bne()
        s5 = GameState(fig5.graph, fig5.alpha)
        fig6 = figure6_bne_not_2bse()
        s6 = GameState(fig6.graph, fig6.alpha)
        return {
            "BGE without BNE (fig 5)": is_bilateral_greedy_equilibrium(s5)
            and True,  # BNE violation certified in the figure's tests
            "BNE without 2-BSE (fig 6)": is_neighborhood_equilibrium(s6)
            and not is_k_strong_equilibrium(s6, 2),
        }

    outcomes = once(benchmark, properness)
    emit(
        "fig1a_properness",
        render_table(
            ["witness", "verified"],
            [[k, v] for k, v in outcomes.items()],
            title="Figure 1a -- properness witnesses",
        ),
    )
    assert all(outcomes.values())


def test_fig1b_venn(benchmark):
    def verify_and_search():
        frozen = []
        for witness in VENN_WITNESSES:
            got = classify_re_bae_bswe(
                GameState(witness.graph, witness.alpha)
            )
            frozen.append(
                [
                    witness.name,
                    "RE" if witness.region[0] else "-",
                    "BAE" if witness.region[1] else "-",
                    "BSwE" if witness.region[2] else "-",
                    float(witness.alpha),
                    witness.graph.number_of_nodes(),
                    got == witness.region,
                ]
            )
        found = search_venn_witnesses(sizes=(3, 4, 5, 6, 7))
        return frozen, len(found)

    frozen, regions_found = once(benchmark, verify_and_search)
    emit(
        "fig1b_venn",
        render_table(
            ["witness", "RE", "BAE", "BSwE", "alpha", "n", "verified"],
            frozen,
            title="Figure 1b -- all eight RE/BAE/BSwE regions witnessed",
        )
        + f"\n\nindependent atlas search repopulated {regions_found}/8 "
        "regions",
    )
    assert all(row[-1] for row in frozen)
    assert regions_found == 8
