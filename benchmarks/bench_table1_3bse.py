"""Table 1, row 3-BSE (trees): PoA = Theta(1) — coalitions of three agents
suffice for constant PoA, while 2-BSE (= BGE on trees, Prop. 3.7) stays
Omega(log alpha).

* **constant bound** — exhaustive: every tree in exact 3-BSE over an alpha
  grid has rho <= 25 (Theorem 3.15), with big margin at these sizes;
* **the separation** — the BGE/2-BSE lower-bound family (stretched tree
  stars) is certified 2-BSE-stable yet *destabilised* by Lemma 3.14's
  three-agent move, constructed explicitly and validated;
* **pinpointing** — 2-BSE equals BGE on trees (Prop. 3.7, re-verified),
  so no coalition size below 3 can give a constant PoA.
"""

from repro.analysis.poa import empirical_tree_poa
from repro.analysis.tables import render_table
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium
from repro.verification.lemmas import check_lemma_3_14
from repro.verification.propositions import (
    check_proposition_3_7,
    lemma_3_14_coalition_move,
)

from _harness import emit, once


def exhaustive_3bse():
    rows = []
    for n in (7, 8):
        for alpha in (2, 6, 20, 60):
            result = empirical_tree_poa(n, alpha, Concept.BGE, k=3)
            rows.append(
                [
                    n,
                    alpha,
                    float(result.poa) if result.poa is not None else None,
                    result.equilibria,
                ]
            )
    return rows


def test_3bse_constant_poa(benchmark):
    rows = once(benchmark, exhaustive_3bse)
    emit(
        "table1_3bse_exhaustive",
        render_table(
            ["n", "alpha", "PoA(3-BSE) over all trees", "#equilibria"],
            rows,
            title="Table 1 / 3-BSE on trees -- exact enumeration "
            "(Theorem 3.15: rho <= 25)",
        ),
    )
    for n, alpha, poa, count in rows:
        assert count >= 1  # the star is 3-BSE
        assert poa is not None and poa <= 25


def separation():
    """A 2-BSE-stable family broken by a 3-coalition.

    Lemma 3.14's move needs ``ceil(4 alpha / n) >= 2`` (so that agent z'
    profits) and sibling subtrees deeper than ``2 ceil(4 alpha/n) + 1``.
    The k = 1 stretched tree star at (t = 127, eta = 1500) has exact
    stability threshold alpha >= 367 (max mutual add gain) while the
    off-by-two window requires alpha in [382, 762); alpha = 400 sits in
    both, so the instance is *certified* 2-BSE-stable by the polynomial
    checkers and *certified* unstable under the three-agent move."""
    from repro.constructions.stretched import stretched_tree_star

    rows = []
    star = stretched_tree_star(k=1, t=127, eta=1500)
    for alpha in (400,):
        state = GameState(star.graph, alpha)
        two_stable = is_bilateral_greedy_equilibrium(state)  # = 2-BSE, trees
        deep = check_lemma_3_14(state)
        move = lemma_3_14_coalition_move(state)
        move_valid = move is not None and validate_certificate(state, move)
        rows.append(
            [
                alpha,
                state.n,
                float(state.rho()),
                two_stable,
                not deep.holds,
                move_valid,
            ]
        )
    return rows


def test_3bse_breaks_the_bge_family(benchmark):
    rows = once(benchmark, separation)
    emit(
        "table1_3bse_separation",
        render_table(
            ["alpha", "n", "rho", "2-BSE stable", "deep siblings present",
             "3-coalition move certified"],
            rows,
            title="Table 1 / 3-BSE vs 2-BSE -- Lemma 3.14's three-agent "
            "move destroys the log-alpha family",
        ),
    )
    for alpha, n, rho, two_stable, has_deep, move_valid in rows:
        assert two_stable
        assert has_deep  # the family violates Lemma 3.14's condition
        assert move_valid  # and the proof's move indeed improves all three


def test_prop_3_7_pinpoints_coalition_size(benchmark):
    outcome = once(
        benchmark, lambda: check_proposition_3_7(7, [1, 3, 9, 27])
    )
    emit(
        "table1_3bse_prop37",
        f"Proposition 3.7 (trees: BGE == 2-BSE): {outcome.details}",
    )
    assert outcome.holds
