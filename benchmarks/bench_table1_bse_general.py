"""Table 1, rows BSE (general graphs): Theta(1) for ``alpha <= n^(1-eps)``
and for ``alpha >= n log n``; O(log n / log log log n) in between.

The paper's proof pipeline is executed *exactly*: Lemma 3.18 bounds every
agent's cost in an almost complete d-ary tree; Lemma 3.17 turns the exact
maximum agent cost into a certified PoA upper bound for every BSE.  We
compute the certified bound for the paper's three choices of ``d`` across
n and alpha regimes and confirm the three claimed behaviours, plus an
exhaustive exact-BSE cross-check at n = 5.
"""

import math

from repro.analysis.bounds import (
    bse_any_alpha_bound,
    bse_high_alpha_bound,
    bse_low_alpha_bound,
)
from repro.analysis.poa import bse_upper_bound_via_dary_tree, empirical_poa
from repro.analysis.tables import render_table
from repro.core.concepts import Concept

from _harness import emit, once

NS = (256, 1024, 4096, 16384)


def regime_sweep():
    rows = []
    epsilon = 0.5
    for n in NS:
        low_alpha = int(n ** (1 - epsilon))
        high_alpha = int(n * math.log2(n))
        mid_alpha = n
        low = float(
            bse_upper_bound_via_dary_tree(n, low_alpha, max(2, int(n**epsilon)))
        )
        high = float(bse_upper_bound_via_dary_tree(n, high_alpha, 2))
        mid_d = max(2, math.ceil(math.log2(math.log2(n))))
        mid = float(bse_upper_bound_via_dary_tree(n, mid_alpha, mid_d))
        rows.append([n, low_alpha, low, mid_alpha, mid, high_alpha, high])
    return rows


def test_bse_three_regimes(benchmark):
    rows = once(benchmark, regime_sweep)
    emit(
        "table1_bse_general",
        render_table(
            ["n", "a=sqrt(n)", "PoA bound (thm 3.20)", "a=n",
             "PoA bound (thm 3.21)", "a=n log n", "PoA bound (thm 3.19)"],
            rows,
            title="Table 1 / BSE on general graphs -- certified upper "
            "bounds via Lemmas 3.17 + 3.18 (exact d-ary tree costs)",
        )
        + "\n\npaper: <= 3 + 2/eps = 7 (low), o(log n) (mid), <= 5 (high)",
    )
    lows = [row[2] for row in rows]
    mids = [row[4] for row in rows]
    highs = [row[6] for row in rows]
    # low regime: constant, below Theorem 3.20's cap for eps = 1/2
    for value in lows:
        assert value <= bse_low_alpha_bound(0.5)
    assert max(lows) - min(lows) < 1.5  # flat across a 64x range of n
    # high regime: constant, below Theorem 3.19's cap
    for value in highs:
        assert value <= bse_high_alpha_bound()
    assert max(highs) - min(highs) < 1.0
    # mid regime: may grow, but sublogarithmically (o(log n) check:
    # bound / log2(n) shrinks as n grows)
    normalised = [m / math.log2(n) for m, n in zip(mids, NS)]
    assert normalised[-1] < normalised[0]
    for m, n in zip(mids, NS):
        assert m <= bse_any_alpha_bound(n) + 1e-9


def exhaustive_cross_check():
    """At n = 5 the exact BSE worst case must sit below the certified
    d-ary bound."""
    rows = []
    for alpha in (2, 3, 4):
        scan = empirical_poa(5, alpha, Concept.BSE)
        bound = min(
            float(bse_upper_bound_via_dary_tree(5, alpha, d)) for d in (2, 3, 4)
        )
        rows.append(
            [alpha, float(scan.poa), bound, scan.equilibria, scan.candidates]
        )
    return rows


def test_bse_exact_small_n(benchmark):
    rows = once(benchmark, exhaustive_cross_check)
    emit(
        "table1_bse_exact",
        render_table(
            ["alpha", "exact PoA(BSE), n=5", "certified bound",
             "#BSE", "#graphs"],
            rows,
            title="Table 1 / BSE -- exhaustive exact check, all 21 "
            "connected graphs on 5 nodes",
        ),
    )
    for alpha, poa, bound, count, total in rows:
        assert count >= 1
        assert poa <= bound + 1e-9
        assert total == 21
