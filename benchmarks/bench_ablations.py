"""Ablations for the reproduction's two methodological substitutions.

1. **The disconnection constant** — the paper uses ``M > alpha n^3``; we
   use the equivalent ``M > alpha n + n^2`` (see ``repro._alpha.big_m``).
   The ablation re-runs every polynomial checker over the full small-graph
   atlas under both constants and demands bit-identical verdicts.
2. **BNE willing-partner pruning** — the exact BNE checker discards
   partners whose gain upper bound cannot exceed alpha.  The ablation runs
   the checker with pruning against the unpruned brute-force reference on
   every small graph and demands identical verdicts.
"""

import itertools
from fractions import Fraction

from repro.core.state import GameState
from repro.equilibria.add import is_bilateral_add_equilibrium
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium
from repro.equilibria.remove import is_remove_equilibrium
from repro.graphs.generation import all_connected_graphs

from _harness import emit, once

ALPHAS = (Fraction(1, 2), 1, 2, Fraction(9, 2), 7)


class _PaperMState(GameState):
    """GameState with the paper's literal ``M > alpha n^3`` constant."""

    def __init__(self, graph, alpha):
        super().__init__(graph, alpha)
        self.m_constant = int(self.alpha * self.n**3) + self.n + 1
        self._dist = None  # force a rebuild with the big constant


def m_constant_ablation():
    agree = 0
    disagree = []
    for n in (3, 4, 5):
        for graph in all_connected_graphs(n):
            for alpha in ALPHAS:
                ours = GameState(graph, alpha)
                paper = _PaperMState(graph, alpha)
                for checker in (
                    is_remove_equilibrium,
                    is_bilateral_add_equilibrium,
                    is_bilateral_greedy_equilibrium,
                ):
                    a, b = checker(ours), checker(paper)
                    if a == b:
                        agree += 1
                    else:
                        disagree.append(
                            (checker.__name__, sorted(graph.edges), alpha)
                        )
    return agree, disagree


def test_m_constant_equivalence(benchmark):
    agree, disagree = once(benchmark, m_constant_ablation)
    emit(
        "ablation_m_constant",
        f"M-constant ablation: {agree} checker verdicts compared between "
        f"M > an + n^2 (ours) and M > a n^3 (paper); "
        f"{len(disagree)} disagreements",
    )
    assert not disagree, disagree[:3]
    assert agree >= 435  # 3 checkers x 29 graphs x 5 alphas


def naive_bne(state: GameState) -> bool:
    """Unpruned reference (same as the test suite's)."""
    from repro.core.costs import all_strictly_improve
    from repro.core.moves import NeighborhoodMove

    for center in range(state.n):
        neighbors = sorted(state.graph.neighbors(center))
        others = [
            v for v in range(state.n)
            if v != center and not state.graph.has_edge(center, v)
        ]
        for r_size in range(len(neighbors) + 1):
            for removed in itertools.combinations(neighbors, r_size):
                for a_size in range(len(others) + 1):
                    for added in itertools.combinations(others, a_size):
                        if not removed and not added:
                            continue
                        move = NeighborhoodMove(
                            center=center, removed=removed, added=added
                        )
                        if all_strictly_improve(
                            state, move.apply(state.graph),
                            move.beneficiaries(),
                        ):
                            return False
    return True


def pruning_ablation():
    agree = 0
    disagree = []
    for n in (3, 4, 5):
        for graph in all_connected_graphs(n):
            for alpha in (1, 2, Fraction(9, 2)):
                state = GameState(graph, alpha)
                pruned = is_neighborhood_equilibrium(state)
                reference = naive_bne(state)
                if pruned == reference:
                    agree += 1
                else:
                    disagree.append((sorted(graph.edges), alpha))
    return agree, disagree


def test_bne_pruning_soundness(benchmark):
    agree, disagree = once(benchmark, pruning_ablation)
    emit(
        "ablation_bne_pruning",
        f"BNE pruning ablation: {agree} verdicts compared between the "
        f"pruned exact checker and the unpruned reference; "
        f"{len(disagree)} disagreements",
    )
    assert not disagree, disagree[:3]
    assert agree > 80
