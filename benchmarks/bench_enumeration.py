"""Perf: canonical-key enumeration vs naive pairwise-isomorphism dedup.

The layered enumerators (:mod:`repro.graphs.enumerate`) deduplicate each
extension layer with a *set* of canonical keys — O(1) membership per
candidate after one canonicalisation.  The naive alternative, and the
only option without canonical forms, is a linear scan of the layer's
representatives with ``nx.is_isomorphic`` per candidate.  This benchmark
runs both over identical extension streams (same layers, same candidate
graphs) and checks they find exactly the same isomorphism classes:

* ``trees`` — leaf-extension layers up to ``n``;
* ``connected_graphs`` — edge-addition layers at fixed ``n``.

The tracked metric is ``speedup = naive_seconds / canonical_seconds``
(> 1 means the canonical keys win); the gap widens with n as layer sizes
grow, which is exactly why the atlas-free sweeps need the keys.
Committed quick-mode baselines in
``benchmarks/baselines/BENCH_enumeration.json`` are gated by
``benchmarks/check_regression.py``.

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import json
import os
import time

import networkx as nx

from repro.analysis.tables import render_table
from repro.graphs import enumerate as enum_mod
from repro.graphs.canonical import canonical_cache_clear, decode_key
from repro.graphs.enumerate import (
    connected_graph_layer,
    max_edge_count,
    tree_layer_keys,
)

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _flush():
    """Start every timed run from a cold enumerator and key cache."""
    enum_mod._TREE_LAYERS.clear()
    enum_mod._GRAPH_LAYERS.clear()
    canonical_cache_clear()


def _dedup_naive(candidates):
    """The no-canonical-keys baseline: linear isomorphism scan per layer."""
    representatives = []
    for graph in candidates:
        if any(nx.is_isomorphic(graph, seen) for seen in representatives):
            continue
        representatives.append(graph)
    return representatives


def _tree_candidates(parents):
    for parent in parents:
        n = parent.number_of_nodes()
        for u in range(n):
            child = parent.copy()
            child.add_edge(u, n)
            yield child


def _graph_candidates(parents):
    for parent in parents:
        n = parent.number_of_nodes()
        for u in range(n):
            for v in range(u + 1, n):
                if not parent.has_edge(u, v):
                    child = parent.copy()
                    child.add_edge(u, v)
                    yield child


def _naive_trees(n):
    layer = [nx.empty_graph(1)]
    for _ in range(n - 1):
        layer = _dedup_naive(_tree_candidates(layer))
    return layer


def _naive_connected(n):
    total = 0
    layer = _naive_trees(n)
    total += len(layer)
    for _ in range(n - 1, max_edge_count(n)):
        layer = _dedup_naive(_graph_candidates(layer))
        total += len(layer)
    return total


def study():
    tree_n = 8 if QUICK else 10
    graph_n = 6 if QUICK else 7

    _flush()
    start = time.perf_counter()
    tree_count = len(tree_layer_keys(tree_n))
    canonical_tree_s = time.perf_counter() - start

    start = time.perf_counter()
    naive_tree_count = len(_naive_trees(tree_n))
    naive_tree_s = time.perf_counter() - start

    _flush()
    start = time.perf_counter()
    graph_count = sum(
        len(connected_graph_layer(graph_n, m))
        for m in range(graph_n - 1, max_edge_count(graph_n) + 1)
    )
    canonical_graph_s = time.perf_counter() - start

    start = time.perf_counter()
    naive_graph_count = _naive_connected(graph_n)
    naive_graph_s = time.perf_counter() - start

    payload = {
        "trees": {
            "n": tree_n,
            "classes": tree_count,
            "naive_classes": naive_tree_count,
            "canonical_seconds": canonical_tree_s,
            "naive_seconds": naive_tree_s,
            "speedup": naive_tree_s / canonical_tree_s,
        },
        "connected_graphs": {
            "n": graph_n,
            "classes": graph_count,
            "naive_classes": naive_graph_count,
            "canonical_seconds": canonical_graph_s,
            "naive_seconds": naive_graph_s,
            "speedup": naive_graph_s / canonical_graph_s,
        },
    }
    rows = [
        [
            name,
            stats["n"],
            stats["classes"],
            f"{stats['canonical_seconds'] * 1e3:.1f}",
            f"{stats['naive_seconds'] * 1e3:.1f}",
            f"{stats['speedup']:.1f}x",
        ]
        for name, stats in payload.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_enumeration", {"quick": QUICK, "workloads": payload})
    return rows, payload


def test_enumeration(benchmark):
    rows, payload = once(benchmark, study)
    emit(
        "enumeration",
        render_table(
            ["family", "n", "classes", "canonical ms", "naive ms",
             "speedup"],
            rows,
            title="Canonical-key layer dedup vs pairwise nx.is_isomorphic",
        ),
    )
    for name, stats in payload.items():
        # both paths must agree on the isomorphism classes exactly;
        # the committed baseline (gated by check_regression.py) tracks
        # the real speedup, the in-test floor only catches collapses
        assert stats["classes"] == stats["naive_classes"], (name, stats)
        assert stats["speedup"] > 1.0, (name, stats)
