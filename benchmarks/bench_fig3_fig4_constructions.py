"""Figure 3 (stretched binary trees) and Figure 4 / Lemma 3.14 (the
three-agent coalition move).

* **Figure 3** — structural identities of the construction ((2^(d+1)-2)k+1
  nodes, distances scaled by k, depth k*d) plus Proposition 3.8: the tree
  is in BGE at ``alpha = 7 k n``, certified by the exact checkers;
* **Figure 4** — on a tree with two deep sibling subtrees, the move
  ``{x, z, z'}: add xz, zz'; drop xy`` of Lemma 3.14's proof is built and
  all three strict improvements are re-derived from scratch.
"""

import networkx as nx

from repro.analysis.tables import render_table
from repro.constructions.stretched import stretched_binary_tree
from repro.core.costs import agent_cost_after
from repro.core.state import GameState
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium
from repro.verification.lemmas import check_lemma_D1
from repro.verification.propositions import lemma_3_14_coalition_move

from _harness import emit, once


def figure3_properties():
    rows = []
    for d, k in ((2, 3), (3, 2), (4, 1), (3, 4)):
        tree = stretched_binary_tree(d, k)
        state = GameState(tree.graph, 7 * k * tree.n)
        rows.append(
            [
                d,
                k,
                tree.n,
                (2 ** (d + 1) - 2) * k + 1,
                tree.depth,
                check_lemma_D1(tree).holds,
                is_bilateral_greedy_equilibrium(state),
            ]
        )
    return rows


def test_fig3_stretched_trees(benchmark):
    rows = once(benchmark, figure3_properties)
    emit(
        "fig3_stretched",
        render_table(
            ["d", "k", "n", "(2^(d+1)-2)k+1", "depth = k*d",
             "Lemma D.1", "BGE at alpha=7kn (Prop 3.8)"],
            rows,
            title="Figure 3 -- stretched binary trees",
        ),
    )
    for d, k, n, formula, depth, d1, bge in rows:
        assert n == formula
        assert depth == k * d
        assert d1 and bge


def figure4_move():
    # two long legs from a hub that also carries bulk leaves, so that
    # 4*alpha/n stays small and both legs count as "deep"
    graph = nx.Graph()
    length = 14
    for leg in range(2):
        previous = 0
        for step in range(length):
            node = 1 + leg * length + step
            graph.add_edge(previous, node)
            previous = node
    hub = 2 * length + 1
    for extra in range(60):
        graph.add_edge(0, hub + extra)
    state = GameState(graph, 4)
    move = lemma_3_14_coalition_move(state)
    assert move is not None
    improvements = []
    after = move.apply(state.graph)
    for agent in move.beneficiaries():
        improvements.append(
            [
                agent,
                float(state.cost(agent)),
                float(agent_cost_after(state, after, agent)),
            ]
        )
    return state, move, improvements


def test_fig4_lemma_3_14_move(benchmark):
    state, move, improvements = once(benchmark, figure4_move)
    emit(
        "fig4_coalition_move",
        render_table(
            ["agent", "cost before", "cost after"],
            improvements,
            title="Figure 4 / Lemma 3.14 -- the {x, z, z'} move on a tree "
            f"with two deep sibling subtrees (removed {move.removed_edges}, "
            f"added {move.added_edges})",
        ),
    )
    assert len(move.coalition) == 3
    assert validate_certificate(state, move)
    for _, before, after in improvements:
        assert after < before
