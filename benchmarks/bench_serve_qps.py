"""Perf: serve QPS on a replayed request trace, warm cache vs cold.

Replays one seeded request trace — classify / best_response / poa
queries over a fixed population of connected graphs, with the realistic
skew that most queries revisit a recently seen instance — against two
:class:`repro.serve.ServeApp` arms:

* **warm**: the default configuration (engine registry + response cache
  on), so repeated and isomorphic instances share one materialised
  engine;
* **cold**: ``cache_bytes=0``, which disables both caches — every
  request re-canonicalises, rebuilds the APSP engine and re-runs the
  ladder from scratch.

Both arms replay at the :meth:`ServeApp.handle` layer so the measured
ratio is purely the cache's; the shared HTTP/JSON transport — identical
on both arms — is measured once separately over a real socket
(:func:`repro.serve.http.start_server_in_thread`, keep-alive) and
reported as ``http_qps``, the service's end-to-end headline number.

The two arms are asserted to produce byte-identical answer bodies
(modulo the ``cached`` marker), so the speedup never comes from
answering differently.  Results land in
``benchmarks/results/BENCH_serve_qps.json`` with the warm/cold QPS and
their ratio; ``check_regression.py`` gates the ratio against the
committed baseline.

Scaling expectation: a trace whose instances repeat ~30x pays the
canonicalise+build+classify cost once per instance on the warm arm and
a dict read per repeat, so warm/cold >= 5x holds with a wide margin on
any hardware (both arms run the same machine and the same code path).

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import http.client
import json
import os
import random
import time

from repro.analysis.tables import render_table
from repro.campaigns import CampaignSpec, CampaignStore, run_campaign
from repro.graphs.generation import random_connected_gnp, random_tree
from repro.serve import MaterialisedViews, ServeApp
from repro.serve.http import start_server_in_thread

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

N = 16 if QUICK else 20
INSTANCES = 5 if QUICK else 8
REQUESTS = 150 if QUICK else 320
SEED = 20230703


def _view_campaign() -> tuple[CampaignSpec, CampaignStore]:
    """A small completed exact-PoA campaign backing the poa queries."""
    spec = CampaignSpec(
        name="serve-qps-views",
        kind="exact_poa",
        seed=0,
        grids=(
            {
                "family": "graphs",
                "n": 5,
                "m": {"$range": [4, 11]},
                "alpha": [2],
                "concept": ["PS"],
            },
        ),
    )
    store = CampaignStore(None)
    stats = run_campaign(spec, store)
    assert stats.failed == 0
    return spec, store


def build_trace() -> list[tuple[str, dict]]:
    """The seeded request trace: instance population + skewed replay."""
    rng = random.Random(SEED)
    population = []
    for index in range(INSTANCES):
        # alternate sparse trees in the mid-alpha regime (the expensive
        # near-stable classifications) with denser G(n,p) states (the
        # cheap certificate-rich ones) — a realistic query mix whose
        # cold cost is dominated by the hard instances
        if index % 2 == 0:
            graph = random_tree(N, rng)
            alpha = rng.choice([N // 2, f"{N + 1}/2"])
        else:
            graph = random_connected_gnp(N, 0.25, rng)
            alpha = rng.choice([1, 2, "5/2", 3])
        edges = sorted([int(u), int(v)] if u < v else [int(v), int(u)]
                       for u, v in graph.edges)
        population.append({"edges": edges, "alpha": alpha, "n": N})
    poa_query = {
        "kind": "exact_poa",
        "params": {"family": "graphs", "n": 5, "alpha": 2, "concept": "PS"},
    }
    trace: list[tuple[str, dict]] = []
    for _ in range(REQUESTS):
        roll = rng.random()
        instance = rng.choice(population)
        if roll < 0.55:
            trace.append(("classify", dict(instance)))
        elif roll < 0.85:
            trace.append((
                "best_response",
                dict(instance, agent=rng.randrange(N), concept="PS"),
            ))
        else:
            trace.append(("poa", poa_query))
    return trace


def replay(app: ServeApp, trace) -> tuple[float, list[dict]]:
    """Replay the trace against the service core; (seconds, bodies).

    Timed at the :meth:`ServeApp.handle` layer so the measured ratio is
    the cache's — the shared HTTP/JSON transport cost (identical on both
    arms) is reported separately as ``http_qps``.
    """
    bodies = []
    start = time.perf_counter()
    for endpoint, payload in trace:
        status, body = app.handle(endpoint, payload)
        assert status == 200, (endpoint, body)
        bodies.append(body)
    elapsed = time.perf_counter() - start
    return elapsed, bodies


def replay_http(app: ServeApp, trace) -> float:
    """The same trace over real HTTP/1.1 (keep-alive); returns seconds."""
    port, stop = start_server_in_thread(app)
    try:
        conn = http.client.HTTPConnection("127.0.0.1", port)
        start = time.perf_counter()
        for endpoint, payload in trace:
            conn.request(
                "POST", f"/{endpoint}", json.dumps(payload),
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200, (endpoint, response.read())
            response.read()
        elapsed = time.perf_counter() - start
        conn.close()
    finally:
        stop()
    return elapsed


def _comparable(body: dict) -> dict:
    return {k: v for k, v in body.items() if k != "cached"}


def study():
    spec, store = _view_campaign()
    trace = build_trace()

    def arm(cache_bytes: int) -> tuple[float, list[dict], ServeApp]:
        views = MaterialisedViews()
        views.add_campaign(spec, store)
        app = ServeApp(cache_bytes=cache_bytes, views=views)
        elapsed, bodies = replay(app, trace)
        return elapsed, bodies, app

    cold_s, cold_bodies, _ = arm(cache_bytes=0)
    warm_s, warm_bodies, warm_app = arm(cache_bytes=256 * 1024 * 1024)

    assert (
        [_comparable(b) for b in warm_bodies]
        == [_comparable(b) for b in cold_bodies]
    ), "warm and cold arms answered differently"
    warm_stats = warm_app.engines.stats()
    assert warm_stats["hits"] > 0, "the trace never hit the warm cache"

    # end-to-end QPS over the real socket, warm arm (the headline number)
    views = MaterialisedViews()
    views.add_campaign(spec, store)
    http_s = replay_http(app=ServeApp(views=views), trace=trace)

    warm_qps = len(trace) / warm_s
    cold_qps = len(trace) / cold_s
    payload = {
        "replay": {
            "requests": len(trace),
            "instances": INSTANCES,
            "n": N,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "cold_qps": cold_qps,
            "warm_qps": warm_qps,
            "http_qps": len(trace) / http_s,
            "engines_resident": warm_stats["engines_resident"],
            "engine_hits": warm_stats["hits"],
            "speedup": cold_s / warm_s,
        }
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_serve_qps", {"quick": QUICK, "workloads": payload})
    return payload


def test_serve_qps(benchmark):
    payload = once(benchmark, study)
    stats = payload["replay"]
    emit(
        "serve_qps",
        render_table(
            ["requests", "instances", "n", "cold qps", "warm qps",
             "http qps", "speedup"],
            [[
                stats["requests"],
                stats["instances"],
                stats["n"],
                f"{stats['cold_qps']:.1f}",
                f"{stats['warm_qps']:.1f}",
                f"{stats['http_qps']:.1f}",
                f"{stats['speedup']:.1f}x",
            ]],
            title="Serve QPS: replayed trace, warm engine cache vs cold "
            "(answers asserted identical)",
        ),
    )
    assert stats["speedup"] >= 5.0, stats
