"""Lemma 2.4: cycles are Bilateral Strong Equilibria for an alpha window of
width Theta(n^2) — so, unlike the unilateral NCG, the BNCG admits no tree
conjecture.

The exact BSE checker sweeps alpha across the window boundaries for C5 and
C6.  A measured deviation from the paper is documented here: for odd n the
paper's upper end ``(n+1)(n-1)/4`` exceeds the exact single-removal loss
``(n-1)^2/4``, and the checker exhibits the improving removal in between.
The even-n window matches the paper exactly.
"""

from fractions import Fraction

import networkx as nx

from repro.analysis.tables import render_table
from repro.core.state import GameState
from repro.equilibria.strong import is_strong_equilibrium
from repro.verification.lemmas import cycle_bse_window

from _harness import emit, once


def sweep_cycles():
    rows = []
    for n, alphas in (
        (5, (2, Fraction(5, 2), 3, 4, Fraction(9, 2), 5, 6)),
        (6, (4, Fraction(9, 2), 5, 6, Fraction(13, 2), 7)),
    ):
        window = cycle_bse_window(n)
        for alpha in alphas:
            state = GameState(nx.cycle_graph(n), alpha)
            stable = is_strong_equilibrium(state, max_evaluations=60_000_000)
            predicted = window["paper_low"] < alpha <= window["corrected_high"]
            rows.append(
                [
                    n,
                    float(alpha),
                    stable,
                    predicted,
                    float(window["paper_high"]),
                    float(window["corrected_high"]),
                ]
            )
    return rows


def test_cycle_bse_window(benchmark):
    rows = once(benchmark, sweep_cycles)
    emit(
        "lemma24_cycles",
        render_table(
            ["n", "alpha", "BSE (exact)", "corrected window predicts",
             "paper upper end", "exact removal loss"],
            rows,
            title="Lemma 2.4 -- BSE windows of cycles (no tree conjecture "
            "in the BNCG)",
        )
        + "\n\nnotes: (1) the window is *sufficient* — below its lower end "
        "small cycles can still be stable (C5 has diameter 2); (2) for odd "
        "n the paper's upper end (n+1)(n-1)/4 overshoots the exact removal "
        "loss (n-1)^2/4 — see EXPERIMENTS.md.",
    )
    for n, alpha, stable, predicted, paper_high, corrected_high in rows:
        # inside the corrected window stability is guaranteed ...
        if predicted:
            assert stable, (n, alpha)
        # ... and above the exact removal loss the cycle provably breaks
        if alpha > corrected_high:
            assert not stable, (n, alpha)
    # the windows scale quadratically: width(n) ~ n - 1 below the loss
    for n in (5, 9, 21, 101):
        window = cycle_bse_window(n)
        assert window["corrected_high"] > (n - 1) ** 2 / 4 - 1
        assert window["corrected_high"] - window["paper_low"] > 0
