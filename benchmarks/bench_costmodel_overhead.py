"""Perf: pluggable cost-model overhead vs the seed linear path.

The generalized engine routes every cost through a :class:`CostModel`
— ``LinearCost`` dispatches straight back to the historical code paths,
non-linear models maintain a third per-row vector ``ftotals()[u] =
sum_v W[u, v] * f(d(u, v))`` (or the max aggregate) through every
``apply_*`` / ``undo`` and evaluate kernel candidates through the
``f``-lookup table.  This benchmark times the regimes on identical
workloads:

* ``linear_dispatch_sweep`` — rows-only best-of-pool sweeps
  (:meth:`~repro.core.speculative.SpeculativeEvaluator.best`) on a
  ``LinearCost`` state vs the unmodeled state: the pure dispatch cost
  of the refactor (the two run the very same arithmetic);
* ``ftable_sweep`` — the same sweeps on a ``ConvexCost(2)`` state: the
  per-round price of the ``f``-table lookups;
* ``ftable_trajectory`` — replay one random add/remove trajectory
  maintaining incremental ``ftotals`` (convex model bound) vs the
  uniform ``totals``;
* ``max_trajectory`` — the same trajectory under the max aggregate's
  max-with-counts maintenance.

The tracked metric is ``speedup = base_seconds / modeled_seconds``
(< 1 means the model costs more); the design target is at most
**1.15x** per best-response round for the linear dispatch and the
f-table sweep.  Committed quick-mode baselines in
``benchmarks/baselines/BENCH_costmodel_overhead.json`` are gated by
``benchmarks/check_regression.py``.

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import json
import os
import random
import time
from fractions import Fraction

from repro.analysis.tables import render_table
from repro.core.costmodel import ConvexCost, LinearCost, MaxCost, ModelOps
from repro.core.moves import AddEdge, RemoveEdge, Swap
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.graphs.distances import DistanceMatrix
from repro.graphs.generation import random_connected_gnp

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
UNREACHABLE = 10**7


def _trajectory(graph, count, rng):
    ops = []
    work = graph.copy()
    n = work.number_of_nodes()
    while len(ops) < count:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if work.has_edge(u, v):
            if work.degree(u) <= 1 or work.degree(v) <= 1:
                continue
            work.remove_edge(u, v)
            ops.append(("remove", u, v))
        else:
            work.add_edge(u, v)
            ops.append(("add", u, v))
    return ops


def _model_ops(model, n):
    return ModelOps(
        n,
        model.table(n),
        model.unreachable_cost(n, Fraction(6), n - 1),
        aggregate=model.aggregate,
    )


def _time_trajectory(graph, ops, model, repeats):
    n = graph.number_of_nodes()
    best = float("inf")
    for _ in range(repeats):
        working = graph.copy()
        start = time.perf_counter()
        dm = DistanceMatrix(working, UNREACHABLE)
        if model is None:
            dm.totals()  # materialise the maintained vector being timed
        else:
            dm.bind_cost_model(_model_ops(model, n))
            dm.ftotals()
        for op, u, v in ops:
            if op == "add":
                dm.apply_add(u, v)
            else:
                dm.apply_remove(u, v)
        if model is None:
            checksum = int(dm.totals().sum())
        else:
            checksum = int(dm.ftotals().sum())
        best = min(best, time.perf_counter() - start)
    return best, checksum


def _move_pool(state, rng, cap):
    pool = []
    for u, v in state.graph.edges:
        pool.append(RemoveEdge(u, v))
    for u, v in state.non_edges():
        pool.append(AddEdge(u, v))
    for actor, old in list(state.graph.edges):
        for new in range(state.n):
            if new not in (actor, old) and not state.graph.has_edge(
                actor, new
            ):
                pool.append(Swap(actor=actor, old=old, new=new))
    rng.shuffle(pool)
    return pool[:cap]


def _time_sweeps(state, pool, sweeps):
    start = time.perf_counter()
    for _ in range(sweeps):
        spec = SpeculativeEvaluator(state)
        spec.best(iter(pool))
    return time.perf_counter() - start


def study():
    n = 40 if QUICK else 90
    moves = 40 if QUICK else 80
    sweeps = 6 if QUICK else 20
    pool_cap = 150 if QUICK else 400
    repeats = 3

    rng = random.Random(21)
    graph = random_connected_gnp(n, 0.12, rng)

    ops = _trajectory(graph, moves, random.Random(23))
    uniform_s, _ = _time_trajectory(graph, ops, None, repeats)
    convex_s, _ = _time_trajectory(graph, ops, ConvexCost(2), repeats)
    max_s, _ = _time_trajectory(graph, ops, MaxCost(), repeats)

    plain_state = GameState(graph, 6)
    linear_state = GameState(graph, 6, cost_model=LinearCost())
    convex_state = GameState(graph, 6, cost_model=ConvexCost(2))
    pool = _move_pool(plain_state, random.Random(29), pool_cap)
    sweep_plain_s = _time_sweeps(plain_state, pool, sweeps)
    sweep_linear_s = _time_sweeps(linear_state, pool, sweeps)
    sweep_convex_s = _time_sweeps(convex_state, pool, sweeps)

    payload = {
        "linear_dispatch_sweep": {
            "n": n,
            "pool": len(pool),
            "sweeps": sweeps,
            "base_seconds": sweep_plain_s,
            "modeled_seconds": sweep_linear_s,
            "overhead": sweep_linear_s / sweep_plain_s,
            "speedup": sweep_plain_s / sweep_linear_s,
        },
        "ftable_sweep": {
            "n": n,
            "pool": len(pool),
            "sweeps": sweeps,
            "base_seconds": sweep_plain_s,
            "modeled_seconds": sweep_convex_s,
            "overhead": sweep_convex_s / sweep_plain_s,
            "speedup": sweep_plain_s / sweep_convex_s,
        },
        "ftable_trajectory": {
            "n": n,
            "moves": moves,
            "base_seconds": uniform_s,
            "modeled_seconds": convex_s,
            "overhead": convex_s / uniform_s,
            "speedup": uniform_s / convex_s,
        },
        "max_trajectory": {
            "n": n,
            "moves": moves,
            "base_seconds": uniform_s,
            "modeled_seconds": max_s,
            "overhead": max_s / uniform_s,
            "speedup": uniform_s / max_s,
        },
    }
    rows = [
        [
            name,
            stats["n"],
            f"{stats['base_seconds'] * 1e3:.1f}",
            f"{stats['modeled_seconds'] * 1e3:.1f}",
            f"{stats['overhead']:.2f}x",
        ]
        for name, stats in payload.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_costmodel_overhead", {"quick": QUICK, "workloads": payload})
    return rows, payload


def test_costmodel_overhead(benchmark):
    rows, payload = once(benchmark, study)
    emit(
        "costmodel_overhead",
        render_table(
            ["workload", "n", "base ms", "modeled ms", "overhead"],
            rows,
            title="Cost-model dispatch and f-table overhead vs the seed "
            "linear path (target <= 1.15x per round)",
        ),
    )
    for name, stats in payload.items():
        # the design target is 1.15x for the sweeps; the hard in-test
        # ceiling leaves headroom for noisy runners and the heavier
        # max-with-counts maintenance — the committed baseline (gated by
        # check_regression.py) tracks the real numbers
        assert stats["overhead"] < 2.5, (name, stats)
