"""Perf: weighted-totals maintenance overhead vs the uniform engine.

The heterogeneous-traffic subsystem maintains a second per-row vector —
``wtotals()[u] = sum_v W[u, v] * d(u, v)`` — through every ``apply_*`` /
``undo``, and the speculative kernel evaluates candidates with weighted
row dot products instead of plain row sums.  This benchmark times both
regimes on identical workloads:

* ``engine_trajectory`` — replay one random add/remove trajectory
  maintaining incremental totals (uniform) vs incremental weighted
  totals (demand matrix bound);
* ``kernel_sweep`` — rows-only best-of-pool sweeps
  (:meth:`~repro.core.speculative.SpeculativeEvaluator.best`) over the
  same one-edge move pool, uniform vs weighted state.

The tracked metric is ``speedup = uniform_seconds / weighted_seconds``
(< 1 means weighted costs more); the design target is at most **1.3x**
per-round overhead, i.e. speedup >= 0.77.  Committed quick-mode
baselines in ``benchmarks/baselines/BENCH_weighted_totals.json`` are
gated by ``benchmarks/check_regression.py``.

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import json
import os
import random
import time

from repro.analysis.tables import render_table
from repro.core.moves import AddEdge, RemoveEdge, Swap
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.graphs.distances import DistanceMatrix
from repro.graphs.generation import random_connected_gnp

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
UNREACHABLE = 10**7


def _trajectory(graph, count, rng):
    ops = []
    work = graph.copy()
    n = work.number_of_nodes()
    while len(ops) < count:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if work.has_edge(u, v):
            if work.degree(u) <= 1 or work.degree(v) <= 1:
                continue
            work.remove_edge(u, v)
            ops.append(("remove", u, v))
        else:
            work.add_edge(u, v)
            ops.append(("add", u, v))
    return ops


def _time_trajectory(graph, ops, weights, repeats):
    best = float("inf")
    for _ in range(repeats):
        working = graph.copy()
        start = time.perf_counter()
        dm = DistanceMatrix(working, UNREACHABLE)
        if weights is None:
            dm.totals()  # materialise the maintained vector being timed
        else:
            dm.bind_traffic(weights)
            dm.wtotals()
        for op, u, v in ops:
            if op == "add":
                dm.apply_add(u, v)
            else:
                dm.apply_remove(u, v)
        if weights is None:
            checksum = int(dm.totals().sum())
        else:
            checksum = int(dm.wtotals().sum())
        best = min(best, time.perf_counter() - start)
    return best, checksum


def _move_pool(state, rng, cap):
    pool = []
    for u, v in state.graph.edges:
        pool.append(RemoveEdge(u, v))
    for u, v in state.non_edges():
        pool.append(AddEdge(u, v))
    for actor, old in list(state.graph.edges):
        for new in range(state.n):
            if new not in (actor, old) and not state.graph.has_edge(
                actor, new
            ):
                pool.append(Swap(actor=actor, old=old, new=new))
    rng.shuffle(pool)
    return pool[:cap]


def _time_sweeps(state, pool, sweeps):
    start = time.perf_counter()
    for _ in range(sweeps):
        spec = SpeculativeEvaluator(state)
        spec.best(iter(pool))
    return time.perf_counter() - start


def study():
    n = 40 if QUICK else 90
    moves = 40 if QUICK else 80
    sweeps = 6 if QUICK else 20
    pool_cap = 150 if QUICK else 400
    repeats = 3

    rng = random.Random(21)
    graph = random_connected_gnp(n, 0.12, rng)
    demands = TrafficMatrix.random_demands(n, seed=5, high=4).weights

    ops = _trajectory(graph, moves, random.Random(23))
    uniform_s, _ = _time_trajectory(graph, ops, None, repeats)
    weighted_s, _ = _time_trajectory(graph, ops, demands, repeats)

    uniform_state = GameState(graph, 6)
    weighted_state = GameState(
        graph, 6, traffic=TrafficMatrix.random_demands(n, seed=5, high=4)
    )
    pool = _move_pool(uniform_state, random.Random(29), pool_cap)
    sweep_uniform_s = _time_sweeps(uniform_state, pool, sweeps)
    sweep_weighted_s = _time_sweeps(weighted_state, pool, sweeps)

    payload = {
        "engine_trajectory": {
            "n": n,
            "moves": moves,
            "uniform_seconds": uniform_s,
            "weighted_seconds": weighted_s,
            "overhead": weighted_s / uniform_s,
            "speedup": uniform_s / weighted_s,
        },
        "kernel_sweep": {
            "n": n,
            "pool": len(pool),
            "sweeps": sweeps,
            "uniform_seconds": sweep_uniform_s,
            "weighted_seconds": sweep_weighted_s,
            "overhead": sweep_weighted_s / sweep_uniform_s,
            "speedup": sweep_uniform_s / sweep_weighted_s,
        },
    }
    rows = [
        [
            name,
            stats["n"],
            f"{stats['uniform_seconds'] * 1e3:.1f}",
            f"{stats['weighted_seconds'] * 1e3:.1f}",
            f"{stats['overhead']:.2f}x",
        ]
        for name, stats in payload.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_weighted_totals", {"quick": QUICK, "workloads": payload})
    return rows, payload


def test_weighted_totals(benchmark):
    rows, payload = once(benchmark, study)
    emit(
        "weighted_totals",
        render_table(
            ["workload", "n", "uniform ms", "weighted ms", "overhead"],
            rows,
            title="Weighted-totals maintenance vs the uniform engine "
            "(target <= 1.3x per round)",
        ),
    )
    for name, stats in payload.items():
        # the design target is 1.3x; the hard in-test ceiling leaves
        # headroom for noisy runners, the committed baseline (gated by
        # check_regression.py) tracks the real number
        assert stats["overhead"] < 2.0, (name, stats)
