"""Figures 5-8: the four separating examples of Section 2 / Appendix A.

Each figure graph is rebuilt from the paper's stated quantities and every
claim its proof makes is re-derived:

* Figure 5 — in BAE and BGE, not in BNE (the 104 vs 104.5 vs 105 gaps);
* Figure 6 — in BNE (exact exhaustive check), not in 2-BSE;
* Figure 7 — the center's neighborhood move improves everyone it needs to,
  while a scaled-down instance is certified 2-BSE;
* Figure 8 — in BAE, but an agent would unilaterally buy an edge.
"""

from repro.analysis.tables import render_table
from repro.constructions.figures import (
    figure5_bae_bge_not_bne,
    figure6_bne_not_2bse,
    figure7_kbse_not_bne,
    figure8_bae_not_unilateral_ae,
)
from repro.core.costs import all_strictly_improve
from repro.core.moves import NeighborhoodMove
from repro.core.state import GameState
from repro.equilibria.add import (
    is_bilateral_add_equilibrium,
    is_unilateral_add_equilibrium,
)
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium
from repro.equilibria.strong import (
    find_improving_coalition_move,
    is_k_strong_equilibrium,
)
from repro.equilibria.swap import swap_gains

from _harness import emit, once


def test_fig5(benchmark):
    def run():
        fig = figure5_bae_bge_not_bne()
        state = GameState(fig.graph, fig.alpha)
        a, b1, c1 = fig.node("a"), fig.node("b1"), fig.node("c1")
        _, single_gain = swap_gains(state, a, b1, c1)
        move = NeighborhoodMove(
            center=a,
            removed=(b1, fig.node("b2")),
            added=(c1, fig.node("c2")),
        )
        after = GameState(move.apply(state.graph), fig.alpha)
        return [
            ["n", state.n],
            ["alpha", float(fig.alpha)],
            ["in BAE", is_bilateral_add_equilibrium(state)],
            ["in BGE", is_bilateral_greedy_equilibrium(state)],
            ["single-swap gain for c1 (paper: 104)", single_gain],
            ["double-swap gain for c1 (paper: 105)",
             state.dist_cost(c1) - after.dist_cost(c1)],
            ["double swap improves a and both c's",
             all_strictly_improve(state, after.graph, move.beneficiaries())],
        ]

    rows = once(benchmark, run)
    emit(
        "fig5_bne_gap",
        render_table(["quantity", "value"], rows,
                     title="Figure 5 / Prop A.4 -- BAE and BGE but not BNE"),
    )
    outcome = dict((k, v) for k, v in rows)
    assert outcome["in BAE"] and outcome["in BGE"]
    assert outcome["single-swap gain for c1 (paper: 104)"] == 104
    assert outcome["double-swap gain for c1 (paper: 105)"] == 105
    assert outcome["double swap improves a and both c's"]


def test_fig6(benchmark):
    def run():
        fig = figure6_bne_not_2bse()
        state = GameState(fig.graph, fig.alpha)
        move = find_improving_coalition_move(state, 2)
        return fig, state, move

    fig, state, move = once(benchmark, run)
    rows = [
        ["dist(a1) (paper: 19)", state.dist_cost(fig.node("a1"))],
        ["dist(b1) (paper: 27)", state.dist_cost(fig.node("b1"))],
        ["dist(c1) (paper: 19)", state.dist_cost(fig.node("c1"))],
        ["in BNE (exact)", is_neighborhood_equilibrium(state)],
        ["2-BSE break coalition", str(sorted(move.coalition))],
    ]
    emit(
        "fig6_bne_not_2bse",
        render_table(["quantity", "value"], rows,
                     title="Figure 6 / Prop A.5 -- BNE but not 2-BSE"),
    )
    assert state.dist_cost(fig.node("a1")) == 19
    assert state.dist_cost(fig.node("b1")) == 27
    assert is_neighborhood_equilibrium(state)
    assert move is not None
    assert set(move.coalition) == {fig.node("a1"), fig.node("a3")}


def test_fig7(benchmark):
    def run():
        i = 8
        fig = figure7_kbse_not_bne(i=i)
        state = GameState(fig.graph, fig.alpha)
        move = NeighborhoodMove(
            center=fig.node("a"),
            removed=tuple(fig.node(f"b{j}") for j in range(1, i + 1)),
            added=tuple(fig.node(f"c{j}") for j in range(1, i + 1)),
        )
        after = move.apply(state.graph)
        bne_break = all_strictly_improve(state, after, move.beneficiaries())
        two_bse = is_k_strong_equilibrium(
            state, 2, max_evaluations=50_000_000
        )
        return [
            ["i (legs)", i],
            ["alpha = 4i - 4", float(fig.alpha)],
            ["n = 3i + 1", state.n],
            ["center's neighborhood move improves all", bne_break],
            ["2-BSE stable (exact)", two_bse],
        ]

    rows = once(benchmark, run)
    emit(
        "fig7_kbse_not_bne",
        render_table(["quantity", "value"], rows,
                     title="Figure 7 / Prop A.7 -- k-BSE but not BNE "
                     "(scaled-down instance, i = 8)"),
    )
    outcome = dict((k, v) for k, v in rows)
    assert outcome["center's neighborhood move improves all"]
    assert outcome["2-BSE stable (exact)"]


def test_fig8(benchmark):
    def run():
        fig = figure8_bae_not_unilateral_ae()
        state = GameState(fig.graph, fig.alpha)
        return [
            ["n", state.n],
            ["alpha", float(fig.alpha)],
            ["in BAE", is_bilateral_add_equilibrium(state)],
            ["in unilateral AE", is_unilateral_add_equilibrium(state)],
            ["a1's solo gain from a1-d",
             state.dist.add_gain(fig.node("a1"), fig.node("d"))],
            ["d's gain from a1-d (paper: 2)",
             state.dist.add_gain(fig.node("d"), fig.node("a1"))],
        ]

    rows = once(benchmark, run)
    emit(
        "fig8_bae_not_ae",
        render_table(["quantity", "value"], rows,
                     title="Figure 8 / Prop 2.1 -- BAE but not unilateral "
                     "AE"),
    )
    outcome = dict((k, v) for k, v in rows)
    assert outcome["in BAE"]
    assert not outcome["in unilateral AE"]
    assert outcome["a1's solo gain from a1-d"] > 4.5
    assert outcome["d's gain from a1-d (paper: 2)"] == 2
