"""Table 1, row BSwE (trees): PoA = Theta(log alpha).

* **upper bound** (Theorem 3.6, exact inequality): every BSwE tree
  satisfies ``rho <= 2 + 2 log2 alpha`` — verified over the exhaustive
  enumeration of all trees at n = 9 for a grid of alphas, plus the large
  certified constructions;
* **structure lemmas** (3.3, 3.4, 3.5) behind the bound hold on every
  enumerated BSwE tree.
"""

from fractions import Fraction

from repro.analysis.bounds import bswe_tree_upper_bound
from repro.analysis.poa import empirical_tree_poa
from repro.analysis.tables import render_table
from repro.constructions.stretched import bge_lower_bound_star
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.swap import is_bilateral_swap_equilibrium
from repro.graphs.generation import all_trees
from repro.verification.lemmas import (
    check_lemma_3_3,
    check_lemma_3_4,
    check_lemma_3_5,
    check_theorem_3_6,
)

from _harness import emit, once

ALPHAS = (1, 2, 4, 8, 16, 32, 64)


def exhaustive_upper_bound():
    rows = []
    for alpha in ALPHAS:
        result = empirical_tree_poa(9, alpha, Concept.BSWE)
        bound = bswe_tree_upper_bound(alpha)
        rows.append(
            [alpha, float(result.poa), bound, result.equilibria]
        )
    return rows


def test_bswe_upper_bound_exhaustive(benchmark):
    rows = once(benchmark, exhaustive_upper_bound)
    emit(
        "table1_bswe_upper",
        render_table(
            ["alpha", "PoA(BSwE) over all trees n=9", "2 + 2 log2 a",
             "#equilibria"],
            rows,
            title="Table 1 / BSwE on trees -- Theorem 3.6 upper bound",
        ),
    )
    for alpha, poa, bound, count in rows:
        assert poa <= bound + 1e-9, (alpha, poa, bound)
        assert count >= 1  # the star is always there


def structure_lemmas():
    """Lemmas 3.3-3.5 on every BSwE tree (n = 9, alpha grid) and on a large
    certified construction."""
    failures = []
    checked = 0
    for alpha in (2, Fraction(9, 2), 12, 40):
        for tree in all_trees(9):
            state = GameState(tree, alpha)
            if not is_bilateral_swap_equilibrium(state):
                continue
            checked += 1
            for check in (check_lemma_3_3, check_lemma_3_4, check_lemma_3_5,
                          check_theorem_3_6):
                outcome = check(state)
                if not outcome.holds:
                    failures.append((alpha, sorted(tree.edges), outcome.name))
    # one large certified instance
    star = bge_lower_bound_star(900, eta=900)
    state = GameState(star.graph, 900)
    assert is_bilateral_swap_equilibrium(state)
    large = [
        (check(state).name, check(state).holds, check(state).details)
        for check in (check_lemma_3_3, check_lemma_3_4, check_lemma_3_5,
                      check_theorem_3_6)
    ]
    return checked, failures, large


def test_bswe_structure_lemmas(benchmark):
    checked, failures, large = once(benchmark, structure_lemmas)
    emit(
        "table1_bswe_lemmas",
        render_table(
            ["lemma", "holds", "details"],
            large,
            title=f"Table 1 / BSwE structure lemmas -- {checked} enumerated "
            "BSwE trees (n=9) all pass; large certified star:",
        ),
    )
    assert not failures, failures[:3]
    assert all(holds for _, holds, _ in large)
    assert checked >= 100
