"""Perf: incremental distance engine vs full APSP recomputation.

Replays one random add/remove/swap trajectory per graph family and times
(a) the incremental engine — one APSP build, then in-place ``apply_*``
updates per move — against (b) the old regime of a fresh
:func:`~repro.graphs.distances.apsp_matrix` after every move (what every
dynamics round used to pay).  Results are asserted bit-identical, rendered
as a table, and written to ``benchmarks/results/BENCH_distance_engine.json``
so CI can track the perf trajectory.

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import json
import os
import random
import time

import networkx as nx

from repro.analysis.tables import render_table
from repro.graphs.distances import DistanceMatrix, apsp_matrix
from repro.graphs.generation import random_connected_gnp, random_tree

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
UNREACHABLE = 10**7


def _families():
    n = 36 if QUICK else 90
    moves = 30 if QUICK else 60
    side = 6 if QUICK else 9
    lattice = nx.convert_node_labels_to_integers(
        nx.grid_2d_graph(side, side + 1)
    )
    return [
        ("gnp", random_connected_gnp(n, 0.08, random.Random(11)), moves),
        ("tree", random_tree(n, random.Random(13)), moves),
        ("lattice", lattice, moves),
    ]


def _move_sequence(graph: nx.Graph, count: int, rng: random.Random):
    """A reproducible list of ("add"|"remove", u, v) ops, applied eagerly."""
    ops = []
    work = graph.copy()
    n = work.number_of_nodes()
    while len(ops) < count:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if work.has_edge(u, v):
            if work.degree(u) <= 1 or work.degree(v) <= 1:
                continue  # keep the trajectory from stranding singletons
            work.remove_edge(u, v)
            ops.append(("remove", u, v))
        else:
            work.add_edge(u, v)
            ops.append(("add", u, v))
    return ops


def _run_incremental(graph, ops):
    working = graph.copy()
    start = time.perf_counter()
    # the engine's one full build is part of the regime being timed
    dm = DistanceMatrix(working, UNREACHABLE)
    for op, u, v in ops:
        if op == "add":
            dm.apply_add(u, v)
        else:
            dm.apply_remove(u, v)
    return time.perf_counter() - start, dm.matrix


def _run_full(graph, ops):
    working = graph.copy()
    start = time.perf_counter()
    matrix = None
    for op, u, v in ops:
        if op == "add":
            working.add_edge(u, v)
        else:
            working.remove_edge(u, v)
        matrix = apsp_matrix(working, UNREACHABLE)
    return time.perf_counter() - start, matrix


def study():
    rows = []
    payload = {}
    for name, graph, moves in _families():
        ops = _move_sequence(graph, moves, random.Random(17))
        incremental_s, incremental_matrix = _run_incremental(graph, ops)
        full_s, full_matrix = _run_full(graph, ops)
        assert (incremental_matrix == full_matrix).all(), name
        speedup = full_s / incremental_s if incremental_s > 0 else float("inf")
        rows.append(
            [
                name,
                graph.number_of_nodes(),
                graph.number_of_edges(),
                moves,
                f"{incremental_s * 1e3:.1f}",
                f"{full_s * 1e3:.1f}",
                f"{speedup:.1f}x",
            ]
        )
        payload[name] = {
            "n": graph.number_of_nodes(),
            "m": graph.number_of_edges(),
            "moves": moves,
            "incremental_seconds": incremental_s,
            "full_rebuild_seconds": full_s,
            "speedup": speedup,
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_distance_engine", {"quick": QUICK, "families": payload})
    return rows, payload


def test_distance_engine(benchmark):
    rows, payload = once(benchmark, study)
    emit(
        "distance_engine",
        render_table(
            ["family", "n", "m", "moves", "incremental ms",
             "full rebuild ms", "speedup"],
            rows,
            title="Incremental distance engine vs per-move APSP rebuild",
        ),
    )
    for name, stats in payload.items():
        # the engine must beat rebuilding APSP from scratch on every move
        assert stats["speedup"] > 1, (name, stats)
