"""Measure the ``_SMALL_N`` dispatch threshold on the current hardware.

``repro.graphs.distances`` repairs removals with pure-Python BFS below
``_SMALL_N`` nodes and batched C-level scipy calls above it — a pure
constant-factor dispatch (both arms are bit-exact, guarded by
``tests/test_cross_validation.py::TestDispatchArmsAgree``).  The
crossover moves with the interpreter / scipy build, so this script
re-measures it: for a grid of sizes it times the non-bridge
``rows_after_remove`` probe pair and the full ``apply_remove`` +
``undo`` cycle with each arm forced, and reports the measured ratio and
the recommended threshold (the largest measured ``n`` where the Python
arm still wins the probe pair).

Not a pass/fail benchmark — it writes
``results/BENCH_small_n_dispatch.json`` as a hardware record (a copy of
the measurement that set the committed ``_SMALL_N`` lives in
``baselines/``), prints the table, and asserts only sanity (both arms
ran, ratios positive).  Run it when CI hardware changes::

    PYTHONPATH=../src python -m pytest bench_small_n_dispatch.py -q
"""

import json
import os
import random
import statistics
import time

from repro.analysis.tables import render_table
from repro.graphs import distances as distances_mod
from repro.graphs.distances import DistanceMatrix
from repro.graphs.generation import random_connected_gnp

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
UNREACHABLE = 10**7

SIZES = (24, 48, 72, 96, 120, 160) if QUICK else (24, 48, 72, 96, 120, 160, 224, 288)
REPEATS = 3 if QUICK else 5


def _non_bridge_edges(dm, graph, limit=12):
    edges = [edge for edge in graph.edges if not dm.is_bridge(*edge)]
    return edges[:limit]


def _time_arm(n, forced_small_n):
    """Median seconds for probe queries and apply/undo cycles, one arm."""
    saved = distances_mod._SMALL_N
    distances_mod._SMALL_N = forced_small_n
    try:
        graph = random_connected_gnp(n, min(0.95, 4.0 / n), random.Random(n))
        dm = DistanceMatrix(graph, UNREACHABLE)
        edges = _non_bridge_edges(dm, graph)
        probe_times = []
        cycle_times = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            for u, v in edges:
                dm.rows_after_remove(u, v)
            probe_times.append((time.perf_counter() - start) / len(edges))
            start = time.perf_counter()
            for u, v in edges:
                dm.undo(dm.apply_remove(u, v))
            cycle_times.append((time.perf_counter() - start) / len(edges))
        return statistics.median(probe_times), statistics.median(cycle_times)
    finally:
        distances_mod._SMALL_N = saved


def study():
    rows = []
    payload = {"sizes": {}}
    recommended = SIZES[0]
    for n in SIZES:
        python_probe, python_cycle = _time_arm(n, 10**9)
        scipy_probe, scipy_cycle = _time_arm(n, 0)
        probe_ratio = scipy_probe / python_probe
        cycle_ratio = scipy_cycle / python_cycle
        if probe_ratio > 1:  # python arm still faster at this size
            recommended = n
        rows.append(
            [
                n,
                f"{python_probe * 1e6:.0f}",
                f"{scipy_probe * 1e6:.0f}",
                f"{probe_ratio:.2f}",
                f"{cycle_ratio:.2f}",
            ]
        )
        payload["sizes"][str(n)] = {
            "python_probe_us": python_probe * 1e6,
            "scipy_probe_us": scipy_probe * 1e6,
            "probe_ratio_scipy_over_python": probe_ratio,
            "cycle_ratio_scipy_over_python": cycle_ratio,
        }
    payload["recommended_small_n"] = recommended
    payload["committed_small_n"] = distances_mod._SMALL_N
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_small_n_dispatch", {"quick": QUICK, **payload})
    return rows, payload


def test_small_n_dispatch(benchmark):
    rows, payload = once(benchmark, study)
    emit(
        "small_n_dispatch",
        render_table(
            ["n", "python probe us", "scipy probe us",
             "probe ratio (scipy/python)", "apply+undo ratio"],
            rows,
            title=(
                "_SMALL_N dispatch: pure-Python vs C-level removal repair "
                f"(recommended threshold: {payload['recommended_small_n']}, "
                f"committed: {payload['committed_small_n']})"
            ),
        ),
    )
    for stats in payload["sizes"].values():
        assert stats["python_probe_us"] > 0 and stats["scipy_probe_us"] > 0
