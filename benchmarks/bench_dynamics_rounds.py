"""Perf: batched move-pool kernels vs per-candidate speculation per round.

Replays best-response dynamics round by round: each round enumerates the
full improving-move pool once, then times three ways of picking the best
move —

(a) the PR 2 regime: one speculation per candidate
    (``SpeculativeEvaluator.evaluate`` — apply the move to the cached
    engine, measure, undo),
(b) the PR 3 regime: one rows-only query per candidate
    (``SpeculativeEvaluator._best_sequential`` — add identity, bridge
    split, probe BFS; no engine mutation, still one numpy dispatch pair
    per candidate), and
(c) the batched regime behind ``best_improvement_scheduler``: whole
    same-type runs of the pool priced by the ``repro.core.batch``
    kernels in one ``(k, n)`` matrix pass each
    (``SpeculativeEvaluator.best``), inner loops dispatched through
    ``repro._backend``.

All three paths are asserted to pick the same move with identical exact
cost deltas before it is applied and the next round begins, so the timed
trajectories are move-for-move the same.  The ``weighted`` family runs
the same sweep under a random demand matrix, exercising the weighted
kernel arms end-to-end.  Results land in
``benchmarks/results/BENCH_dynamics_rounds.json`` (tracked by
``check_regression.py``; ``speedup`` is per-candidate vs batched — the
PR 7 acceptance target is >= 10x on the quick sizes — and
``kernel_speedup`` isolates batching vs the rows-only sweep).

Set ``REPRO_BENCH_QUICK=1`` for the scaled-down CI sizes.
"""

import json
import os
import random
import time

import networkx as nx

from repro.analysis.tables import render_table
from repro.core.concepts import Concept
from repro.core.speculative import SpeculativeEvaluator
from repro.core.traffic import TrafficMatrix
from repro.dynamics.movegen import improving_moves
from repro.graphs.generation import random_connected_gnp, random_tree

from _harness import RESULTS_DIR, emit, once, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _lollipop(core: int, tail: int) -> nx.Graph:
    """A clique with a pendant path: cyclic, with real bridges."""
    graph = nx.complete_graph(core)
    for extra in range(core, core + tail):
        graph.add_edge(extra - 1, extra)
    return graph


def _families():
    n = 30 if QUICK else 56
    core = 12 if QUICK else 16
    rounds = 6 if QUICK else 8
    return [
        (
            "gnp_bge",
            random_connected_gnp(n, 0.1, random.Random(23)),
            3,
            Concept.BGE,
            rounds,
            None,
        ),
        (
            # kept deliberately smaller than the other families: the
            # clique core's swap pool grows ~ core^2 * n per round
            "lollipop_bge",
            _lollipop(core, core),
            2,
            Concept.BGE,
            rounds,
            None,
        ),
        (
            "tree_ps",
            random_tree(n, random.Random(29)),
            2,
            Concept.PS,
            rounds,
            None,
        ),
        (
            # the batched-pool scenario under heterogeneous demands: the
            # weighted add sweep and row-dot kernels price every run
            "gnp_bge_weighted",
            random_connected_gnp(n, 0.1, random.Random(23)),
            3,
            Concept.BGE,
            rounds,
            TrafficMatrix.random_demands(n, seed=23, high=5),
        ),
    ]


def _best_per_candidate(spec, pool):
    """The PR 2 path: one apply/undo speculation per candidate."""
    best = None
    for move in pool:
        evaluation = spec.evaluate(move)
        if best is None or evaluation.total_delta < best[1].total_delta:
            best = (move, evaluation)
    return best


def _replay(graph, alpha, concept, rounds, traffic):
    from repro.core.state import GameState

    state = GameState(graph, alpha, traffic=traffic)
    state.dist  # one APSP build up front, shared by the whole replay
    batched_s = 0.0
    rows_only_s = 0.0
    speculated_s = 0.0
    candidates = 0
    played = 0
    rng = random.Random(31)
    for _ in range(rounds):
        pool = list(improving_moves(state, concept, rng))
        if not pool:
            break
        candidates += len(pool)

        start = time.perf_counter()
        spec = SpeculativeEvaluator(state)
        chosen = spec.best(iter(pool))
        batched_s += time.perf_counter() - start

        start = time.perf_counter()
        spec = SpeculativeEvaluator(state)
        sequential = spec._best_sequential(iter(pool))
        rows_only_s += time.perf_counter() - start

        start = time.perf_counter()
        spec = SpeculativeEvaluator(state)
        reference = _best_per_candidate(spec, pool)
        speculated_s += time.perf_counter() - start

        assert chosen is not None and reference is not None
        assert chosen[0] == reference[0] == sequential[0], (
            "paths disagree on the best move"
        )
        assert (
            chosen[1].cost_deltas
            == reference[1].cost_deltas
            == sequential[1].cost_deltas
        )
        state = state.apply(chosen[0])
        played += 1
    return batched_s, rows_only_s, speculated_s, candidates, played


def study():
    rows = []
    payload = {}
    for name, graph, alpha, concept, rounds, traffic in _families():
        batched_s, rows_only_s, speculated_s, candidates, played = _replay(
            graph, alpha, concept, rounds, traffic
        )
        speedup = speculated_s / batched_s if batched_s > 0 else float("inf")
        kernel_speedup = (
            rows_only_s / batched_s if batched_s > 0 else float("inf")
        )
        rows.append(
            [
                name,
                graph.number_of_nodes(),
                played,
                candidates,
                f"{batched_s * 1e3:.1f}",
                f"{rows_only_s * 1e3:.1f}",
                f"{speculated_s * 1e3:.1f}",
                f"{speedup:.1f}x",
                f"{kernel_speedup:.1f}x",
            ]
        )
        payload[name] = {
            "n": graph.number_of_nodes(),
            "alpha": alpha,
            "concept": concept.name,
            "weighted": traffic is not None,
            "rounds_played": played,
            "candidates": candidates,
            "batched_seconds": batched_s,
            "rows_only_seconds": rows_only_s,
            "per_candidate_seconds": speculated_s,
            "speedup": speedup,
            "kernel_speedup": kernel_speedup,
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json("BENCH_dynamics_rounds", {"quick": QUICK, "rounds": payload})
    return rows, payload


def test_dynamics_rounds(benchmark):
    rows, payload = once(benchmark, study)
    emit(
        "dynamics_rounds",
        render_table(
            ["family", "n", "rounds", "candidates", "batched ms",
             "rows-only ms", "per-candidate ms", "speedup",
             "kernel speedup"],
            rows,
            title="Best-response rounds: batched pool kernels vs rows-only "
            "sweep vs per-candidate speculation",
        ),
    )
    for name, stats in payload.items():
        assert stats["rounds_played"] > 0, (name, "pool was empty from round 0")
        # hard sanity floor; the >= 10x acceptance target lives in the
        # committed baseline and is enforced by check_regression.py
        assert stats["speedup"] >= 5, (name, stats)
        assert stats["kernel_speedup"] >= 1, (name, stats)
