"""Figure 2 / Proposition 2.3: the Corbo–Parkes conjecture is false.

The frozen witness — a unilateral Pure Nash Equilibrium whose graph is not
pairwise stable — is re-verified by the exact exhaustive NE checker, and
the search that discovered it is re-run from scratch over all connected
five-node graphs.
"""

from repro.analysis.search import search_nash_not_pairwise_stable
from repro.analysis.tables import render_table
from repro.constructions.figures import figure2_nash_not_pairwise_stable
from repro.core.state import GameState
from repro.equilibria.nash import is_nash_equilibrium
from repro.equilibria.pairwise import is_pairwise_stable
from repro.equilibria.remove import removal_loss

from _harness import emit, once


def verify_frozen_witness():
    fig = figure2_nash_not_pairwise_stable()
    state = GameState(fig.graph, fig.alpha)
    a, b = fig.node("a"), fig.node("b")
    return {
        "n": state.n,
        "alpha": float(fig.alpha),
        "unilateral NE (exhaustive best responses)": is_nash_equilibrium(
            state, fig.assignment
        ),
        "pairwise stable": is_pairwise_stable(state),
        "non-owner's removal loss": removal_loss(state, a, b),
    }


def test_fig2_frozen_witness(benchmark):
    outcome = once(benchmark, verify_frozen_witness)
    emit(
        "fig2_conjecture",
        render_table(
            ["quantity", "value"],
            [[k, v] for k, v in outcome.items()],
            title="Figure 2 / Prop 2.3 -- NE that is not pairwise stable "
            "(conjecture refuted)",
        ),
    )
    assert outcome["unilateral NE (exhaustive best responses)"]
    assert not outcome["pairwise stable"]
    assert outcome["non-owner's removal loss"] < outcome["alpha"]


def test_fig2_search_rediscovers(benchmark):
    witnesses = once(
        benchmark,
        lambda: search_nash_not_pairwise_stable(sizes=(5,), max_results=1),
    )
    emit(
        "fig2_search",
        f"exhaustive search over all connected 5-node graphs re-found "
        f"{len(witnesses)} witness(es); first: "
        f"edges={sorted(witnesses[0].graph.edges)}, "
        f"alpha={witnesses[0].alpha}"
        if witnesses
        else "no witness found",
    )
    assert witnesses
    first = witnesses[0]
    state = GameState(first.graph, first.alpha)
    assert is_nash_equilibrium(state, first.assignment)
    assert not is_pairwise_stable(state)
