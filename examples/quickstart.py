"""Quickstart: build a game, inspect costs, check stability, find a move.

Run:  python examples/quickstart.py
"""

import networkx as nx

from repro import (
    Concept,
    GameState,
    check,
    find_improving_bilateral_add,
    find_improving_swap,
    validate_certificate,
)


def main() -> None:
    # Six agents on a path, edge price 2.  Each agent pays alpha per
    # incident edge plus her total hop distance to everyone else.
    state = GameState(nx.path_graph(6), alpha=2)

    print("agents:", state.n, "| edge price alpha =", state.alpha)
    for agent in range(state.n):
        print(
            f"  agent {agent}: buys {state.degree(agent)} edges, "
            f"distance cost {state.dist_cost(agent)}, "
            f"total cost {state.cost(agent)}"
        )
    print("social cost:", state.social_cost())
    print("social cost ratio rho:", float(state.rho()))

    # The path is not pairwise stable at alpha = 2: the two ends would
    # both profit from a shortcut.
    print("\npairwise stable?", check(state, Concept.PS))
    move = find_improving_bilateral_add(state)
    print("improving mutual addition:", move)
    print("certified improving:", validate_certificate(state, move))

    # Apply it and look again.
    state = state.apply(move)
    print("\nafter the move: social cost", state.social_cost(),
          "rho", float(state.rho()))
    print("pairwise stable now?", check(state, Concept.PS))

    # Stronger cooperation: is anyone willing to swap an edge?
    swap = find_improving_swap(state)
    print("improving swap:", swap)

    # The star is the social optimum for alpha >= 1 and is stable under
    # every solution concept of the paper (footnote 6).
    optimum = GameState(nx.star_graph(5), alpha=2)
    print("\nstar: rho =", float(optimum.rho()))
    for concept in (Concept.RE, Concept.BAE, Concept.PS, Concept.BSWE,
                    Concept.BGE, Concept.BNE, Concept.BSE):
        print(f"  star in {concept.value}: {check(optimum, concept)}")


if __name__ == "__main__":
    main()
