"""Hunting the Corbo–Parkes conjecture with dynamics-sampled equilibria.

Proposition 2.3 refutes the 2005 conjecture that every unilateral Pure
Nash Equilibrium is pairwise stable in the bilateral game.  This example
makes the refutation tangible: it *samples* genuine Nash equilibria by
running exact best-response dynamics of the unilateral game from random
starts, then asks the bilateral checkers whether each sampled NE survives
as a pairwise-stable network.  Counterexamples — equilibria with an edge
the non-paying endpoint would bilaterally cancel — are reported with their
certificates, alongside the frozen minimal witness.

Run:  python examples/conjecture_hunt.py [n] [alpha] [samples]
"""

import random
import sys

from repro.analysis.tables import render_table
from repro.constructions.figures import figure2_nash_not_pairwise_stable
from repro.core.state import GameState
from repro.equilibria.nash import is_nash_equilibrium
from repro.equilibria.nash_dynamics import unilateral_best_response_dynamics
from repro.equilibria.pairwise import find_pairwise_violation
from repro.equilibria.remove import removal_loss


def main(n: int = 6, alpha: int = 2, samples: int = 12) -> None:
    rows = []
    refutations = 0
    for seed in range(samples):
        outcome = unilateral_best_response_dynamics(
            n, alpha, random.Random(seed)
        )
        if not outcome.converged:
            rows.append([seed, "did not converge", "-", "-"])
            continue
        state = outcome.state(alpha)
        assert is_nash_equilibrium(state, outcome.assignment)
        violation = find_pairwise_violation(state)
        if violation is None:
            rows.append([seed, "NE, pairwise stable", "-", "-"])
        else:
            refutations += 1
            rows.append(
                [seed, "NE but NOT pairwise stable", type(violation).__name__,
                 str(violation)]
            )
    print(
        render_table(
            ["seed", "verdict", "break type", "certificate"],
            rows,
            title=f"Sampled unilateral NE (n={n}, alpha={alpha}) vs "
            "bilateral pairwise stability",
        )
    )
    print(
        f"\n{refutations}/{samples} sampled equilibria refute the "
        "conjecture on their own."
    )
    if refutations == 0:
        print(
            "(best-response dynamics gravitate to star-like equilibria "
            "that are also pairwise stable — the counterexamples exist "
            "but are dynamically hard to reach, which is why Prop 2.3 "
            "needed a constructed witness:)"
        )

    fig = figure2_nash_not_pairwise_stable()
    state = GameState(fig.graph, fig.alpha)
    a, b = fig.node("a"), fig.node("b")
    print(
        "\nFrozen minimal witness (Proposition 2.3): n = 5, alpha = 2; "
        f"agent a's loss from dropping edge ab is "
        f"{removal_loss(state, a, b)} < alpha = {fig.alpha} — the edge "
        "survives unilaterally (b pays) but dies bilaterally."
    )


if __name__ == "__main__":
    args = [int(value) for value in sys.argv[1:4]]
    main(*args)
