"""Hunting the Corbo–Parkes conjecture: sampled dynamics, then all of it.

Proposition 2.3 refutes the 2005 conjecture that every unilateral Pure
Nash Equilibrium is pairwise stable in the bilateral game.  This example
attacks the conjecture twice.  First it *samples* genuine Nash equilibria
by running exact best-response dynamics of the unilateral game from
random starts and asks the bilateral checkers whether each sampled NE
survives — which usually finds nothing, because dynamics gravitate to
star-like equilibria that happen to be pairwise stable too.  Then it
stops sampling and checks **everything**: a campaign-backed exhaustive
sweep over every connected graph (canonical-key enumeration, one
representative per isomorphism class) and every NE edge assignment on
it, reporting each refuted cell with a replayable certificate.  The
frozen Proposition 2.3 witness closes the loop.

The sweep is output-identical to the committed
``campaigns/conjecture_hunt.json`` run through
``python -m repro.campaigns run`` — which also gives you
multiprocessing workers and kill-and-resume for free.

Run:  python examples/conjecture_hunt.py [n] [alpha] [samples]
"""

import random
import sys
from fractions import Fraction

from repro.analysis.tables import render_table
from repro.campaigns import (
    CampaignSpec,
    CampaignStore,
    render_report,
    run_campaign,
)
from repro.constructions.figures import figure2_nash_not_pairwise_stable
from repro.core.state import GameState
from repro.equilibria.nash import is_nash_equilibrium
from repro.equilibria.nash_dynamics import unilateral_best_response_dynamics
from repro.equilibria.pairwise import find_pairwise_violation
from repro.equilibria.remove import removal_loss

DEFAULT_CELLS = (
    (4, 2),
    (4, Fraction(5, 2)),
    (4, 3),
    (5, 2),
    (5, Fraction(5, 2)),
    (5, 3),
    (6, 2),
)


def hunt_spec(cells=DEFAULT_CELLS) -> CampaignSpec:
    """The exhaustive conjecture sweep as a declarative campaign.

    ``cells`` is a sequence of ``(n, alpha)`` pairs; the default set is
    the committed ``campaigns/conjecture_hunt.json``.
    """
    return CampaignSpec(
        name="conjecture-hunt",
        kind="conjecture_hunt",
        grids=tuple({"n": n, "alpha": alpha} for n, alpha in cells),
        report={
            "reducer": "conjecture_table",
            "options": {
                "title": (
                    "Corbo-Parkes conjecture, exhaustively: all NE vs "
                    "pairwise stability"
                ),
            },
            "footer": (
                "Paper, Proposition 2.3: unilateral NE does not imply "
                "pairwise stability; every refuted cell certifies it "
                "with a concrete (graph, assignment, break move) triple."
            ),
        },
    )


def main(n: int = 6, alpha: int = 2, samples: int = 12) -> None:
    rows = []
    refutations = 0
    for seed in range(samples):
        outcome = unilateral_best_response_dynamics(
            n, alpha, random.Random(seed)
        )
        if not outcome.converged:
            rows.append([seed, "did not converge", "-", "-"])
            continue
        state = outcome.state(alpha)
        if not is_nash_equilibrium(state, outcome.assignment):
            # Converged best-response dynamics must terminate in an NE;
            # anything else is an engine bug, and silently tabulating it
            # as a verdict (or stripping the check under ``python -O``,
            # as the old ``assert`` did) would corrupt the hunt.
            raise RuntimeError(
                f"best-response dynamics from seed {seed} claimed "
                "convergence to a non-equilibrium state "
                f"(n={n}, alpha={alpha})"
            )
        violation = find_pairwise_violation(state)
        if violation is None:
            rows.append([seed, "NE, pairwise stable", "-", "-"])
        else:
            refutations += 1
            rows.append(
                [seed, "NE but NOT pairwise stable", type(violation).__name__,
                 str(violation)]
            )
    print(
        render_table(
            ["seed", "verdict", "break type", "certificate"],
            rows,
            title=f"Sampled unilateral NE (n={n}, alpha={alpha}) vs "
            "bilateral pairwise stability",
        )
    )
    print(
        f"\n{refutations}/{samples} sampled equilibria refute the "
        "conjecture on their own."
    )
    if refutations == 0:
        print(
            "(best-response dynamics gravitate to star-like equilibria "
            "that are also pairwise stable — the counterexamples exist "
            "but are dynamically hard to reach, which is why Prop 2.3 "
            "needed a constructed witness — so stop sampling and check "
            "everything:)"
        )

    spec = hunt_spec(tuple((size, alpha) for size in range(4, n + 1)))
    store = CampaignStore(None)  # ephemeral in-memory store
    stats = run_campaign(spec, store)
    if stats.failed:
        raise RuntimeError(f"{stats.failed} sweep trials failed")
    print()
    print(render_report(spec, store))

    fig = figure2_nash_not_pairwise_stable()
    state = GameState(fig.graph, fig.alpha)
    a, b = fig.node("a"), fig.node("b")
    print(
        "\nFrozen minimal witness (Proposition 2.3): n = 5, alpha = 2; "
        f"agent a's loss from dropping edge ab is "
        f"{removal_loss(state, a, b)} < alpha = {fig.alpha} — the edge "
        "survives unilaterally (b pays) but dies bilaterally."
    )


if __name__ == "__main__":
    args = [int(value) for value in sys.argv[1:4]]
    main(*args)
