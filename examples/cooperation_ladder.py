"""The paper's headline, in one table: more cooperation, better anarchy.

For a fixed number of agents and a grid of edge prices, compute the *exact*
worst-case Price of Anarchy over all tree equilibria for each rung of the
cooperation ladder (PS -> BSwE -> BGE -> 3-BSE), by exhaustive enumeration
of all non-isomorphic trees.  The table mirrors Table 1 of the paper at
laptop scale: PS is the worst, swaps help, and 3-coalitions pin the PoA to
a constant.

Run:  python examples/cooperation_ladder.py [n]
"""

import sys

from repro.analysis.poa import empirical_tree_poa
from repro.analysis.tables import render_table
from repro.core.concepts import Concept


def main(n: int = 9) -> None:
    alphas = (2, 4, 8, 16, 32, 64)
    rows = []
    for alpha in alphas:
        ps = empirical_tree_poa(n, alpha, Concept.PS)
        bswe = empirical_tree_poa(n, alpha, Concept.BSWE)
        bge = empirical_tree_poa(n, alpha, Concept.BGE)
        three = empirical_tree_poa(n, alpha, Concept.BGE, k=3)
        rows.append(
            [
                alpha,
                float(ps.poa) if ps.poa else "-",
                float(bswe.poa) if bswe.poa else "-",
                float(bge.poa) if bge.poa else "-",
                float(three.poa) if three.poa else "-",
            ]
        )
    print(
        render_table(
            ["alpha", "PoA(PS)", "PoA(BSwE)", "PoA(BGE)", "PoA(3-BSE)"],
            rows,
            title=f"Exact tree PoA by cooperation level (all trees, n={n})",
        )
    )
    print(
        "\nPaper, Table 1: PS = Theta(min(sqrt a, n/sqrt a)); "
        "BSwE, BGE = Theta(log a); 3-BSE = Theta(1)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
