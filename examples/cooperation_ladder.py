"""The paper's headline, in one table: more cooperation, better anarchy.

For a fixed number of agents and a grid of edge prices, compute the *exact*
worst-case Price of Anarchy over all tree equilibria for each rung of the
cooperation ladder (PS -> BSwE -> BGE -> 3-BSE), by exhaustive enumeration
of all non-isomorphic trees.  The table mirrors Table 1 of the paper at
laptop scale: PS is the worst, swaps help, and 3-coalitions pin the PoA to
a constant.

The sweep itself is a campaign (:mod:`repro.campaigns`): this script
builds the spec in code and runs it against an in-memory store, and is
output-identical to the committed ``campaigns/cooperation_ladder.json``
run through ``python -m repro.campaigns run`` — which also gives you
multiprocessing workers and kill-and-resume for free.

Run:  python examples/cooperation_ladder.py [n]
"""

import sys

from repro.campaigns import (
    CampaignSpec,
    CampaignStore,
    render_report,
    run_campaign,
)


def ladder_spec(n: int = 9, alphas=(2, 4, 8, 16, 32, 64)) -> CampaignSpec:
    """The cooperation-ladder sweep as a declarative campaign."""
    ladder = [
        ("PoA(PS)", "PS", None),
        ("PoA(BSwE)", "BSWE", None),
        ("PoA(BGE)", "BGE", None),
        ("PoA(3-BSE)", "BGE", 3),
    ]
    return CampaignSpec(
        name="cooperation-ladder",
        kind="tree_poa",
        grids=tuple(
            {"n": n, "alpha": list(alphas), "concept": concept}
            | ({} if k is None else {"k": k})
            for _, concept, k in ladder
        ),
        report={
            "reducer": "poa_table",
            "options": {
                "n": n,
                "alphas": list(alphas),
                "title": (
                    "Exact tree PoA by cooperation level (all trees, n={n})"
                ),
                "columns": [
                    {"header": header, "concept": concept}
                    | ({} if k is None else {"k": k})
                    for header, concept, k in ladder
                ],
            },
            "footer": (
                "Paper, Table 1: PS = Theta(min(sqrt a, n/sqrt a)); "
                "BSwE, BGE = Theta(log a); 3-BSE = Theta(1)."
            ),
        },
    )


def main(n: int = 9) -> None:
    spec = ladder_spec(n)
    store = CampaignStore(None)  # ephemeral in-memory store
    stats = run_campaign(spec, store)
    assert stats.failed == 0, "a ladder trial failed"
    print(render_report(spec, store))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
