"""A gallery of the paper's worst-case constructions, live.

Builds each lower-bound family, certifies its equilibrium membership with
the exact checkers, reports the measured social cost ratio against the
paper's bound, and finishes with the full lemma verification report.

Run:  python examples/worst_case_gallery.py
"""

from repro.analysis.bounds import (
    bge_tree_lower_bound,
    bswe_tree_upper_bound,
)
from repro.analysis.tables import render_table
from repro.constructions.figures import (
    figure5_bae_bge_not_bne,
    figure6_bne_not_2bse,
)
from repro.constructions.spiders import ps_lower_bound_spider
from repro.constructions.stretched import bge_lower_bound_star
from repro.core.state import GameState
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.verification.report import run_all_checks


def main() -> None:
    rows = []

    spider = ps_lower_bound_spider(257, 256)
    state = GameState(spider, 256)
    rows.append(
        [
            "PS spider (alpha=256)",
            state.n,
            "PS" if is_pairwise_stable(state) else "NOT PS",
            f"{float(state.rho()):.2f}",
            "Theta(min(sqrt a, n/sqrt a)) = 16",
        ]
    )

    star = bge_lower_bound_star(600, eta=600)
    state = GameState(star.graph, 600)
    rows.append(
        [
            "BGE stretched star (alpha=600)",
            state.n,
            "BGE" if is_bilateral_greedy_equilibrium(state) else "NOT BGE",
            f"{float(state.rho()):.2f}",
            f"in [{float(bge_tree_lower_bound(600)):.2f}, "
            f"{bswe_tree_upper_bound(600):.2f}]",
        ]
    )

    fig5 = figure5_bae_bge_not_bne()
    state = GameState(fig5.graph, fig5.alpha)
    rows.append(
        [
            "Figure 5 (alpha=104.5)",
            state.n,
            "BGE but not BNE"
            if is_bilateral_greedy_equilibrium(state)
            else "unexpected",
            f"{float(state.rho()):.2f}",
            "separates BGE from BNE",
        ]
    )

    fig6 = figure6_bne_not_2bse()
    state = GameState(fig6.graph, fig6.alpha)
    rows.append(
        [
            "Figure 6 (alpha=7)",
            state.n,
            "BNE but not 2-BSE"
            if is_neighborhood_equilibrium(state)
            else "unexpected",
            f"{float(state.rho()):.2f}",
            "separates BNE from 2-BSE",
        ]
    )

    print(
        render_table(
            ["construction", "n", "certified status", "rho", "paper"],
            rows,
            title="Worst-case gallery",
        )
    )

    print("\nLemma verification report:")
    checks = run_all_checks()
    print(
        render_table(
            ["check", "holds", "details"],
            [[c.name, c.holds, c.details] for c in checks],
        )
    )
    failed = sum(1 for c in checks if not c.holds)
    print(f"\n{len(checks) - failed}/{len(checks)} checks hold")


if __name__ == "__main__":
    main()
