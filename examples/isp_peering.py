"""ISP peering as a Bilateral Network Creation Game — with real traffic.

The paper's motivating story: autonomous networks (ISPs) interconnect by
*mutual consent* — a peering link exists only if both sides provision it
(ports, cross-connect fees, NOC effort), and each network wants short
routes to everyone.  That is exactly the BNCG.

Real peering fabrics do not carry uniform traffic, though: a handful of
tier-1 transit networks exchange orders of magnitude more demand than
access networks do among themselves.  This example models that with a
**gravity demand matrix** (``W[u, v] = size_u * size_v``,
:class:`repro.core.traffic.TrafficMatrix`) and grows the fabric from the
same sparse legacy backbone under uniform and under weighted demand —
showing how traffic concentration reshapes the negotiated topology, and
the game-theoretic subtleties either way: improving dynamics can cycle
(there is no potential function), and a profitable consortium can make
its members better off while *worsening* the network as a whole.

Run:  python examples/isp_peering.py [n] [alpha] [seed]
"""

import random
import sys

from repro.analysis.tables import render_table
from repro.core.concepts import Concept
from repro.core.costs import agent_cost_after
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.dynamics.engine import run_dynamics
from repro.dynamics.schedulers import best_improvement_scheduler
from repro.equilibria.registry import check
from repro.equilibria.strong import probe_coalition_moves
from repro.graphs.generation import random_tree


def isp_demands(n: int) -> TrafficMatrix:
    """Gravity demands for a small internet: 2 tier-1 transit networks
    (size 6), a few regionals (size 3), access networks (size 1)."""
    sizes = [6, 6] + [3] * min(4, max(0, n - 2)) + [1] * max(0, n - 6)
    return TrafficMatrix.gravity(sizes[:n])


def negotiate(start, alpha, traffic, seed: int):
    """Best-improvement dynamics per cooperation regime; returns rows."""
    rows = []
    finals = {}
    for concept, label in (
        (Concept.PS, "bilateral handshakes (PS)"),
        (Concept.BGE, "handshakes + rewiring (BGE)"),
    ):
        result = run_dynamics(
            start, alpha, concept, scheduler=best_improvement_scheduler,
            max_rounds=2000, rng=random.Random(seed), traffic=traffic,
        )
        if result.cycled:
            outcome = "cycled"
        elif result.converged:
            outcome = "equilibrium"
        else:
            outcome = "cap hit"
        finals[label] = result.final
        rows.append(
            [
                label,
                result.rounds,
                outcome,
                float(result.final.social_cost()),
                result.final.graph.number_of_edges(),
                result.final.dist.diameter(),
                check(result.final, concept),
            ]
        )
    return rows, finals


def main(n: int = 24, alpha: int = 12, seed: int = 7) -> None:
    rng = random.Random(seed)
    start = random_tree(n, rng)  # a just-connected legacy topology
    traffic = isp_demands(n)
    uniform_initial = GameState(start, alpha)
    weighted_initial = GameState(start, alpha, traffic=traffic)
    print(
        f"{n} ISPs, link price alpha = {alpha}; initial random backbone: "
        f"social cost {uniform_initial.social_cost()} uniform, "
        f"{weighted_initial.social_cost()} under gravity demand\n"
    )

    headers = [
        "negotiation regime", "moves", "outcome", "social cost",
        "links", "diameter", "stable now",
    ]
    uniform_rows, _ = negotiate(start, alpha, None, seed)
    print(
        render_table(
            headers, uniform_rows,
            title="Peering dynamics, uniform demand "
            "(best-improvement scheduling)",
        )
    )
    weighted_rows, finals = negotiate(start, alpha, traffic, seed)
    print()
    print(
        render_table(
            headers, weighted_rows,
            title="Peering dynamics, gravity demand (tier-1 pairs "
            "carry 36x an access pair)",
        )
    )
    tier1_linked = finals[
        "handshakes + rewiring (BGE)"
    ].graph.has_edge(0, 1)
    print(
        "\nUnder gravity demand the two tier-1 networks "
        + (
            "negotiate a direct interconnect"
            if tier1_linked
            else "still route through intermediaries"
        )
        + "; uniform demand treats them like any other pair."
    )
    print(
        "Note: improving dynamics in the BNCG carry no potential "
        "function, so trajectories may cycle; the engine detects and "
        "reports that instead of looping forever."
    )

    # Would a small consortium renegotiate the outcome?  The probe takes
    # the integer seed directly, so the verdict is reproducible end-to-end.
    final = finals["handshakes + rewiring (BGE)"]
    coalition = probe_coalition_moves(
        final, seed, max_coalition_size=3, samples=4000
    )
    if coalition is None:
        print(
            "\nNo profitable consortium of up to 3 ISPs found by seeded "
            "probing — the rewired fabric resists small multilateral "
            "renegotiation."
        )
    else:
        after_graph = coalition.apply(final.graph)
        member_drops = {
            member: float(
                final.cost(member)
                - agent_cost_after(final, after_graph, member)
            )
            for member in coalition.coalition
        }
        improved = final.with_graph(after_graph)
        print(
            f"\nA consortium of {len(coalition.coalition)} ISP(s) "
            f"{coalition.coalition} still profits: per-member cost drops "
            f"{member_drops}."
        )
        direction = (
            "improves"
            if improved.social_cost() < final.social_cost()
            else "worsens"
        )
        print(
            f"Selfish renegotiation {direction} the whole fabric: "
            f"social cost {float(final.social_cost()):.0f} -> "
            f"{float(improved.social_cost()):.0f} — profitable "
            "coalitions need not serve the social optimum."
        )


if __name__ == "__main__":
    args = [int(value) for value in sys.argv[1:4]]
    main(*args)
