"""ISP peering as a Bilateral Network Creation Game.

The paper's motivating story: autonomous networks (ISPs) interconnect by
*mutual consent* — a peering link exists only if both sides provision it
(ports, cross-connect fees, NOC effort), and each network wants short
routes to everyone.  That is exactly the BNCG.

This example grows a peering fabric from a sparse random start under
increasing levels of cooperation and shows how the negotiated topology
changes — including the game-theoretic subtleties: improving dynamics can
cycle (there is no potential function), and a profitable consortium can
make its members better off while *worsening* the network as a whole.

Run:  python examples/isp_peering.py [n] [alpha] [seed]
"""

import random
import sys

from repro.analysis.tables import render_table
from repro.core.concepts import Concept
from repro.core.costs import agent_cost_after
from repro.core.state import GameState
from repro.dynamics.engine import run_dynamics
from repro.dynamics.schedulers import best_improvement_scheduler
from repro.equilibria.registry import check
from repro.equilibria.strong import probe_coalition_moves
from repro.graphs.generation import random_tree


def main(n: int = 24, alpha: int = 12, seed: int = 7) -> None:
    rng = random.Random(seed)
    start = random_tree(n, rng)  # a just-connected legacy topology
    initial = GameState(start, alpha)
    print(
        f"{n} ISPs, link price alpha = {alpha}; initial random backbone: "
        f"social cost {initial.social_cost()}, "
        f"rho = {float(initial.rho()):.3f}\n"
    )

    rows = []
    finals = {}
    for concept, label in (
        (Concept.PS, "bilateral handshakes (PS)"),
        (Concept.BGE, "handshakes + rewiring (BGE)"),
    ):
        result = run_dynamics(
            start, alpha, concept, scheduler=best_improvement_scheduler,
            max_rounds=2000, rng=random.Random(seed),
        )
        if result.cycled:
            outcome = "cycled"
        elif result.converged:
            outcome = "equilibrium"
        else:
            outcome = "cap hit"
        finals[label] = result.final
        rows.append(
            [
                label,
                result.rounds,
                outcome,
                float(result.final.social_cost()),
                float(result.final.rho()),
                result.final.graph.number_of_edges(),
                result.final.dist.diameter(),
                check(result.final, concept),
            ]
        )

    print(
        render_table(
            ["negotiation regime", "moves", "outcome", "social cost",
             "rho", "links", "diameter", "stable now"],
            rows,
            title="Peering dynamics under increasing cooperation "
            "(best-improvement scheduling)",
        )
    )
    print(
        "\nNote: improving dynamics in the BNCG carry no potential "
        "function, so trajectories may cycle; the engine detects and "
        "reports that instead of looping forever."
    )

    # Would a small consortium renegotiate the outcome?  The probe takes
    # the integer seed directly, so the verdict is reproducible end-to-end.
    final = finals["handshakes + rewiring (BGE)"]
    coalition = probe_coalition_moves(
        final, seed, max_coalition_size=3, samples=4000
    )
    if coalition is None:
        print(
            "\nNo profitable consortium of up to 3 ISPs found by seeded "
            "probing — the rewired fabric resists small multilateral "
            "renegotiation."
        )
    else:
        after_graph = coalition.apply(final.graph)
        member_drops = {
            member: float(
                final.cost(member)
                - agent_cost_after(final, after_graph, member)
            )
            for member in coalition.coalition
        }
        improved = final.with_graph(after_graph)
        print(
            f"\nA consortium of {len(coalition.coalition)} ISP(s) "
            f"{coalition.coalition} still profits: per-member cost drops "
            f"{member_drops}."
        )
        direction = "improves" if improved.rho() < final.rho() else "worsens"
        print(
            f"Selfish renegotiation {direction} the whole fabric: rho "
            f"{float(final.rho()):.3f} -> {float(improved.rho()):.3f} — "
            "profitable coalitions need not serve the social optimum."
        )


if __name__ == "__main__":
    args = [int(value) for value in sys.argv[1:4]]
    main(*args)
