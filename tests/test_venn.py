"""Figure 1b: the eight RE/BAE/BSwE regions are all witnessed."""

import pytest

from repro.analysis.search import classify_re_bae_bswe, search_venn_witnesses
from repro.constructions.venn import VENN_WITNESSES, venn_witness
from repro.core.state import GameState


class TestFrozenWitnesses:
    def test_eight_distinct_regions(self):
        regions = {w.region for w in VENN_WITNESSES}
        assert len(regions) == 8

    @pytest.mark.parametrize("witness", VENN_WITNESSES, ids=lambda w: w.name)
    def test_witness_classifies_correctly(self, witness):
        state = GameState(witness.graph, witness.alpha)
        assert classify_re_bae_bswe(state) == witness.region

    def test_lookup_by_region(self):
        witness = venn_witness(True, True, True)
        assert witness.region == (True, True, True)

    def test_lookup_missing_region_raises(self):
        # all 8 exist, so fabricate an impossible call pattern via removal
        with pytest.raises(KeyError):
            # no witness list manipulation: use a wrong type tuple that
            # cannot match (bools only in regions)
            venn_witness(True, True, None)  # type: ignore[arg-type]

    def test_pairwise_incomparability(self):
        """RE, BAE, BSwE pairwise incomparable: for each ordered pair of
        concepts there is a witness in one but not the other."""
        regions = {w.region for w in VENN_WITNESSES}
        for i, j in ((0, 1), (0, 2), (1, 2)):
            assert any(r[i] and not r[j] for r in regions)
            assert any(r[j] and not r[i] for r in regions)


class TestSearchReproducesWitnesses:
    @pytest.mark.slow
    def test_search_finds_seven_regions_quickly(self):
        found = search_venn_witnesses(sizes=(3, 4, 5))
        assert len(found) >= 7

    @pytest.mark.slow
    def test_searched_witnesses_verify(self):
        found = search_venn_witnesses(sizes=(3, 4, 5))
        for region, (graph, alpha) in found.items():
            assert classify_re_bae_bswe(GameState(graph, alpha)) == region
