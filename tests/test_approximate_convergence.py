"""Tests for beta-approximate stability and the convergence study."""

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.core.concepts import Concept
from repro.core.moves import AddEdge
from repro.core.state import GameState
from repro.dynamics.convergence import convergence_study
from repro.dynamics.movegen import improving_moves
from repro.equilibria.approximate import (
    is_approximate_equilibrium,
    move_improvement_factor,
    stability_factor,
)
from repro.equilibria.registry import check


class TestMoveImprovementFactor:
    def test_factor_above_one_for_improving_move(self):
        state = GameState(nx.path_graph(8), 1)
        move = AddEdge(0, 7)
        assert move_improvement_factor(state, move) > 1

    def test_factor_below_one_for_bad_move(self):
        state = GameState(nx.star_graph(5), 2)
        move = AddEdge(1, 2)  # leaf-to-leaf at alpha=2: loses money
        assert move_improvement_factor(state, move) < 1

    def test_exact_fraction_arithmetic(self):
        state = GameState(nx.path_graph(4), 1)
        move = AddEdge(0, 3)
        factor = move_improvement_factor(state, move)
        assert isinstance(factor, Fraction)
        # agent 0: cost 1 + 6 = 7 before; after: 2 + (1+1+2)... closing
        # P4 into C4: dist(0) = 1+2+1 = 4, cost = 2*1 + 4 = 6
        assert factor == Fraction(7, 6)


class TestApproximateEquilibrium:
    def test_beta_one_matches_exact(self):
        for alpha in (1, 2, 5):
            for graph in (nx.path_graph(6), nx.star_graph(5),
                          nx.cycle_graph(6)):
                state = GameState(graph, alpha)
                assert is_approximate_equilibrium(
                    state, Concept.PS, 1
                ) == check(state, Concept.PS)

    def test_monotone_in_beta(self):
        state = GameState(nx.path_graph(8), 1)
        factors = [
            is_approximate_equilibrium(state, Concept.PS, beta)
            for beta in (1, Fraction(3, 2), 2, 5, 100)
        ]
        # once approximately stable, larger beta stays stable
        first_true = factors.index(True) if True in factors else len(factors)
        assert all(factors[first_true:])

    def test_star_is_one_stable(self):
        state = GameState(nx.star_graph(7), 2)
        assert is_approximate_equilibrium(state, Concept.BGE, 1)

    def test_rejects_beta_below_one(self):
        state = GameState(nx.path_graph(3), 1)
        with pytest.raises(ValueError):
            is_approximate_equilibrium(state, Concept.PS, Fraction(1, 2))


class TestStabilityFactor:
    def test_equilibrium_has_factor_one(self):
        state = GameState(nx.star_graph(6), 2)
        assert stability_factor(state, Concept.PS) == 1

    def test_unstable_state_has_factor_above_one(self):
        state = GameState(nx.path_graph(9), 1)
        assert stability_factor(state, Concept.PS) > 1

    def test_factor_stabilises_the_state(self):
        state = GameState(nx.path_graph(9), 1)
        beta = stability_factor(state, Concept.PS)
        assert is_approximate_equilibrium(state, Concept.PS, beta)

    def test_matches_worst_generated_move(self):
        state = GameState(nx.path_graph(7), 1)
        worst = max(
            move_improvement_factor(state, move)
            for move in improving_moves(state, Concept.PS)
        )
        assert stability_factor(state, Concept.PS) == worst


class TestConvergenceStudy:
    def test_ps_study_on_small_trees(self):
        stats = convergence_study(Concept.PS, n=8, alpha=3, runs=6, seed=1)
        assert stats.runs == 6
        assert 0 <= stats.convergence_rate <= 1
        assert stats.mean_final_rho >= 1
        assert stats.worst_final_rho >= stats.mean_final_rho - 1e-12

    def test_started_at_equilibrium_counts_converged(self):
        stats = convergence_study(
            Concept.PS, n=6, alpha=2, runs=3, seed=2,
            start_factory=lambda rng: nx.star_graph(5),
        )
        assert stats.converged == 3
        assert stats.mean_rounds == 0
        assert stats.mean_start_instability == 1

    def test_deterministic_given_seed(self):
        a = convergence_study(Concept.BGE, n=7, alpha=2, runs=4, seed=9)
        b = convergence_study(Concept.BGE, n=7, alpha=2, runs=4, seed=9)
        assert a == b
