"""Hypothesis property tests for cross-module invariants.

These encode the paper's structural facts as universally quantified
properties over random instances — the strongest regression net the
reproduction has.
"""

import random
from fractions import Fraction

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.dynamics.movegen import improving_moves
from repro.equilibria.add import pairwise_add_gains
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.registry import check
from repro.equilibria.swap import swap_gains
from repro.graphs.generation import random_connected_gnp, random_tree

ALPHA_POOL = [Fraction(1, 2), 1, Fraction(3, 2), 2, Fraction(9, 2), 7, 20]


@st.composite
def tree_states(draw, max_n=14):
    n = draw(st.integers(min_value=3, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=9_999))
    alpha = draw(st.sampled_from(ALPHA_POOL))
    return GameState(random_tree(n, random.Random(seed)), alpha)


@st.composite
def graph_states(draw, max_n=10):
    n = draw(st.integers(min_value=3, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=9_999))
    p = draw(st.floats(min_value=0.0, max_value=0.4))
    alpha = draw(st.sampled_from(ALPHA_POOL))
    return GameState(
        random_connected_gnp(n, p, random.Random(seed)), alpha
    )


class TestCostInvariants:
    @given(graph_states())
    @settings(max_examples=50, deadline=None)
    def test_social_cost_decomposition(self, state):
        m = state.graph.number_of_edges()
        total_dist = sum(state.dist_cost(u) for u in range(state.n))
        assert state.social_cost() == 2 * state.alpha * m + total_dist

    @given(graph_states())
    @settings(max_examples=50, deadline=None)
    def test_rho_at_least_one(self, state):
        assert state.rho() >= 1

    @given(tree_states())
    @settings(max_examples=50, deadline=None)
    def test_star_never_beaten(self, state):
        """No tree beats the social optimum formula at alpha >= 1."""
        if state.alpha >= 1:
            assert state.social_cost() >= state.optimum_cost()


class TestGainIdentities:
    @given(graph_states(max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_add_gains_match_direct_recomputation(self, state):
        gains = pairwise_add_gains(state)
        pairs = [
            (u, v) for u in range(state.n) for v in range(state.n)
            if u < v and not state.graph.has_edge(u, v)
        ]
        for u, v in pairs[:4]:
            mutated = state.graph.copy()
            mutated.add_edge(u, v)
            after = GameState(mutated, state.alpha)
            assert gains[u, v] == state.dist_cost(u) - after.dist_cost(u)
            assert gains[v, u] == state.dist_cost(v) - after.dist_cost(v)

    @given(tree_states(max_n=12))
    @settings(max_examples=30, deadline=None)
    def test_swap_gains_consistent_with_full_rebuild(self, state):
        edges = list(state.graph.edges)
        if not edges:
            return
        u, v = edges[0]
        candidates = [
            w for w in range(state.n)
            if w not in (u, v) and not state.graph.has_edge(u, w)
        ]
        for w in candidates[:3]:
            gain_u, gain_w = swap_gains(state, u, v, w)
            mutated = state.graph.copy()
            mutated.remove_edge(u, v)
            mutated.add_edge(u, w)
            after = GameState(mutated, state.alpha)
            assert gain_u == state.dist_cost(u) - after.dist_cost(u)
            assert gain_w == state.dist_cost(w) - after.dist_cost(w)


class TestLadderInvariants:
    @given(graph_states(max_n=8))
    @settings(max_examples=40, deadline=None)
    def test_bge_implies_ps(self, state):
        if is_bilateral_greedy_equilibrium(state):
            assert is_pairwise_stable(state)

    @given(tree_states(max_n=10))
    @settings(max_examples=30, deadline=None)
    def test_trees_bge_iff_2bse(self, state):
        """Proposition 3.7 as a random property."""
        assert is_bilateral_greedy_equilibrium(state) == check(
            state, Concept.BGE, k=2
        )

    @given(graph_states(max_n=8))
    @settings(max_examples=30, deadline=None)
    def test_corollary_3_2(self, state):
        """Connected RE graphs: rho <= 1 + n^2/alpha."""
        from repro.equilibria.remove import is_remove_equilibrium

        if is_remove_equilibrium(state):
            assert state.rho() <= 1 + Fraction(state.n**2) / state.alpha


class TestMoveGeneratorSoundness:
    @given(graph_states(max_n=8))
    @settings(max_examples=30, deadline=None)
    def test_every_generated_move_is_certified(self, state):
        for concept in (Concept.PS, Concept.BGE):
            for move in improving_moves(state, concept):
                assert validate_certificate(state, move)

    @given(tree_states(max_n=10))
    @settings(max_examples=30, deadline=None)
    def test_no_moves_iff_checker_passes(self, state):
        for concept in (Concept.PS, Concept.BSWE):
            has_move = any(True for _ in improving_moves(state, concept))
            assert has_move != check(state, concept)


class TestDisconnectionSemantics:
    @given(
        n=st.integers(min_value=4, max_value=9),
        alpha=st.sampled_from(ALPHA_POOL),
    )
    @settings(max_examples=30, deadline=None)
    def test_reconnecting_always_mutually_improving(self, n, alpha):
        """Two components always want to merge: M dominates alpha."""
        graph = nx.empty_graph(n)
        for node in range(1, n // 2):
            graph.add_edge(0, node)
        for node in range(n // 2 + 1, n):
            graph.add_edge(n // 2, node)
        state = GameState(graph, alpha)
        from repro.equilibria.add import find_improving_bilateral_add

        move = find_improving_bilateral_add(state)
        assert move is not None
        components = [
            nx.node_connected_component(graph, move.u),
            nx.node_connected_component(graph, move.v),
        ]
        assert components[0] != components[1]
