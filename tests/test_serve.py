"""The serve subsystem: canonical engine sharing, caches, views, HTTP.

The load-bearing guarantees under test:

* relabelled (isomorphic) instances share one warm engine — the second
  request builds nothing — while their answers still speak each
  requester's own labels;
* ``classify`` answers agree exactly with a direct
  :func:`~repro.analysis.search.classify_full_ladder` call on the same
  labelled state, translated certificates included;
* ``best_response`` prices moves with the speculative kernel (an exact
  hand-checked delta) and reports ``best_responding`` consistently with
  ``classify``'s stable verdicts;
* the response cache serves byte-identical repeats; ``cache_bytes=0``
  disables every cache (the benchmark's cold arm); a tiny byte budget
  evicts LRU engines;
* ``poa`` resolves exact and layered (``m``-aggregated) cells against
  materialised campaign views, spelling-invariantly;
* the asyncio HTTP layer round-trips all of the above over a real
  socket, keep-alive included, and shuts down cleanly.
"""

from __future__ import annotations

import http.client
import json
import socket
from fractions import Fraction

import networkx as nx
import pytest

from repro.analysis.search import classify_full_ladder
from repro.campaigns import CampaignSpec, CampaignStore, run_campaign
from repro.campaigns.spec import from_jsonable
from repro.core.state import GameState
from repro.serve import EngineCache, MaterialisedViews, ServeApp
from repro.serve import cache as serve_cache
from repro.serve.http import start_server_in_thread

PATH_5 = [[0, 1], [1, 2], [2, 3], [3, 4]]
PATH_6 = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]]


def _relabel(edges, perm):
    return sorted(sorted([perm[u], perm[v]]) for u, v in edges)


def _minus_cached(body):
    return {k: v for k, v in body.items() if k != "cached"}


@pytest.fixture()
def layered_views():
    """A completed m-layered exact-PoA campaign, materialised."""
    spec = CampaignSpec(
        name="serve-views",
        kind="exact_poa",
        seed=0,
        grids=(
            {
                "family": "graphs",
                "n": 5,
                "m": {"$range": [4, 11]},
                "alpha": [2],
                "concept": ["PS"],
            },
        ),
    )
    store = CampaignStore(None)
    stats = run_campaign(spec, store)
    assert stats.failed == 0
    views = MaterialisedViews()
    views.add_campaign(spec, store)
    return spec, store, views


# -- canonical engine sharing ------------------------------------------------


class TestEngineSharing:
    def test_relabelled_instances_share_one_engine(self):
        app = ServeApp()
        perm = [3, 5, 0, 2, 4, 1]
        before = serve_cache.ENGINE_BUILDS
        status, first = app.handle(
            "classify", {"edges": PATH_6, "alpha": 3}
        )
        assert status == 200
        assert serve_cache.ENGINE_BUILDS == before + 1
        status, second = app.handle(
            "classify", {"edges": _relabel(PATH_6, perm), "alpha": 3}
        )
        assert status == 200
        # the isomorphic copy built nothing: one resident engine, one hit
        assert serve_cache.ENGINE_BUILDS == before + 1
        stats = app.engines.stats()
        assert stats["engines_resident"] == 1 and stats["hits"] == 1
        assert second["engine"] == first["engine"]
        # stability is isomorphism-invariant, so the verdicts agree...
        assert second["stable_concepts"] == first["stable_concepts"]
        # ...but the answers are fresh computations per labelling, not a
        # response-cache hit (responses speak the requester's labels)
        assert second["cached"] is False

    def test_distinct_regimes_get_distinct_engines(self):
        app = ServeApp()
        for alpha in (1, "5/2", 3):
            status, _ = app.handle(
                "classify", {"edges": PATH_5, "alpha": alpha}
            )
            assert status == 200
        assert app.engines.stats()["engines_resident"] == 3

    def test_lru_eviction_under_a_tiny_byte_budget(self):
        # one n=6 engine costs ~3 * 6*6*8 + 4096 bytes; a 6 KiB budget
        # holds exactly one, so the second instance evicts the first
        app = ServeApp(cache_bytes=6 * 1024)
        cycle = PATH_6 + [[5, 0]]
        assert app.handle("classify", {"edges": PATH_6, "alpha": 3})[0] == 200
        assert app.handle("classify", {"edges": cycle, "alpha": 3})[0] == 200
        stats = app.engines.stats()
        assert stats["engines_resident"] == 1
        assert stats["evictions"] == 1
        assert stats["engine_bytes"] <= 6 * 1024

    def test_cache_bytes_zero_disables_every_cache(self):
        app = ServeApp(cache_bytes=0)
        payload = {"edges": PATH_5, "alpha": 2}
        before = serve_cache.ENGINE_BUILDS
        bodies = [app.handle("classify", dict(payload))[1] for _ in range(2)]
        assert serve_cache.ENGINE_BUILDS == before + 2  # rebuilt both times
        assert app.engines.stats()["engines_resident"] == 0
        assert [b["cached"] for b in bodies] == [False, False]
        assert _minus_cached(bodies[0]) == _minus_cached(bodies[1])

    def test_engine_cache_unit_budget_arithmetic(self):
        cache = EngineCache(byte_budget=0)
        state = GameState(nx.path_graph(4), 2)
        entry = cache.put("d1", state)
        assert entry.nbytes > 0 and len(cache) == 0  # returned, not kept
        with pytest.raises(ValueError, match=">= 0"):
            EngineCache(byte_budget=-1)


# -- classify ----------------------------------------------------------------


class TestClassify:
    def test_matches_direct_ladder_classification(self):
        app = ServeApp()
        alpha = Fraction(5, 2)
        status, body = app.handle(
            "classify", {"edges": PATH_6, "alpha": "5/2"}
        )
        assert status == 200
        direct = classify_full_ladder(GameState(nx.path_graph(6), alpha))
        assert body["stable_concepts"] == sorted(
            concept.name for concept, report in direct.items() if report.stable
        )
        for concept, report in direct.items():
            verdict = body["verdicts"][concept.name]
            assert verdict["stable"] == report.stable
            assert verdict["exhaustive"] == report.exhaustive
            # certificates come back in the requester's labels
            cert = verdict["certificate"]
            if cert is not None:
                if "edge_deltas" in cert:
                    labels = [
                        x for _, u, v in cert["edge_deltas"] for x in (u, v)
                    ]
                else:
                    labels = [v for k, v in cert.items() if k != "type"]
                assert all(
                    isinstance(v, int) and 0 <= v < 6 for v in labels
                )

    def test_response_cache_serves_identical_repeats(self):
        app = ServeApp()
        payload = {"edges": PATH_5, "alpha": 2}
        _, first = app.handle("classify", dict(payload))
        _, second = app.handle("classify", dict(payload))
        assert first["cached"] is False and second["cached"] is True
        assert _minus_cached(first) == _minus_cached(second)
        assert app.response_hits == 1
        # a respelled alpha is a different raw payload but the same
        # semantic request — it still hits (past the parse)
        _, respelled = app.handle(
            "classify", {"edges": PATH_5, "alpha": "2/1"}
        )
        assert respelled["cached"] is True
        assert _minus_cached(respelled) == _minus_cached(first)

    def test_bad_requests_are_client_errors(self):
        app = ServeApp()
        for payload, fragment in [
            ({"alpha": 2}, "edges"),
            ({"edges": [[0, 0]], "alpha": 2}, "bad edge"),
            ({"edges": [[0, 1], [2, 3]], "alpha": 2}, "connected"),
            ({"edges": PATH_5}, "alpha"),
            ({"edges": PATH_5, "alpha": "nope"}, "alpha"),
            ({"edges": PATH_5, "n": 2, "alpha": 2}, "node count"),
        ]:
            status, body = app.handle("classify", payload)
            assert status == 400, payload
            assert fragment in body["error"]

    def test_unknown_endpoint_is_404(self):
        app = ServeApp()
        status, body = app.handle("nope", {})
        assert status == 404
        assert "classify" in body["endpoints"]


# -- best_response -----------------------------------------------------------


class TestBestResponse:
    def test_exact_delta_on_the_path(self):
        """P5's endpoint closes the cycle: dist 10 -> 6, price alpha=1/4."""
        app = ServeApp()
        status, body = app.handle(
            "best_response",
            {"edges": PATH_5, "alpha": "1/4", "agent": 4, "concept": "PS"},
        )
        assert status == 200
        assert body["best_responding"] is False
        assert body["cost_delta"] == str(Fraction(-4) + Fraction(1, 4))
        assert body["move"]["type"] == "add"
        assert 4 in (body["move"]["u"], body["move"]["v"])
        assert body["pool"] > 0

    def test_agrees_with_classify_stability(self):
        """A state classify calls PS-stable has no PS best response."""
        app = ServeApp()
        # high alpha: the path is pairwise stable (adds too expensive,
        # removals disconnect)
        payload = {"edges": PATH_5, "alpha": 50}
        _, verdicts = app.handle("classify", dict(payload))
        assert "PS" in verdicts["stable_concepts"]
        for agent in range(5):
            status, body = app.handle(
                "best_response", dict(payload, agent=agent, concept="PS"),
            )
            assert status == 200
            assert body["best_responding"] is True
            assert body["move"] is None and body["cost_delta"] is None

    def test_labels_travel_through_the_relabelling(self):
        app = ServeApp()
        perm = [2, 4, 0, 3, 1]
        payload = {
            "edges": _relabel(PATH_5, perm),
            "alpha": "1/4",
            "agent": perm[4],  # the same endpoint agent, renamed
            "concept": "PS",
        }
        status, body = app.handle("best_response", payload)
        assert status == 200
        # one engine serves both labelled copies of P5
        assert app.handle(
            "best_response",
            {"edges": PATH_5, "alpha": "1/4", "agent": 4, "concept": "PS"},
        )[1]["engine"] == body["engine"]
        assert body["cost_delta"] == str(Fraction(-15, 4))
        assert perm[4] in (body["move"]["u"], body["move"]["v"])

    def test_refuses_exponential_concepts_and_bad_agents(self):
        app = ServeApp()
        base = {"edges": PATH_5, "alpha": 2}
        status, body = app.handle(
            "best_response", dict(base, agent=0, concept="BNE")
        )
        assert status == 400 and "polynomial" in body["error"]
        status, body = app.handle(
            "best_response", dict(base, agent=9, concept="PS")
        )
        assert status == 400 and "agent" in body["error"]
        status, body = app.handle("best_response", dict(base, concept="PS"))
        assert status == 400 and "agent" in body["error"]
        status, body = app.handle(
            "best_response", dict(base, agent=0, concept="XX")
        )
        assert status == 400 and "unknown concept" in body["error"]


# -- poa views ---------------------------------------------------------------


class TestPoaViews:
    def test_exact_and_layered_lookups(self, layered_views):
        spec, store, views = layered_views
        app = ServeApp(views=views)
        exact_params = {
            "family": "graphs", "n": 5, "m": 4, "alpha": 2, "concept": "PS",
        }
        status, body = app.handle(
            "poa", {"kind": "exact_poa", "params": exact_params}
        )
        assert status == 200
        assert body["layered"] is False and body["complete"] is True
        expected = store.result(
            next(t for t in spec.trials() if t.params["m"] == 4).key
        )
        assert from_jsonable(body["result"]) == expected

        layered = {k: v for k, v in exact_params.items() if k != "m"}
        status, body = app.handle(
            "poa", {"kind": "exact_poa", "params": layered}
        )
        assert status == 200
        assert body["layered"] is True and body["complete"] is True
        assert body["layers"] == body["layers_present"] == 7
        per_layer = [
            store.result(t.key) for t in spec.trials()
        ]
        aggregated = from_jsonable(body["result"])
        assert aggregated["poa"] == max(
            r["poa"] for r in per_layer if r["poa"] is not None
        )
        assert aggregated["equilibria"] == sum(
            r["equilibria"] for r in per_layer
        )

    def test_lookups_are_spelling_invariant(self, layered_views):
        _, _, views = layered_views
        app = ServeApp(views=views)
        queries = [
            {"family": "graphs", "n": 5, "alpha": 2, "concept": "PS"},
            {"family": "graphs", "n": 5, "alpha": "2/1", "concept": "PS"},
        ]
        bodies = [
            app.handle("poa", {"kind": "exact_poa", "params": q})[1]
            for q in queries
        ]
        assert bodies[0] == bodies[1]

    def test_uncovered_cells_and_bad_queries(self, layered_views):
        _, _, views = layered_views
        app = ServeApp(views=views)
        status, body = app.handle(
            "poa",
            {
                "kind": "exact_poa",
                "params": {
                    "family": "graphs", "n": 8, "alpha": 2, "concept": "PS",
                },
            },
        )
        assert status == 404 and "no materialised view" in body["error"]
        status, body = app.handle("poa", {"kind": "exact_poa"})
        assert status == 400
        # an empty service has no views at all
        status, _ = app.handle(
            "poa", {"kind": "exact_poa", "params": {"n": 5}}
        )
        assert status == 404


# -- introspection -----------------------------------------------------------


class TestIntrospection:
    def test_healthz_and_statsz_counters(self, layered_views):
        _, _, views = layered_views
        app = ServeApp(views=views)
        status, body = app.handle("healthz", {})
        assert status == 200 and body["status"] == "ok"
        payload = {"edges": PATH_5, "alpha": 2}
        app.handle("classify", dict(payload))
        app.handle("classify", dict(payload))
        app.handle("classify", {"alpha": 2})  # a 400, counted as an error
        status, stats = app.handle("statsz", {})
        assert status == 200
        assert stats["engine_builds"] >= 1
        assert stats["engines_resident"] == 1
        assert stats["response_hits"] == 1
        assert stats["view_sources"] == 1
        assert stats["view_trials_indexed"] == 7
        classify = stats["endpoints"]["classify"]
        assert classify["requests"] == 3 and classify["errors"] == 1
        assert classify["p50_ms"] >= 0


# -- the HTTP layer ----------------------------------------------------------


class TestHttp:
    def test_round_trip_keep_alive_and_clean_shutdown(self, layered_views):
        spec, store, views = layered_views
        port, stop = start_server_in_thread(ServeApp(views=views))
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)

            def post(endpoint, payload):
                conn.request(
                    "POST", f"/{endpoint}", json.dumps(payload),
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                return response.status, json.loads(response.read())

            payload = {"edges": PATH_5, "alpha": 2}
            status, first = post("classify", payload)
            assert status == 200 and first["cached"] is False
            status, second = post("classify", payload)
            assert status == 200 and second["cached"] is True
            assert _minus_cached(first) == _minus_cached(second)

            status, body = post(
                "best_response",
                {"edges": PATH_5, "alpha": "1/4", "agent": 4, "concept": "PS"},
            )
            assert status == 200 and body["move"]["type"] == "add"

            status, body = post(
                "poa",
                {
                    "kind": "exact_poa",
                    "params": {
                        "family": "graphs", "n": 5, "alpha": 2,
                        "concept": "PS",
                    },
                },
            )
            assert status == 200 and body["layered"] is True

            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"

            conn.request("GET", "/statsz")
            response = conn.getresponse()
            assert response.status == 200
            stats = json.loads(response.read())
            assert stats["response_hits"] == 1
            assert stats["endpoints"]["classify"]["requests"] == 2

            conn.request("POST", "/nope", "{}")
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            conn.close()
        finally:
            stop()
        # the port is actually released after stop()
        with pytest.raises(ConnectionRefusedError):
            probe = socket.create_connection(("127.0.0.1", port), timeout=2)
            probe.close()

    def test_malformed_body_is_a_400_not_a_crash(self):
        port, stop = start_server_in_thread(ServeApp())
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request(
                "POST", "/classify", "this is not json",
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "not JSON" in json.loads(response.read())["error"]
            conn.close()
            # and the server still answers afterwards
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("GET", "/healthz")
            assert conn.getresponse().status == 200
            conn.close()
        finally:
            stop()
