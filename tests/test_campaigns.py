"""The campaign subsystem: spec expansion, store integrity, sharded
execution, resumability, and aggregation equivalence.

The load-bearing guarantees under test:

* trial identity is content-addressed — spellings, orderings and
  absent-vs-None never change a key, and nothing ambient enters it;
* ``Fraction`` alphas and results survive the JSONL store *exactly*;
* a campaign is bit-identical at any worker count;
* an interrupted campaign resumes past exactly the completed trials
  (including a SIGKILL mid-run, torn final line and all);
* campaign aggregation reproduces the in-process reference paths
  (the cooperation-ladder example table, ``convergence_study``)
  bit-for-bit.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from fractions import Fraction
from pathlib import Path

import pytest

from repro._rng import coerce_rng, derive_seed, spawn_rng, trial_seed
from repro.campaigns import (
    CampaignSpec,
    CampaignStore,
    render_report,
    run_campaign,
    trial_key,
)
from repro.campaigns.aggregate import convergence_stats
from repro.campaigns.cli import main as cli_main
from repro.campaigns.spec import from_jsonable, to_jsonable
from repro.core.concepts import Concept

REPO_ROOT = Path(__file__).parent.parent
CAMPAIGNS_DIR = REPO_ROOT / "campaigns"


def tiny_spec(**overrides) -> CampaignSpec:
    """A mixed PoA + dynamics campaign small enough for unit tests."""
    payload = dict(
        name="tiny",
        kind="tree_poa",
        seed=7,
        grids=(
            {"n": 6, "alpha": [2, "9/2"], "concept": ["PS", "BGE"]},
            {
                "kind": "dynamics",
                "concept": "PS",
                "n": 7,
                "alpha": 3,
                "max_rounds": 200,
                "index": {"$range": 3},
            },
        ),
    )
    payload.update(overrides)
    return CampaignSpec(**payload)


# -- spec + trial identity ---------------------------------------------------


class TestSpecExpansion:
    def test_grid_product_counts_and_determinism(self):
        spec = tiny_spec()
        trials = spec.trials()
        assert len(trials) == 2 * 2 + 3
        assert trials == spec.trials()  # expansion is pure
        assert len({trial.key for trial in trials}) == len(trials)

    def test_exact_alpha_normalisation(self):
        spec = tiny_spec()
        alphas = {
            trial.params["alpha"]
            for trial in spec.trials()
            if trial.kind == "tree_poa"
        }
        assert alphas == {Fraction(2), Fraction(9, 2)}

    def test_duplicate_trials_collapse(self):
        spec = tiny_spec(
            grids=(
                {"n": 6, "alpha": [2, 2], "concept": "PS"},
                {"n": 6, "alpha": 2, "concept": "PS"},
            )
        )
        assert len(spec.trials()) == 1

    def test_range_axis(self):
        spec = tiny_spec(
            grids=(
                {
                    "kind": "dynamics",
                    "concept": "PS",
                    "n": 5,
                    "alpha": 2,
                    "index": {"$range": [2, 5]},
                },
            )
        )
        assert [t.params["index"] for t in spec.trials()] == [2, 3, 4]

    def test_key_is_spelling_invariant(self):
        base = trial_key(
            "tree_poa", {"n": 6, "alpha": Fraction(9, 2), "concept": Concept.PS}
        )
        assert base == trial_key(
            "tree_poa", {"alpha": "9/2", "concept": "PS", "n": 6}
        )
        assert base == trial_key(
            "tree_poa",
            {"n": 6, "alpha": 4.5, "concept": Concept.PS, "k": None},
        )
        assert base != trial_key(
            "tree_poa", {"n": 6, "alpha": "9/2", "concept": "PS", "k": 3}
        )
        assert base != trial_key(
            "graph_poa", {"n": 6, "alpha": "9/2", "concept": "PS"}
        )

    def test_json_round_trip_is_lossless(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = CampaignSpec.load(path)
        assert loaded == spec
        assert [t.key for t in loaded.trials()] == [
            t.key for t in spec.trials()
        ]
        # and committed specs parse with exact alphas
        ladder = CampaignSpec.load(CAMPAIGNS_DIR / "cooperation_ladder.json")
        assert {t.params["alpha"] for t in ladder.trials()} == {
            Fraction(a) for a in (2, 4, 8, 16, 32, 64)
        }

    def test_jsonable_codec_round_trips_exactly(self):
        values = {
            "alpha": Fraction(1045, 10),
            "concept": Concept.BSWE,
            "nested": [Fraction(1, 3), {"k": None, "flag": True}],
            "plain": "text",
        }
        assert from_jsonable(json.loads(json.dumps(to_jsonable(values)))) == values


class TestRngDerivation:
    def test_derive_seed_is_stable_and_sensitive(self):
        a = derive_seed(7, "dynamics", Fraction(9, 2), 3)
        assert a == derive_seed(7, "dynamics", Fraction(9, 2), 3)
        assert a != derive_seed(8, "dynamics", Fraction(9, 2), 3)
        assert a != derive_seed(7, "dynamics", Fraction(9, 2), 4)
        assert 0 <= a < 2**64

    def test_spawn_rng_routes_through_coerce(self):
        seed = derive_seed(3, "x")
        assert spawn_rng(3, "x").random() == coerce_rng(seed).random()

    def test_trial_seed_matches_historical_formula(self):
        assert trial_seed(42, 5) == 42 * 100_003 + 5


# -- store integrity ---------------------------------------------------------


class TestStore:
    def test_fractions_survive_the_jsonl_exactly(self, tmp_path):
        spec = tiny_spec(grids=({"n": 6, "alpha": "9/2", "concept": "PS"},))
        with CampaignStore(tmp_path / "store") as store:
            run_campaign(spec, store)
        reopened = CampaignStore(tmp_path / "store")
        (trial,) = spec.trials()
        result = reopened.result(trial.key)
        assert isinstance(result["poa"], Fraction)
        assert result["poa"].denominator > 1  # a genuinely non-integral rho
        assert result == CampaignStore(tmp_path / "store").result(trial.key)

    def test_duplicate_ok_record_is_refused(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        args = dict(
            kind="tree_poa", params={"n": 6}, status="ok",
            result={"poa": Fraction(1)}, error=None, elapsed=0.1,
        )
        store.append(key="k1", **args)
        with pytest.raises(ValueError, match="duplicate ok record"):
            store.append(key="k1", **args)

    def test_torn_final_line_is_tolerated_and_rerun(self, tmp_path):
        spec = tiny_spec(grids=({"n": 6, "alpha": [2, 3], "concept": "PS"},))
        store_dir = tmp_path / "store"
        with CampaignStore(store_dir) as store:
            run_campaign(spec, store)
        path = store_dir / "results.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        # simulate a SIGKILL mid-append: last record only half written
        path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        reopened = CampaignStore(store_dir)
        assert reopened.corrupt_lines == 1
        assert len(reopened.completed_keys()) == 1
        stats = run_campaign(spec, reopened)
        assert stats.skipped == 1 and stats.executed == 1
        final = CampaignStore(store_dir)
        assert final.corrupt_lines == 1  # the torn line stays, ignored
        keys = [
            json.loads(line)["key"]
            for line in path.read_text().splitlines()
            if line.strip() and _decodes(line)
        ]
        # no key is ever recorded ok twice
        assert len(final.completed_keys()) == 2
        assert len(keys) == len(set(keys)) == 2

    def test_error_records_not_fatal_and_retryable(self, tmp_path):
        # graph_poa needs a positive n: n = 0 must error, not crash
        # (n = 9 no longer errors — the canonical-key enumerator took
        # over past the atlas ceiling)
        spec = tiny_spec(
            grids=(
                {"kind": "graph_poa", "n": [5, 0], "alpha": 2, "concept": "PS"},
            )
        )
        store_dir = tmp_path / "store"
        with CampaignStore(store_dir) as store:
            stats = run_campaign(spec, store)
        assert stats.executed == 2 and stats.failed == 1
        reopened = CampaignStore(store_dir)
        assert len(reopened.completed_keys()) == 1
        assert len(reopened.error_keys()) == 1
        record = reopened.record_for(next(iter(reopened.error_keys())))
        assert "must be positive" in record["error"]
        # default resume retries the error; --no-retry-errors skips it
        assert run_campaign(spec, reopened, retry_errors=False).executed == 0
        retried = run_campaign(spec, CampaignStore(store_dir))
        assert retried.executed == 1 and retried.failed == 1

    def test_store_refuses_foreign_campaign(self, tmp_path):
        with CampaignStore(tmp_path / "store") as store:
            run_campaign(tiny_spec(), store)
        with pytest.raises(ValueError, match="belongs to campaign"):
            run_campaign(tiny_spec(name="other"), CampaignStore(tmp_path / "store"))


# -- execution: determinism, resumability, crash tolerance -------------------


def _comparable_records(store: CampaignStore) -> dict:
    records = {}
    for record in store.ok_records():
        stripped = dict(record)
        stripped.pop("elapsed")
        records[record["key"]] = stripped
    return records


class TestExecution:
    def test_serial_and_pooled_runs_are_bit_identical(self, tmp_path):
        spec = tiny_spec()
        serial = CampaignStore(tmp_path / "serial")
        pooled = CampaignStore(tmp_path / "pooled")
        with serial, pooled:
            stats_serial = run_campaign(spec, serial, workers=1)
            stats_pooled = run_campaign(spec, pooled, workers=4, chunk_size=2)
        assert stats_serial.failed == stats_pooled.failed == 0
        assert _comparable_records(serial) == _comparable_records(pooled)
        # and the aggregated report is byte-identical
        assert render_report(spec, serial) == render_report(spec, pooled)

    def test_resume_skips_exactly_the_completed_trials(self, tmp_path):
        spec = tiny_spec()
        total = len(spec.trials())
        store_dir = tmp_path / "store"
        k = 3
        with CampaignStore(store_dir) as store:
            first = run_campaign(spec, store, max_trials=k)
        assert first.executed == k and first.remaining == total - k
        reopened = CampaignStore(store_dir)
        assert len(reopened.completed_keys()) == k
        with reopened:
            second = run_campaign(spec, reopened, workers=2)
        assert second.skipped == k
        assert second.executed == total - k
        lines = (store_dir / "results.jsonl").read_text().splitlines()
        keys = [json.loads(line)["key"] for line in lines]
        assert len(keys) == len(set(keys)) == total
        # a third run has nothing to do
        third = run_campaign(spec, CampaignStore(store_dir))
        assert third.executed == 0 and third.skipped == total

    def test_sigkilled_campaign_resumes_without_rerunning(self, tmp_path):
        """The real thing: SIGKILL a 2-worker CLI run mid-flight, resume."""
        spec = tiny_spec(
            name="killable",
            grids=(
                {
                    "kind": "dynamics",
                    "concept": "BGE",
                    "n": 22,
                    "alpha": 3,
                    "max_rounds": 500,
                    "index": {"$range": 10},
                },
            ),
        )
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        store_dir = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.campaigns", "run",
                str(spec_path), "--store", str(store_dir),
                "--workers", "2", "--chunk-size", "1", "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        results = store_dir / "results.jsonl"
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if results.exists() and results.read_text().count("\n") >= 2:
                    break
                if proc.poll() is not None:
                    break  # finished before we could kill it — still fine
                time.sleep(0.05)
            else:
                pytest.fail("campaign produced no records within 120s")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)

        interrupted = CampaignStore(store_dir)
        completed = len(interrupted.completed_keys())
        assert completed >= 1
        with interrupted:
            resumed = run_campaign(spec, interrupted)
        assert resumed.skipped == completed
        assert resumed.executed == len(spec.trials()) - completed
        keys = [
            json.loads(line)["key"]
            for line in results.read_text().splitlines()
            if _decodes(line)
        ]
        ok_keys = [k for k in keys]
        assert len(set(ok_keys)) == len(spec.trials())
        # the resumed store agrees with a from-scratch serial run
        fresh = CampaignStore(None)
        run_campaign(spec, fresh)
        assert _comparable_records(CampaignStore(store_dir)) == (
            _comparable_records(fresh)
        )


def _decodes(line: str) -> bool:
    try:
        json.loads(line)
        return True
    except json.JSONDecodeError:
        return False


# -- aggregation equivalence -------------------------------------------------


class TestAggregation:
    def test_ladder_campaign_matches_direct_computation(self):
        """The campaign table == the pre-subsystem example code, bit-for-bit."""
        from repro.analysis.poa import empirical_tree_poa
        from repro.analysis.tables import render_table

        sys.path.insert(0, str(REPO_ROOT / "examples"))
        try:
            from cooperation_ladder import ladder_spec
        finally:
            sys.path.pop(0)

        n, alphas = 6, (2, 4, 8)
        spec = ladder_spec(n, alphas)
        store = CampaignStore(None)
        stats = run_campaign(spec, store, workers=1)
        assert stats.failed == 0
        report = render_report(spec, store)

        # the original examples/cooperation_ladder.py main loop, verbatim
        rows = []
        for alpha in alphas:
            ps = empirical_tree_poa(n, alpha, Concept.PS)
            bswe = empirical_tree_poa(n, alpha, Concept.BSWE)
            bge = empirical_tree_poa(n, alpha, Concept.BGE)
            three = empirical_tree_poa(n, alpha, Concept.BGE, k=3)
            rows.append(
                [
                    alpha,
                    float(ps.poa) if ps.poa else "-",
                    float(bswe.poa) if bswe.poa else "-",
                    float(bge.poa) if bge.poa else "-",
                    float(three.poa) if three.poa else "-",
                ]
            )
        expected = render_table(
            ["alpha", "PoA(PS)", "PoA(BSwE)", "PoA(BGE)", "PoA(3-BSE)"],
            rows,
            title=f"Exact tree PoA by cooperation level (all trees, n={n})",
        )
        assert report.split("\n\n")[0] == expected

    def test_committed_ladder_spec_equals_example_spec(self):
        """The committed JSON and the example's in-code spec are the same
        campaign: identical trial keys and identical report config, so a
        CLI run of campaigns/cooperation_ladder.json is byte-identical to
        examples/cooperation_ladder.py (execution equivalence at n = 6 is
        proven above; here the committed n = 9 artefact is pinned)."""
        sys.path.insert(0, str(REPO_ROOT / "examples"))
        try:
            from cooperation_ladder import ladder_spec
        finally:
            sys.path.pop(0)
        committed = CampaignSpec.load(CAMPAIGNS_DIR / "cooperation_ladder.json")
        in_code = ladder_spec(9)
        # same trial set (expansion order differs; the poa_table reducer
        # orders by its options, so order never reaches the report)
        assert {t.key for t in committed.trials()} == {
            t.key for t in in_code.trials()
        }
        assert committed.report == in_code.report
        assert committed.kind == in_code.kind

    def test_convergence_stats_match_convergence_study(self):
        from repro.dynamics.convergence import convergence_study

        concept, n, alpha, runs, seed, max_rounds = (
            Concept.PS, 8, 3, 4, 5, 300,
        )
        spec = CampaignSpec(
            name="dyn-equivalence",
            kind="dynamics",
            seed=seed,
            grids=(
                {
                    "concept": concept.name,
                    "n": n,
                    "alpha": alpha,
                    "max_rounds": max_rounds,
                    "index": {"$range": runs},
                },
            ),
        )
        store = CampaignStore(None)
        stats = run_campaign(spec, store, workers=2, chunk_size=1)
        assert stats.failed == 0
        ((params, aggregated),) = convergence_stats(spec, store)
        reference = convergence_study(
            concept, n=n, alpha=alpha, runs=runs, seed=seed,
            max_rounds=max_rounds,
        )
        assert aggregated == reference  # dataclass equality: every field

    def test_report_is_byte_stable_across_store_reopen(self, tmp_path):
        """Live records (runner dict order) and reopened records (JSONL
        sorted keys) must render the same report."""
        spec = tiny_spec()
        store = CampaignStore(tmp_path / "store")
        with store:
            run_campaign(spec, store)
            live = render_report(spec, store)
        assert live == render_report(spec, CampaignStore(tmp_path / "store"))

    def test_report_marks_missing_trials(self):
        spec = tiny_spec(grids=({"n": 6, "alpha": 2, "concept": "PS"},))
        spec = CampaignSpec(
            name=spec.name, kind=spec.kind, grids=spec.grids, seed=spec.seed,
            report={
                "reducer": "poa_table",
                "options": {
                    "n": 6,
                    "alphas": [2],
                    "columns": [{"header": "PoA(PS)", "concept": "PS"}],
                },
            },
        )
        assert "?" in render_report(spec, CampaignStore(None))


# -- the CLI -----------------------------------------------------------------


class TestCli:
    def test_run_status_report_lifecycle(self, tmp_path, capsys):
        spec = tiny_spec(grids=({"n": 6, "alpha": [2, 3], "concept": "PS"},))
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        store = tmp_path / "store"

        assert cli_main(
            ["run", str(spec_path), "--store", str(store), "--quiet"]
        ) == 0
        capsys.readouterr()
        assert cli_main(["status", str(store)]) == 0
        out = capsys.readouterr().out
        assert "completed: 2" in out and "pending:   0" in out

        report_file = tmp_path / "report.txt"
        assert cli_main(
            ["report", str(store), "--out", str(report_file)]
        ) == 0
        assert "tree_poa" in report_file.read_text()

    def test_status_on_partial_store_signals_pending(self, tmp_path, capsys):
        spec = tiny_spec(grids=({"n": 6, "alpha": [2, 3], "concept": "PS"},))
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        store = tmp_path / "store"
        cli_main(
            ["run", str(spec_path), "--store", str(store), "--max-trials",
             "1", "--quiet"]
        )
        capsys.readouterr()
        assert cli_main(["status", str(store)]) == 3
        assert "pending:   1" in capsys.readouterr().out

    def test_report_on_non_store_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="not a campaign store"):
            cli_main(["report", str(tmp_path)])


# -- new runner kinds + reducers (traffic / constructions / ladder / fits) ---


class TestNewRunnerKinds:
    def test_weighted_poa_runner_uniform_matches_tree_poa(self):
        from repro.analysis.poa import empirical_tree_poa
        from repro.campaigns.runners import execute_trial

        reference = empirical_tree_poa(6, 4, Concept.PS)
        result = execute_trial(
            "weighted_poa",
            {
                "n": 6,
                "alpha": Fraction(4),
                "concept": Concept.PS,
                "traffic": {"model": "uniform"},
            },
            base_seed=0,
        )
        assert result["poa"] == reference.poa
        assert result["equilibria"] == reference.equilibria
        assert result["candidates"] == reference.candidates

    def test_weighted_poa_traffic_enters_the_trial_key(self):
        base = {"n": 6, "alpha": Fraction(2), "concept": Concept.PS}
        uniform = trial_key(
            "weighted_poa", base | {"traffic": {"model": "uniform"}}
        )
        hubbed = trial_key(
            "weighted_poa",
            base | {"traffic": {"model": "broadcast", "sources": [0]}},
        )
        assert uniform != hubbed
        # key order inside the traffic spec does not matter
        reordered = trial_key(
            "weighted_poa",
            base | {"traffic": {"sources": [0], "model": "broadcast"}},
        )
        assert hubbed == reordered

    def test_constructions_runner_reproduces_figure_claims(self):
        from repro.campaigns.runners import execute_trial

        fig6 = execute_trial(
            "constructions", {"figure": "figure6"}, base_seed=0
        )
        assert fig6["n"] == 10 and fig6["re"] and fig6["bae"] and fig6["bge"]
        fig2 = execute_trial(
            "constructions", {"figure": "figure2"}, base_seed=0
        )
        assert not fig2["re"]  # the Corbo-Parkes refutation: not PS
        with pytest.raises(ValueError, match="unknown figure"):
            execute_trial("constructions", {"figure": "figure99"}, 0)

    def test_ladder_classify_is_seed_deterministic(self):
        from repro.campaigns.runners import execute_trial

        params = {
            "n": 7,
            "alpha": Fraction(3),
            "start": "tree",
            "index": 2,
        }
        first = execute_trial("ladder_classify", params, base_seed=11)
        second = execute_trial("ladder_classify", params, base_seed=11)
        assert first == second
        other_seed = execute_trial("ladder_classify", params, base_seed=12)
        assert set(first["ladder"]) == set(other_seed["ladder"])
        assert "RE" in first["ladder"] and "BSE" in first["ladder"]

    def test_committed_traffic_regimes_spec_runs_end_to_end(self):
        spec = CampaignSpec.load(CAMPAIGNS_DIR / "traffic_regimes.json")
        store = CampaignStore(None)
        stats = run_campaign(spec, store, max_trials=6)
        assert stats.executed == 6 and stats.failed == 0
        report = render_report(spec, store)
        assert "traffic" in report and "PoA(PS)" in report

    def test_committed_paper_figures_spec_expands_and_runs_a_slice(self):
        spec = CampaignSpec.load(CAMPAIGNS_DIR / "paper_figures.json")
        trials = spec.trials()
        kinds = {trial.kind for trial in trials}
        assert kinds == {"constructions", "ladder_classify"}
        store = CampaignStore(None)
        stats = run_campaign(spec, store, max_trials=2)
        assert stats.failed == 0

    def test_poa_fit_reducer_is_deterministic_and_matches_fitting(self):
        from repro.analysis.fitting import fit_log_slope

        spec = CampaignSpec.load(CAMPAIGNS_DIR / "poa_scaling.json")
        store = CampaignStore(None)
        stats = run_campaign(spec, store)
        assert stats.failed == 0
        report = render_report(spec, store)
        assert report == render_report(spec, store)  # byte-stable
        assert "log2 slope" in report and "power exp" in report
        # re-derive one column's log fit straight from the records
        alphas, rhos = [], []
        for alpha in (2, 4, 8, 16, 32, 64):
            key = trial_key(
                "tree_poa",
                {"n": 8, "alpha": Fraction(alpha), "concept": Concept.PS},
            )
            result = store.result(key)
            assert result is not None
            alphas.append(alpha)
            rhos.append(result["poa"])
        fit = fit_log_slope(alphas, rhos)
        assert f"{fit.slope:.4g}" in report

    def test_weighted_campaign_bit_identical_across_workers(self, tmp_path):
        spec = CampaignSpec(
            name="weighted-workers",
            kind="weighted_poa",
            grids=(
                {
                    "n": 6,
                    "alpha": [2, 4],
                    "concept": "PS",
                    "traffic": [
                        {"model": "uniform"},
                        {"model": "broadcast", "sources": [0]},
                    ],
                },
            ),
            report={"reducer": "trial_table"},
        )
        serial = CampaignStore(tmp_path / "serial")
        pooled = CampaignStore(tmp_path / "pooled")
        run_campaign(spec, serial, workers=1)
        run_campaign(spec, pooled, workers=2)
        assert _comparable_records(serial) == _comparable_records(pooled)
        assert render_report(spec, serial) == render_report(spec, pooled)


class TestExactPoACampaigns:
    def test_exact_poa_trees_family_matches_direct(self):
        from repro.analysis.poa import empirical_tree_poa
        from repro.campaigns.runners import execute_trial

        reference = empirical_tree_poa(7, 3, Concept.PS)
        result = execute_trial(
            "exact_poa",
            {
                "family": "trees",
                "n": 7,
                "alpha": Fraction(3),
                "concept": Concept.PS,
            },
            base_seed=0,
        )
        assert result["poa"] == reference.poa
        assert result["equilibria"] == reference.equilibria
        assert result["candidates"] == reference.candidates

    def test_exact_poa_layers_partition_the_whole_family(self):
        from repro.campaigns.runners import execute_trial
        from repro.graphs.enumerate import max_edge_count

        n, alpha = 5, Fraction(2)
        base = {"family": "graphs", "n": n, "alpha": alpha,
                "concept": Concept.PS}
        whole = execute_trial("exact_poa", base, base_seed=0)
        layers = [
            execute_trial("exact_poa", base | {"m": m}, base_seed=0)
            for m in range(n - 1, max_edge_count(n) + 1)
        ]
        assert sum(r["candidates"] for r in layers) == whole["candidates"]
        assert sum(r["equilibria"] for r in layers) == whole["equilibria"]
        layer_poas = [r["poa"] for r in layers if r["poa"] is not None]
        assert max(layer_poas) == whole["poa"]
        # the worst witness lives in exactly one layer, same certificate
        worst = max(
            (r for r in layers if r["poa"] == whole["poa"]),
            key=lambda r: r["poa"],
        )
        assert worst["witness_key"] == whole["witness_key"]

    def test_exact_poa_witness_certificate_replays(self):
        import hashlib

        import networkx as nx

        from repro.campaigns.runners import execute_trial
        from repro.graphs.canonical import canonical_key

        result = execute_trial(
            "exact_poa",
            {
                "family": "graphs",
                "n": 5,
                "alpha": Fraction(2),
                "concept": Concept.PS,
            },
            base_seed=0,
        )
        witness = nx.Graph(
            (u, v) for u, v in result["witness_edges"]
        )
        witness.add_nodes_from(range(5))
        digest = hashlib.blake2b(
            canonical_key(witness), digest_size=16
        ).hexdigest()
        assert digest == result["witness_key"]

    def test_exact_poa_labelled_trees_requires_traffic(self):
        from repro.campaigns.runners import execute_trial

        with pytest.raises(ValueError, match="traffic"):
            execute_trial(
                "exact_poa",
                {
                    "family": "labelled_trees",
                    "n": 5,
                    "alpha": Fraction(2),
                    "concept": Concept.PS,
                },
                base_seed=0,
            )

    def test_exact_poa_labelled_trees_uniform_degenerates(self):
        from repro.analysis.poa import empirical_weighted_poa
        from repro.campaigns.runners import execute_trial
        from repro.core.traffic import TrafficMatrix

        reference = empirical_weighted_poa(
            5, 3, Concept.PS, traffic=TrafficMatrix.uniform(5)
        )
        result = execute_trial(
            "exact_poa",
            {
                "family": "labelled_trees",
                "n": 5,
                "alpha": Fraction(3),
                "concept": Concept.PS,
                "traffic": {"model": "uniform"},
            },
            base_seed=0,
        )
        assert result["poa"] == reference.poa
        assert result["candidates"] == reference.candidates
        assert result["best_cost"] == reference.best_cost

    def test_exact_poa_table_layered_equals_whole(self):
        # the load-bearing resume property: a campaign sharded into
        # edge-count layers renders byte-identically to an unsharded one
        from repro.graphs.enumerate import max_edge_count

        n, alphas = 5, [2, 3]
        report = {
            "reducer": "exact_poa_table",
            "options": {
                "n": n,
                "alphas": alphas,
                "columns": [
                    {"header": "PoA(PS)", "concept": "PS",
                     "params": {"family": "graphs"}},
                ],
            },
        }
        layered = CampaignSpec(
            name="layered", kind="exact_poa", report=report,
            grids=(
                {
                    "family": "graphs", "n": n, "alpha": alphas,
                    "concept": "PS",
                    "m": {"$range": [n - 1, max_edge_count(n) + 1]},
                },
            ),
        )
        whole = CampaignSpec(
            name="whole", kind="exact_poa", report=report,
            grids=(
                {"family": "graphs", "n": n, "alpha": alphas,
                 "concept": "PS"},
            ),
        )
        layered_store = CampaignStore(None)
        whole_store = CampaignStore(None)
        assert run_campaign(layered, layered_store, workers=2).failed == 0
        assert run_campaign(whole, whole_store).failed == 0
        left = render_report(layered, layered_store)
        right = render_report(whole, whole_store)
        assert left.split("\n", 1)[1] == right.split("\n", 1)[1]
        assert "?" not in left

    def test_conjecture_hunt_runner_finds_prop_2_3(self):
        import networkx as nx

        from repro.campaigns.runners import execute_trial
        from repro.core.state import GameState
        from repro.equilibria.nash import (
            EdgeAssignment,
            is_nash_equilibrium,
        )
        from repro.equilibria.pairwise import find_pairwise_violation

        result = execute_trial(
            "conjecture_hunt",
            {"n": 5, "alpha": Fraction(2)},
            base_seed=0,
        )
        assert result["candidates"] == 21
        assert result["counterexample_graphs"] == 1
        assert result["ne_graphs"] >= 1
        [cert] = [
            c for c in result["certificates"]
            if c["break_type"] == "RemoveEdge"
        ]
        # the certificate replays: its assignment is a genuine NE on its
        # graph, and the graph genuinely breaks pairwise stability
        graph = nx.Graph((u, v) for u, v in cert["edges"])
        state = GameState(graph, 2)
        assignment = EdgeAssignment.from_pairs(
            (owner, other) for owner, other in cert["owners"]
        )
        assert is_nash_equilibrium(state, assignment)
        assert find_pairwise_violation(state) is not None

    def test_committed_conjecture_spec_equals_example_spec(self):
        sys.path.insert(0, str(REPO_ROOT / "examples"))
        try:
            from conjecture_hunt import hunt_spec
        finally:
            sys.path.pop(0)
        committed = CampaignSpec.load(CAMPAIGNS_DIR / "conjecture_hunt.json")
        in_code = hunt_spec()
        assert {t.key for t in committed.trials()} == {
            t.key for t in in_code.trials()
        }
        assert committed.report == in_code.report
        assert committed.kind == in_code.kind

    def test_committed_exact_poa_spec_expands_and_runs_a_slice(self):
        spec = CampaignSpec.load(CAMPAIGNS_DIR / "exact_poa.json")
        trials = spec.trials()
        assert len(trials) == 92  # 22 layers x 2 alphas x 2 concepts + 4
        families = {trial.params["family"] for trial in trials}
        assert families == {"graphs", "trees"}
        store = CampaignStore(None)
        stats = run_campaign(spec, store, max_trials=4)
        assert stats.executed == 4 and stats.failed == 0
        report = render_report(spec, store)
        assert "?" in report  # 88 layers still pending render as ?

    def test_conjecture_table_marks_pending_cells(self):
        spec = CampaignSpec(
            name="pending-hunt", kind="conjecture_hunt",
            grids=({"n": 4, "alpha": [2, 3]},),
            report={"reducer": "conjecture_table"},
        )
        store = CampaignStore(None)
        run_campaign(spec, store, max_trials=1)
        report = render_report(spec, store)
        assert "?" in report
        run_campaign(spec, store)
        assert "?" not in render_report(spec, store)
