"""Tests for the analysis harness: PoA sweeps, bounds, fitting, tables."""

import math
from fractions import Fraction

import networkx as nx
import pytest

from repro.analysis.bounds import (
    bge_tree_lower_bound,
    bne_small_alpha_bound,
    bse_any_alpha_bound,
    bse_high_alpha_bound,
    bse_low_alpha_bound,
    bswe_tree_upper_bound,
    dary_tree_cost_bound,
    proposition_3_1_bound,
    ps_tree_shape,
    re_corollary_3_2_bound,
    three_bse_tree_bound,
)
from repro.analysis.fitting import (
    fit_log_slope,
    fit_power_law,
    relative_spread,
)
from repro.analysis.poa import (
    bse_upper_bound_via_dary_tree,
    empirical_poa,
    empirical_tree_poa,
    re_upper_bound_via_prop_3_1,
    worst_equilibria,
)
from repro.analysis.tables import format_value, render_table
from repro.core.concepts import Concept
from repro.core.state import GameState


class TestBounds:
    def test_ps_shape_crossover_at_n(self):
        """sqrt(alpha) branch below alpha = n, n/sqrt(alpha) above."""
        n = 100
        assert ps_tree_shape(n, 25) == 5
        assert ps_tree_shape(n, 400) == 100 / 20

    def test_bswe_upper_bound_values(self):
        assert bswe_tree_upper_bound(1) == 2
        assert bswe_tree_upper_bound(4) == 6

    def test_bge_lower_bound_grows(self):
        assert bge_tree_lower_bound(2**40) > bge_tree_lower_bound(2**20)

    def test_constants(self):
        assert bne_small_alpha_bound() == 4
        assert three_bse_tree_bound() == 25
        assert bse_high_alpha_bound() == 5

    def test_bse_low_alpha(self):
        assert bse_low_alpha_bound(0.5) == 7
        with pytest.raises(ValueError):
            bse_low_alpha_bound(0)

    def test_bse_any_alpha_is_sublogarithmic(self):
        """o(log n): the ratio to log2 n shrinks as n explodes."""
        small = bse_any_alpha_bound(2**16) / 16
        large = bse_any_alpha_bound(2**64) / 64
        assert large < small

    def test_corollary_3_2(self):
        assert re_corollary_3_2_bound(10, 50) == 1 + Fraction(100, 50)

    def test_proposition_3_1(self):
        assert proposition_3_1_bound(10, 1, 9) == Fraction(10, 10)

    def test_dary_cost_bound_monotone_in_alpha(self):
        assert dary_tree_cost_bound(100, 50, 3) < dary_tree_cost_bound(
            100, 500, 3
        )


class TestEmpiricalPoA:
    def test_tree_poa_at_least_one(self):
        result = empirical_tree_poa(7, 3, Concept.PS)
        assert result.poa is not None and result.poa >= 1
        assert result.equilibria >= 1  # the star at least
        assert result.candidates == 11  # trees on 7 nodes

    def test_witness_is_an_equilibrium_with_that_rho(self):
        result = empirical_tree_poa(7, 5, Concept.PS)
        state = GameState(result.witness, result.alpha)
        assert state.rho() == result.poa

    def test_ordering_of_concepts(self):
        """More cooperation can only (weakly) shrink the worst case."""
        n, alpha = 8, 6
        ps = empirical_tree_poa(n, alpha, Concept.PS)
        bge = empirical_tree_poa(n, alpha, Concept.BGE)
        assert bge.poa <= ps.poa

    def test_graph_poa_includes_non_trees(self):
        result = empirical_poa(5, 3, Concept.PS)
        assert result.candidates == 21  # connected graphs on 5 nodes

    def test_no_equilibria_gives_none(self):
        """1-node family edge case is excluded; use absurd concept/k combo."""
        result = empirical_tree_poa(4, Fraction(1, 2), Concept.PS)
        # at alpha < 1 star is not PS; paths neither -> may be none or some
        if result.poa is None:
            assert result.witness is None

    def test_worst_equilibria_sorted(self):
        ranked = worst_equilibria(8, 6, Concept.PS, top=3)
        assert len(ranked) >= 1
        ratios = [rho for rho, _ in ranked]
        assert ratios == sorted(ratios, reverse=True)

    def test_k_bse_scan(self):
        result = empirical_tree_poa(6, 4, Concept.BGE, k=3)
        assert result.k == 3
        if result.poa is not None:
            assert result.poa >= 1


class TestCertifiedBseBounds:
    def test_lemma_317_bound_confirmed_on_small_graphs(self):
        """The certified d-ary bound really does dominate every exact BSE
        rho on 5 nodes."""
        n, alpha = 5, 2
        bound = min(
            bse_upper_bound_via_dary_tree(n, alpha, d) for d in (2, 3, 4)
        )
        scan = empirical_poa(n, alpha, Concept.BSE)
        assert scan.poa is not None
        assert scan.poa <= bound

    def test_prop_3_1_bound_dominates_rho(self):
        state = GameState(nx.path_graph(7), 3)
        assert state.rho() <= re_upper_bound_via_prop_3_1(state)


class TestFitting:
    def test_log_slope_recovers_synthetic(self):
        alphas = [2**i for i in range(3, 12)]
        rhos = [0.5 * math.log2(a) + 1.25 for a in alphas]
        fit = fit_log_slope(alphas, rhos)
        assert abs(fit.slope - 0.5) < 1e-9
        assert fit.r_squared > 0.999

    def test_power_law_recovers_sqrt(self):
        alphas = [4**i for i in range(2, 8)]
        rhos = [3 * math.sqrt(a) for a in alphas]
        fit = fit_power_law(alphas, rhos)
        assert abs(fit.slope - 0.5) < 1e-9

    def test_relative_spread(self):
        assert relative_spread([2.0, 2.0, 2.0]) == 0
        assert relative_spread([2.0, 3.0]) == 0.5
        with pytest.raises(ValueError):
            relative_spread([0.0, 1.0])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_log_slope([2], [1.0])


class TestTables:
    def test_format_fraction(self):
        assert format_value(Fraction(3, 1)) == "3"
        assert format_value(Fraction(7, 2)) == "3.5"

    def test_format_bool(self):
        assert format_value(True) == "yes"

    def test_render_alignment(self):
        table = render_table(
            ["concept", "PoA"], [["PS", 3.5], ["BGE", 2.0]], title="Table 1"
        )
        lines = table.splitlines()
        assert lines[0] == "Table 1"
        assert "concept" in lines[1]
        assert len(lines) == 5
