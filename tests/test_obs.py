"""The telemetry layer: registry semantics, spy aliases, traces, /metricsz.

The load-bearing guarantees under test:

* the :mod:`repro.obs.metrics` registry has Prometheus-shaped semantics
  — monotone counters, settable gauges (callback-backed or not),
  histograms with the fixed log-spaced bucket edges, deterministic
  exposition text, and a hard error on re-registering a name as a
  different kind;
* every legacy module-global spy (``distances.APSP_BUILDS`` & co) still
  reads correctly through its PEP 562 alias, agreeing exactly with the
  module's accessor functions, so the pre-existing spy tests and any
  external reader keep working unchanged;
* telemetry never alters result bytes: a campaign run with tracing on
  produces records and a report byte-identical to a run with tracing
  off, and a :class:`ServeApp` answers byte-identically under both
  arms — the hard constraint of the observability PR;
* ``/metricsz`` renders valid exposition text over the JSON-only HTTP
  transport (``text/plain; version=0.0.4``) and carries both the
  process-wide engine spies and the per-app serve metrics;
* the ``campaigns status`` ETA/shard lines and the new ``campaigns
  profile`` subcommand summarise a real store and a real trace sink.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.campaigns import CampaignSpec, CampaignStore, run_campaign
from repro.campaigns.aggregate import render_report
from repro.campaigns.cli import main as cli_main
from repro.campaigns.store import _record_identity, merge_shards
from repro.core import speculative
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria import strong
from repro.graphs import bridges, canonical, distances
from repro.graphs.distances import DistanceMatrix
from repro.graphs.generation import random_connected_gnp
from repro.obs import metrics, trace
from repro.serve import ServeApp
from repro.serve import cache as serve_cache
from repro.serve.http import start_server_in_thread

PATH_5 = [[0, 1], [1, 2], [2, 3], [3, 4]]


def fresh_registry():
    return metrics.MetricRegistry()


# -- registry semantics ------------------------------------------------------


class TestCounter:
    def test_monotone_and_reset(self):
        reg = fresh_registry()
        c = reg.counter("t_total", "help")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)
        c.reset()
        assert c.value == 0

    def test_same_name_same_object(self):
        reg = fresh_registry()
        assert reg.counter("t_total", "help") is reg.counter("t_total", "x")

    def test_labels_key_distinct_series(self):
        reg = fresh_registry()
        a = reg.counter("t_total", "help", {"arm": "add"})
        b = reg.counter("t_total", "help", {"arm": "remove"})
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert (a.value, b.value) == (2, 3)

    def test_kind_conflict_raises(self):
        reg = fresh_registry()
        reg.counter("t_total", "help")
        with pytest.raises(ValueError):
            reg.gauge("t_total", "help")

    def test_thread_safe_increments(self):
        reg = fresh_registry()
        c = reg.counter("t_total", "help")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        reg = fresh_registry()
        g = reg.gauge("t_gauge", "help")
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0

    def test_callback_read_at_collection(self):
        reg = fresh_registry()
        box = {"v": 1}
        reg.gauge("t_gauge", "help", fn=lambda: box["v"])
        assert "t_gauge 1" in metrics.render(reg)
        box["v"] = 7
        assert "t_gauge 7" in metrics.render(reg)


class TestHistogram:
    def test_log_bucket_edges(self):
        # half-decade log spacing from 1 microsecond to ~31.6 seconds
        edges = metrics.LOG_BUCKETS
        assert edges == tuple(10.0 ** (k / 2.0) for k in range(-12, 4))
        assert edges[0] == pytest.approx(1e-6)
        assert edges[-1] == pytest.approx(10.0**1.5)
        assert all(b > a for a, b in zip(edges, edges[1:]))

    def test_observe_and_cumulative_samples(self):
        reg = fresh_registry()
        h = reg.histogram("t_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = dict(
            ((name, dict(labels).get("le")), value)
            for name, labels, value in h.samples()
            if name.endswith("_bucket")
        )
        assert samples[("t_seconds_bucket", "0.1")] == 1
        assert samples[("t_seconds_bucket", "1.0")] == 3
        assert samples[("t_seconds_bucket", "10.0")] == 4
        assert samples[("t_seconds_bucket", "+Inf")] == 5
        flat = {name: value for name, labels, value in h.samples()}
        assert flat["t_seconds_count"] == 5
        assert flat["t_seconds_sum"] == pytest.approx(56.05)

    def test_quantile_returns_upper_edge(self):
        reg = fresh_registry()
        h = reg.histogram("t_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.05, 0.05, 5.0):
            h.observe(v)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(0.99) == 10.0


class TestRender:
    def test_exposition_format(self):
        reg = fresh_registry()
        reg.counter("t_total", "requests served", {"arm": "add"}).inc(3)
        reg.gauge("t_gauge", "resident").set(2)
        text = metrics.render(reg)
        assert "# HELP t_total requests served\n" in text
        assert "# TYPE t_total counter\n" in text
        assert 't_total{arm="add"} 3\n' in text
        assert "# TYPE t_gauge gauge\n" in text
        assert text.endswith("\n")
        # HELP/TYPE emitted once per family even with many series
        reg.counter("t_total", "requests served", {"arm": "remove"}).inc(1)
        text = metrics.render(reg)
        assert text.count("# TYPE t_total counter") == 1

    def test_deterministic_and_multi_registry(self):
        a, b = fresh_registry(), fresh_registry()
        a.counter("zz_total", "z").inc()
        a.counter("aa_total", "a").inc()
        b.counter("mm_total", "m").inc()
        once = metrics.render(a, b)
        again = metrics.render(a, b)
        assert once == again
        assert once.index("aa_total") < once.index("mm_total")
        assert once.index("mm_total") < once.index("zz_total")

    def test_snapshot_excludes_histograms(self):
        reg = fresh_registry()
        reg.counter("t_total", "help").inc(4)
        reg.histogram("t_seconds", "help").observe(0.5)
        snap = reg.snapshot()
        assert snap["t_total"] == 4
        assert not any(k.startswith("t_seconds") for k in snap)


# -- legacy spy aliases ------------------------------------------------------


class TestSpyAliases:
    """Module attribute == accessor function, for every migrated spy."""

    def test_distance_engine_spies(self):
        graph = random_connected_gnp(10, 0.3, __import__("random").Random(1))
        before = (distances.APSP_BUILDS, distances.TOTALS_REBUILDS)
        DistanceMatrix(graph, 10**7).totals()
        assert distances.APSP_BUILDS == distances.apsp_build_count()
        assert distances.APSP_BUILDS >= before[0] + 1
        assert distances.TOTALS_REBUILDS == distances.totals_rebuild_count()
        assert distances.TOTALS_REBUILDS >= before[1] + 1
        assert distances.WTOTALS_REBUILDS == distances.wtotals_rebuild_count()
        assert distances.FTOTALS_REBUILDS == distances.ftotals_rebuild_count()
        assert (
            distances.REMOVE_BFS_REPAIRS
            == distances.remove_bfs_repair_count()
        )

    def test_bridge_spies(self):
        graph = random_connected_gnp(8, 0.4, __import__("random").Random(2))
        before = bridges.BRIDGE_REBUILDS
        DistanceMatrix(graph, 10**7).is_bridge(*next(iter(graph.edges)))
        assert bridges.BRIDGE_REBUILDS == bridges.bridge_rebuild_count()
        assert bridges.BRIDGE_REBUILDS >= before + 1
        assert bridges.BRIDGE_SWEEPS == bridges.bridge_sweep_count()

    def test_canonical_cache_spies(self):
        import networkx as nx

        canonical.canonical_cache_clear()
        hits0, misses0, size0 = canonical.canonical_cache_info()
        assert (hits0, misses0, size0) == (0, 0, 0)
        g = nx.path_graph(5)
        canonical.canonical_key(g)
        canonical.canonical_key(g)
        hits, misses, size = canonical.canonical_cache_info()
        assert misses == 1 and hits == 1 and size == 1

    def test_strong_dfs_spies(self):
        fold, engine = strong.dfs_path_counts()
        assert (strong.FOLD_DFS_RUNS, strong.ENGINE_DFS_RUNS) == (
            fold,
            engine,
        )

    def test_speculative_evaluations_spy(self):
        graph = random_connected_gnp(6, 0.4, __import__("random").Random(3))
        spec = speculative.SpeculativeEvaluator(GameState(graph, 2))
        before = speculative.EVALUATIONS
        spec.note_evaluations(3)
        spec.note_evaluation()
        assert speculative.EVALUATIONS == before + 4
        assert speculative.EVALUATIONS == speculative.evaluation_count()

    def test_serve_engine_builds_spy(self):
        before = serve_cache.ENGINE_BUILDS
        serve_cache.note_engine_build()
        assert serve_cache.ENGINE_BUILDS == before + 1
        assert (
            serve_cache.engine_cache_info()["engine_builds"]
            == serve_cache.ENGINE_BUILDS
        )

    def test_unknown_attribute_still_raises(self):
        for module in (distances, bridges, strong, speculative, serve_cache):
            with pytest.raises(AttributeError):
                module.NOT_A_SPY


# -- trace spans -------------------------------------------------------------


class TestTraceSpans:
    def test_disabled_span_is_shared_noop(self):
        trace.disable_trace()
        assert not trace.trace_enabled()
        first = trace.span("a", x=1)
        second = trace.span("b")
        assert first is second  # one shared null object, no allocation
        with first:
            pass

    def test_enabled_span_emits_jsonl(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        trace.enable_trace(sink)
        try:
            assert trace.trace_enabled()
            assert trace.trace_path() == str(sink)
            with trace.span("unit.test", n=5) as sp:
                sp.set(status=200)
        finally:
            trace.disable_trace()
        lines = sink.read_text().splitlines()
        record = json.loads(lines[-1])
        assert record["span"] == "unit.test"
        assert record["n"] == 5
        assert record["status"] == 200
        assert record["dur_ns"] >= 0
        assert {"pid", "tid", "ts"} <= set(record)

    def test_spans_counted_in_registry(self, tmp_path):
        counter = metrics.REGISTRY.counter(
            "repro_trace_spans_total", "spans emitted"
        )
        before = counter.value
        trace.enable_trace(tmp_path / "t.jsonl")
        try:
            with trace.span("unit.count"):
                pass
        finally:
            trace.disable_trace()
        assert counter.value == before + 1


# -- byte-identity: telemetry never alters results ---------------------------


def tiny_campaign_spec() -> CampaignSpec:
    return CampaignSpec(
        name="obs-identity",
        kind="tree_poa",
        seed=11,
        grids=({"n": 5, "alpha": [2, "9/2"], "concept": ["PS", "BGE"]},),
    )


class TestByteIdentity:
    def test_campaign_records_and_report_identical(self, tmp_path):
        spec = tiny_campaign_spec()

        def run(root):
            store = CampaignStore(root)
            run_campaign(spec, store)
            identities = sorted(
                json.dumps(
                    _record_identity(store.record_for(t.key)), sort_keys=True
                )
                for t in spec.trials()
            )
            return identities, render_report(spec, store)

        trace.disable_trace()
        plain_ids, plain_report = run(tmp_path / "off")
        trace.enable_trace(tmp_path / "trace.jsonl")
        try:
            traced_ids, traced_report = run(tmp_path / "on")
        finally:
            trace.disable_trace()
        assert traced_ids == plain_ids
        assert traced_report == plain_report
        # and the trace sink actually saw the campaign run
        sink = (tmp_path / "trace.jsonl").read_text()
        assert '"span":"campaign.trial"' in sink

    def test_claim_merge_report_identical(self, tmp_path):
        # the acceptance path end to end: run --claim -> merge -> report
        # must be byte-identical with tracing on vs off
        spec = tiny_campaign_spec()

        def run(root):
            run_campaign(spec, CampaignStore(root, host_id="h0"), claim=True)
            merge_shards(root, prune=True)
            store = CampaignStore(root)
            return (
                (root / "results.jsonl").read_bytes().count(b"\n"),
                render_report(spec, store),
            )

        trace.disable_trace()
        plain_lines, plain_report = run(tmp_path / "off")
        trace.enable_trace(tmp_path / "merge-trace.jsonl")
        try:
            traced_lines, traced_report = run(tmp_path / "on")
        finally:
            trace.disable_trace()
        assert traced_lines == plain_lines
        assert traced_report == plain_report
        sink = (tmp_path / "merge-trace.jsonl").read_text()
        assert '"span":"campaign.lease.claim"' in sink

    def test_serve_bodies_identical(self, tmp_path):
        payload = {"edges": PATH_5, "alpha": 2}

        def answer():
            app = ServeApp()
            status, body = app.handle("classify", dict(payload))
            assert status == 200
            return json.dumps(body, sort_keys=True)

        trace.disable_trace()
        plain = answer()
        trace.enable_trace(tmp_path / "serve.jsonl")
        try:
            traced = answer()
        finally:
            trace.disable_trace()
        assert traced == plain
        sink = (tmp_path / "serve.jsonl").read_text()
        assert '"span":"serve.request"' in sink


# -- /metricsz ---------------------------------------------------------------


class TestMetricsz:
    def test_handle_returns_exposition_text(self):
        app = ServeApp()
        app.handle("classify", {"edges": PATH_5, "alpha": 2})
        status, body = app.handle("metricsz", {})
        assert status == 200
        text = body["_raw_text"]
        assert "# TYPE repro_serve_requests_total counter\n" in text
        assert 'repro_serve_requests_total{endpoint="classify"} 1\n' in text
        # process-wide engine spies ride along in the same scrape
        assert "# TYPE repro_engine_apsp_builds_total counter\n" in text
        assert "repro_serve_engines_resident" in text
        assert "repro_serve_latency_seconds_bucket" in text

    def test_http_scrape_is_text_plain(self):
        port, stop = start_server_in_thread(ServeApp())
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request(
                "POST",
                "/classify",
                json.dumps({"edges": PATH_5, "alpha": 2}),
                {"Content-Type": "application/json"},
            )
            conn.getresponse().read()
            conn.request("GET", "/metricsz")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode("utf-8")
            conn.close()
        finally:
            stop()
        assert 'repro_serve_requests_total{endpoint="classify"} 1\n' in text

    def test_statsz_still_json_and_per_app(self):
        app = ServeApp()
        app.handle("classify", {"edges": PATH_5, "alpha": 2})
        status, stats = app.handle("statsz", {})
        assert status == 200
        assert stats["endpoints"]["classify"]["requests"] == 1
        # a second app starts from zero — per-app registry, not process
        other = ServeApp()
        status, stats = other.handle("statsz", {})
        assert "classify" not in stats["endpoints"]


# -- CLI: status ETA + shard lines, profile ----------------------------------


class TestCli:
    @pytest.fixture()
    def finished_store(self, tmp_path):
        spec = tiny_campaign_spec()
        root = tmp_path / "store"
        store = CampaignStore(root)
        trace.enable_trace(root / "trace.jsonl")
        try:
            run_campaign(spec, store)
        finally:
            trace.disable_trace()
        return root

    def test_status_reports_per_kind(self, finished_store, capsys):
        code = cli_main(["status", str(finished_store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "tree_poa: 4/4 done" in out

    def test_status_reports_per_shard_records(self, tmp_path, capsys):
        spec = tiny_campaign_spec()
        root = tmp_path / "claimed"
        store = CampaignStore(root, host_id="host-a")
        run_campaign(spec, store, claim=True)
        code = cli_main(["status", str(root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "shards:    1" in out
        assert "results-host-a.jsonl: 4 records" in out

    def test_status_eta_for_partial_run(self, tmp_path, capsys):
        spec = tiny_campaign_spec()
        root = tmp_path / "partial"
        run_campaign(spec, CampaignStore(root), max_trials=2)
        code = cli_main(["status", str(root)])
        out = capsys.readouterr().out
        assert code == 3  # pending work remains
        assert "2 pending" in out
        assert "eta:" in out and "serial" in out

    def test_profile_breaks_down_kinds_and_spans(self, finished_store, capsys):
        code = cli_main(["profile", str(finished_store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "per-kind elapsed" in out
        assert "tree_poa:" in out
        assert "trace:" in out and "spans" in out
        assert "campaign.trial" in out

    def test_profile_without_trace_sink(self, tmp_path, capsys):
        spec = tiny_campaign_spec()
        root = tmp_path / "untraced"
        run_campaign(spec, CampaignStore(root))
        code = cli_main(["profile", str(root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:     none" in out
