"""The multi-host campaign layer: leases, shards, merge, recovery.

The load-bearing guarantees under test:

* a lease is held by exactly one host — acquisition is atomic and a
  fresh lease is never breakable;
* a dead host's lease ages past its TTL and is reclaimed by exactly one
  contender; the presumed-dead owner cannot resurrect it (``refresh``
  raises instead of overwriting the reclaimer's lease);
* a torn lease body (SIGKILL mid-write) parses as stale and is
  breakable immediately;
* ``done`` markers retire chunks permanently;
* two hosts claiming concurrently over one shared store, merged, are
  byte-identical to a serial single-host run — including after one host
  is SIGKILLed mid-chunk and its work is reclaimed;
* ``merge_shards`` accounts torn lines per shard, treats byte-identical
  cross-shard duplicates as idempotent, and raises on a payload
  disagreement (a broken determinism contract, never silent).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, CampaignStore, render_report, run_campaign
from repro.campaigns.cli import main as cli_main
from repro.campaigns.executor import claim_chunk_size
from repro.campaigns.leases import LeaseManager, chunk_id
from repro.campaigns.store import merge_shards

REPO_ROOT = Path(__file__).parent.parent


class FakeClock:
    """An injectable clock so TTL expiry is deterministic, not slept for."""

    def __init__(self, now: float = 1_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def claim_spec(**overrides) -> CampaignSpec:
    """A campaign small enough to race two hosts over in a unit test."""
    payload = dict(
        name="claimable",
        kind="tree_poa",
        seed=7,
        grids=(
            {"n": 6, "alpha": [2, "9/2"], "concept": ["PS", "BGE"]},
            {
                "kind": "dynamics",
                "concept": "PS",
                "n": 7,
                "alpha": 3,
                "max_rounds": 200,
                "index": {"$range": 3},
            },
        ),
    )
    payload.update(overrides)
    return CampaignSpec(**payload)


def _comparable_records(store: CampaignStore) -> dict:
    records = {}
    for record in store.ok_records():
        stripped = dict(record)
        stripped.pop("elapsed")
        records[record["key"]] = stripped
    return records


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


# -- the lease protocol, under an injected clock -----------------------------


class TestLeaseProtocol:
    def test_acquire_is_exclusive_and_reentrant_for_the_holder(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "host-a", ttl=10.0, clock=clock)
        b = LeaseManager(tmp_path, "host-b", ttl=10.0, clock=clock)
        assert a.claim("c1")
        assert "c1" in a.held
        assert a.claim("c1")  # the holder re-claims trivially
        assert not b.claim("c1")  # a fresh lease is never breakable
        assert b.reclaimed == 0
        lease = b.read("c1")
        assert lease.host == "host-a" and lease.ttl == 10.0
        assert not lease.stale(clock())

    def test_heartbeat_pushes_refreshed_forward(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "host-a", ttl=10.0, clock=clock)
        b = LeaseManager(tmp_path, "host-b", ttl=10.0, clock=clock)
        assert a.claim("c1")
        acquired = a.read("c1").acquired
        clock.advance(8.0)
        a.refresh("c1")
        lease = a.read("c1")
        assert lease.refreshed == clock() and lease.acquired == acquired
        # 9s past the *refresh* is within the TTL even though 17s have
        # passed since the acquire — staleness is heartbeat-relative
        clock.advance(9.0)
        assert not b.claim("c1")

    def test_ttl_expiry_reclaim_and_fenced_out_owner(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "host-a", ttl=10.0, clock=clock)
        b = LeaseManager(tmp_path, "host-b", ttl=10.0, clock=clock)
        assert a.claim("c1")
        clock.advance(10.5)  # past the TTL with no heartbeat: host-a "died"
        assert b.claim("c1")
        assert b.reclaimed == 1
        assert b.read("c1").host == "host-b"
        # the presumed-dead owner must not resurrect its lease: the
        # ownership check fences it out with a diagnosable error
        with pytest.raises(ValueError, match="reclaimed by host-b"):
            a.refresh("c1")
        assert "c1" not in a.held
        # ...and its release is a no-op against the reclaimer's lease
        a.release("c1")
        assert b.read("c1").host == "host-b"

    def test_torn_lease_body_is_breakable_immediately(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "host-a", ttl=1_000.0, clock=clock)
        (tmp_path / "claims" / "c1.lease").write_text('{"host": "dead", "acq')
        lease = a.read("c1")
        assert lease.host == "?" and lease.stale(clock())
        assert a.claim("c1")  # no TTL wait: torn == stale
        assert a.reclaimed == 1

    def test_done_marker_retires_a_chunk_permanently(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "host-a", ttl=10.0, clock=clock)
        b = LeaseManager(tmp_path, "host-b", ttl=10.0, clock=clock)
        assert a.claim("c1")
        a.release("c1", done=True)
        assert a.is_done("c1") and b.is_done("c1")
        assert a.read("c1") is None  # the lease itself is dropped
        assert not a.claim("c1") and not b.claim("c1")
        clock.advance(1_000.0)  # done is forever, not TTL-bound
        assert not b.claim("c1")

    def test_release_all_and_active_listing(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "host-a", ttl=10.0, clock=clock)
        assert a.claim("c1") and a.claim("c2")
        assert {lease.chunk for lease in a.active()} == {"c1", "c2"}
        a.release_all()
        assert a.held == set() and a.active() == []

    def test_manager_rejects_unsafe_identities(self, tmp_path):
        with pytest.raises(ValueError, match="non-empty host id"):
            LeaseManager(tmp_path, "")
        with pytest.raises(ValueError, match="filename-safe"):
            LeaseManager(tmp_path, "a/b")
        with pytest.raises(ValueError, match="ttl must be positive"):
            LeaseManager(tmp_path, "a", ttl=0.0)

    def test_chunk_id_is_content_addressed(self):
        keys = ["k1", "k2", "k3"]
        assert chunk_id(keys) == chunk_id(tuple(keys))
        assert chunk_id(keys) != chunk_id(["k1", "k2"])
        assert chunk_id(keys) != chunk_id(["k2", "k1", "k3"])
        assert claim_chunk_size(7) == 1  # tiny campaigns: per-trial chunks
        assert claim_chunk_size(10_000) == 32


# -- sharded execution + merge -----------------------------------------------


class TestShardsAndMerge:
    def test_two_claiming_hosts_merge_byte_identical_to_serial(self, tmp_path):
        """Two concurrent ``run --claim`` processes over one shared store,
        merged, reproduce a serial single-host run byte-for-byte."""
        spec = claim_spec()
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        store_dir = tmp_path / "shared"

        def host(host_id: str) -> subprocess.Popen:
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro.campaigns", "run",
                    str(spec_path), "--store", str(store_dir),
                    "--claim", "--host-id", host_id, "--quiet",
                ],
                env=_cli_env(),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )

        procs = [host("host-a"), host("host-b")]
        for proc in procs:
            assert proc.wait(timeout=300) == 0

        sharded = CampaignStore(store_dir)
        shard_names = [path.name for path in sharded.shard_paths()]
        assert shard_names  # at least one host actually wrote a shard
        assert len(sharded.completed_keys()) == len(spec.trials())
        # every chunk retired: a third claiming run has nothing to take
        with CampaignStore(store_dir, host_id="host-c") as late:
            stats = run_campaign(spec, late, claim=True)
        assert stats.executed == 0 and stats.claimed_chunks == 0
        assert stats.lease_skips + stats.skipped > 0

        assert cli_main(["merge", str(store_dir), "--prune"]) == 0
        merged = CampaignStore(store_dir)
        assert merged.shard_paths() == []  # collapsed to single-file layout
        assert (store_dir / "results.jsonl").exists()

        serial = CampaignStore(tmp_path / "serial")
        with serial:
            assert run_campaign(spec, serial).failed == 0
        assert _comparable_records(merged) == _comparable_records(serial)
        assert render_report(spec, merged) == render_report(spec, serial)

    def test_sigkilled_host_is_reclaimed_and_merge_stays_identical(
        self, tmp_path
    ):
        """The full recovery story: SIGKILL host-a mid-chunk, let its lease
        age past the TTL, reclaim as host-b, merge, compare to serial."""
        spec = claim_spec(
            name="killable-claim",
            grids=(
                {
                    "kind": "dynamics",
                    "concept": "BGE",
                    "n": 22,
                    "alpha": 3,
                    "max_rounds": 500,
                    "index": {"$range": 6},
                },
            ),
        )
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        store_dir = tmp_path / "shared"
        ttl = 1.0
        # one chunk spanning the whole campaign, so the victim holds its
        # lease for the entire run and the kill always lands mid-chunk
        chunk = len(spec.trials())
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.campaigns", "run",
                str(spec_path), "--store", str(store_dir),
                "--claim", "--host-id", "host-a",
                "--lease-ttl", str(ttl), "--chunk-size", str(chunk),
                "--quiet",
            ],
            env=_cli_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        shard = store_dir / "results-host-a.jsonl"
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if shard.exists() and shard.read_text().count("\n") >= 2:
                    break
                if proc.poll() is not None:
                    break  # finished before we could kill it — still fine
                time.sleep(0.05)
            else:
                pytest.fail("claiming host produced no records within 120s")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)

        orphaned = list((store_dir / "claims").glob("*.lease"))
        time.sleep(ttl + 0.5)  # let the orphaned lease age past its TTL

        with CampaignStore(store_dir, host_id="host-b") as rescuer:
            stats = run_campaign(
                spec, rescuer, claim=True, lease_ttl=ttl, chunk_size=chunk,
            )
        assert stats.failed == 0
        if orphaned:  # the overwhelmingly common path: killed mid-chunk
            assert stats.reclaimed == 1
        assert len(CampaignStore(store_dir).completed_keys()) == len(
            spec.trials()
        )

        merge_shards(store_dir, prune=True)
        merged = CampaignStore(store_dir)
        fresh = CampaignStore(None)
        assert run_campaign(spec, fresh).failed == 0
        assert _comparable_records(merged) == _comparable_records(fresh)
        assert render_report(spec, merged) == render_report(spec, fresh)

    def test_merge_accounts_torn_lines_per_shard(self, tmp_path):
        spec = claim_spec(name="torn-merge")
        store_dir = tmp_path / "store"
        with CampaignStore(store_dir, host_id="host-a") as a:
            run_campaign(spec, a, claim=True, max_trials=3)
        with CampaignStore(store_dir, host_id="host-b") as b:
            stats_b = run_campaign(spec, b, claim=True)
        assert stats_b.failed == 0
        # a SIGKILL mid-append leaves a torn, newline-less final line
        shard_a = store_dir / "results-host-a.jsonl"
        with shard_a.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "torn-mid-wri')

        stats = merge_shards(store_dir)
        assert stats.corrupt_lines["results-host-a.jsonl"] == 1
        assert stats.corrupt_lines["results-host-b.jsonl"] == 0
        assert stats.records["results-host-a.jsonl"] == 3
        assert stats.total_merged == len(spec.trials())
        assert not stats.pruned

        # merging again is a no-op: everything is an idempotent duplicate
        again = merge_shards(store_dir, prune=True)
        assert again.total_merged == 0
        assert sum(again.duplicates.values()) == len(spec.trials())
        assert sorted(again.pruned) == [
            "results-host-a.jsonl", "results-host-b.jsonl",
        ]
        merged = CampaignStore(store_dir)
        assert len(merged.completed_keys()) == len(spec.trials())
        assert merged.corrupt_lines == 0  # the torn line never merged

    def test_cross_shard_payload_disagreement_raises(self, tmp_path):
        spec = claim_spec(name="disagree")
        store_dir = tmp_path / "store"
        with CampaignStore(store_dir) as store:
            run_campaign(spec, store, max_trials=2)
        line = (store_dir / "results.jsonl").read_text().splitlines()[0]
        record = json.loads(line)
        # elapsed is ambient — two hosts legitimately differ there
        record["elapsed"] = record["elapsed"] + 1.0
        benign = dict(record)
        (store_dir / "results-benign.jsonl").write_text(
            json.dumps(benign, sort_keys=True) + "\n"
        )
        assert len(CampaignStore(store_dir).completed_keys()) == 2
        stats = merge_shards(store_dir, prune=True)
        assert stats.duplicates["results-benign.jsonl"] == 1

        # ...but a *payload* difference is a broken determinism contract
        record["result"] = {"forged": True}
        (store_dir / "results-evil.jsonl").write_text(
            json.dumps(record, sort_keys=True) + "\n"
        )
        with pytest.raises(ValueError, match="disagree"):
            CampaignStore(store_dir)
        with pytest.raises(ValueError, match="disagree"):
            merge_shards(store_dir)

    def test_cli_guards(self, tmp_path):
        spec = claim_spec(name="guards")
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        with pytest.raises(SystemExit, match="--host-id"):
            cli_main([
                "run", str(spec_path), "--store", str(tmp_path / "s"),
                "--host-id", "lonely",
            ])
        with pytest.raises(ValueError, match="on-disk store"):
            run_campaign(claim_spec(), CampaignStore(None), claim=True)
