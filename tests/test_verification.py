"""Tests for the lemma/proposition verification harness."""

from fractions import Fraction

import networkx as nx
import pytest

from repro.constructions.stretched import (
    bge_lower_bound_star,
    stretched_binary_tree,
    stretched_tree_star,
)
from repro.core.state import GameState
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium
from repro.verification.lemmas import (
    check_lemma_2_4_window,
    check_lemma_3_3,
    check_lemma_3_4,
    check_lemma_3_5,
    check_lemma_3_11_condition,
    check_lemma_3_14,
    check_lemma_3_18,
    check_lemma_D1,
    check_lemma_D8,
    check_lemma_D9,
    check_lemma_D10,
    check_theorem_3_6,
    check_theorem_3_13,
    check_theorem_3_15,
    cycle_bse_window,
)
from repro.verification.propositions import (
    check_proposition_3_7,
    check_proposition_3_8,
    check_proposition_3_16,
    lemma_3_14_coalition_move,
    minimum_max_cost_profile,
)
from repro.verification.report import run_all_checks


def bswe_tree_state(alpha=600, eta=600) -> GameState:
    star = bge_lower_bound_star(alpha, eta)
    return GameState(star.graph, alpha)


class TestSwapLemmas:
    """Lemmas 3.3-3.5 and Theorem 3.6 on certified BSwE trees."""

    @pytest.fixture(scope="class")
    def state(self):
        built = bswe_tree_state()
        assert is_bilateral_greedy_equilibrium(built)  # certify first
        return built

    def test_lemma_3_3(self, state):
        assert check_lemma_3_3(state)

    def test_lemma_3_4(self, state):
        assert check_lemma_3_4(state)

    def test_lemma_3_5(self, state):
        assert check_lemma_3_5(state)

    def test_theorem_3_6(self, state):
        assert check_theorem_3_6(state)

    def test_lemmas_on_star(self):
        """The star is trivially BSwE; the lemmas must hold."""
        state = GameState(nx.star_graph(20), 5)
        assert check_lemma_3_3(state)
        assert check_lemma_3_4(state)
        assert check_lemma_3_5(state)
        assert check_theorem_3_6(state)

    def test_lemma_3_5_flags_violations(self):
        """A long path at small alpha is NOT BSwE; the lemma's inequality
        indeed fails there, confirming the check has teeth."""
        state = GameState(nx.path_graph(40), 2)
        assert not check_lemma_3_5(state).holds


class TestTheorem313:
    def test_star_satisfies(self):
        state = GameState(nx.star_graph(30), 5)
        assert check_theorem_3_13(state)

    def test_guards(self):
        with pytest.raises(ValueError):
            check_theorem_3_13(GameState(nx.star_graph(10), 1))
        with pytest.raises(ValueError):
            check_theorem_3_13(GameState(nx.star_graph(30), 100))


class TestLemma314:
    def test_no_violation_on_star(self):
        assert check_lemma_3_14(GameState(nx.star_graph(10), 2))

    def test_deep_siblings_flagged_and_move_constructed(self):
        """A path-pair 'V' tree violates the depth condition; the size-3
        coalition move from the proof must exist and certify instability."""
        # two long paths glued at a root, plus bulk to keep 4a/n small
        graph = nx.Graph()
        length = 12
        for leg in range(2):
            previous = 0
            for step in range(length):
                node = 1 + leg * length + step
                graph.add_edge(previous, node)
                previous = node
        hub = 2 * length + 1
        for extra in range(40):  # bulk leaves on the root
            graph.add_edge(0, hub + extra)
        state = GameState(graph, 3)
        assert not check_lemma_3_14(state).holds
        move = lemma_3_14_coalition_move(state)
        assert move is not None
        assert len(move.coalition) == 3
        assert validate_certificate(state, move)

    def test_theorem_3_15_bound_on_small_trees(self):
        """Exact 3-BSE trees on <= 8 nodes: rho <= 25 with huge margin."""
        from repro.equilibria.strong import is_k_strong_equilibrium
        from repro.graphs.generation import all_trees

        for tree in all_trees(7):
            for alpha in (1, 3, 9):
                state = GameState(tree, alpha)
                if is_k_strong_equilibrium(state, 3):
                    assert check_theorem_3_15(state)


class TestStretchedTreeLemmas:
    def test_lemma_d1(self):
        assert check_lemma_D1(stretched_binary_tree(4, 2))

    def test_lemma_d8(self):
        for k in (1, 2, 3):
            assert check_lemma_D8(k, 40 * k)

    def test_lemma_d9_and_d10(self):
        star = stretched_tree_star(1, 40, 300)
        assert check_lemma_D9(star)
        assert check_lemma_D10(star, 600)

    def test_lemma_3_11_condition_known_true(self):
        star = stretched_tree_star(k=1, t=20, eta=500)
        assert check_lemma_3_11_condition(star, 4500)

    def test_lemma_3_11_condition_known_false(self):
        """At alpha ~ sqrt(n) the condition must fail (Theorem 3.13's
        regime: the PoA is constant there, no lower bound possible)."""
        star = stretched_tree_star(k=1, t=20, eta=500)
        assert not check_lemma_3_11_condition(star, 23).holds


class TestCycleWindow:
    def test_even_matches_paper(self):
        window = cycle_bse_window(6)
        assert window["paper_high"] == window["corrected_high"] == 6
        assert window["paper_low"] == 4

    def test_odd_paper_overshoots(self):
        """Documented deviation: the paper's odd-n upper end exceeds the
        exact removal loss."""
        window = cycle_bse_window(5)
        assert window["paper_high"] == 6
        assert window["corrected_high"] == 4  # (n-1)^2/4

    def test_window_check(self):
        assert check_lemma_2_4_window(5, 3)
        assert not check_lemma_2_4_window(5, 5).holds

    def test_window_scales_quadratically(self):
        assert cycle_bse_window(101)["corrected_high"] == Fraction(100**2, 4)


class TestLemma318AndPropositions:
    def test_lemma_3_18_various(self):
        for n, alpha, d in ((50, 10, 2), (200, 300, 3), (500, 700, 5)):
            assert check_lemma_3_18(n, alpha, d)

    def test_proposition_3_7(self):
        assert check_proposition_3_7(6, [1, 2, Fraction(7, 2)])

    def test_proposition_3_8(self):
        assert check_proposition_3_8(d=2, k=1)
        assert check_proposition_3_8(d=3, k=2)

    def test_proposition_3_16(self):
        assert check_proposition_3_16(5)

    def test_proposition_3_22_profile_grows(self):
        """The flattest known cost profile at alpha = n grows with n."""
        small = minimum_max_cost_profile(16)
        large = minimum_max_cost_profile(4096)
        assert large > small


class TestFullReport:
    @pytest.mark.slow
    def test_all_checks_hold(self):
        checks = run_all_checks()
        failed = [c.name for c in checks if not c.holds]
        assert not failed, failed
