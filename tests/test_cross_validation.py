"""Randomized cross-validation of the incremental engine + bridge set + Fold.

The lockdown suite for the bridge-aware removal engine: hundreds of seeded
random add/remove/swap trajectories over mixed graph classes (trees, sparse
and dense G(n, p) — including disconnected starts — and paper
constructions), asserting **bit-exact agreement at every step** between

* the in-place :class:`~repro.graphs.distances.DistanceMatrix` and a fresh
  scipy APSP of the mutated graph,
* the incrementally maintained ``totals()`` and a fresh row sum,
* the incrementally maintained weighted ``wtotals()`` (uniform and
  random demand matrices) and a fresh weighted row sum, plus weighted
  per-agent costs along ``GameState.apply`` chains vs naive
  recomputation — with the ``WTOTALS_REBUILDS`` spy proving exactly one
  weighted row-sum per engine and zero along trajectories,
* the incrementally maintained model aggregates ``ftotals()`` (linear,
  concave, convex and max cost models, with and without demand
  matrices) and a fresh per-entry recomputation — including the
  max-aggregate's maintained multiplicity counts — with the
  ``FTOTALS_REBUILDS`` spy proving exactly one model-value pass per
  engine and zero along trajectories,
* the incrementally maintained bridge set and a from-scratch naive
  recompute (edge is a bridge iff deleting it disconnects its endpoints —
  re-derived by BFS per edge, independent of the chain decomposition),
* per-agent and social costs along ``GameState.apply`` chains and a naive
  recomputation on a fresh graph copy,

plus spy-counter proofs that the maintenance really is incremental: one
chain-decomposition build per engine materialisation and zero rebuilds
along trajectories, bridge removals never entering the BFS-repair path
(even on cyclic graphs), and the rows-only batch sweep never mutating the
engine.  The ``_SMALL_N`` dispatch arms and the reservoir-sampling random
scheduler are cross-validated here too.
"""

from __future__ import annotations

import random
from fractions import Fraction

import networkx as nx
import numpy as np
import pytest

from repro.constructions.basic import clique, complete_binary_tree, cycle, star
from repro.core.concepts import Concept
from repro.core.moves import AddEdge, RemoveEdge, Swap
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.dynamics.schedulers import random_improvement_scheduler
from repro.graphs import bridges as bridges_mod
from repro.graphs import distances as distances_mod
from repro.graphs.distances import DistanceMatrix, apsp_matrix
from repro.graphs.generation import random_connected_gnp, random_tree

UNREACHABLE = 10**6

#: trajectories driven by the engine-level fuzzer below (the satellite
#: floor is 200; class-level cost/undo trajectories come on top)
FAMILIES = ("tree", "sparse", "dense", "construction", "disconnected")
SEEDS_PER_FAMILY = 40
STEPS = 8


# -- naive references -------------------------------------------------------


def naive_bridges(graph: nx.Graph) -> frozenset:
    """Bridges recomputed from scratch, one BFS per edge.

    Deliberately the most naive definition — edge ``uv`` is a bridge iff
    deleting it disconnects ``u`` from ``v`` — sharing no code with the
    chain decomposition under test.
    """
    found = set()
    for u, v in graph.edges:
        graph.remove_edge(u, v)
        connected = nx.has_path(graph, u, v)
        graph.add_edge(u, v)
        if not connected:
            found.add((u, v) if u < v else (v, u))
    return frozenset(found)


def naive_cost(graph: nx.Graph, alpha, agent: int, unreachable: int):
    """``alpha * deg + dist`` recomputed on a fresh APSP of a fresh copy."""
    dist = apsp_matrix(graph, unreachable)
    return alpha * graph.degree(agent) + int(dist[agent].sum())


def start_graph(family: str, rng: random.Random) -> nx.Graph:
    if family == "tree":
        return random_tree(rng.randint(2, 12), rng)
    if family == "sparse":
        return random_connected_gnp(rng.randint(4, 12), 0.2, rng)
    if family == "dense":
        return random_connected_gnp(rng.randint(4, 11), 0.6, rng)
    if family == "construction":
        pick = rng.randrange(4)
        if pick == 0:
            return cycle(rng.randint(3, 10))
        if pick == 1:
            return star(rng.randint(3, 10))
        if pick == 2:
            return complete_binary_tree(rng.randint(2, 3))
        # lollipop: a clique with a pendant path — cyclic, with bridges
        core = rng.randint(3, 5)
        graph = clique(core)
        for extra in range(core, core + rng.randint(1, 4)):
            graph.add_edge(extra - 1, extra)
        return graph
    # possibly disconnected G(n, p): exercises sentinel pairs and
    # disconnect/reconnect sequences from the very first move
    n = rng.randint(2, 12)
    return nx.gnp_random_graph(n, rng.random() * 0.4, seed=rng.randrange(10**6))


def assert_endpoint_arrays_consistent(dm: DistanceMatrix) -> None:
    """The incrementally maintained endpoint arrays mirror the bridge set.

    The arrays are in unspecified order, so compare as a set of pairs;
    entry count must match exactly (no stale tail past the live length).
    """
    bridge_set = dm._bridges
    first, second = bridge_set._endpoint_arrays()
    assert len(first) == len(second) == len(bridge_set)
    pairs = {(int(a), int(b)) for a, b in zip(first, second)}
    assert pairs == {tuple(edge) for edge in bridge_set.as_frozenset()}


def random_step(dm: DistanceMatrix, graph: nx.Graph, rng: random.Random):
    """One random legal mutation (add / remove / swap); returns its token.

    Removals draw from *all* edges — bridges included — so trajectories
    routinely disconnect the graph and later reconnect it.
    """
    n = graph.number_of_nodes()
    edges = list(graph.edges)
    non_edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not graph.has_edge(u, v)
    ]
    kind = rng.random()
    if kind < 0.4 and non_edges:
        return dm.apply_add(*rng.choice(non_edges))
    if kind < 0.8 and edges:
        return dm.apply_remove(*rng.choice(edges))
    if edges:
        actor, old = rng.choice(edges)
        partners = [
            w for w in range(n) if w != actor and not graph.has_edge(actor, w)
        ]
        if old in partners:
            partners.remove(old)
        if partners:
            return dm.apply_swap(actor, old, rng.choice(partners))
    return None


# -- the fuzzer: 200 engine-level trajectories ------------------------------


class TestTrajectoryCrossValidation:
    """``len(FAMILIES) * SEEDS_PER_FAMILY`` seeded random trajectories,
    every step cross-checked against fresh scipy APSP and naive bridges."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_random_trajectories(self, family):
        offset = FAMILIES.index(family) * 10_000
        for seed in range(SEEDS_PER_FAMILY):
            rng = random.Random(offset + seed)
            graph = start_graph(family, rng)
            dm = DistanceMatrix(graph, UNREACHABLE)
            rebuilds_at_start = bridges_mod.BRIDGE_REBUILDS
            assert dm.bridges() == naive_bridges(graph)
            for _ in range(STEPS):
                if random_step(dm, graph, rng) is None:
                    continue
                fresh = apsp_matrix(graph, UNREACHABLE)
                assert (dm.matrix == fresh).all()
                assert dm.matrix.dtype == np.int64
                assert (dm.totals() == fresh.sum(axis=1)).all()
                assert dm.bridges() == naive_bridges(graph)
                assert dm.is_forest == nx.is_forest(graph)
                assert_endpoint_arrays_consistent(dm)
            # incrementality: zero chain-decomposition rebuilds after the
            # one build at materialisation
            assert bridges_mod.BRIDGE_REBUILDS == rebuilds_at_start

    def test_undo_restores_bridges_and_totals(self):
        for seed in range(25):
            rng = random.Random(70_000 + seed)
            graph = start_graph(FAMILIES[seed % len(FAMILIES)], rng)
            dm = DistanceMatrix(graph, UNREACHABLE)
            matrix_before = dm.matrix.copy()
            totals_before = dm.totals()
            bridges_before = dm.bridges()
            forest_before = dm.is_forest
            edges_before = sorted(map(sorted, graph.edges))
            tokens = []
            for _ in range(STEPS):
                token = random_step(dm, graph, rng)
                if token is not None:
                    tokens.append(token)
            for token in reversed(tokens):
                dm.undo(token)
            assert (dm.matrix == matrix_before).all()
            assert (dm.totals() == totals_before).all()
            assert dm.bridges() == bridges_before
            assert dm.is_forest == forest_before
            assert sorted(map(sorted, graph.edges)) == edges_before
            assert_endpoint_arrays_consistent(dm)

    def test_disconnect_and_reconnect_sequence(self):
        """A scripted split of a cyclic graph into three pieces and back."""
        graph = clique(4)
        graph.add_edges_from([(3, 4), (4, 5), (5, 6)])
        dm = DistanceMatrix(graph, UNREACHABLE)
        script = [
            ("remove", 4, 5),  # bridge: splits off {5, 6}
            ("remove", 3, 4),  # bridge: isolates {4}
            ("remove", 0, 1),  # non-bridge inside the clique
            ("add", 0, 6),  # reconnects {5, 6} the other way around
            ("add", 1, 4),  # reconnects {4}
            ("remove", 5, 6),  # bridge again
            ("add", 2, 6),  # closes a cycle through the old far side
        ]
        for op, u, v in script:
            if op == "add":
                dm.apply_add(u, v)
            else:
                dm.apply_remove(u, v)
            fresh = apsp_matrix(graph, UNREACHABLE)
            assert (dm.matrix == fresh).all()
            assert (dm.totals() == fresh.sum(axis=1)).all()
            assert dm.bridges() == naive_bridges(graph)


# -- GameState cost trajectories --------------------------------------------


class TestCostCrossValidation:
    """Per-agent and social costs along apply chains vs naive recompute."""

    def test_costs_match_naive_along_apply_chains(self):
        for seed in range(30):
            rng = random.Random(80_000 + seed)
            graph = random_connected_gnp(rng.randint(3, 9), 0.35, rng)
            alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
            state = GameState(graph, alpha)
            state.dist  # materialise so apply() hands the engine off
            for _ in range(6):
                move = self._random_move(state, rng)
                if move is None:
                    break
                state = state.apply(move)
                expected_social = Fraction(0)
                for agent in range(state.n):
                    expected = naive_cost(
                        state.graph, alpha, agent, state.m_constant
                    )
                    assert state.cost(agent) == expected
                    expected_social += expected
                assert state.social_cost() == expected_social

    @staticmethod
    def _random_move(state: GameState, rng: random.Random):
        edges = list(state.graph.edges)
        non_edges = list(state.non_edges())
        kind = rng.random()
        if kind < 0.45 and non_edges:
            return AddEdge(*rng.choice(non_edges))
        if kind < 0.75 and edges:
            return RemoveEdge(*rng.choice(edges))
        if edges:
            actor, old = rng.choice(edges)
            partners = [
                w
                for w in range(state.n)
                if w not in (actor, old) and not state.graph.has_edge(actor, w)
            ]
            if partners:
                return Swap(actor=actor, old=old, new=rng.choice(partners))
        return None


# -- weighted totals: the traffic-model engine arm ---------------------------


def demand_matrix(n: int, seed: int) -> np.ndarray:
    """Uniform every third seed, random integer demands otherwise.

    Random matrices include zero entries (``high`` starts at 0) so the
    zero-demand regime rides every trajectory family.
    """
    if seed % 3 == 0:
        return TrafficMatrix.uniform(n).weights
    return TrafficMatrix.random_demands(n, seed=seed, high=4).weights


class TestWeightedTotalsCrossValidation:
    """``wtotals()`` vs a fresh weighted row sum at every trajectory step."""

    def test_wtotals_match_naive_along_trajectories(self):
        for seed in range(25):
            rng = random.Random(100_000 + seed)
            family = FAMILIES[seed % len(FAMILIES)]
            graph = start_graph(family, rng)
            n = graph.number_of_nodes()
            weights = demand_matrix(n, seed)
            dm = DistanceMatrix(graph, UNREACHABLE)
            dm.bind_traffic(weights)
            rebuilds_before = distances_mod.wtotals_rebuild_count()
            assert (
                dm.wtotals()
                == (apsp_matrix(graph, UNREACHABLE) * weights).sum(axis=1)
            ).all()
            assert (
                distances_mod.wtotals_rebuild_count() == rebuilds_before + 1
            )
            for _ in range(STEPS):
                if random_step(dm, graph, rng) is None:
                    continue
                fresh = apsp_matrix(graph, UNREACHABLE)
                assert (dm.wtotals() == (fresh * weights).sum(axis=1)).all()
                # uniform demand: the weighted vector is the uniform one
                if (weights == TrafficMatrix.uniform(n).weights).all():
                    assert (dm.wtotals() == dm.totals()).all()
            # incrementality: exactly one weighted row-sum per engine
            assert (
                distances_mod.wtotals_rebuild_count() == rebuilds_before + 1
            )

    def test_undo_restores_wtotals(self):
        for seed in range(15):
            rng = random.Random(110_000 + seed)
            graph = start_graph(FAMILIES[seed % len(FAMILIES)], rng)
            n = graph.number_of_nodes()
            weights = demand_matrix(n, seed + 1)
            dm = DistanceMatrix(graph, UNREACHABLE)
            dm.bind_traffic(weights)
            before = dm.wtotals()
            tokens = []
            for _ in range(STEPS):
                token = random_step(dm, graph, rng)
                if token is not None:
                    tokens.append(token)
            for token in reversed(tokens):
                dm.undo(token)
            assert (dm.wtotals() == before).all()

    def test_asymmetric_demands_stay_exact(self):
        """Only the *distance* matrix is symmetric; W need not be."""
        rng = random.Random(7)
        graph = random_connected_gnp(9, 0.35, rng)
        weights = np.arange(81, dtype=np.int64).reshape(9, 9).copy()
        np.fill_diagonal(weights, 0)
        dm = DistanceMatrix(graph, UNREACHABLE)
        dm.bind_traffic(weights)
        dm.wtotals()
        for _ in range(15):
            random_step(dm, graph, rng)
            fresh = apsp_matrix(graph, UNREACHABLE)
            assert (dm.wtotals() == (fresh * weights).sum(axis=1)).all()

    def test_weighted_costs_match_naive_along_apply_chains(self):
        for seed in range(20):
            rng = random.Random(120_000 + seed)
            n = rng.randint(3, 9)
            graph = random_connected_gnp(n, 0.35, rng)
            alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
            traffic = (
                TrafficMatrix.uniform(n)
                if seed % 3 == 0
                else TrafficMatrix.random_demands(n, seed=seed, high=4)
            )
            state = GameState(graph, alpha, traffic=traffic)
            state.dist  # materialise so apply() hands the engine off
            rebuilds_before = distances_mod.wtotals_rebuild_count()
            for _ in range(6):
                move = TestCostCrossValidation._random_move(state, rng)
                if move is None:
                    break
                state = state.apply(move)
                expected_social = Fraction(0)
                fresh = apsp_matrix(state.graph, state.m_constant)
                for agent in range(state.n):
                    expected = state.alpha * state.graph.degree(agent) + int(
                        (traffic.weights[agent] * fresh[agent]).sum()
                    )
                    assert state.cost(agent) == expected
                    expected_social += expected
                assert state.social_cost() == expected_social
            # weighted trajectories pay at most one weighted row-sum
            # (zero when the uniform dispatch never touches wtotals)
            assert (
                distances_mod.wtotals_rebuild_count() <= rebuilds_before + 1
            )


# -- model aggregates: the cost-model engine arm ------------------------------


MODEL_KINDS = ("linear", "concave", "convex", "max")


def cost_model_for(kind: str):
    from repro.core.costmodel import (
        ConcaveCost,
        ConvexCost,
        LinearCost,
        MaxCost,
    )

    return {
        "linear": LinearCost(),
        "concave": ConcaveCost(Fraction(1, 2)),
        "convex": ConvexCost(2),
        "max": MaxCost(),
    }[kind]


def model_ops_for(kind: str, n: int, weights):
    """Engine-facing ops for one model (the binding GameState would make)."""
    from repro.core.costmodel import ModelOps

    model = cost_model_for(kind)
    mass = int(weights.sum(axis=1).max()) if weights is not None else n - 1
    return ModelOps(
        n,
        model.table(n),
        model.unreachable_cost(n, Fraction(3), mass),
        weights=weights,
        aggregate=model.aggregate,
    )


def naive_model_totals(graph: nx.Graph, ops):
    """Per-row model aggregates (and max multiplicities) from scratch.

    Pure-Python per-entry loops over a fresh APSP — shares no vector
    code with ``ModelOps.apply_f`` or the engine's shift maintenance.
    """
    fresh = apsp_matrix(graph, UNREACHABLE)
    n = fresh.shape[0]
    table = ops.table
    totals, counts = [], []
    for u in range(n):
        values = []
        for v in range(n):
            d = int(fresh[u, v])
            f = int(table[d]) if d < n else int(ops.unreachable_value)
            w = 1 if ops.weights is None else int(ops.weights[u, v])
            values.append(w * f)
        if ops.aggregate == "max":
            top = max(values)
            totals.append(top)
            counts.append(sum(1 for value in values if value == top))
        else:
            totals.append(sum(values))
            counts.append(0)
    return (
        np.array(totals, dtype=np.int64),
        np.array(counts, dtype=np.int64),
    )


class TestModelTotalsCrossValidation:
    """``ftotals()`` / max-with-counts vs per-entry recompute every step."""

    def test_ftotals_match_naive_along_trajectories(self):
        for seed in range(32):
            rng = random.Random(130_000 + seed)
            family = FAMILIES[seed % len(FAMILIES)]
            graph = start_graph(family, rng)
            n = graph.number_of_nodes()
            kind = MODEL_KINDS[seed % len(MODEL_KINDS)]
            weights = None if seed % 2 == 0 else demand_matrix(n, seed)
            ops = model_ops_for(kind, n, weights)
            dm = DistanceMatrix(graph, UNREACHABLE)
            dm.bind_cost_model(ops)
            rebuilds_before = distances_mod.ftotals_rebuild_count()
            expected, expected_counts = naive_model_totals(graph, ops)
            assert (dm.ftotals() == expected).all()
            assert (
                distances_mod.ftotals_rebuild_count() == rebuilds_before + 1
            )
            for _ in range(STEPS):
                if random_step(dm, graph, rng) is None:
                    continue
                expected, expected_counts = naive_model_totals(graph, ops)
                assert (dm.ftotals() == expected).all()
                assert dm.ftotals().dtype == np.int64
                if ops.aggregate == "max":
                    assert (dm.fmax_counts() == expected_counts).all()
                if (
                    kind == "linear"
                    and weights is None
                    and nx.is_connected(graph)
                ):
                    # identity table, sum aggregate: the plain totals
                    # (only reachable pairs — unreachable ones map to the
                    # model's value sentinel, not the distance sentinel)
                    assert (dm.ftotals() == dm.totals()).all()
            # incrementality: exactly one model-value pass per engine
            assert (
                distances_mod.ftotals_rebuild_count() == rebuilds_before + 1
            )

    def test_undo_restores_ftotals_and_counts(self):
        for seed in range(16):
            rng = random.Random(140_000 + seed)
            graph = start_graph(FAMILIES[seed % len(FAMILIES)], rng)
            n = graph.number_of_nodes()
            kind = MODEL_KINDS[seed % len(MODEL_KINDS)]
            weights = None if seed % 2 == 0 else demand_matrix(n, seed + 1)
            dm = DistanceMatrix(graph, UNREACHABLE)
            dm.bind_cost_model(model_ops_for(kind, n, weights))
            before = dm.ftotals()
            counts_before = (
                dm.fmax_counts() if kind == "max" else None
            )
            tokens = []
            for _ in range(STEPS):
                token = random_step(dm, graph, rng)
                if token is not None:
                    tokens.append(token)
            for token in reversed(tokens):
                dm.undo(token)
            assert (dm.ftotals() == before).all()
            if counts_before is not None:
                assert (dm.fmax_counts() == counts_before).all()

    def test_modeled_costs_match_naive_along_apply_chains(self):
        """``GameState(cost_model=...)`` costs vs per-entry recompute.

        Covers concave / convex / max (the modeled dispatch) with and
        without a demand matrix; one model-value pass per chain, zero
        along the moves.
        """
        for seed in range(24):
            rng = random.Random(150_000 + seed)
            n = rng.randint(3, 9)
            graph = random_connected_gnp(n, 0.35, rng)
            alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
            kind = ("concave", "convex", "max")[seed % 3]
            traffic = (
                None
                if seed % 2 == 0
                else TrafficMatrix.random_demands(n, seed=seed, high=4)
            )
            state = GameState(
                graph, alpha, traffic=traffic, cost_model=cost_model_for(kind)
            )
            state.dist  # materialise so apply() hands the engine off
            rebuilds_before = distances_mod.ftotals_rebuild_count()
            for _ in range(6):
                move = TestCostCrossValidation._random_move(state, rng)
                if move is None:
                    break
                state = state.apply(move)
                expected_totals, _ = naive_model_totals(
                    state.graph, state.model_ops
                )
                expected_social = Fraction(0)
                for agent in range(state.n):
                    expected = state.alpha * state.graph.degree(agent) + int(
                        expected_totals[agent]
                    )
                    assert state.cost(agent) == expected
                    expected_social += expected
                assert state.social_cost() == expected_social
            # modeled trajectories pay at most one model-value pass
            assert (
                distances_mod.ftotals_rebuild_count() <= rebuilds_before + 1
            )


# -- spy counters: the maintenance is genuinely incremental -----------------


class TestBridgeSpies:
    def test_exactly_one_build_at_materialisation(self):
        graph = random_connected_gnp(9, 0.3, random.Random(5))
        before = bridges_mod.bridge_rebuild_count()
        dm = DistanceMatrix(graph, UNREACHABLE)
        assert bridges_mod.bridge_rebuild_count() == before + 1
        rng = random.Random(6)
        for _ in range(20):
            random_step(dm, graph, rng)
        dm.bridges()
        dm.is_forest
        assert bridges_mod.bridge_rebuild_count() == before + 1

    def test_additions_and_bridge_removals_never_sweep(self):
        """Only non-bridge removals pay the component-local sweep."""
        graph = clique(4)
        graph.add_edges_from([(3, 4), (4, 5)])
        dm = DistanceMatrix(graph, UNREACHABLE)
        sweeps = bridges_mod.bridge_sweep_count()
        dm.apply_remove(4, 5)  # bridge: O(1) delta
        dm.apply_add(4, 5)  # reconnect: O(1) delta
        dm.apply_add(2, 4)  # closes a cycle: vectorised side test
        dm.apply_add(0, 5)  # another cycle
        assert bridges_mod.bridge_sweep_count() == sweeps
        dm.apply_remove(0, 1)  # non-bridge: the one sweeping case
        assert bridges_mod.bridge_sweep_count() == sweeps + 1

    def test_bridge_removal_never_enters_bfs_repair(self):
        """Regression: general-graph bridge removals take the split path."""
        graph = clique(5)  # cyclic core: is_forest shortcuts cannot apply
        graph.add_edges_from([(4, 5), (5, 6), (6, 7)])
        dm = DistanceMatrix(graph, UNREACHABLE)
        repairs = distances_mod.remove_bfs_repair_count()
        for u, v in ((6, 7), (5, 6), (4, 5)):
            dm.apply_remove(u, v)
            fresh = apsp_matrix(graph, UNREACHABLE)
            assert (dm.matrix == fresh).all()
        assert distances_mod.remove_bfs_repair_count() == repairs
        dm.apply_remove(0, 1)  # non-bridge: must BFS-repair
        assert distances_mod.remove_bfs_repair_count() == repairs + 1

    def test_speculative_bridge_queries_run_no_bfs(self, monkeypatch):
        """rows_after_remove & friends on a bridge are pure matrix reads."""
        graph = clique(4)
        graph.add_edges_from([(3, 4), (4, 5)])
        dm = DistanceMatrix(graph, UNREACHABLE)

        def boom(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("BFS invoked for a bridge removal query")

        monkeypatch.setattr(distances_mod, "_bfs_row_py", boom)
        monkeypatch.setattr(distances_mod, "_rows_from_csr", boom)
        reference = graph.copy()
        reference.remove_edge(3, 4)
        fresh = apsp_matrix(reference, UNREACHABLE)
        row_u, row_v = dm.rows_after_remove(3, 4)
        assert (row_u == fresh[3]).all() and (row_v == fresh[4]).all()
        assert dm.remove_loss_pair(3, 4) == (
            int((fresh[3] - dm.matrix[3]).sum()),
            int((fresh[4] - dm.matrix[4]).sum()),
        )
        assert (dm.matrix_after_bridge_removal(3, 4) == fresh).all()


# -- Fold: bridge splits on general graphs ----------------------------------


class TestFoldBridgeSplits:
    def test_split_matches_fresh_apsp_on_general_bridges(self):
        checked = 0
        for seed in range(40):
            rng = random.Random(90_000 + seed)
            graph = start_graph("construction", rng)
            state = GameState(graph, 2)
            spec = SpeculativeEvaluator(state)
            bridges = [
                edge
                for edge in graph.edges
                if spec.is_bridge(*edge) and not nx.is_forest(graph)
            ]
            for u, v in bridges:
                tracked = sorted(
                    {u, v, *rng.sample(range(state.n), min(3, state.n))}
                )
                fold = spec.fold(tracked).split(u, v)
                reference = graph.copy()
                reference.remove_edge(u, v)
                fresh = apsp_matrix(reference, state.m_constant)
                for node in tracked:
                    assert fold.dist_total(node) == int(fresh[node].sum())
                checked += 1
        assert checked >= 10  # the family really produced cyclic bridges

    def test_split_then_extend_matches_swap(self):
        graph = clique(4)
        graph.add_edges_from([(3, 4), (4, 5)])
        state = GameState(graph, 2)
        spec = SpeculativeEvaluator(state)
        # swap the bridge 3-4 over to 0-4: split then extend, rows-only
        fold = spec.fold((3, 4, 0)).split(3, 4).extend(0, 4)
        reference = graph.copy()
        reference.remove_edge(3, 4)
        reference.add_edge(0, 4)
        fresh = apsp_matrix(reference, state.m_constant)
        for node in (3, 4, 0):
            assert fold.dist_total(node) == int(fresh[node].sum())


# -- the rows-only batch sweep ----------------------------------------------


class TestBatchSweepCrossValidation:
    """spec.best must equal the per-candidate speculate loop bit-for-bit,
    without mutating the engine."""

    def test_best_matches_per_candidate_speculation(self):
        for seed in range(40):
            rng = random.Random(60_000 + seed)
            graph = random_connected_gnp(rng.randint(4, 10), rng.random() * 0.5, rng)
            state = GameState(graph, Fraction(rng.randint(1, 7), 2))
            spec = SpeculativeEvaluator(state)
            pool = self._pool(state, rng)
            version_before = state.dist._version
            chosen = spec.best(iter(pool))
            assert state.dist._version == version_before  # rows-only sweep
            reference = None
            for move in pool:
                evaluation = spec.evaluate(move)
                if reference is None or (
                    evaluation.total_delta < reference[1].total_delta
                ):
                    reference = (move, evaluation)
            if reference is None:
                assert chosen is None
                continue
            assert chosen is not None
            assert chosen[0] == reference[0]
            assert chosen[1].cost_deltas == reference[1].cost_deltas

    @staticmethod
    def _pool(state: GameState, rng: random.Random):
        pool = []
        for u, v in state.graph.edges:
            pool.append(RemoveEdge(u, v))
        for u, v in state.non_edges():
            pool.append(AddEdge(u, v))
        for actor, old in list(state.graph.edges):
            for new in range(state.n):
                if new not in (actor, old) and not state.graph.has_edge(
                    actor, new
                ):
                    pool.append(Swap(actor=actor, old=old, new=new))
        rng.shuffle(pool)
        return pool[:25]


# -- _SMALL_N dispatch arms -------------------------------------------------


class TestDispatchArmsAgree:
    """Both removal-repair dispatch arms are bit-exact around the
    threshold: purely a constant-factor choice (the satellite guard for
    re-measuring ``_SMALL_N`` on new hardware)."""

    @pytest.mark.parametrize("n_offset", (-2, 2))
    def test_python_and_scipy_arms_bit_exact(self, monkeypatch, n_offset):
        n = distances_mod._SMALL_N + n_offset
        rng = random.Random(42 + n_offset)
        graph = random_connected_gnp(n, 3.0 / n, rng)
        step_seeds = [random.Random(7).randint(0, 10**6) + i for i in range(6)]
        results = {}
        for arm, forced_small_n in (("python", 10**9), ("scipy", 0)):
            monkeypatch.setattr(distances_mod, "_SMALL_N", forced_small_n)
            work = graph.copy()
            dm = DistanceMatrix(work, UNREACHABLE)
            trace = []
            for step_seed in step_seeds:
                random_step(dm, work, random.Random(step_seed))
                trace.append(dm.matrix.copy())
            # speculative queries exercise both query arms too
            edge = next(iter(work.edges))
            trace.append(np.stack(dm.rows_after_remove(*edge)))
            results[arm] = trace
        for step, (left, right) in enumerate(
            zip(results["python"], results["scipy"])
        ):
            assert (left == right).all(), f"dispatch arms disagree at {step}"


# -- reservoir-sampling random scheduler ------------------------------------


def _list_based_random_scheduler(moves, rng: random.Random):
    """The pre-reservoir implementation, kept as the seeded reference."""
    pool = list(moves)
    if not pool:
        return None
    return pool[rng.randrange(len(pool))]


class TestReservoirScheduler:
    def test_empty_and_singleton_pools(self):
        rng = random.Random(0)
        assert random_improvement_scheduler(None, iter(()), rng) is None
        assert (
            random_improvement_scheduler(None, iter(("only",)), rng) == "only"
        )

    def test_deterministic_given_seed(self):
        pool = list(range(9))
        for seed in range(50):
            first = random_improvement_scheduler(
                None, iter(pool), random.Random(seed)
            )
            second = random_improvement_scheduler(
                None, iter(pool), random.Random(seed)
            )
            assert first == second

    def test_seeded_equivalence_with_list_based_reference(self):
        """Reservoir and list-based draws are equidistributed.

        Individual seeds map to different candidates (the two consume the
        rng differently), so equivalence is over the seeded ensemble: with
        3000 seeds and 8 candidates both implementations must hit every
        candidate within the same tight band around uniform — and the
        counts are deterministic, so this never flakes.
        """
        pool = list(range(8))
        draws = 3000
        reservoir = [0] * len(pool)
        reference = [0] * len(pool)
        for seed in range(draws):
            reservoir[
                random_improvement_scheduler(
                    None, iter(pool), random.Random(seed)
                )
            ] += 1
            reference[
                _list_based_random_scheduler(iter(pool), random.Random(seed))
            ] += 1
        expected = draws / len(pool)
        for counts in (reservoir, reference):
            assert sum(counts) == draws
            for count in counts:
                assert abs(count - expected) < 0.25 * expected

    def test_reservoir_consumes_stream_lazily(self):
        """The generator is drained one item at a time, never listed."""
        seen = []

        def stream():
            for item in range(100):
                seen.append(item)
                yield item

        chosen = random_improvement_scheduler(None, stream(), random.Random(3))
        assert chosen in range(100)
        assert seen == list(range(100))  # uniformity requires full drain


# -- endpoint-array cache (PR 4) ---------------------------------------------


class TestEndpointArrayCache:
    """The versioned incremental endpoint arrays of the bridge set."""

    def test_version_bumps_only_on_array_changes(self):
        graph = nx.path_graph(6)
        dm = DistanceMatrix(graph, UNREACHABLE)
        bridge_set = dm._bridges
        assert_endpoint_arrays_consistent(dm)  # materialises the arrays
        version = bridge_set.version
        dm.apply_add(0, 5)  # closes a cycle: every bridge on it dies
        assert bridge_set.version > version
        assert_endpoint_arrays_consistent(dm)
        version = bridge_set.version
        dm.apply_add(1, 4)  # second chord: no bridge status changes
        assert bridge_set.version == version
        assert_endpoint_arrays_consistent(dm)

    def test_arrays_survive_growth_and_undo(self):
        """Appends past the initial capacity, then LIFO undo to the start."""
        graph = nx.complete_graph(5)  # zero bridges: minimum capacity
        graph.add_nodes_from(range(5, 30))  # isolated, attached below
        dm = DistanceMatrix(graph, UNREACHABLE)
        assert_endpoint_arrays_consistent(dm)
        tokens = []
        for leaf in range(5, 30):  # 25 connecting adds, all new bridges
            tokens.append(dm.apply_add(leaf - 1 if leaf > 5 else 0, leaf))
            assert_endpoint_arrays_consistent(dm)
        assert len(dm.bridges()) == 25
        for token in reversed(tokens):
            dm.undo(token)
            assert_endpoint_arrays_consistent(dm)
        assert len(dm.bridges()) == 0

    def test_lazy_materialisation_after_mutations(self):
        """Deltas before the first array query are absorbed by the build."""
        graph = nx.path_graph(8)
        dm = DistanceMatrix(graph, UNREACHABLE)
        dm.apply_add(0, 7)
        dm.apply_remove(3, 4)
        assert_endpoint_arrays_consistent(dm)


# -- backend arms x batch sweep: whole-trajectory fuzz ------------------------


def _dynamics_trace(seed: int, regime: str):
    """One seeded best-response trajectory; returns its full bit record."""
    from repro.core.costmodel import costmodel_from_spec
    from repro.dynamics.engine import run_dynamics
    from repro.dynamics.schedulers import best_improvement_scheduler

    rng = random.Random(970_000 + seed)
    n = rng.randint(6, 11)
    graph = random_connected_gnp(n, 0.25 + rng.random() * 0.3, rng)
    alpha = Fraction(rng.randint(1, 8), rng.choice((1, 2)))
    concept = Concept.BGE if seed % 2 else Concept.PS
    traffic = cost_model = None
    if regime != "uniform":
        traffic = TrafficMatrix.random_demands(n, seed=seed, high=5)
    if regime == "modeled":
        cost_model = costmodel_from_spec({"model": "convex", "exponent": 2}, n)
    result = run_dynamics(
        graph,
        alpha,
        concept,
        scheduler=best_improvement_scheduler,
        max_rounds=40,
        rng=random.Random(seed),
        traffic=traffic,
        cost_model=cost_model,
    )
    return (
        tuple(repr(move) for move in result.moves),
        tuple(sorted(tuple(sorted(e)) for e in result.final.graph.edges)),
        tuple(result.social_costs),
        result.converged,
        result.cycled,
        result.rounds,
    )


class TestBackendAndBatchTrajectoryFuzz:
    """Whole best-response trajectories are bit-identical across every
    registered backend arm and with batching forced on and off.

    The reference leg is (numpy arm, batching on); every other
    (arm, batching) combination must reproduce its move sequence, social
    cost trace and final graph exactly — 40 uniform + 15 weighted + 15
    modeled seeded trajectories per combination (>= 140 trajectories
    with numpy alone, >= 280 when the numba arm registers), on top of
    the engine-level trajectory fuzz above."""

    SEEDS = {"uniform": 40, "weighted": 15, "modeled": 15}

    @pytest.mark.parametrize("regime", ("uniform", "weighted", "modeled"))
    def test_trajectories_bit_identical(self, regime, monkeypatch):
        from repro import _backend
        from repro.core import batch as batch_mod

        seeds = range(self.SEEDS[regime])
        reference = None
        for arm in _backend.available_backends():
            with _backend.use_backend(arm):
                for batching in (True, False):
                    monkeypatch.setattr(batch_mod, "ENABLED", batching)
                    traces = [_dynamics_trace(s, regime) for s in seeds]
                    if reference is None:
                        reference = (arm, batching, traces)
                        continue
                    for seed, trace in zip(seeds, traces):
                        assert trace == reference[2][seed], (
                            f"({arm}, batching={batching}) diverges from "
                            f"{reference[:2]} at seed {seed}"
                        )
