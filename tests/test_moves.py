"""Tests for move datatypes (repro.core.moves)."""

import networkx as nx
import pytest

from repro.core.moves import (
    AddEdge,
    CoalitionMove,
    NeighborhoodMove,
    RemoveEdge,
    Swap,
    normalize_edge,
)


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(3, 1) == (1, 3)
        assert normalize_edge(1, 3) == (1, 3)

    def test_rejects_loop(self):
        with pytest.raises(ValueError):
            normalize_edge(2, 2)


class TestRemoveEdge:
    def test_apply(self):
        move = RemoveEdge(actor=0, other=1)
        result = move.apply(nx.path_graph(3))
        assert not result.has_edge(0, 1)
        assert result.has_edge(1, 2)

    def test_beneficiaries(self):
        assert RemoveEdge(actor=2, other=1).beneficiaries() == (2,)

    def test_original_untouched(self):
        graph = nx.path_graph(3)
        RemoveEdge(actor=0, other=1).apply(graph)
        assert graph.has_edge(0, 1)


class TestAddEdge:
    def test_apply(self):
        result = AddEdge(0, 2).apply(nx.path_graph(3))
        assert result.has_edge(0, 2)

    def test_rejects_existing(self):
        with pytest.raises(ValueError):
            AddEdge(0, 1).apply(nx.path_graph(3))

    def test_beneficiaries_are_both_endpoints(self):
        assert AddEdge(0, 2).beneficiaries() == (0, 2)


class TestSwap:
    def test_apply(self):
        result = Swap(actor=0, old=1, new=2).apply(nx.path_graph(3))
        assert not result.has_edge(0, 1)
        assert result.has_edge(0, 2)

    def test_rejects_missing_old(self):
        with pytest.raises(ValueError):
            Swap(actor=0, old=2, new=1).apply(nx.path_graph(3))

    def test_rejects_existing_new(self):
        graph = nx.cycle_graph(3)
        with pytest.raises(ValueError):
            Swap(actor=0, old=1, new=2).apply(graph)

    def test_beneficiaries(self):
        assert Swap(actor=0, old=1, new=2).beneficiaries() == (0, 2)


class TestNeighborhoodMove:
    def test_apply(self):
        move = NeighborhoodMove(center=0, removed=(1,), added=(3,))
        result = move.apply(nx.path_graph(4))
        assert not result.has_edge(0, 1)
        assert result.has_edge(0, 3)

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            NeighborhoodMove(center=0, removed=(1,), added=(1,))

    def test_rejects_center_in_partners(self):
        with pytest.raises(ValueError):
            NeighborhoodMove(center=0, removed=(0,), added=())

    def test_rejects_adding_existing_edge(self):
        move = NeighborhoodMove(center=0, removed=(), added=(1,))
        with pytest.raises(ValueError):
            move.apply(nx.path_graph(3))

    def test_beneficiaries_center_plus_added(self):
        move = NeighborhoodMove(center=5, removed=(1, 2), added=(3, 4))
        assert move.beneficiaries() == (5, 3, 4)


class TestCoalitionMove:
    def test_apply(self):
        move = CoalitionMove(
            coalition=(0, 2),
            removed_edges=((0, 1),),
            added_edges=((0, 2),),
        )
        result = move.apply(nx.path_graph(3))
        assert not result.has_edge(0, 1)
        assert result.has_edge(0, 2)

    def test_rejects_nonincident_removal(self):
        with pytest.raises(ValueError):
            CoalitionMove(coalition=(0,), removed_edges=((1, 2),))

    def test_rejects_outside_addition(self):
        with pytest.raises(ValueError):
            CoalitionMove(coalition=(0, 1), added_edges=((0, 2),))

    def test_beneficiaries_are_members(self):
        move = CoalitionMove(coalition=(1, 2, 3))
        assert move.beneficiaries() == (1, 2, 3)
