"""Naive reference implementations used to validate the fast checkers.

Everything here recomputes distances from scratch with networkx BFS and
compares exact Fraction costs — slow but obviously correct.  The unit tests
cross-check every optimised checker against these on enumerated small
graphs, so any vectorisation bug surfaces as a disagreement.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

import networkx as nx

from repro.core.state import GameState


def naive_cost(graph: nx.Graph, alpha: Fraction, u: int, m_constant: int) -> Fraction:
    lengths = nx.single_source_shortest_path_length(graph, u)
    total = 0
    for v in graph.nodes:
        if v == u:
            continue
        total += lengths.get(v, m_constant)
    return alpha * graph.degree(u) + total


def _improves(
    state: GameState, graph_after: nx.Graph, agent: int
) -> bool:
    before = naive_cost(state.graph, state.alpha, agent, state.m_constant)
    after = naive_cost(graph_after, state.alpha, agent, state.m_constant)
    return after < before


def naive_is_remove_equilibrium(state: GameState) -> bool:
    for u, v in state.graph.edges:
        for actor in (u, v):
            mutated = state.graph.copy()
            mutated.remove_edge(u, v)
            if _improves(state, mutated, actor):
                return False
    return True


def naive_is_bilateral_add_equilibrium(state: GameState) -> bool:
    nodes = list(state.graph.nodes)
    for u, v in itertools.combinations(nodes, 2):
        if state.graph.has_edge(u, v):
            continue
        mutated = state.graph.copy()
        mutated.add_edge(u, v)
        if _improves(state, mutated, u) and _improves(state, mutated, v):
            return False
    return True


def _naive_dist_total(graph: nx.Graph, u: int, m_constant: int) -> int:
    lengths = nx.single_source_shortest_path_length(graph, u)
    return sum(
        lengths.get(v, m_constant) for v in graph.nodes if v != u
    )


def naive_is_unilateral_add_equilibrium(state: GameState) -> bool:
    """Only the buyer pays, so she improves iff her distance gain > alpha."""
    nodes = list(state.graph.nodes)
    for u, v in itertools.permutations(nodes, 2):
        if state.graph.has_edge(u, v):
            continue
        mutated = state.graph.copy()
        mutated.add_edge(u, v)
        gain = _naive_dist_total(
            state.graph, u, state.m_constant
        ) - _naive_dist_total(mutated, u, state.m_constant)
        if gain > state.alpha:
            return False
    return True


def naive_is_bilateral_swap_equilibrium(state: GameState) -> bool:
    nodes = list(state.graph.nodes)
    for u in nodes:
        for v in list(state.graph.neighbors(u)):
            for w in nodes:
                if w in (u, v) or state.graph.has_edge(u, w):
                    continue
                mutated = state.graph.copy()
                mutated.remove_edge(u, v)
                mutated.add_edge(u, w)
                # u's buying cost unchanged, w's increases by alpha:
                # both conditions are captured by the cost comparison.
                if _improves(state, mutated, u) and _improves(state, mutated, w):
                    return False
    return True


def naive_is_pairwise_stable(state: GameState) -> bool:
    return naive_is_remove_equilibrium(
        state
    ) and naive_is_bilateral_add_equilibrium(state)


def naive_is_bge(state: GameState) -> bool:
    return naive_is_pairwise_stable(
        state
    ) and naive_is_bilateral_swap_equilibrium(state)
