"""Naive reference implementations used to validate the fast checkers.

Everything here recomputes distances from scratch with networkx BFS and
compares exact Fraction costs — slow but obviously correct.  The unit tests
cross-check every optimised checker against these on enumerated small
graphs, so any vectorisation bug surfaces as a disagreement.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

import networkx as nx

from repro.core.state import GameState


def naive_cost(graph: nx.Graph, alpha: Fraction, u: int, m_constant: int) -> Fraction:
    lengths = nx.single_source_shortest_path_length(graph, u)
    total = 0
    for v in graph.nodes:
        if v == u:
            continue
        total += lengths.get(v, m_constant)
    return alpha * graph.degree(u) + total


def _improves(
    state: GameState, graph_after: nx.Graph, agent: int
) -> bool:
    before = naive_cost(state.graph, state.alpha, agent, state.m_constant)
    after = naive_cost(graph_after, state.alpha, agent, state.m_constant)
    return after < before


def naive_is_remove_equilibrium(state: GameState) -> bool:
    for u, v in state.graph.edges:
        for actor in (u, v):
            mutated = state.graph.copy()
            mutated.remove_edge(u, v)
            if _improves(state, mutated, actor):
                return False
    return True


def naive_is_bilateral_add_equilibrium(state: GameState) -> bool:
    nodes = list(state.graph.nodes)
    for u, v in itertools.combinations(nodes, 2):
        if state.graph.has_edge(u, v):
            continue
        mutated = state.graph.copy()
        mutated.add_edge(u, v)
        if _improves(state, mutated, u) and _improves(state, mutated, v):
            return False
    return True


def _naive_dist_total(graph: nx.Graph, u: int, m_constant: int) -> int:
    lengths = nx.single_source_shortest_path_length(graph, u)
    return sum(
        lengths.get(v, m_constant) for v in graph.nodes if v != u
    )


def naive_is_unilateral_add_equilibrium(state: GameState) -> bool:
    """Only the buyer pays, so she improves iff her distance gain > alpha."""
    nodes = list(state.graph.nodes)
    for u, v in itertools.permutations(nodes, 2):
        if state.graph.has_edge(u, v):
            continue
        mutated = state.graph.copy()
        mutated.add_edge(u, v)
        gain = _naive_dist_total(
            state.graph, u, state.m_constant
        ) - _naive_dist_total(mutated, u, state.m_constant)
        if gain > state.alpha:
            return False
    return True


def naive_is_bilateral_swap_equilibrium(state: GameState) -> bool:
    nodes = list(state.graph.nodes)
    for u in nodes:
        for v in list(state.graph.neighbors(u)):
            for w in nodes:
                if w in (u, v) or state.graph.has_edge(u, w):
                    continue
                mutated = state.graph.copy()
                mutated.remove_edge(u, v)
                mutated.add_edge(u, w)
                # u's buying cost unchanged, w's increases by alpha:
                # both conditions are captured by the cost comparison.
                if _improves(state, mutated, u) and _improves(state, mutated, w):
                    return False
    return True


def naive_is_pairwise_stable(state: GameState) -> bool:
    return naive_is_remove_equilibrium(
        state
    ) and naive_is_bilateral_add_equilibrium(state)


def naive_is_bge(state: GameState) -> bool:
    return naive_is_pairwise_stable(
        state
    ) and naive_is_bilateral_swap_equilibrium(state)


# -- pre-refactor searcher references ----------------------------------------
#
# Verbatim ports of the BNE / k-BSE searchers as they stood before the
# speculative-kernel refactor: per-candidate graph copies plus fresh BFS
# (neighborhood) and adjacency-set rebuilds plus pure-Python BFS
# (coalitions).  The budget-accounting formulas are the ones the library
# still uses, so SearchBudgetExceeded behaviour must match exactly.


def reference_find_improving_neighborhood_move(
    state: GameState,
    centers=None,
    max_evaluations: int = 2_000_000,
    max_add=None,
    max_remove=None,
):
    from repro.core.costs import all_strictly_improve
    from repro.core.moves import NeighborhoodMove
    from repro.equilibria.neighborhood import (
        SearchBudgetExceeded,
        _center_space_size,
        willing_partners,
    )

    if centers is None:
        centers = range(state.n)
    alpha = state.alpha
    for center in centers:
        neighbors = sorted(state.graph.neighbors(center))
        willing = willing_partners(state, center)
        degree = len(neighbors)
        if max_remove is not None:
            degree = min(degree, max_remove)
        if _center_space_size(degree, len(willing), max_add) > max_evaluations:
            raise SearchBudgetExceeded(
                f"center {center}: deg={len(neighbors)}, "
                f"willing={len(willing)} exceeds budget {max_evaluations}"
            )
        center_dist = state.dist.total(center)
        slack = center_dist - (state.n - 1)
        remove_cap = len(neighbors) if max_remove is None else max_remove
        add_cap = len(willing) if max_add is None else min(max_add, len(willing))
        for removed_size in range(remove_cap + 1):
            for removed in itertools.combinations(neighbors, removed_size):
                for added_size in range(add_cap + 1):
                    if removed_size == 0 and added_size == 0:
                        continue
                    if alpha * (added_size - removed_size) >= slack:
                        break
                    for added in itertools.combinations(willing, added_size):
                        move = NeighborhoodMove(
                            center=center, removed=removed, added=added
                        )
                        graph_after = move.apply(state.graph)
                        if all_strictly_improve(
                            state, graph_after, move.beneficiaries()
                        ):
                            return move
    return None


def _reference_powerset(items):
    return itertools.chain.from_iterable(
        itertools.combinations(items, size) for size in range(len(items) + 1)
    )


def _reference_dist_total(adjacency, source: int, unreachable: int) -> int:
    from collections import deque

    n = len(adjacency)
    dist = [-1] * n
    dist[source] = 0
    queue = deque([source])
    total = 0
    seen = 1
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[node] + 1
                total += dist[neighbor]
                seen += 1
                queue.append(neighbor)
    return total + (n - seen) * unreachable


def reference_find_improving_coalition_move(
    state: GameState,
    max_coalition_size: int,
    coalitions=None,
    max_evaluations: int = 5_000_000,
):
    from repro.core.moves import CoalitionMove
    from repro.equilibria.neighborhood import SearchBudgetExceeded
    from repro.equilibria.strong import _coalition_edge_space

    if coalitions is None:
        nodes = range(state.n)
        coalitions = itertools.chain.from_iterable(
            itertools.combinations(nodes, size)
            for size in range(1, min(max_coalition_size, state.n) + 1)
        )
    base_dist = {u: state.dist.total(u) for u in range(state.n)}
    base_adjacency = [set() for _ in range(state.n)]
    for u, v in state.graph.edges:
        base_adjacency[u].add(v)
        base_adjacency[v].add(u)
    budget = max_evaluations
    for coalition in coalitions:
        removable, addable = _coalition_edge_space(state, coalition)
        space = 2 ** (len(removable) + len(addable))
        budget -= space
        if budget < 0:
            raise SearchBudgetExceeded(
                f"coalition {coalition}: 2^{len(removable) + len(addable)} "
                f"move candidates exceed the evaluation budget"
            )
        members = list(coalition)
        for removed in _reference_powerset(removable):
            for added in _reference_powerset(addable):
                if not removed and not added:
                    continue
                adjacency = [set(neighbors) for neighbors in base_adjacency]
                for u, v in removed:
                    adjacency[u].discard(v)
                    adjacency[v].discard(u)
                for u, v in added:
                    adjacency[u].add(v)
                    adjacency[v].add(u)
                improving = True
                for member in members:
                    new_dist = _reference_dist_total(
                        adjacency, member, state.m_constant
                    )
                    delta_buy = len(adjacency[member]) - state.graph.degree(
                        member
                    )
                    if not state.alpha * delta_buy < (
                        base_dist[member] - new_dist
                    ):
                        improving = False
                        break
                if improving:
                    return CoalitionMove(
                        coalition=tuple(coalition),
                        removed_edges=tuple(removed),
                        added_edges=tuple(added),
                    )
    return None
