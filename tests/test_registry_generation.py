"""Tests for the checker registry, graph generation, and certificates."""

import random

import networkx as nx
import pytest

from repro.core.concepts import Concept, TREE_LADDER
from repro.core.moves import AddEdge, RemoveEdge
from repro.core.state import GameState
from repro.equilibria.certificates import StabilityReport, validate_certificate
from repro.equilibria.registry import check, checker_for
from repro.graphs.generation import (
    all_connected_graphs,
    all_trees,
    random_connected_gnp,
    random_tree,
)


class TestRegistry:
    def test_checker_for_every_dispatchable_concept(self):
        for concept in (Concept.RE, Concept.BAE, Concept.PS, Concept.BSWE,
                        Concept.BGE, Concept.BNE, Concept.BSE,
                        Concept.UNILATERAL_AE):
            assert checker_for(concept) is not None

    def test_unilateral_ne_not_dispatchable(self):
        with pytest.raises(ValueError):
            checker_for(Concept.UNILATERAL_NE)

    def test_check_with_k(self):
        state = GameState(nx.star_graph(4), 2)
        assert check(state, Concept.BGE, k=2)
        assert check(state, Concept.BGE, k=3)

    def test_check_dispatches(self):
        state = GameState(nx.star_graph(4), 2)
        for concept in TREE_LADDER:
            assert check(state, concept)

    def test_concept_enum_values(self):
        assert Concept.PS.value == "pairwise-stability"
        assert Concept.BSE.is_bilateral
        assert not Concept.UNILATERAL_AE.is_bilateral
        assert str(Concept.RE) == "remove-equilibrium"


class TestTreeEnumeration:
    @pytest.mark.parametrize(
        "n,count", [(1, 1), (2, 1), (3, 1), (4, 2), (5, 3), (6, 6), (7, 11),
                    (8, 23), (9, 47), (10, 106)]
    )
    def test_tree_counts(self, n, count):
        assert sum(1 for _ in all_trees(n)) == count

    def test_all_are_trees_with_canonical_nodes(self):
        for tree in all_trees(7):
            assert tree.number_of_edges() == 6
            assert set(tree.nodes) == set(range(7))
            assert nx.is_connected(tree)

    def test_pairwise_non_isomorphic(self):
        trees = list(all_trees(7))
        for i in range(len(trees)):
            for j in range(i + 1, len(trees)):
                assert not nx.is_isomorphic(trees[i], trees[j])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(all_trees(0))


class TestAtlasEnumeration:
    @pytest.mark.parametrize("n,count", [(1, 1), (2, 1), (3, 2), (4, 6),
                                         (5, 21), (6, 112)])
    def test_connected_graph_counts(self, n, count):
        assert sum(1 for _ in all_connected_graphs(n)) == count

    def test_dispatches_beyond_atlas(self):
        # n = 8 is past the networkx atlas: the canonical-key layered
        # enumerator takes over (tree layer first, so the slice is cheap)
        import itertools

        graphs = list(itertools.islice(all_connected_graphs(8), 5))
        assert len(graphs) == 5
        for graph in graphs:
            assert graph.number_of_nodes() == 8
            assert nx.is_connected(graph)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(all_connected_graphs(0))


class TestRandomModels:
    def test_random_tree_is_tree(self, rng):
        for n in (1, 2, 5, 20):
            tree = random_tree(n, rng)
            assert tree.number_of_nodes() == n
            assert tree.number_of_edges() == max(0, n - 1)
            if n > 1:
                assert nx.is_connected(tree)

    def test_random_tree_seeded(self):
        a = random_tree(10, random.Random(5))
        b = random_tree(10, random.Random(5))
        assert sorted(a.edges) == sorted(b.edges)

    def test_gnp_connected(self, rng):
        for _ in range(5):
            graph = random_connected_gnp(12, 0.2, rng)
            assert nx.is_connected(graph)

    def test_gnp_denser_with_higher_p(self):
        sparse = random_connected_gnp(20, 0.0, random.Random(1))
        dense = random_connected_gnp(20, 0.9, random.Random(1))
        assert dense.number_of_edges() > sparse.number_of_edges()


class TestCertificates:
    def test_valid_certificate_accepted(self):
        state = GameState(nx.path_graph(6), 1)
        assert validate_certificate(state, AddEdge(0, 5))

    def test_non_improving_move_rejected(self):
        state = GameState(nx.star_graph(5), 2)
        # adding a leaf-to-leaf edge at alpha=2 gains only 1 < alpha
        assert not validate_certificate(state, AddEdge(1, 2))

    def test_removal_certificate(self):
        state = GameState(nx.complete_graph(5), 10)
        assert validate_certificate(state, RemoveEdge(actor=0, other=1))

    def test_stability_report_truthiness(self):
        assert StabilityReport(stable=True)
        assert not StabilityReport(stable=False)
