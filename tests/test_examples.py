"""Smoke tests: every example runs end-to-end on reduced parameters."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "pairwise stable?" in output
        assert "star: rho = 1.0" in output

    def test_cooperation_ladder_small(self, capsys):
        load_example("cooperation_ladder").main(7)
        output = capsys.readouterr().out
        assert "PoA(PS)" in output
        assert "PoA(3-BSE)" in output

    def test_isp_peering_small(self, capsys):
        load_example("isp_peering").main(10, 5, 3)
        output = capsys.readouterr().out
        assert "Peering dynamics" in output
        assert "ISPs" in output

    def test_conjecture_hunt_small(self, capsys):
        load_example("conjecture_hunt").main(5, 2, 3)
        output = capsys.readouterr().out
        assert "Frozen minimal witness" in output
        # the exhaustive sweep rediscovers the Prop 2.3 refutation at
        # (n=5, alpha=2) and prints its replayable certificate
        assert "Corbo-Parkes conjecture, exhaustively" in output
        assert "RemoveEdge" in output

    @pytest.mark.slow
    def test_worst_case_gallery(self, capsys):
        load_example("worst_case_gallery").main()
        output = capsys.readouterr().out
        assert "Worst-case gallery" in output
        assert "checks hold" in output
