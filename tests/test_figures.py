"""Tests for the frozen figure graphs — every claim the paper's proofs make
about these instances is re-checked exactly."""

from fractions import Fraction

import pytest

from repro.constructions.figures import (
    figure2_nash_not_pairwise_stable,
    figure5_bae_bge_not_bne,
    figure6_bne_not_2bse,
    figure7_kbse_not_bne,
    figure8_bae_not_unilateral_ae,
)
from repro.core.costs import all_strictly_improve
from repro.core.moves import NeighborhoodMove
from repro.core.state import GameState
from repro.equilibria.add import (
    is_bilateral_add_equilibrium,
    is_unilateral_add_equilibrium,
)
from repro.equilibria.nash import is_nash_equilibrium
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.remove import removal_loss
from repro.equilibria.strong import (
    find_improving_coalition_move,
    is_k_strong_equilibrium,
)


class TestFigure2:
    """Proposition 2.3: the Corbo–Parkes conjecture is false."""

    def test_is_unilateral_nash_equilibrium(self):
        fig = figure2_nash_not_pairwise_stable()
        state = GameState(fig.graph, fig.alpha)
        assert is_nash_equilibrium(state, fig.assignment)

    def test_not_pairwise_stable(self):
        fig = figure2_nash_not_pairwise_stable()
        state = GameState(fig.graph, fig.alpha)
        assert not is_pairwise_stable(state)

    def test_the_break_is_a_removal_by_the_non_owner(self):
        fig = figure2_nash_not_pairwise_stable()
        state = GameState(fig.graph, fig.alpha)
        a, b = fig.node("a"), fig.node("b")
        assert fig.assignment.owner[(a, b)] == b  # b owns; a is free-riding
        assert removal_loss(state, a, b) < state.alpha  # a drops it bilaterally


class TestFigure5:
    """Proposition A.4: BAE ∩ BGE does not imply BNE."""

    @pytest.fixture(scope="class")
    def fig(self):
        return figure5_bae_bge_not_bne()

    @pytest.fixture(scope="class")
    def state(self, fig):
        return GameState(fig.graph, fig.alpha)

    def test_in_bae(self, state):
        assert is_bilateral_add_equilibrium(state)

    def test_in_bge(self, state):
        assert is_bilateral_greedy_equilibrium(state)

    def test_single_swap_gain_is_exactly_104(self, fig, state):
        """The proof: swapping a-b1 for a-c1 reduces c1's cost by only 104."""
        from repro.equilibria.swap import swap_gains

        a, b1, c1 = fig.node("a"), fig.node("b1"), fig.node("c1")
        _, gain_c1 = swap_gains(state, a, b1, c1)
        assert gain_c1 == 104
        assert gain_c1 < state.alpha  # 104 < 104.5

    def test_double_swap_breaks_bne(self, fig, state):
        """The neighborhood move: a swaps both b's for both c's; the c_i
        gain 105 > alpha and a gains 2."""
        move = NeighborhoodMove(
            center=fig.node("a"),
            removed=(fig.node("b1"), fig.node("b2")),
            added=(fig.node("c1"), fig.node("c2")),
        )
        after = move.apply(state.graph)
        assert all_strictly_improve(state, after, move.beneficiaries())

    def test_c1_gain_in_double_swap_is_105(self, fig, state):
        move = NeighborhoodMove(
            center=fig.node("a"),
            removed=(fig.node("b1"), fig.node("b2")),
            added=(fig.node("c1"), fig.node("c2")),
        )
        after = GameState(move.apply(state.graph), fig.alpha)
        c1 = fig.node("c1")
        assert state.dist_cost(c1) - after.dist_cost(c1) == 105


class TestFigure6:
    """Proposition A.5: BNE does not imply 2-BSE."""

    @pytest.fixture(scope="class")
    def fig(self):
        return figure6_bne_not_2bse()

    @pytest.fixture(scope="class")
    def state(self, fig):
        return GameState(fig.graph, fig.alpha)

    def test_paper_distance_costs(self, fig, state):
        assert state.dist_cost(fig.node("a1")) == 19
        assert state.dist_cost(fig.node("b1")) == 27
        assert state.dist_cost(fig.node("c1")) == 19

    def test_in_bne(self, state):
        assert is_neighborhood_equilibrium(state)

    def test_not_in_2bse(self, state):
        assert not is_k_strong_equilibrium(state, 2)

    def test_paper_coalition_is_the_break(self, fig, state):
        """{a1, a3}: drop a1-c1 and a3-c2, add a1-a3."""
        move = find_improving_coalition_move(state, 2)
        assert move is not None
        assert set(move.coalition) == {fig.node("a1"), fig.node("a3")}

    def test_symmetry_of_node_classes(self, state, fig):
        for group in (("a1", "a2", "a3", "a4"), ("b1", "b2", "b3", "b4"),
                      ("c1", "c2")):
            costs = {state.cost(fig.node(name)) for name in group}
            assert len(costs) == 1


class TestFigure7:
    """Proposition A.7: k-BSE does not imply BNE."""

    def test_center_neighborhood_move_improves(self):
        fig = figure7_kbse_not_bne(i=12)
        state = GameState(fig.graph, fig.alpha)
        move = NeighborhoodMove(
            center=fig.node("a"),
            removed=tuple(fig.node(f"b{j}") for j in range(1, 13)),
            added=tuple(fig.node(f"c{j}") for j in range(1, 13)),
        )
        after = move.apply(state.graph)
        assert all_strictly_improve(state, after, move.beneficiaries())

    def test_c_gain_matches_proof_formula(self):
        """c's distance cost falls from 4 + 12(i-1) to 3 + 8(i-1)."""
        i = 10
        fig = figure7_kbse_not_bne(i=i)
        state = GameState(fig.graph, fig.alpha)
        c1 = fig.node("c1")
        assert state.dist_cost(c1) == 4 + 12 * (i - 1)
        move = NeighborhoodMove(
            center=fig.node("a"),
            removed=tuple(fig.node(f"b{j}") for j in range(1, i + 1)),
            added=tuple(fig.node(f"c{j}") for j in range(1, i + 1)),
        )
        after = GameState(move.apply(state.graph), fig.alpha)
        assert after.dist_cost(c1) == 3 + 8 * (i - 1)

    @pytest.mark.slow
    def test_small_instance_is_2bse(self):
        """A scaled-down instance (i = 6) is exactly 2-BSE-stable."""
        fig = figure7_kbse_not_bne(i=6)
        state = GameState(fig.graph, fig.alpha)
        assert is_k_strong_equilibrium(state, 2, max_evaluations=20_000_000)


class TestFigure8:
    """Proposition 2.1: BAE does not imply unilateral AE."""

    @pytest.fixture(scope="class")
    def fig(self):
        return figure8_bae_not_unilateral_ae()

    @pytest.fixture(scope="class")
    def state(self, fig):
        return GameState(fig.graph, fig.alpha)

    def test_in_bae(self, state):
        assert is_bilateral_add_equilibrium(state)

    def test_not_in_unilateral_ae(self, state):
        assert not is_unilateral_add_equilibrium(state)

    def test_a1_buys_towards_hub(self, fig, state):
        """a1's solo gain from the edge to d dwarfs alpha."""
        gain = state.dist.add_gain(fig.node("a1"), fig.node("d"))
        assert gain > state.alpha

    def test_d_would_not_reciprocate(self, fig, state):
        """d's own gain from that edge stays below alpha (paper: 'connecting
        to a only reduces its distance cost by 2')."""
        gain = state.dist.add_gain(fig.node("d"), fig.node("a1"))
        assert gain == 2
        assert gain < state.alpha
