"""Tests for exact edge-price arithmetic (repro._alpha)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro._alpha import (
    as_alpha,
    big_m,
    fits_int64,
    strict_gt_threshold,
    strict_lt_threshold,
)


class TestAsAlpha:
    def test_int(self):
        assert as_alpha(4) == Fraction(4)

    def test_fraction_passthrough(self):
        value = Fraction(7, 3)
        assert as_alpha(value) is value

    def test_string_decimal(self):
        assert as_alpha("104.5") == Fraction(209, 2)

    def test_string_ratio(self):
        assert as_alpha("1/2") == Fraction(1, 2)

    def test_dyadic_float_is_exact(self):
        assert as_alpha(4.5) == Fraction(9, 2)
        assert as_alpha(0.5) == Fraction(1, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_alpha(True)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_alpha(float("nan"))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            as_alpha(object())


class TestStrictThresholds:
    def test_integer_alpha(self):
        assert strict_gt_threshold(Fraction(4)) == 5
        assert strict_lt_threshold(Fraction(4)) == 3

    def test_half_integer_alpha(self):
        assert strict_gt_threshold(Fraction(9, 2)) == 5
        assert strict_lt_threshold(Fraction(9, 2)) == 4

    @given(
        numerator=st.integers(min_value=1, max_value=10_000),
        denominator=st.integers(min_value=1, max_value=100),
        gain=st.integers(min_value=0, max_value=10_000),
    )
    def test_gt_threshold_matches_exact_comparison(
        self, numerator, denominator, gain
    ):
        alpha = Fraction(numerator, denominator)
        assert (gain > alpha) == (gain >= strict_gt_threshold(alpha))

    @given(
        numerator=st.integers(min_value=1, max_value=10_000),
        denominator=st.integers(min_value=1, max_value=100),
        gain=st.integers(min_value=0, max_value=10_000),
    )
    def test_lt_threshold_matches_exact_comparison(
        self, numerator, denominator, gain
    ):
        alpha = Fraction(numerator, denominator)
        assert (gain < alpha) == (gain <= strict_lt_threshold(alpha))


class TestBigM:
    def test_exceeds_any_real_saving(self):
        assert big_m(10, Fraction(3)) > 3 * 10 + 10**2

    def test_at_least_n(self):
        assert big_m(50, Fraction(1, 100)) >= 50

    def test_integer(self):
        assert isinstance(big_m(7, Fraction(9, 2)), int)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            big_m(0, Fraction(1))

    def test_reachability_dominates(self):
        """Losing one reachable agent must outweigh any buy/dist savings."""
        n, alpha = 20, Fraction(7, 2)
        m = big_m(n, alpha)
        max_savings = alpha * n + n * n
        assert m > max_savings


class TestFitsInt64:
    def test_small_fits(self):
        assert fits_int64(10**12)

    def test_huge_does_not(self):
        assert not fits_int64(2**63)
