"""Layered enumeration: exact counts, atlas cross-validation, stability."""

import networkx as nx
import pytest

from repro.core.concepts import Concept
from repro.core.traffic import TrafficMatrix
from repro.graphs.canonical import canonical_key
from repro.graphs import enumerate as enum_mod
from repro.graphs.enumerate import (
    connected_graph_layer,
    enumerate_connected_graphs,
    enumerate_labelled_trees,
    enumerate_trees,
    max_edge_count,
    tree_layer_keys,
)

# A000055 (trees) and A001349 (connected graphs), both from n = 1
TREE_COUNTS = [1, 1, 1, 2, 3, 6, 11, 23, 47, 106, 235, 551]
CONNECTED_COUNTS = [1, 1, 2, 6, 21, 112, 853]


class TestCounts:
    @pytest.mark.parametrize(
        "n,count", list(enumerate(TREE_COUNTS[:10], start=1))
    )
    def test_tree_counts(self, n, count):
        assert len(tree_layer_keys(n)) == count

    @pytest.mark.parametrize(
        "n,count", list(enumerate(CONNECTED_COUNTS, start=1))
    )
    def test_connected_counts(self, n, count):
        assert sum(1 for _ in enumerate_connected_graphs(n)) == count

    def test_layer_sizes_sum_to_family(self):
        n = 6
        total = sum(
            len(connected_graph_layer(n, m))
            for m in range(n - 1, max_edge_count(n) + 1)
        )
        assert total == CONNECTED_COUNTS[n - 1]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            tree_layer_keys(0)
        with pytest.raises(ValueError):
            connected_graph_layer(5, 3)  # below the tree layer
        with pytest.raises(ValueError):
            connected_graph_layer(5, 11)  # beyond the complete graph
        with pytest.raises(ValueError):
            list(enumerate_labelled_trees(0, None))


class TestAtlasCrossValidation:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7])
    def test_connected_key_sets_match_atlas(self, n):
        # the networkx atlas (production path for n <= 7) is the oracle:
        # the layered enumerator must produce exactly the same canonical
        # key set, i.e. the same isomorphism classes, no more, no fewer
        from networkx.generators.atlas import graph_atlas_g

        atlas_keys = {
            canonical_key(nx.convert_node_labels_to_integers(graph))
            for graph in graph_atlas_g()
            if graph.number_of_nodes() == n and nx.is_connected(graph)
        }
        enum_keys = {
            canonical_key(graph)
            for graph in enumerate_connected_graphs(n)
        }
        assert enum_keys == atlas_keys

    def test_tree_keys_match_atlas_trees(self):
        from networkx.generators.atlas import graph_atlas_g

        for n in (4, 5, 6, 7):
            atlas_keys = {
                canonical_key(nx.convert_node_labels_to_integers(graph))
                for graph in graph_atlas_g()
                if graph.number_of_nodes() == n
                and nx.is_tree(graph)
            }
            assert set(tree_layer_keys(n)) == atlas_keys


class TestBitStability:
    def test_layers_identical_after_memo_flush(self):
        # enumeration order must be a pure function of (n, m): flushing
        # the per-process layer memos and re-deriving from scratch gives
        # byte-identical key tuples
        first_trees = tree_layer_keys(7)
        first_layer = connected_graph_layer(6, 9)
        enum_mod._TREE_LAYERS.clear()
        enum_mod._GRAPH_LAYERS.clear()
        assert tree_layer_keys(7) == first_trees
        assert connected_graph_layer(6, 9) == first_layer

    def test_layers_are_sorted(self):
        assert list(tree_layer_keys(8)) == sorted(tree_layer_keys(8))
        layer = connected_graph_layer(6, 8)
        assert list(layer) == sorted(layer)

    def test_yielded_graphs_are_canonical_representatives(self):
        for graph in enumerate_trees(7):
            assert canonical_key(graph) == canonical_key(graph.copy())
            assert set(graph.nodes) == set(range(7))
            assert nx.is_tree(graph)


class TestLabelledTrees:
    def test_uniform_degenerates_to_unlabelled(self):
        # a uniform demand matrix has every label symmetry, so the joint
        # classes collapse to the unlabelled tree classes exactly
        for n in (2, 3, 4, 5, 6):
            labelled = list(
                enumerate_labelled_trees(n, TrafficMatrix.uniform(n))
            )
            assert len(labelled) == TREE_COUNTS[n - 1]

    def test_broken_symmetry_grows_the_family(self):
        # one hub with distinguished demand: label position now matters,
        # so there are strictly more joint classes than unlabelled shapes
        n = 5
        traffic = TrafficMatrix.hub_spoke(n, [0])
        labelled = list(enumerate_labelled_trees(n, traffic))
        assert len(labelled) > TREE_COUNTS[n - 1]
        keys = {canonical_key(g, traffic) for g in labelled}
        assert len(keys) == len(labelled)
        for graph in labelled:
            assert nx.is_tree(graph)

    def test_trivial_sizes(self):
        assert len(list(enumerate_labelled_trees(1, None))) == 1
        assert len(list(enumerate_labelled_trees(2, None))) == 1


class TestPoAIntegration:
    def test_layer_poa_max_equals_whole_family(self):
        from repro.analysis.poa import empirical_layer_poa, empirical_poa

        n, alpha, concept = 5, 2, Concept.PS
        whole = empirical_poa(n, alpha, concept)
        layers = [
            empirical_layer_poa(n, m, alpha, concept)
            for m in range(n - 1, max_edge_count(n) + 1)
        ]
        layer_poas = [r.poa for r in layers if r.poa is not None]
        assert max(layer_poas) == whole.poa
        assert sum(r.equilibria for r in layers) == whole.equilibria
        assert sum(r.candidates for r in layers) == whole.candidates

    def test_exact_weighted_tree_poa_uniform_matches_representative(self):
        from repro.analysis.poa import (
            empirical_weighted_poa,
            exact_weighted_tree_poa,
        )

        n, alpha, concept = 5, 3, Concept.PS
        uniform = TrafficMatrix.uniform(n)
        exact = exact_weighted_tree_poa(n, alpha, concept, uniform)
        representative = empirical_weighted_poa(
            n, alpha, concept, traffic=uniform, trees_only=True
        )
        assert exact.poa == representative.poa
        assert exact.candidates == representative.candidates
        assert exact.equilibria == representative.equilibria
        assert exact.worst_cost == representative.worst_cost
        assert exact.best_cost == representative.best_cost
