"""Tests for social optima (repro.core.optimum) against brute force."""

from fractions import Fraction

import networkx as nx
import pytest

from repro.core.optimum import (
    brute_force_optimum_cost,
    optimum_cost,
    optimum_graph,
    social_cost_ratio,
)
from repro.core.state import GameState


class TestOptimumFormulas:
    def test_clique_formula_below_one(self):
        n, alpha = 5, Fraction(1, 2)
        expected = n * (n - 1) * (1 + alpha)
        assert optimum_cost(n, alpha) == expected
        assert GameState(nx.complete_graph(n), alpha).social_cost() == expected

    def test_star_formula_above_one(self):
        n, alpha = 6, 3
        expected = 2 * (n - 1) * (alpha + n - 1)
        assert optimum_cost(n, alpha) == expected
        assert GameState(nx.star_graph(n - 1), alpha).social_cost() == expected

    def test_formulas_agree_at_one(self):
        for n in (2, 3, 5, 8):
            clique_cost = n * (n - 1) * 2
            assert optimum_cost(n, 1) == clique_cost

    def test_single_agent(self):
        assert optimum_cost(1, 5) == 0

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    @pytest.mark.parametrize(
        "alpha", [Fraction(1, 2), Fraction(4, 5), 1, Fraction(3, 2), 2, 4, 10]
    )
    def test_matches_brute_force(self, n, alpha):
        """The closed forms equal the true minimum over all connected
        graphs (exhaustive via the atlas)."""
        assert optimum_cost(n, alpha) == brute_force_optimum_cost(n, alpha)


class TestOptimumGraph:
    def test_clique_below_one(self):
        graph = optimum_graph(4, Fraction(1, 2))
        assert graph.number_of_edges() == 6

    def test_star_above_one(self):
        graph = optimum_graph(5, 2)
        assert graph.number_of_edges() == 4
        assert max(dict(graph.degree).values()) == 4

    def test_optimum_graph_attains_optimum_cost(self):
        for alpha in (Fraction(1, 2), 1, 3):
            for n in (2, 4, 7):
                state = GameState(optimum_graph(n, alpha), alpha)
                assert state.social_cost() == optimum_cost(n, alpha)


class TestSocialCostRatio:
    def test_optimum_has_ratio_one(self):
        state = GameState(nx.star_graph(5), 2)
        assert social_cost_ratio(state) == 1

    def test_ratio_above_one_otherwise(self):
        state = GameState(nx.path_graph(6), 2)
        assert social_cost_ratio(state) > 1

    def test_single_node(self):
        assert social_cost_ratio(GameState(nx.empty_graph(1), 2)) == 1

    def test_disconnected_ratio_is_huge(self):
        graph = nx.empty_graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        state = GameState(graph, 2)
        # each of the 4 agents pays M > alpha*n + n^2 per unreachable peer
        assert social_cost_ratio(state) > 5

    def test_rho_method_matches(self):
        state = GameState(nx.path_graph(5), 3)
        assert state.rho() == social_cost_ratio(state)
