"""Cross-validation of the polynomial checkers (RE, BAE, AE, BSwE, PS, BGE)
against naive recompute-everything references, over exhaustive enumerations
of small graphs and a grid of edge prices."""

from fractions import Fraction

import networkx as nx
import pytest

from repro.core.state import GameState
from repro.equilibria.add import (
    find_improving_bilateral_add,
    find_improving_unilateral_add,
    is_bilateral_add_equilibrium,
    is_unilateral_add_equilibrium,
)
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.remove import (
    find_improving_removal,
    is_remove_equilibrium,
    removal_loss,
)
from repro.equilibria.swap import (
    find_improving_swap,
    is_bilateral_swap_equilibrium,
    swap_gains,
)
from repro.graphs.generation import all_connected_graphs, all_trees

from tests.reference import (
    naive_is_bge,
    naive_is_bilateral_add_equilibrium,
    naive_is_bilateral_swap_equilibrium,
    naive_is_pairwise_stable,
    naive_is_remove_equilibrium,
    naive_is_unilateral_add_equilibrium,
)

ALPHAS = [Fraction(1, 2), 1, Fraction(3, 2), 2, Fraction(7, 2), 5, 9]


def enumerate_states(n: int, trees_only: bool = False):
    source = all_trees(n) if trees_only else all_connected_graphs(n)
    for graph in source:
        for alpha in ALPHAS:
            yield GameState(graph, alpha)


class TestRemoveEquilibrium:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_matches_naive_on_all_graphs(self, n):
        for state in enumerate_states(n):
            assert is_remove_equilibrium(state) == naive_is_remove_equilibrium(
                state
            ), (sorted(state.graph.edges), state.alpha)

    def test_trees_always_re(self):
        for n in (2, 4, 7):
            for graph in all_trees(n):
                assert is_remove_equilibrium(GameState(graph, Fraction(1, 10)))

    def test_certificate_validates(self):
        state = GameState(nx.complete_graph(5), 3)
        move = find_improving_removal(state)
        assert move is not None
        assert validate_certificate(state, move)

    def test_removal_loss_on_cycle(self):
        state = GameState(nx.cycle_graph(6), 2)
        assert removal_loss(state, 0, 1) == 6  # n(n-2)/4 for even n

    def test_cycle_re_boundary(self):
        """C6 is in RE exactly for alpha <= 6 (loss = 6, strictness)."""
        assert is_remove_equilibrium(GameState(nx.cycle_graph(6), 6))
        assert not is_remove_equilibrium(
            GameState(nx.cycle_graph(6), Fraction(13, 2))
        )


class TestBilateralAddEquilibrium:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_matches_naive_on_all_graphs(self, n):
        for state in enumerate_states(n):
            assert (
                is_bilateral_add_equilibrium(state)
                == naive_is_bilateral_add_equilibrium(state)
            ), (sorted(state.graph.edges), state.alpha)

    def test_certificate_validates(self):
        state = GameState(nx.path_graph(8), 1)
        move = find_improving_bilateral_add(state)
        assert move is not None
        assert validate_certificate(state, move)

    def test_path_ends_join_at_low_alpha(self):
        state = GameState(nx.path_graph(6), 2)
        move = find_improving_bilateral_add(state)
        assert move is not None

    def test_star_is_bae_above_one(self):
        assert is_bilateral_add_equilibrium(GameState(nx.star_graph(7), 2))

    def test_star_not_bae_below_one(self):
        assert not is_bilateral_add_equilibrium(
            GameState(nx.star_graph(7), Fraction(1, 2))
        )

    def test_disconnected_components_reconnect(self):
        graph = nx.empty_graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        state = GameState(graph, 100)
        move = find_improving_bilateral_add(state)
        assert move is not None  # M dominates any alpha


class TestUnilateralAddEquilibrium:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_matches_naive_on_all_graphs(self, n):
        for state in enumerate_states(n):
            assert (
                is_unilateral_add_equilibrium(state)
                == naive_is_unilateral_add_equilibrium(state)
            ), (sorted(state.graph.edges), state.alpha)

    def test_unilateral_implies_bilateral(self):
        """Proposition 2.1's easy direction on enumerated graphs."""
        for state in enumerate_states(5):
            if is_unilateral_add_equilibrium(state):
                assert is_bilateral_add_equilibrium(state)

    def test_certificate_validates_buyer_gain(self):
        state = GameState(nx.path_graph(9), 2)
        move = find_improving_unilateral_add(state)
        assert move is not None
        gain = max(
            state.dist.add_gain(move.u, move.v),
            state.dist.add_gain(move.v, move.u),
        )
        assert gain > state.alpha


class TestBilateralSwapEquilibrium:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_matches_naive_on_all_graphs(self, n):
        for state in enumerate_states(n):
            assert (
                is_bilateral_swap_equilibrium(state)
                == naive_is_bilateral_swap_equilibrium(state)
            ), (sorted(state.graph.edges), state.alpha)

    @pytest.mark.parametrize("n", [6, 7, 8])
    def test_matches_naive_on_trees(self, n):
        for state in enumerate_states(n, trees_only=True):
            assert (
                is_bilateral_swap_equilibrium(state)
                == naive_is_bilateral_swap_equilibrium(state)
            ), (sorted(state.graph.edges), state.alpha)

    def test_certificate_validates(self):
        # a long path at moderate alpha invites swaps towards the middle
        state = GameState(nx.path_graph(9), 3)
        move = find_improving_swap(state)
        if move is not None:
            assert validate_certificate(state, move)

    def test_swap_gains_match_definitions(self):
        state = GameState(nx.path_graph(6), 2)
        gain_actor, gain_new = swap_gains(state, 0, 1, 3)
        mutated = state.graph.copy()
        mutated.remove_edge(0, 1)
        mutated.add_edge(0, 3)
        after = GameState(mutated, 2)
        assert gain_actor == state.dist_cost(0) - after.dist_cost(0)
        assert gain_new == state.dist_cost(3) - after.dist_cost(3)

    def test_star_is_bswe(self):
        assert is_bilateral_swap_equilibrium(GameState(nx.star_graph(9), 2))


class TestComposites:
    @pytest.mark.parametrize("n", [4, 5])
    def test_ps_matches_naive(self, n):
        for state in enumerate_states(n):
            assert is_pairwise_stable(state) == naive_is_pairwise_stable(
                state
            ), (sorted(state.graph.edges), state.alpha)

    @pytest.mark.parametrize("n", [4, 5])
    def test_bge_matches_naive(self, n):
        for state in enumerate_states(n):
            assert (
                is_bilateral_greedy_equilibrium(state) == naive_is_bge(state)
            ), (sorted(state.graph.edges), state.alpha)

    def test_star_stable_for_everything(self):
        """Footnote 6: for alpha >= 1 the star is stable for all concepts."""
        for alpha in (1, 2, 10, 1000):
            state = GameState(nx.star_graph(8), alpha)
            assert is_remove_equilibrium(state)
            assert is_bilateral_add_equilibrium(state)
            assert is_pairwise_stable(state)
            assert is_bilateral_swap_equilibrium(state)
            assert is_bilateral_greedy_equilibrium(state)


@pytest.mark.slow
class TestSwapCheckerSixNodeAtlas:
    """Harden the general-graph swap path on the full 112-graph atlas."""

    def test_matches_naive_on_six_node_graphs(self):
        for state in enumerate_states(6):
            assert (
                is_bilateral_swap_equilibrium(state)
                == naive_is_bilateral_swap_equilibrium(state)
            ), (sorted(state.graph.edges), state.alpha)


@pytest.mark.slow
class TestPairwiseSixNodeAtlas:
    def test_ps_matches_naive_on_six_node_graphs(self):
        for state in enumerate_states(6):
            assert is_pairwise_stable(state) == naive_is_pairwise_stable(
                state
            ), (sorted(state.graph.edges), state.alpha)
