"""Figure 1a: the subset lattice of solution concepts.

Every arrow of the paper's diagram is verified as an implication over
exhaustively enumerated small graphs and a grid of alpha values; the
properness of each inclusion is witnessed by the frozen examples
(tests/test_venn.py and tests/test_figures.py cover those).
"""

from fractions import Fraction

import pytest

from repro.core.state import GameState
from repro.equilibria.add import is_bilateral_add_equilibrium
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.remove import is_remove_equilibrium
from repro.equilibria.strong import is_k_strong_equilibrium
from repro.equilibria.swap import is_bilateral_swap_equilibrium
from repro.graphs.generation import all_connected_graphs, all_trees

ALPHAS = [Fraction(1, 2), 1, Fraction(3, 2), 2, 3, 5]


def states(n: int):
    for graph in all_connected_graphs(n):
        for alpha in ALPHAS:
            yield GameState(graph, alpha)


@pytest.mark.parametrize("n", [3, 4, 5])
class TestLatticeInclusions:
    def test_ps_equals_re_and_bae(self, n):
        for state in states(n):
            assert is_pairwise_stable(state) == (
                is_remove_equilibrium(state)
                and is_bilateral_add_equilibrium(state)
            )

    def test_bge_equals_ps_and_bswe(self, n):
        for state in states(n):
            assert is_bilateral_greedy_equilibrium(state) == (
                is_pairwise_stable(state)
                and is_bilateral_swap_equilibrium(state)
            )

    def test_bne_subset_of_bge(self, n):
        for state in states(n):
            if is_neighborhood_equilibrium(state):
                assert is_bilateral_greedy_equilibrium(state)

    def test_kbse_chain(self, n):
        """BSE = n-BSE ⊆ ... ⊆ 3-BSE ⊆ 2-BSE."""
        for state in states(n):
            previous = None
            for k in range(1, n + 1):
                stable = is_k_strong_equilibrium(state, k)
                if previous is not None and stable:
                    assert previous
                previous = stable

    def test_2bse_subset_of_bge(self, n):
        for state in states(n):
            if is_k_strong_equilibrium(state, 2):
                assert is_bilateral_greedy_equilibrium(state)

    def test_1bse_equals_multi_removal_stability(self, n):
        """1-BSE allows multi-removals; by the Corbo–Parkes argument it
        coincides with RE on these instances."""
        for state in states(n):
            assert is_k_strong_equilibrium(state, 1) == is_remove_equilibrium(
                state
            )


@pytest.mark.parametrize("n", [5, 6, 7])
class TestTreeSpecifics:
    def test_proposition_3_7_bge_iff_2bse_on_trees(self, n):
        for graph in all_trees(n):
            for alpha in ALPHAS:
                state = GameState(graph, alpha)
                assert is_bilateral_greedy_equilibrium(
                    state
                ) == is_k_strong_equilibrium(state, 2)

    def test_trees_in_re(self, n):
        for graph in all_trees(n):
            assert is_remove_equilibrium(GameState(graph, Fraction(1, 2)))


class TestKnownProperness:
    def test_bne_proper_subset_witness(self):
        """Figure 5's graph: BGE holds, BNE fails."""
        from repro.constructions.figures import figure5_bae_bge_not_bne

        fig = figure5_bae_bge_not_bne()
        state = GameState(fig.graph, fig.alpha)
        assert is_bilateral_greedy_equilibrium(state)

    def test_2bse_proper_subset_witness(self):
        """Figure 6's graph: BNE holds, 2-BSE fails (Corollary A.6)."""
        from repro.constructions.figures import figure6_bne_not_2bse

        fig = figure6_bne_not_2bse()
        state = GameState(fig.graph, fig.alpha)
        assert is_neighborhood_equilibrium(state)
        assert not is_k_strong_equilibrium(state, 2)
