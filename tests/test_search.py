"""Tests for the witness searches (repro.analysis.search)."""

from fractions import Fraction

import pytest

from repro.analysis.search import (
    classify_re_bae_bswe,
    search_nash_not_pairwise_stable,
    search_venn_witnesses,
)
from repro.core.state import GameState
from repro.equilibria.nash import is_nash_equilibrium
from repro.equilibria.pairwise import is_pairwise_stable
import networkx as nx


class TestClassify:
    def test_star_above_one(self):
        state = GameState(nx.star_graph(4), 2)
        assert classify_re_bae_bswe(state) == (True, True, True)

    def test_triangle_high_alpha(self):
        state = GameState(nx.complete_graph(3), 10)
        re, bae, bswe = classify_re_bae_bswe(state)
        assert not re  # dropping a triangle edge saves alpha, costs 1
        assert bae


class TestNashSearch:
    @pytest.mark.slow
    def test_finds_witness_on_five_nodes(self):
        witnesses = search_nash_not_pairwise_stable(
            sizes=(5,), max_results=1
        )
        assert witnesses
        first = witnesses[0]
        state = GameState(first.graph, first.alpha)
        assert is_nash_equilibrium(state, first.assignment)
        assert not is_pairwise_stable(state)

    @pytest.mark.slow
    def test_weak_edge_is_reported_correctly(self):
        witnesses = search_nash_not_pairwise_stable(
            sizes=(5,), max_results=2
        )
        for witness in witnesses:
            actor, other = witness.weak_edge
            assert witness.graph.has_edge(actor, other)


class TestVennSearch:
    def test_small_search_is_sound(self):
        found = search_venn_witnesses(
            sizes=(3, 4), alphas=(Fraction(1, 2), 1, 2)
        )
        for region, (graph, alpha) in found.items():
            assert classify_re_bae_bswe(GameState(graph, alpha)) == region

    @pytest.mark.slow
    def test_full_search_covers_all_regions(self):
        found = search_venn_witnesses(sizes=(3, 4, 5, 6, 7))
        assert len(found) == 8
