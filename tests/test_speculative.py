"""Tests for the speculative evaluation kernel and incremental totals.

Four contracts are pinned here:

* :class:`~repro.core.speculative.SpeculativeEvaluator` cost deltas are
  bit-identical to from-scratch recomputation for every move type, and
  every speculation scope (including nested and exception-unwound ones)
  restores the engine exactly;
* ``DistanceMatrix`` totals are maintained incrementally — one full
  row-sum at materialisation, zero re-sums along a 100-move trajectory
  (spy-counted);
* the refactored BNE / coalition searchers perform no full APSP builds
  beyond the one that materialises the state's matrix (spy-counted) and
  raise :class:`SearchBudgetExceeded` at exactly the same budget
  thresholds as verbatim pre-refactor reference implementations;
* ``swap_gains`` agrees bit-for-bit with the old two-BFS reference, and
  the probes are reproducible from an integer seed.
"""

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.core.moves import (
    AddEdge,
    CoalitionMove,
    NeighborhoodMove,
    RemoveEdge,
    Swap,
)
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.equilibria.neighborhood import (
    SearchBudgetExceeded,
    find_improving_neighborhood_move,
    probe_neighborhood_moves,
)
from repro.equilibria.strong import (
    find_improving_coalition_move,
    probe_coalition_moves,
)
from repro.equilibria.swap import swap_gains
from repro.graphs import distances
from repro.graphs.distances import DistanceMatrix, single_source_distances
from repro.graphs.generation import random_connected_gnp, random_tree

from tests.reference import (
    naive_cost,
    reference_find_improving_coalition_move,
    reference_find_improving_neighborhood_move,
)

UNREACHABLE = 10**6


def random_move(state: GameState, rng: random.Random):
    """A random legal move of a random type, or None if none is legal."""
    graph = state.graph
    edges = list(graph.edges)
    non_edges = [
        (u, v)
        for u in range(state.n)
        for v in range(u + 1, state.n)
        if not graph.has_edge(u, v)
    ]
    kind = rng.choice(["add", "remove", "swap", "neighborhood", "coalition"])
    if kind == "add" and non_edges:
        return AddEdge(*rng.choice(non_edges))
    if kind == "remove" and edges:
        return RemoveEdge(*rng.choice(edges))
    if kind == "swap" and edges:
        actor, old = rng.choice(edges)
        partners = [
            w
            for w in range(state.n)
            if w not in (actor, old) and not graph.has_edge(actor, w)
        ]
        if partners:
            return Swap(actor=actor, old=old, new=rng.choice(partners))
    if kind == "neighborhood":
        center = rng.randrange(state.n)
        neighbors = sorted(graph.neighbors(center))
        others = [
            v
            for v in range(state.n)
            if v != center and not graph.has_edge(center, v)
        ]
        removed = tuple(
            rng.sample(neighbors, rng.randint(0, min(2, len(neighbors))))
        )
        added = tuple(rng.sample(others, rng.randint(0, min(2, len(others)))))
        if removed or added:
            return NeighborhoodMove(center=center, removed=removed, added=added)
    if kind == "coalition" and state.n >= 2:
        coalition = tuple(
            sorted(rng.sample(range(state.n), rng.randint(1, min(3, state.n))))
        )
        members = set(coalition)
        removable = [
            (u, v) for u, v in edges if u in members or v in members
        ]
        addable = [
            (u, v) for u, v in non_edges if u in members and v in members
        ]
        removed = tuple(
            rng.sample(removable, rng.randint(0, min(2, len(removable))))
        )
        added = tuple(
            rng.sample(addable, rng.randint(0, min(2, len(addable))))
        )
        if removed or added:
            return CoalitionMove(
                coalition=coalition,
                removed_edges=removed,
                added_edges=added,
            )
    return None


class TestKernelExactness:
    def test_cost_deltas_match_fresh_recomputation(self):
        """Kernel deltas == naive BFS costs for every move type."""
        for seed in range(30):
            rng = random.Random(seed)
            graph = random_connected_gnp(rng.randint(4, 9), 0.4, rng)
            state = GameState(graph, Fraction(rng.randint(1, 9), 2))
            spec = SpeculativeEvaluator(state)
            for _ in range(8):
                move = random_move(state, rng)
                if move is None:
                    continue
                graph_after = move.apply(state.graph)
                evaluation = spec.evaluate(move)
                for agent, delta in evaluation.cost_deltas:
                    before = naive_cost(
                        state.graph, state.alpha, agent, state.m_constant
                    )
                    after = naive_cost(
                        graph_after, state.alpha, agent, state.m_constant
                    )
                    assert delta == after - before, (move, agent)
                assert evaluation.improving == all(
                    delta < 0 for _, delta in evaluation.cost_deltas
                )

    def test_move_improves_matches_validate_certificate(self):
        from repro.equilibria.certificates import validate_certificate

        for seed in range(20):
            rng = random.Random(100 + seed)
            graph = random_connected_gnp(rng.randint(4, 8), 0.5, rng)
            state = GameState(graph, 2)
            spec = SpeculativeEvaluator(state)
            move = random_move(state, rng)
            if move is None:
                continue
            assert spec.move_improves(move) == validate_certificate(
                state, move
            )

    def test_scope_restores_engine_bit_exactly(self):
        state = GameState(random_connected_gnp(8, 0.35, random.Random(7)), 2)
        spec = SpeculativeEvaluator(state)
        matrix_before = state.dist.matrix.copy()
        edges_before = sorted(map(sorted, state.graph.edges))
        with spec.applied([("remove", *list(state.graph.edges)[0])]):
            with spec.applied([("add", *next(iter(state.non_edges())))]):
                assert spec.depth == 2
        assert spec.depth == 0
        assert (state.dist.matrix == matrix_before).all()
        assert sorted(map(sorted, state.graph.edges)) == edges_before

    def test_exception_inside_scope_restores(self):
        state = GameState(nx.cycle_graph(6), 2)
        spec = SpeculativeEvaluator(state)
        matrix_before = state.dist.matrix.copy()
        with pytest.raises(RuntimeError, match="boom"):
            with spec.applied([("remove", 0, 1), ("add", 0, 3)]):
                raise RuntimeError("boom")
        assert spec.depth == 0
        assert (state.dist.matrix == matrix_before).all()
        assert state.graph.has_edge(0, 1) and not state.graph.has_edge(0, 3)

    def test_failing_mid_application_unwinds_partial_prefix(self):
        state = GameState(nx.cycle_graph(5), 2)
        spec = SpeculativeEvaluator(state)
        matrix_before = state.dist.matrix.copy()
        with pytest.raises(ValueError):
            with spec.applied([("remove", 0, 1), ("add", 0, 4)]):
                pass  # 0-4 exists: the second delta must fail
        assert spec.depth == 0
        assert (state.dist.matrix == matrix_before).all()
        assert state.graph.has_edge(0, 1)

    def test_best_keeps_largest_total_drop(self):
        state = GameState(nx.path_graph(7), 1)
        spec = SpeculativeEvaluator(state)
        moves = [AddEdge(0, 6), AddEdge(0, 3), AddEdge(2, 5)]
        chosen = spec.best(iter(moves))
        assert chosen is not None
        best_move, best_eval = chosen
        expected = min(
            (spec.evaluate(move).total_delta, i)
            for i, move in enumerate(moves)
        )
        assert best_eval.total_delta == expected[0]
        assert best_move == moves[expected[1]]
        assert spec.best(iter([])) is None

    def test_evaluation_counter(self):
        state = GameState(nx.path_graph(5), 2)
        spec = SpeculativeEvaluator(state)
        before = distances.apsp_build_count()
        spec.evaluate(AddEdge(0, 4))
        spec.move_improves(RemoveEdge(1, 2))
        assert spec.evaluations == 2
        assert distances.apsp_build_count() == before  # no rebuilds


class TestIncrementalTotals:
    def test_totals_match_fresh_sums_along_trajectory(self):
        for seed in range(15):
            rng = random.Random(seed)
            graph = random_connected_gnp(rng.randint(3, 9), 0.4, rng)
            dm = DistanceMatrix(graph, UNREACHABLE)
            assert (dm.totals() == dm.matrix.sum(axis=1)).all()
            tokens = []
            for _ in range(12):
                edges = list(graph.edges)
                non_edges = [
                    (u, v)
                    for u in graph
                    for v in graph
                    if u < v and not graph.has_edge(u, v)
                ]
                if rng.random() < 0.5 and non_edges:
                    tokens.append(dm.apply_add(*rng.choice(non_edges)))
                elif edges:
                    tokens.append(dm.apply_remove(*rng.choice(edges)))
                assert (dm.totals() == dm.matrix.sum(axis=1)).all()
            for token in reversed(tokens):
                dm.undo(token)
                assert (dm.totals() == dm.matrix.sum(axis=1)).all()

    def test_no_full_resum_along_100_move_trajectory(self):
        """Spy-counted: one row-sum at materialisation, then shifts only."""
        rng = random.Random(42)
        graph = random_connected_gnp(12, 0.3, rng)
        dm = DistanceMatrix(graph, UNREACHABLE)
        before = distances.totals_rebuild_count()
        dm.totals()  # materialise: exactly one full re-sum
        assert distances.totals_rebuild_count() - before == 1
        moves_done = 0
        tokens = []
        while moves_done < 100:
            edges = list(graph.edges)
            non_edges = [
                (u, v)
                for u in graph
                for v in graph
                if u < v and not graph.has_edge(u, v)
            ]
            choice = rng.random()
            if (choice < 0.45 and non_edges) or not edges:
                tokens.append(dm.apply_add(*rng.choice(non_edges)))
            elif choice < 0.8 or not tokens:
                tokens.append(dm.apply_remove(*rng.choice(edges)))
            else:
                dm.undo(tokens.pop())
            moves_done += 1
            # every totals read along the way stays exact ...
            probe = rng.randrange(12)
            assert dm.total(probe) == int(dm.matrix[probe].sum())
            assert (dm.totals() == dm.matrix.sum(axis=1)).all()
        # ... and none of the 100 moves triggered a full re-sum
        assert distances.totals_rebuild_count() - before == 1

    def test_totals_snapshot_is_stable_across_apply(self):
        dm = DistanceMatrix(nx.cycle_graph(7), UNREACHABLE)
        snapshot = dm.totals()
        token = dm.apply_remove(0, 1)
        assert (snapshot != dm.totals()).any()  # live totals moved on
        dm.undo(token)
        assert (snapshot == dm.totals()).all()


class TestSearchersUseEngine:
    """Spy-counted: the searchers never rebuild the APSP matrix."""

    def test_bne_search_no_apsp_rebuilds(self):
        state = GameState(random_connected_gnp(9, 0.3, random.Random(3)), 2)
        state.dist  # materialise (one build)
        before = distances.apsp_build_count()
        find_improving_neighborhood_move(state, max_evaluations=500_000)
        assert distances.apsp_build_count() == before

    def test_coalition_search_no_apsp_rebuilds(self):
        state = GameState(nx.cycle_graph(7), 3)
        state.dist
        before = distances.apsp_build_count()
        find_improving_coalition_move(state, 3)
        assert distances.apsp_build_count() == before

    def test_probes_no_apsp_rebuilds(self):
        state = GameState(nx.path_graph(9), 1)
        state.dist
        before = distances.apsp_build_count()
        probe_neighborhood_moves(state, 5, samples=200)
        probe_coalition_moves(state, 5, max_coalition_size=3, samples=200)
        assert distances.apsp_build_count() == before


ALPHA_GRID = [Fraction(1, 2), 1, 2, Fraction(7, 2), 6]


class TestSearcherEquivalence:
    """New searchers vs verbatim pre-refactor references."""

    def test_bne_verdicts_match_reference(self):
        for seed in range(12):
            rng = random.Random(seed)
            graph = random_connected_gnp(rng.randint(4, 7), 0.45, rng)
            for alpha in ALPHA_GRID:
                state = GameState(graph, alpha)
                ours = find_improving_neighborhood_move(state)
                theirs = reference_find_improving_neighborhood_move(state)
                assert (ours is None) == (theirs is None), (seed, alpha)

    def test_coalition_verdicts_match_reference(self):
        for seed in range(10):
            rng = random.Random(50 + seed)
            graph = random_connected_gnp(rng.randint(4, 6), 0.5, rng)
            for alpha in ALPHA_GRID:
                state = GameState(graph, alpha)
                ours = find_improving_coalition_move(state, 3)
                theirs = reference_find_improving_coalition_move(state, 3)
                assert (ours is None) == (theirs is None), (seed, alpha)

    def test_bne_budget_thresholds_identical(self):
        """SearchBudgetExceeded fires at exactly the same budgets."""
        state = GameState(nx.star_graph(12), Fraction(1, 2))
        for budget in (0, 10, 1_000, 100_000, 10_000_000):
            raised_new = raised_ref = False
            try:
                find_improving_neighborhood_move(
                    state, max_evaluations=budget
                )
            except SearchBudgetExceeded:
                raised_new = True
            try:
                reference_find_improving_neighborhood_move(
                    state, max_evaluations=budget
                )
            except SearchBudgetExceeded:
                raised_ref = True
            assert raised_new == raised_ref, budget

    def test_coalition_budget_thresholds_identical(self):
        state = GameState(nx.cycle_graph(8), 3)
        for budget in (0, 5, 100, 4_000, 50_000, 5_000_000):
            raised_new = raised_ref = False
            try:
                find_improving_coalition_move(
                    state, 4, max_evaluations=budget
                )
            except SearchBudgetExceeded:
                raised_new = True
            try:
                reference_find_improving_coalition_move(
                    state, 4, max_evaluations=budget
                )
            except SearchBudgetExceeded:
                raised_ref = True
            assert raised_new == raised_ref, budget

    def test_found_moves_are_certified(self):
        from repro.equilibria.certificates import validate_certificate

        for seed in range(8):
            rng = random.Random(200 + seed)
            graph = random_tree(rng.randint(5, 8), rng)
            state = GameState(graph, 1)
            move = find_improving_neighborhood_move(state)
            if move is not None:
                assert validate_certificate(state, move)
            coalition = find_improving_coalition_move(state, 3)
            if coalition is not None:
                assert validate_certificate(state, coalition)


class TestSwapGainsRegression:
    def reference_swap_gains(self, state, actor, old, new):
        """The pre-refactor implementation: two fresh BFS runs."""
        graph = state.graph.copy()
        graph.remove_edge(actor, old)
        graph.add_edge(actor, new)
        unreachable = state.m_constant
        actor_after = int(
            single_source_distances(graph, actor, unreachable).sum()
        )
        new_after = int(
            single_source_distances(graph, new, unreachable).sum()
        )
        return (
            state.dist.total(actor) - actor_after,
            state.dist.total(new) - new_after,
        )

    def test_bit_identical_on_random_graphs(self):
        for seed in range(25):
            rng = random.Random(seed)
            graph = random_connected_gnp(rng.randint(4, 10), 0.4, rng)
            state = GameState(graph, Fraction(rng.randint(1, 7), 2))
            for _ in range(6):
                edges = list(state.graph.edges)
                actor, old = rng.choice(edges)
                partners = [
                    w
                    for w in range(state.n)
                    if w not in (actor, old)
                    and not state.graph.has_edge(actor, w)
                ]
                if not partners:
                    continue
                new = rng.choice(partners)
                assert swap_gains(
                    state, actor, old, new
                ) == self.reference_swap_gains(state, actor, old, new)

    def test_disconnecting_swap_gains_exact(self):
        """Swapping a bridge endpoint routes through M exactly."""
        state = GameState(nx.path_graph(6), 2)
        gains = swap_gains(state, 2, 3, 0)
        assert gains == self.reference_swap_gains(state, 2, 3, 0)


class TestSeededProbes:
    def test_int_seed_equals_random_instance(self):
        state = GameState(nx.path_graph(10), 1)
        by_seed = probe_neighborhood_moves(state, 7, samples=500)
        by_rng = probe_neighborhood_moves(
            state, random.Random(7), samples=500
        )
        assert by_seed == by_rng
        c_by_seed = probe_coalition_moves(
            state, 11, max_coalition_size=3, samples=500
        )
        c_by_rng = probe_coalition_moves(
            state, random.Random(11), max_coalition_size=3, samples=500
        )
        assert c_by_seed == c_by_rng

    def test_default_seed_is_deterministic(self):
        state = GameState(nx.path_graph(8), 1)
        assert probe_neighborhood_moves(
            state, samples=300
        ) == probe_neighborhood_moves(state, samples=300)

    def test_probe_results_are_certified(self):
        from repro.equilibria.certificates import validate_certificate

        state = GameState(nx.path_graph(10), 1)
        move = probe_neighborhood_moves(state, 3, samples=2000)
        assert move is not None and validate_certificate(state, move)

    def test_bad_rng_rejected(self):
        state = GameState(nx.path_graph(5), 1)
        with pytest.raises(TypeError):
            probe_neighborhood_moves(state, "seed")
        with pytest.raises(TypeError):
            probe_coalition_moves(state, True, max_coalition_size=2)


class TestLadderClassification:
    def test_classify_full_ladder_reproducible(self):
        from repro.analysis.search import classify_full_ladder
        from repro.core.concepts import Concept

        state = GameState(nx.cycle_graph(6), 3)
        first = classify_full_ladder(state, seed=5)
        second = classify_full_ladder(state, seed=5)
        assert set(first) == set(second)
        for concept in first:
            assert first[concept].stable == second[concept].stable
        assert Concept.RE in first and Concept.BSE in first
