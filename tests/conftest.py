"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.state import GameState


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20230711)  # PODC 2023 week


@pytest.fixture
def star6() -> GameState:
    return GameState(nx.star_graph(5), 2)


@pytest.fixture
def path5() -> GameState:
    return GameState(nx.path_graph(5), 3)


@pytest.fixture
def cycle6() -> GameState:
    return GameState(nx.cycle_graph(6), 5)


def small_alpha_grid():
    """The alpha values exercised throughout the small-graph tests."""
    from fractions import Fraction

    return [Fraction(1, 2), 1, Fraction(3, 2), 2, 3, 5, 9]
