"""Integration tests: whole-pipeline scenarios across modules."""

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro import (
    Concept,
    GameState,
    check,
    find_improving_bilateral_add,
    validate_certificate,
)
from repro.analysis.poa import empirical_tree_poa
from repro.constructions.spiders import ps_lower_bound_spider
from repro.constructions.stretched import bge_lower_bound_star
from repro.core.optimum import optimum_cost, optimum_graph
from repro.dynamics.engine import run_dynamics
from repro.dynamics.schedulers import best_improvement_scheduler
from repro.equilibria.pairwise import is_pairwise_stable
from repro.graphs.generation import random_tree


class TestEndToEndDynamicsToCertifiedEquilibrium:
    """random start -> dynamics -> checker-certified equilibrium -> PoA."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_ps_pipeline(self, seed):
        start = random_tree(10, random.Random(seed))
        result = run_dynamics(start, 4, Concept.PS, max_rounds=500)
        assert result.converged
        final = result.final
        assert is_pairwise_stable(final)
        assert 1 <= final.rho() <= 1 + Fraction(final.n**2, 4)

    def test_best_response_ps_reaches_lower_cost_than_worst_case(self):
        start = nx.path_graph(12)
        result = run_dynamics(
            start, 3, Concept.PS,
            scheduler=best_improvement_scheduler, max_rounds=500,
        )
        assert result.converged
        worst = empirical_tree_poa(12, 3, Concept.PS)
        # dynamics end at *some* PS state; it cannot beat the worst case
        assert result.final.rho() <= worst.poa or not result.final.is_tree()


class TestConstructionsMeetTheirBounds:
    def test_spider_rho_between_one_and_shape(self):
        state = GameState(ps_lower_bound_spider(100, 64), 64)
        assert is_pairwise_stable(state)
        assert 1 < state.rho() < 8  # min(sqrt 64, 100/8) = 8

    def test_stretched_star_rho_in_theorem_window(self):
        import math

        alpha = 480
        star = bge_lower_bound_star(alpha, eta=600)
        state = GameState(star.graph, alpha)
        assert check(state, Concept.BGE)
        rho = float(state.rho())
        assert rho >= math.log2(alpha) / 4 - 17 / 8
        assert rho <= 2 + 2 * math.log2(alpha)


class TestOptimumInteroperability:
    def test_optimum_graph_is_equilibrium_for_ladder(self):
        for alpha in (1, 2, 7):
            state = GameState(optimum_graph(8, alpha), alpha)
            for concept in (Concept.RE, Concept.BAE, Concept.PS,
                            Concept.BSWE, Concept.BGE):
                assert check(state, concept)

    def test_rho_exactly_one_on_optimum(self):
        for alpha in (Fraction(1, 2), 1, 5):
            state = GameState(optimum_graph(7, alpha), alpha)
            assert state.social_cost() == optimum_cost(7, alpha)
            assert state.rho() == 1


class TestCertificateRoundTrip:
    def test_certified_move_strictly_improves_and_applies(self):
        state = GameState(nx.path_graph(9), 2)
        move = find_improving_bilateral_add(state)
        assert move is not None
        assert validate_certificate(state, move)
        after = state.apply(move)
        assert after.graph.has_edge(move.u, move.v)
        assert after.cost(move.u) < state.cost(move.u)
        assert after.cost(move.v) < state.cost(move.v)

    def test_apply_returns_fresh_state(self):
        state = GameState(nx.path_graph(5), 1)
        move = find_improving_bilateral_add(state)
        after = state.apply(move)
        assert state.graph.number_of_edges() == 4  # unchanged
        assert after.graph.number_of_edges() == 5


class TestPublicApiSurface:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
