"""Canonical graph keys: invariance, separation, round-trips, the memo."""

import random

import networkx as nx
import numpy as np
import pytest

from repro.core.traffic import TrafficMatrix
from repro.graphs.canonical import (
    canonical_cache_clear,
    canonical_cache_info,
    canonical_graph,
    canonical_key,
    decode_key,
    key_of_masks,
    masks_of_graph,
)


def _relabel(graph: nx.Graph, rng: random.Random) -> nx.Graph:
    nodes = list(graph.nodes)
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    mapping = dict(zip(nodes, shuffled))
    return nx.relabel_nodes(graph, mapping)


def _permuted_weights(weights, mapping, n):
    permuted = np.zeros((n, n), dtype=np.int64)
    for u in range(n):
        for v in range(n):
            permuted[mapping[u]][mapping[v]] = weights[u][v]
    return permuted


class TestStructuralInvariance:
    def test_relabeling_invariance_fuzz(self):
        rng = random.Random(20230711)
        for trial in range(60):
            n = rng.randint(1, 9)
            graph = nx.gnp_random_graph(n, rng.random(), seed=rng.randint(0, 10**9))
            key = canonical_key(graph)
            for _ in range(3):
                assert canonical_key(_relabel(graph, rng)) == key

    def test_symmetric_families(self):
        # highly symmetric graphs are the branching worst case — the twin
        # pruning must both keep them fast and keep the key invariant
        rng = random.Random(7)
        for graph in (
            nx.complete_graph(9),
            nx.star_graph(8),
            nx.cycle_graph(9),
            nx.complete_bipartite_graph(4, 5),
            nx.empty_graph(6),
        ):
            key = canonical_key(graph)
            for _ in range(3):
                assert canonical_key(_relabel(graph, rng)) == key

    def test_non_isomorphic_atlas_separation(self):
        # the atlas is the oracle: distinct isomorphism classes on n <= 6
        # nodes must map to distinct keys, exhaustively
        from repro.graphs.generation import all_connected_graphs

        for n in range(1, 7):
            graphs = list(all_connected_graphs(n))
            keys = {canonical_key(graph) for graph in graphs}
            assert len(keys) == len(graphs)

    def test_keys_embed_node_count(self):
        assert canonical_key(nx.path_graph(3)) != canonical_key(
            nx.path_graph(4)
        )

    def test_rejects_non_canonical_labels(self):
        graph = nx.Graph([("a", "b")])
        with pytest.raises(ValueError):
            canonical_key(graph)


class TestJointWeightedKeys:
    def test_joint_invariance_fuzz(self):
        rng = random.Random(42)
        for trial in range(30):
            n = rng.randint(2, 7)
            graph = nx.gnp_random_graph(n, rng.random(), seed=rng.randint(0, 10**9))
            weights = np.array(
                [
                    [0 if u == v else rng.randint(0, 5) for v in range(n)]
                    for u in range(n)
                ],
                dtype=np.int64,
            )
            key = canonical_key(graph, weights)
            for _ in range(3):
                nodes = list(range(n))
                rng.shuffle(nodes)
                mapping = dict(zip(range(n), nodes))
                assert (
                    canonical_key(
                        nx.relabel_nodes(graph, mapping),
                        _permuted_weights(weights, mapping, n),
                    )
                    == key
                )

    def test_demands_break_symmetry(self):
        # two labelled paths, isomorphic as graphs, distinct once the
        # demand matrix pins which endpoint is the heavy sender
        path = nx.path_graph(3)
        heavy_end = np.array(
            [[0, 0, 9], [0, 0, 0], [9, 0, 0]], dtype=np.int64
        )
        heavy_mid = np.array(
            [[0, 9, 0], [9, 0, 0], [0, 0, 0]], dtype=np.int64
        )
        assert canonical_key(path) == canonical_key(path)
        assert canonical_key(path, heavy_end) != canonical_key(
            path, heavy_mid
        )

    def test_uniform_traffic_collapses_to_structure(self):
        # a symmetric constant demand matrix adds no information: joint
        # keys separate exactly the same classes the structural keys do
        rng = random.Random(3)
        for _ in range(10):
            n = rng.randint(2, 6)
            uniform = TrafficMatrix.uniform(n)
            a = nx.gnp_random_graph(n, 0.5, seed=rng.randint(0, 10**9))
            b = nx.gnp_random_graph(n, 0.5, seed=rng.randint(0, 10**9))
            structural = canonical_key(a) == canonical_key(b)
            joint = canonical_key(a, uniform) == canonical_key(b, uniform)
            assert structural == joint

    def test_accepts_traffic_matrix_and_raw(self):
        graph = nx.path_graph(4)
        traffic = TrafficMatrix.hub_spoke(4, [0])
        assert canonical_key(graph, traffic) == canonical_key(
            graph, traffic.weights
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            canonical_key(nx.path_graph(3), np.zeros((4, 4), dtype=np.int64))


class TestRoundTrips:
    def test_structural_round_trip(self):
        rng = random.Random(11)
        for _ in range(20):
            n = rng.randint(1, 8)
            graph = nx.gnp_random_graph(n, rng.random(), seed=rng.randint(0, 10**9))
            key = canonical_key(graph)
            decoded, weights = decode_key(key)
            assert weights is None
            assert canonical_key(decoded) == key

    def test_weighted_round_trip(self):
        graph = nx.path_graph(4)
        traffic = TrafficMatrix.hub_spoke(4, [1])
        key = canonical_key(graph, traffic)
        decoded, weights = decode_key(key)
        assert weights is not None
        assert canonical_key(decoded, weights) == key

    def test_canonical_graph_idempotent(self):
        rng = random.Random(13)
        for _ in range(15):
            n = rng.randint(1, 8)
            graph = nx.gnp_random_graph(n, rng.random(), seed=rng.randint(0, 10**9))
            representative = canonical_graph(graph)
            assert nx.is_isomorphic(representative, graph)
            again = canonical_graph(representative)
            assert nx.utils.graphs_equal(again, representative)

    def test_key_of_masks_matches_graph_path(self):
        graph = nx.cycle_graph(5)
        assert key_of_masks(5, masks_of_graph(graph)) == canonical_key(graph)


class TestMemo:
    def test_hits_and_misses_counted(self):
        canonical_cache_clear()
        graph = nx.path_graph(5)
        canonical_key(graph)
        hits, misses, size = canonical_cache_info()
        assert (hits, misses, size) == (0, 1, 1)
        canonical_key(nx.path_graph(5))
        hits, misses, size = canonical_cache_info()
        assert (hits, misses, size) == (1, 1, 1)
        canonical_cache_clear()
        assert canonical_cache_info() == (0, 0, 0)

    def test_weighted_and_structural_entries_distinct(self):
        canonical_cache_clear()
        graph = nx.path_graph(3)
        canonical_key(graph)
        canonical_key(graph, TrafficMatrix.uniform(3))
        _, misses, size = canonical_cache_info()
        assert (misses, size) == (2, 2)
