"""Tests for the exponential checkers: BNE, k-BSE / BSE, unilateral NE.

Independent brute-force references here enumerate *reachable graphs* rather
than move tuples, so they share no code path with the library's checkers.
"""

import itertools
import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.core.moves import CoalitionMove, NeighborhoodMove
from repro.core.state import GameState
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.neighborhood import (
    SearchBudgetExceeded,
    find_improving_neighborhood_move,
    is_neighborhood_equilibrium,
    partner_gain_upper_bound,
    probe_neighborhood_moves,
    willing_partners,
)
from repro.equilibria.strong import (
    find_improving_coalition_move,
    is_k_strong_equilibrium,
    is_strong_equilibrium,
    probe_coalition_moves,
)
from repro.graphs.generation import all_connected_graphs

from tests.reference import naive_cost

ALPHAS = [Fraction(1, 2), 1, 2, Fraction(7, 2), 6]


def naive_is_bne(state: GameState) -> bool:
    """Enumerate every (R, A) pair around every center, no pruning."""
    for center in range(state.n):
        neighbors = sorted(state.graph.neighbors(center))
        others = [
            v
            for v in range(state.n)
            if v != center and not state.graph.has_edge(center, v)
        ]
        for r_size in range(len(neighbors) + 1):
            for removed in itertools.combinations(neighbors, r_size):
                for a_size in range(len(others) + 1):
                    for added in itertools.combinations(others, a_size):
                        if not removed and not added:
                            continue
                        mutated = state.graph.copy()
                        for partner in removed:
                            mutated.remove_edge(center, partner)
                        for partner in added:
                            mutated.add_edge(center, partner)
                        agents = (center, *added)
                        if all(
                            naive_cost(
                                mutated, state.alpha, agent, state.m_constant
                            )
                            < naive_cost(
                                state.graph,
                                state.alpha,
                                agent,
                                state.m_constant,
                            )
                            for agent in agents
                        ):
                            return False
    return True


def naive_is_k_bse(state: GameState, k: int) -> bool:
    """Enumerate coalitions and *reachable graphs* over the full edge space."""
    nodes = list(range(state.n))
    all_pairs = list(itertools.combinations(nodes, 2))
    current = {tuple(sorted(edge)) for edge in state.graph.edges}
    for size in range(1, min(k, state.n) + 1):
        for coalition in itertools.combinations(nodes, size):
            members = set(coalition)
            for keep in itertools.chain.from_iterable(
                itertools.combinations(all_pairs, r)
                for r in range(len(all_pairs) + 1)
            ):
                target = set(keep)
                if target == current:
                    continue
                removed = current - target
                added = target - current
                if any(u not in members and v not in members for u, v in removed):
                    continue
                if any(u not in members or v not in members for u, v in added):
                    continue
                mutated = nx.Graph()
                mutated.add_nodes_from(nodes)
                mutated.add_edges_from(target)
                if all(
                    naive_cost(mutated, state.alpha, agent, state.m_constant)
                    < naive_cost(
                        state.graph, state.alpha, agent, state.m_constant
                    )
                    for agent in coalition
                ):
                    return False
    return True


class TestNeighborhoodEquilibrium:
    @pytest.mark.parametrize("n", [3, 4])
    def test_matches_naive_on_all_graphs(self, n):
        for graph in all_connected_graphs(n):
            for alpha in ALPHAS:
                state = GameState(graph, alpha)
                assert is_neighborhood_equilibrium(state) == naive_is_bne(
                    state
                ), (sorted(graph.edges), alpha)

    @pytest.mark.slow
    def test_matches_naive_on_five_nodes(self):
        for graph in all_connected_graphs(5):
            for alpha in (1, 2, Fraction(7, 2)):
                state = GameState(graph, alpha)
                assert is_neighborhood_equilibrium(state) == naive_is_bne(
                    state
                ), (sorted(graph.edges), alpha)

    def test_certificate_validates(self):
        state = GameState(nx.path_graph(7), 2)
        move = find_improving_neighborhood_move(state)
        if move is not None:
            assert validate_certificate(state, move)

    def test_star_is_bne(self):
        assert is_neighborhood_equilibrium(GameState(nx.star_graph(6), 2))

    def test_partner_bound_is_sound(self, rng):
        """The willing-partner bound never underestimates a realised gain."""
        state = GameState(nx.path_graph(8), 2)
        for center in range(state.n):
            for partner in range(state.n):
                if partner == center or state.graph.has_edge(center, partner):
                    continue
                move = NeighborhoodMove(
                    center=center, removed=(), added=(partner,)
                )
                mutated = move.apply(state.graph)
                gain = state.dist_cost(partner) - int(
                    naive_cost(mutated, Fraction(0), partner, state.m_constant)
                )
                assert gain <= partner_gain_upper_bound(state, partner, center)

    def test_willing_partners_subset_of_nonneighbors(self):
        state = GameState(nx.path_graph(8), 1)
        for center in range(state.n):
            for partner in willing_partners(state, center):
                assert partner != center
                assert not state.graph.has_edge(center, partner)

    def test_budget_guard_raises(self):
        state = GameState(nx.star_graph(40), Fraction(1, 2))
        with pytest.raises(SearchBudgetExceeded):
            find_improving_neighborhood_move(state, max_evaluations=10)

    def test_probe_finds_known_violation(self, rng):
        """On a long path at alpha=1, random probing finds a move."""
        state = GameState(nx.path_graph(10), 1)
        move = probe_neighborhood_moves(state, rng, samples=3000)
        assert move is not None
        assert validate_certificate(state, move)


class TestKStrongEquilibrium:
    @pytest.mark.parametrize("n", [3, 4])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_naive(self, n, k):
        for graph in all_connected_graphs(n):
            for alpha in ALPHAS:
                state = GameState(graph, alpha)
                assert is_k_strong_equilibrium(state, k) == naive_is_k_bse(
                    state, k
                ), (sorted(graph.edges), alpha, k)

    def test_monotone_in_k(self):
        """(k+1)-BSE is contained in k-BSE."""
        for graph in all_connected_graphs(5):
            state = GameState(graph, 2)
            stable = [is_k_strong_equilibrium(state, k) for k in (1, 2, 3)]
            for weaker, stronger in zip(stable, stable[1:]):
                if stronger:
                    assert weaker

    def test_certificate_validates(self):
        state = GameState(nx.path_graph(6), 2)
        move = find_improving_coalition_move(state, 3)
        if move is not None:
            assert validate_certificate(state, move)

    def test_star_is_bse(self):
        assert is_strong_equilibrium(GameState(nx.star_graph(5), 3))

    def test_probe_finds_known_violation(self, rng):
        state = GameState(nx.path_graph(8), 1)
        move = probe_coalition_moves(
            state, rng, max_coalition_size=2, samples=4000
        )
        assert move is not None
        assert validate_certificate(state, move)

    def test_cycle_window_lemma_2_4(self):
        """C5: stable inside the corrected window (2, 4], unstable outside."""
        assert is_strong_equilibrium(GameState(nx.cycle_graph(5), 3))
        assert is_strong_equilibrium(GameState(nx.cycle_graph(5), 4))
        assert not is_strong_equilibrium(
            GameState(nx.cycle_graph(5), Fraction(9, 2))
        )

    @pytest.mark.slow
    def test_cycle_window_even(self):
        """C6: paper window (4, 6] is confirmed exactly."""
        assert is_strong_equilibrium(
            GameState(nx.cycle_graph(6), 5), max_evaluations=50_000_000
        )
        assert not is_strong_equilibrium(
            GameState(nx.cycle_graph(6), Fraction(13, 2)),
            max_evaluations=50_000_000,
        )


class TestFoldGateOnGeneralGraphs:
    """The fold DFS gate is per-coalition, not global: any coalition whose
    removable edges are all bridges takes the fully query-based fold path
    even on a cyclic host graph — the forest property is never the reason
    a fold split is refused (dispatch spy-counted), and both DFS paths
    return identical moves."""

    @staticmethod
    def _lollipop():
        graph = nx.Graph(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        )  # triangle core + pendant path: cyclic, tail edges are bridges
        return GameState(graph, 2)

    def test_all_bridge_coalitions_take_fold_path(self):
        from repro.core.speculative import SpeculativeEvaluator
        from repro.equilibria import strong

        state = self._lollipop()
        spec = SpeculativeEvaluator(state)
        fold_seen = engine_seen = 0
        for coalition in itertools.combinations(range(state.n), 2):
            removable, addable = strong._coalition_edge_space(
                state, coalition
            )
            all_bridges = all(
                state.dist.is_bridge(u, v) for u, v in removable
            )
            before = strong.dfs_path_counts()
            strong._dfs_coalition_space(spec, coalition, removable, addable)
            after = strong.dfs_path_counts()
            fold_delta = after[0] - before[0]
            engine_delta = after[1] - before[1]
            if all_bridges:
                # the gate must never refuse a splittable coalition
                assert (fold_delta, engine_delta) == (1, 0), coalition
                fold_seen += 1
            else:
                assert (fold_delta, engine_delta) == (0, 1), coalition
                engine_seen += 1
        assert fold_seen > 0 and engine_seen > 0  # both regimes exercised

    def test_fold_and_engine_paths_agree_on_cyclic_graphs(self, monkeypatch):
        from repro.core.speculative import SpeculativeEvaluator

        for alpha in (Fraction(1, 2), 2, 5):
            state = GameState(self._lollipop().graph, alpha)
            gated = find_improving_coalition_move(state, 2)
            # force the engine path (the pre-gate behaviour on any
            # non-forest instance) and compare verdicts
            monkeypatch.setattr(
                SpeculativeEvaluator, "is_bridge", lambda self, u, v: False
            )
            engine = find_improving_coalition_move(state, 2)
            monkeypatch.undo()
            assert gated == engine
