"""Edge cases: tiny games, extreme prices, disconnection, degenerate input."""

from fractions import Fraction

import networkx as nx
import pytest

from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.add import (
    find_improving_bilateral_add,
    is_bilateral_add_equilibrium,
)
from repro.equilibria.neighborhood import is_neighborhood_equilibrium
from repro.equilibria.pairwise import is_pairwise_stable
from repro.equilibria.registry import check
from repro.equilibria.remove import is_remove_equilibrium
from repro.equilibria.strong import is_strong_equilibrium
from repro.equilibria.swap import is_bilateral_swap_equilibrium


class TestSingleAgent:
    def test_one_node_game(self):
        state = GameState(nx.empty_graph(1), 5)
        assert state.social_cost() == 0
        assert state.rho() == 1
        assert is_remove_equilibrium(state)
        assert is_bilateral_add_equilibrium(state)
        assert is_bilateral_swap_equilibrium(state)
        assert is_neighborhood_equilibrium(state)
        assert is_strong_equilibrium(state)


class TestTwoAgents:
    def test_connected_pair(self):
        state = GameState(nx.path_graph(2), 3)
        assert state.cost(0) == 3 + 1
        assert is_pairwise_stable(state)
        assert is_strong_equilibrium(state)

    def test_disconnected_pair_always_adds(self):
        graph = nx.empty_graph(2)
        for alpha in (1, 1000, Fraction(10**6)):
            state = GameState(graph, alpha)
            move = find_improving_bilateral_add(state)
            assert move is not None  # M dominates any edge price

    def test_disconnected_pair_never_re_violated(self):
        state = GameState(nx.empty_graph(2), 1)
        assert is_remove_equilibrium(state)  # nothing to remove


class TestExtremePrices:
    def test_tiny_alpha_forces_clique(self):
        state = GameState(nx.complete_graph(6), Fraction(1, 1000))
        assert is_strong_equilibrium(state)
        assert state.rho() == 1

    def test_huge_alpha_star_still_stable(self):
        state = GameState(nx.star_graph(6), 10**6)
        assert is_pairwise_stable(state)
        assert is_bilateral_swap_equilibrium(state)

    def test_huge_alpha_rho_close_to_one(self):
        """Corollary 3.2: rho <= 1 + n^2/alpha -> 1 as alpha grows."""
        state = GameState(nx.path_graph(8), 10**6)
        assert state.rho() < Fraction(101, 100)

    def test_fractional_boundary_alpha(self):
        """At alpha exactly equal to a gain, strictness blocks the move."""
        # path ends of P6: each gains exactly 2+... compute: adding 0-5
        state = GameState(nx.path_graph(6), 1)
        gain = state.dist.add_gain(0, 5)
        boundary = GameState(nx.path_graph(6), gain)
        assert is_bilateral_add_equilibrium(boundary)
        below = GameState(nx.path_graph(6), Fraction(gain) - Fraction(1, 2))
        assert not is_bilateral_add_equilibrium(below)


class TestDisconnectedStates:
    def test_components_merge_under_every_bilateral_concept(self):
        graph = nx.empty_graph(6)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        graph.add_edge(4, 5)
        state = GameState(graph, 50)
        assert not is_bilateral_add_equilibrium(state)
        assert not is_pairwise_stable(state)
        assert not check(state, Concept.BGE)
        assert not is_neighborhood_equilibrium(state)

    def test_isolated_node_joins(self):
        graph = nx.path_graph(4)
        graph.add_node(4)
        state = GameState(graph, 100)
        move = find_improving_bilateral_add(state)
        assert move is not None
        assert 4 in (move.u, move.v)

    def test_dist_cost_counts_m_per_missing_agent(self):
        graph = nx.empty_graph(3)
        state = GameState(graph, 1)
        assert state.dist_cost(0) == 2 * state.m_constant


class TestDegenerateInput:
    def test_multigraph_rejected_by_simple_graph_semantics(self):
        multi = nx.MultiGraph()
        multi.add_edge(0, 1)
        multi.add_edge(0, 1)
        # canonical relabelling flattens to a simple graph; cost model works
        state = GameState(nx.Graph(multi), 1)
        assert state.graph.number_of_edges() == 1

    def test_directed_input_rejected(self):
        directed = nx.DiGraph([(0, 1)])
        # networkx Graph() conversion makes it undirected; GameState accepts
        state = GameState(nx.Graph(directed), 1)
        assert state.graph.has_edge(0, 1)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            GameState(nx.path_graph(2), -1)

    def test_zero_alpha_rejected(self):
        with pytest.raises(ValueError):
            GameState(nx.path_graph(2), 0)


class TestStrictnessBoundaries:
    def test_swap_partner_exact_alpha_blocks(self):
        """Partner gain == alpha must not count as improving."""
        # star: leaf swaps its center edge to another leaf? gains nothing.
        # construct a path where a specific swap's partner gain is exact.
        state = GameState(nx.path_graph(5), 4)
        from repro.equilibria.swap import swap_gains

        gain_actor, gain_partner = swap_gains(state, 0, 1, 2)
        # whatever the values, the checker must agree with the exact rule
        from repro.equilibria.swap import find_improving_swap

        move = find_improving_swap(state)
        if move is not None:
            ga, gp = swap_gains(state, move.actor, move.old, move.new)
            assert ga >= 1 and gp > state.alpha

    def test_removal_exact_alpha_blocks(self):
        """Loss == alpha: removal not strictly improving, state is RE."""
        state = GameState(nx.cycle_graph(6), 6)  # loss is exactly 6
        assert is_remove_equilibrium(state)
