"""Property tests for the incremental distance engine.

The contract under test: after any sequence of ``apply_add`` /
``apply_remove`` / ``apply_swap`` the in-place matrix is **bit-identical**
to a fresh :func:`~repro.graphs.distances.apsp_matrix` of the mutated graph,
``undo`` restores everything exactly (LIFO), and a whole dynamics trajectory
performs exactly one full APSP build.
"""

import random

import networkx as nx
import numpy as np
import pytest

from repro.core.concepts import Concept
from repro.core.moves import AddEdge, RemoveEdge, Swap
from repro.core.state import GameState
from repro.dynamics.engine import run_dynamics
from repro.equilibria.registry import check
from repro.graphs import distances
from repro.graphs.distances import DistanceMatrix, apsp_matrix
from repro.graphs.generation import random_connected_gnp, random_tree

UNREACHABLE = 10**6


def random_trajectory(dm: DistanceMatrix, graph: nx.Graph, rng, steps: int):
    """Apply ``steps`` random legal mutations, checking exactness after each.

    Returns the undo tokens in application order.
    """
    tokens = []
    for _ in range(steps):
        edges = list(graph.edges)
        non_edges = [
            (u, v)
            for u in graph
            for v in graph
            if u < v and not graph.has_edge(u, v)
        ]
        kind = rng.random()
        if kind < 0.4 and non_edges:
            tokens.append(dm.apply_add(*rng.choice(non_edges)))
        elif kind < 0.75 and edges:
            tokens.append(dm.apply_remove(*rng.choice(edges)))
        elif edges:
            actor, old = rng.choice(edges)
            candidates = [
                w
                for w in graph
                if w != actor and not graph.has_edge(actor, w)
            ]
            if not candidates:
                continue
            tokens.append(dm.apply_swap(actor, old, rng.choice(candidates)))
        else:
            continue
        fresh = apsp_matrix(graph, UNREACHABLE)
        assert (dm.matrix == fresh).all()
        assert dm.matrix.dtype == np.int64
    return tokens


class TestTrajectoriesBitIdentical:
    """100+ random move sequences, each verified move-by-move."""

    @pytest.mark.parametrize("family", ["gnp", "tree", "lattice"])
    def test_random_trajectories(self, family):
        family_offset = {"gnp": 0, "tree": 1000, "lattice": 2000}[family]
        for seed in range(40):
            rng = random.Random(family_offset + seed)
            if family == "gnp":
                graph = random_connected_gnp(
                    rng.randint(2, 10), rng.random() * 0.5, rng
                )
            elif family == "tree":
                graph = random_tree(rng.randint(2, 10), rng)
            else:
                side = rng.randint(2, 3)
                graph = nx.convert_node_labels_to_integers(
                    nx.grid_2d_graph(side, side + 1)
                )
            working = graph.copy()
            dm = DistanceMatrix(working, UNREACHABLE)
            random_trajectory(dm, working, rng, steps=8)

    def test_disconnection_and_reconnection(self):
        graph = nx.path_graph(5)
        dm = DistanceMatrix(graph, UNREACHABLE)
        dm.apply_remove(2, 3)  # splits the path
        assert dm.dist(0, 4) == UNREACHABLE
        assert (dm.matrix == apsp_matrix(graph, UNREACHABLE)).all()
        dm.apply_add(0, 4)  # reconnects the two halves: 2-1-0-4-3
        assert dm.dist(2, 3) == 4
        assert (dm.matrix == apsp_matrix(graph, UNREACHABLE)).all()

    def test_tree_removal_uses_exact_split(self):
        """Removing a tree edge marks exactly the cross pairs unreachable."""
        graph = nx.path_graph(6)
        dm = DistanceMatrix(graph, UNREACHABLE)
        dm.apply_remove(1, 2)
        fresh = apsp_matrix(graph, UNREACHABLE)
        assert (dm.matrix == fresh).all()
        assert dm.dist(0, 5) == UNREACHABLE
        assert dm.dist(0, 1) == 1
        assert dm.dist(2, 5) == 3


class TestUndo:
    def test_round_trip_restores_everything(self):
        for seed in range(30):
            rng = random.Random(seed)
            graph = random_connected_gnp(rng.randint(3, 9), 0.3, rng)
            working = graph.copy()
            dm = DistanceMatrix(working, UNREACHABLE)
            original = dm.matrix.copy()
            tokens = random_trajectory(dm, working, rng, steps=6)
            for token in reversed(tokens):
                dm.undo(token)
            assert (dm.matrix == original).all()
            assert sorted(map(sorted, working.edges)) == sorted(
                map(sorted, graph.edges)
            )
            # the restored CSR cache must describe the restored graph
            assert (
                dm.csr.toarray()
                == nx.to_numpy_array(working, nodelist=range(len(working)))
            ).all()

    def test_lifo_enforced(self):
        dm = DistanceMatrix(nx.cycle_graph(5), UNREACHABLE)
        first = dm.apply_remove(0, 1)
        dm.apply_add(0, 1)
        with pytest.raises(RuntimeError):
            dm.undo(first)

    def test_stale_token_rejected_after_undo(self):
        dm = DistanceMatrix(nx.cycle_graph(5), UNREACHABLE)
        token = dm.apply_remove(0, 1)
        dm.undo(token)
        with pytest.raises(RuntimeError):
            dm.undo(token)

    def test_swap_token_is_atomic(self):
        graph = nx.cycle_graph(6)
        dm = DistanceMatrix(graph, UNREACHABLE)
        original = dm.matrix.copy()
        token = dm.apply_swap(0, 1, 3)
        assert (dm.matrix == apsp_matrix(graph, UNREACHABLE)).all()
        dm.undo(token)
        assert (dm.matrix == original).all()
        assert graph.has_edge(0, 1) and not graph.has_edge(0, 3)

    def test_failed_swap_rolls_back_removal(self):
        graph = nx.cycle_graph(5)
        dm = DistanceMatrix(graph, UNREACHABLE)
        original = dm.matrix.copy()
        with pytest.raises(ValueError):
            dm.apply_swap(0, 1, 4)  # 0-4 already exists
        assert graph.has_edge(0, 1)
        assert (dm.matrix == original).all()


class TestValidation:
    def test_add_existing_edge_rejected(self):
        dm = DistanceMatrix(nx.path_graph(3), UNREACHABLE)
        with pytest.raises(ValueError):
            dm.apply_add(0, 1)

    def test_add_self_loop_rejected(self):
        dm = DistanceMatrix(nx.path_graph(3), UNREACHABLE)
        with pytest.raises(ValueError):
            dm.apply_add(1, 1)

    def test_remove_missing_edge_rejected(self):
        dm = DistanceMatrix(nx.path_graph(3), UNREACHABLE)
        with pytest.raises(ValueError):
            dm.apply_remove(0, 2)

    def test_tiny_sentinel_rejected(self):
        with pytest.raises(ValueError):
            DistanceMatrix(nx.path_graph(5), 3)

    def test_oversized_sentinel_rejected(self):
        with pytest.raises(ValueError):
            DistanceMatrix(nx.path_graph(3), 2**62)


class TestBigM:
    """Exact sentinel arithmetic near the fits_int64 boundary."""

    def test_gamestate_big_m_above_2_53(self):
        """Regression: the cached matrix must carry M exactly even when
        M > 2**53 (the old float64 round-trip corrupted it silently)."""
        alpha = 2**57
        graph = nx.empty_graph(3)
        graph.add_edge(0, 1)
        state = GameState(graph, alpha)
        assert state.m_constant > 2**53
        assert int(float(state.m_constant)) != state.m_constant
        assert state.dist.dist(0, 2) == state.m_constant
        assert state.dist_cost(2) == 2 * state.m_constant

    def test_incremental_updates_keep_big_sentinel_exact(self):
        alpha = 2**57
        graph = nx.empty_graph(3)
        graph.add_edge(0, 1)
        state = GameState(graph, alpha)
        m = state.m_constant
        dm = state.dist
        token = dm.apply_add(1, 2)  # connects everyone
        assert dm.dist(0, 2) == 2
        dm.undo(token)
        assert dm.dist(0, 2) == m
        token = dm.apply_remove(0, 1)
        assert dm.dist(0, 1) == m
        dm.undo(token)
        assert dm.dist(0, 1) == 1


class TestGameStateApply:
    def test_incremental_apply_matches_fresh_state(self):
        for seed in range(15):
            rng = random.Random(seed)
            graph = random_connected_gnp(8, 0.3, rng)
            state = GameState(graph, 2)
            state.dist  # materialise so the fast path engages
            for move in (
                AddEdge(*next(iter(state.non_edges()))),
                RemoveEdge(*list(state.graph.edges)[0]),
            ):
                after = state.apply(move)
                fresh = GameState(move.apply(state.graph), 2)
                assert sorted(map(sorted, after.graph.edges)) == sorted(
                    map(sorted, fresh.graph.edges)
                )
                assert (after.dist_matrix == fresh.dist_matrix).all()

    def test_predecessor_stays_correct_after_handoff(self):
        state = GameState(nx.path_graph(6), 2)
        before = state.dist_matrix.copy()
        successor = state.apply(AddEdge(0, 5))
        # the predecessor rebuilds lazily and still answers exactly
        assert (state.dist_matrix == before).all()
        assert state.graph.number_of_edges() == 5
        assert successor.graph.number_of_edges() == 6
        assert (
            successor.dist_matrix
            == apsp_matrix(successor.graph, successor.m_constant)
        ).all()

    def test_swap_move_applies_incrementally(self):
        state = GameState(nx.cycle_graph(7), 3)
        state.dist
        move = Swap(actor=0, old=1, new=3)
        after = state.apply(move)
        fresh = apsp_matrix(after.graph, after.m_constant)
        assert (after.dist_matrix == fresh).all()

    def test_apply_without_cache_falls_back(self):
        state = GameState(nx.path_graph(5), 1)
        assert state._dist is None
        after = state.apply(AddEdge(0, 4))
        assert after.graph.has_edge(0, 4)


class TestOneBuildPerTrajectory:
    def test_run_dynamics_builds_apsp_once(self):
        before = distances.APSP_BUILDS
        result = run_dynamics(
            nx.path_graph(8), 1, Concept.PS, max_rounds=100
        )
        assert result.rounds > 0  # the trajectory really moved
        assert distances.APSP_BUILDS - before == 1

    def test_bge_dynamics_with_swaps_builds_apsp_once(self):
        start = random_connected_gnp(9, 0.25, random.Random(3))
        before = distances.APSP_BUILDS
        result = run_dynamics(start, 2, Concept.BGE, max_rounds=60)
        assert distances.APSP_BUILDS - before == 1
        fresh = apsp_matrix(result.final.graph, result.final.m_constant)
        assert (result.final.dist_matrix == fresh).all()


POLYNOMIAL_CONCEPTS = (
    Concept.RE,
    Concept.BAE,
    Concept.PS,
    Concept.BSWE,
    Concept.BGE,
)


class TestTrajectoryProperties:
    """Dynamics under each registered concept keep the cache exact and
    stop at states the exact checkers certify."""

    @pytest.mark.parametrize("concept", POLYNOMIAL_CONCEPTS)
    def test_final_cache_equals_fresh_apsp(self, concept):
        for seed in range(6):
            rng = random.Random(seed)
            start = random_connected_gnp(8, 0.3, rng)
            result = run_dynamics(
                start, 2, concept, max_rounds=120, rng=rng
            )
            final = result.final
            fresh = apsp_matrix(final.graph, final.m_constant)
            assert (final.dist_matrix == fresh).all()
            if result.converged:
                assert check(final, concept)

    @pytest.mark.parametrize("concept", (Concept.BNE, Concept.BSE))
    def test_budgeted_concepts_keep_cache_exact(self, concept):
        for seed in range(3):
            rng = random.Random(seed)
            start = random_tree(7, rng)
            result = run_dynamics(
                start, 2, concept, max_rounds=40, rng=rng
            )
            final = result.final
            fresh = apsp_matrix(final.graph, final.m_constant)
            assert (final.dist_matrix == fresh).all()
