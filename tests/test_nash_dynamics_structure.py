"""Tests for unilateral best-response dynamics and structure analysis."""

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.analysis.structure import equilibrium_family_shape, tree_shape
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.nash import is_nash_equilibrium
from repro.equilibria.nash_dynamics import unilateral_best_response_dynamics
from repro.equilibria.pairwise import is_pairwise_stable


class TestUnilateralDynamics:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converged_outcome_is_exact_ne(self, seed):
        outcome = unilateral_best_response_dynamics(
            6, 3, random.Random(seed)
        )
        assert outcome.converged
        state = outcome.state(3)
        outcome.assignment.validate(state.graph)
        assert is_nash_equilibrium(state, outcome.assignment)

    def test_star_start_stays_ne(self):
        """Starting at a leaf-owned star, nobody moves."""
        outcome = unilateral_best_response_dynamics(
            6, 5, random.Random(0), start=nx.star_graph(5)
        )
        assert outcome.converged
        assert outcome.rounds == 1  # one silent round certifies NE

    def test_no_duplicate_purchases_at_convergence(self):
        outcome = unilateral_best_response_dynamics(7, 2, random.Random(3))
        bought = {}
        for (u, v), owner in outcome.assignment.owner.items():
            assert bought.setdefault((u, v), owner) == owner

    def test_connectivity_maintained(self):
        """M-dominance keeps best responses connected."""
        outcome = unilateral_best_response_dynamics(8, 4, random.Random(5))
        assert nx.is_connected(outcome.graph)

    def test_sampled_ne_feed_the_conjecture_question(self):
        """Dynamics-sampled NE can themselves violate pairwise stability
        (the Prop 2.3 phenomenon) — or not; both verdicts must be
        consistent between checkers."""
        for seed in range(4):
            outcome = unilateral_best_response_dynamics(
                6, 2, random.Random(seed)
            )
            if not outcome.converged:
                continue
            state = outcome.state(2)
            # NE certified; PS may or may not hold (that is the point)
            assert is_nash_equilibrium(state, outcome.assignment)
            is_pairwise_stable(state)  # must simply not crash / be exact


class TestTreeShape:
    def test_star_shape(self):
        state = GameState(nx.star_graph(6), 2)
        depth, diameter, degree = tree_shape(state)
        assert depth == 1
        assert diameter == 2
        assert degree == 6

    def test_path_shape(self):
        state = GameState(nx.path_graph(7), 2)
        depth, diameter, degree = tree_shape(state)
        assert depth == 3  # from the median
        assert diameter == 6
        assert degree == 2


class TestFamilyShape:
    def test_bswe_family_respects_lemma_3_4(self):
        for alpha in (2, 8, 32):
            shape = equilibrium_family_shape(9, alpha, Concept.BSWE)
            assert shape.count >= 1
            assert shape.depth_within_lemma_3_4, shape

    def test_ps_family_can_be_deeper_than_bswe(self):
        """At moderate alpha the PS family includes deeper trees than the
        swap-stable family — the structural face of the PoA gap."""
        alpha = 16
        ps = equilibrium_family_shape(9, alpha, Concept.PS)
        bswe = equilibrium_family_shape(9, alpha, Concept.BSWE)
        assert ps.max_diameter >= bswe.max_diameter

    def test_no_equilibria_raises(self):
        with pytest.raises(ValueError):
            equilibrium_family_shape(8, Fraction(1, 100), Concept.PS)

    def test_k_parameter_forwarded(self):
        shape = equilibrium_family_shape(7, 4, Concept.BGE, k=3)
        assert shape.k == 3
        assert shape.count >= 1
