"""Pluggable distance-cost models: equivalence, exactness and guards.

Four arms lock the generalized engine down:

* **Linear byte-equivalence** — ``GameState(..., cost_model=LinearCost())``
  is the *same game* as the default path: identical per-agent costs,
  identical seeded dynamics trajectories (move lists and social-cost
  traces), identical BNE / 3-BSE verdicts.  ``LinearCost`` dispatches to
  today's code, so this is equality of behaviour, not approximation.
* **Kernel-vs-naive deltas** — the speculative kernel's per-agent cost
  deltas for concave / convex / max models (with and without demand
  matrices) match a pure-Python per-entry recomputation on 200+ seeded
  trajectory steps, for ``evaluate`` and the rows-only sweep alike.
* **Pruning soundness** — the generalized ``dist_floor`` really is a
  lower bound for monotone ``f`` (and tight on the star center).
* **Guards** — every linear-by-definition quantity raises on modeled
  states instead of silently comparing against the wrong optimum, and
  malformed models / bindings fail fast.
"""

from __future__ import annotations

import random
from fractions import Fraction

import networkx as nx
import numpy as np
import pytest

from repro.analysis.poa import re_upper_bound_via_prop_3_1
from repro.constructions.basic import star
from repro.core.concepts import Concept
from repro.core.costmodel import (
    ConcaveCost,
    ConvexCost,
    CostModel,
    LinearCost,
    MaxCost,
    ModelOps,
    TableCost,
    costmodel_from_spec,
    integer_root,
)
from repro.core.moves import AddEdge, RemoveEdge, Swap
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.dynamics.engine import run_dynamics
from repro.dynamics.schedulers import random_improvement_scheduler
from repro.equilibria.registry import check
from repro.graphs.distances import DistanceMatrix, apsp_matrix
from repro.graphs.generation import random_connected_gnp, random_tree

UNREACHABLE = 10**6

NONLINEAR_MODELS = (
    ConcaveCost(Fraction(1, 2)),
    ConcaveCost(Fraction(2, 3), scale=3),
    ConvexCost(2),
    ConvexCost(3, scale=2),
    MaxCost(),
)


def naive_agent_value(graph: nx.Graph, state: GameState, agent: int) -> int:
    """``sum_v W[a, v] * f(d)`` (or the max) per-entry from a fresh APSP."""
    ops = state.model_ops
    fresh = apsp_matrix(graph, state.m_constant)
    n = fresh.shape[0]
    values = []
    for v in range(n):
        d = int(fresh[agent, v])
        f = int(ops.table[d]) if d < n else int(ops.unreachable_value)
        w = 1 if ops.weights is None else int(ops.weights[agent, v])
        values.append(w * f)
    return max(values) if ops.aggregate == "max" else sum(values)


def naive_agent_cost(graph: nx.Graph, state: GameState, agent: int):
    return state.alpha * graph.degree(agent) + naive_agent_value(
        graph, state, agent
    )


def move_pool(state: GameState, rng: random.Random, cap: int = 12):
    pool = [RemoveEdge(actor=u, other=v) for u, v in state.graph.edges]
    pool += [AddEdge(u, v) for u, v in state.non_edges()]
    for actor, old in list(state.graph.edges):
        for new in range(state.n):
            if new not in (actor, old) and not state.graph.has_edge(
                actor, new
            ):
                pool.append(Swap(actor=actor, old=old, new=new))
    rng.shuffle(pool)
    return pool[:cap]


# -- model arithmetic ---------------------------------------------------------


class TestModelArithmetic:
    def test_integer_root_exact(self):
        for k in (1, 2, 3, 5):
            for value in list(range(200)) + [10**12, 10**15 + 7]:
                root = integer_root(value, k)
                assert root**k <= value < (root + 1) ** k

    def test_tables_monotone_from_zero(self):
        for model in (LinearCost(),) + NONLINEAR_MODELS:
            table = model.table(9)
            assert table.dtype == np.int64
            assert int(table[0]) == 0
            assert (np.diff(table) >= 0).all()

    def test_concave_matches_floor_of_power(self):
        model = ConcaveCost(Fraction(1, 2))
        table = model.table(50)
        for d in range(50):
            assert int(table[d]) == int(d**0.5)

    def test_spec_round_trips_losslessly(self):
        for model in (
            LinearCost(),
            MaxCost(),
            TableCost([0, 2, 3, 3, 7]),
        ) + NONLINEAR_MODELS:
            clone = costmodel_from_spec(model.spec, 4)
            assert clone == model
            assert hash(clone) == hash(model)
            assert clone.spec == model.spec
            assert (clone.table(4) == model.table(4)).all()
        assert costmodel_from_spec(None, 5) is None

    def test_value_semantics(self):
        assert ConcaveCost(Fraction(1, 2)) == ConcaveCost(Fraction(2, 4))
        assert ConvexCost(2) != ConvexCost(3)
        assert LinearCost() != MaxCost()

    def test_malformed_models_fail_fast(self):
        with pytest.raises(ValueError):
            ConcaveCost(Fraction(3, 2))
        with pytest.raises(ValueError):
            ConcaveCost(Fraction(1, 2), scale=0)
        with pytest.raises(ValueError):
            ConvexCost(0)
        with pytest.raises(ValueError):
            TableCost([1, 2, 3])  # f(0) != 0
        with pytest.raises(ValueError):
            TableCost([0, 3, 2])  # not monotone
        with pytest.raises(ValueError):
            costmodel_from_spec({"model": "polynomial"}, 5)
        with pytest.raises(ValueError):
            costmodel_from_spec({"model": "linear", "scale": 2}, 5)
        with pytest.raises(TypeError):
            costmodel_from_spec("linear", 5)
        with pytest.raises(ValueError):
            # explicit tables must cover every distance of the game
            costmodel_from_spec({"model": "table", "values": [0, 1]}, 5)


# -- linear byte-equivalence --------------------------------------------------


class TestLinearByteEquivalence:
    def test_costs_identical_to_default_path(self):
        for seed in range(10):
            rng = random.Random(200_000 + seed)
            graph = random_connected_gnp(rng.randint(3, 9), 0.4, rng)
            alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
            traffic = (
                None
                if seed % 2 == 0
                else TrafficMatrix.random_demands(
                    graph.number_of_nodes(), seed=seed, high=4
                )
            )
            plain = GameState(graph.copy(), alpha, traffic=traffic)
            modeled = GameState(
                graph.copy(), alpha, traffic=traffic, cost_model=LinearCost()
            )
            assert not modeled.modeled  # linear dispatches to today's code
            for agent in range(plain.n):
                assert plain.cost(agent) == modeled.cost(agent)
            assert plain.social_cost() == modeled.social_cost()
            if traffic is None:  # rho guards weighted states itself
                assert plain.rho() == modeled.rho()  # no modeled guard here

    @pytest.mark.parametrize("concept", (Concept.PS, Concept.BGE))
    def test_dynamics_trajectories_identical(self, concept):
        for seed in range(6):
            rng = random.Random(210_000 + seed)
            graph = random_tree(rng.randint(4, 8), rng)
            alpha = Fraction(rng.randint(1, 7))
            runs = [
                run_dynamics(
                    graph.copy(),
                    alpha,
                    concept,
                    scheduler=random_improvement_scheduler,
                    max_rounds=40,
                    rng=random.Random(seed),
                    cost_model=model,
                )
                for model in (None, LinearCost())
            ]
            assert runs[0].moves == runs[1].moves
            assert runs[0].social_costs == runs[1].social_costs
            assert runs[0].converged == runs[1].converged
            assert runs[0].cycled == runs[1].cycled
            assert sorted(map(sorted, runs[0].final.graph.edges)) == sorted(
                map(sorted, runs[1].final.graph.edges)
            )

    def test_exponential_checkers_identical(self):
        for seed in range(8):
            rng = random.Random(220_000 + seed)
            graph = random_connected_gnp(6, 0.4, rng)
            alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
            plain = GameState(graph.copy(), alpha)
            modeled = GameState(graph.copy(), alpha, cost_model=LinearCost())
            assert check(plain, Concept.BNE) == check(modeled, Concept.BNE)
            assert check(plain, Concept.BSE, k=3) == check(
                modeled, Concept.BSE, k=3
            )


# -- kernel vs naive deltas ---------------------------------------------------


class TestKernelDeltasMatchNaive:
    def test_per_agent_deltas_on_seeded_trajectory_steps(self):
        """evaluate + rows-only sweep vs per-entry recompute, 200+ steps."""
        steps = 0
        for seed in range(24):
            rng = random.Random(230_000 + seed)
            n = rng.randint(4, 9)
            graph = random_connected_gnp(n, 0.4, rng)
            alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
            model = NONLINEAR_MODELS[seed % len(NONLINEAR_MODELS)]
            traffic = (
                None
                if seed % 2 == 0
                else TrafficMatrix.random_demands(n, seed=seed, high=4)
            )
            state = GameState(
                graph, alpha, traffic=traffic, cost_model=model
            )
            spec = SpeculativeEvaluator(state)
            for move in move_pool(state, rng):
                graph_after = move.apply(state.graph)
                evaluation = spec.evaluate(move)
                for agent, delta in evaluation.cost_deltas:
                    expected = naive_agent_cost(
                        graph_after, state, agent
                    ) - naive_agent_cost(state.graph, state, agent)
                    assert delta == expected, (seed, move, agent)
                rows_only = spec.evaluate_rows_only(move)
                if rows_only is not None:
                    assert rows_only.cost_deltas == evaluation.cost_deltas
                    assert rows_only.improving == evaluation.improving
                steps += 1
        assert steps >= 200

    def test_deltas_exact_along_apply_chains(self):
        """The kernel stays exact on states that already moved (the undo
        stack and ftotals maintenance compose with the model)."""
        for seed in range(8):
            rng = random.Random(240_000 + seed)
            n = rng.randint(4, 8)
            graph = random_connected_gnp(n, 0.45, rng)
            model = NONLINEAR_MODELS[seed % len(NONLINEAR_MODELS)]
            state = GameState(graph, Fraction(3), cost_model=model)
            state.dist  # materialise so apply() hands the engine off
            for _ in range(4):
                pool = move_pool(state, rng, cap=4)
                if not pool:
                    break
                spec = SpeculativeEvaluator(state)
                for move in pool:
                    graph_after = move.apply(state.graph)
                    for agent, delta in spec.evaluate(move).cost_deltas:
                        expected = naive_agent_cost(
                            graph_after, state, agent
                        ) - naive_agent_cost(state.graph, state, agent)
                        assert delta == expected
                state = state.apply(pool[0])


# -- pruning soundness --------------------------------------------------------


class TestDistFloorSoundness:
    def test_floor_bounds_every_reachable_value(self):
        """No graph on the same nodes can beat the floor (monotone f)."""
        for seed in range(12):
            rng = random.Random(250_000 + seed)
            n = rng.randint(3, 9)
            model = NONLINEAR_MODELS[seed % len(NONLINEAR_MODELS)]
            traffic = (
                None
                if seed % 2 == 0
                else TrafficMatrix.random_demands(n, seed=seed, high=4)
            )
            floors = None
            for trial in range(6):
                graph = random_connected_gnp(
                    n, 0.3 + 0.1 * (trial % 4), rng
                )
                state = GameState(
                    graph, Fraction(2), traffic=traffic, cost_model=model
                )
                spec = SpeculativeEvaluator(state)
                if floors is None:
                    floors = [spec.dist_floor(a) for a in range(n)]
                # the floor is a graph-independent bound per agent
                assert floors == [spec.dist_floor(a) for a in range(n)]
                for agent in range(n):
                    assert floors[agent] <= spec.current_dist(agent)

    def test_floor_tight_on_star_center(self):
        """The star center realises the all-distance-1 bound exactly."""
        n = 7
        for model in NONLINEAR_MODELS:
            state = GameState(star(n - 1), Fraction(2), cost_model=model)
            spec = SpeculativeEvaluator(state)
            assert spec.current_dist(0) == spec.dist_floor(0)


# -- guards -------------------------------------------------------------------


class TestModeledGuards:
    def _modeled_state(self, model=None):
        return GameState(
            nx.path_graph(5), Fraction(2), cost_model=model or ConvexCost(2)
        )

    def test_rho_raises_on_modeled_states(self):
        with pytest.raises(ValueError, match="linear"):
            self._modeled_state().rho()

    def test_rho_trace_raises_on_modeled_trajectories(self):
        result = run_dynamics(
            nx.path_graph(4),
            Fraction(2),
            Concept.PS,
            max_rounds=3,
            cost_model=MaxCost(),
        )
        with pytest.raises(ValueError, match="linear"):
            result.rho_trace

    def test_prop_3_1_bound_raises_on_modeled_states(self):
        with pytest.raises(ValueError, match="linear"):
            re_upper_bound_via_prop_3_1(self._modeled_state())

    def test_model_ops_requires_a_modeled_state(self):
        plain = GameState(nx.path_graph(4), Fraction(2))
        with pytest.raises(ValueError):
            plain.model_ops
        linear = GameState(
            nx.path_graph(4), Fraction(2), cost_model=LinearCost()
        )
        with pytest.raises(ValueError):
            linear.model_ops

    def test_cost_model_type_checked(self):
        with pytest.raises(TypeError):
            GameState(nx.path_graph(4), Fraction(2), cost_model="concave")

    def test_bind_mismatches_fail_fast(self):
        dm = DistanceMatrix(nx.path_graph(5), UNREACHABLE)
        model = ConvexCost(2)
        with pytest.raises(ValueError, match="size"):
            dm.bind_cost_model(
                ModelOps(4, model.table(4), 10**9, aggregate="sum")
            )
        with pytest.raises(ValueError):
            dm.bind_cost_model(object())
        with pytest.raises(RuntimeError):
            dm.ftotals()  # nothing bound
        dm.bind_cost_model(
            ModelOps(5, model.table(5), 10**9, aggregate="sum")
        )
        with pytest.raises(RuntimeError):
            dm.fmax_counts()  # sum aggregate maintains no counts

    def test_model_ops_validates_table_and_sentinel(self):
        model = ConvexCost(2)
        with pytest.raises(ValueError):
            ModelOps(5, model.table(4), 10**9, aggregate="sum")
        with pytest.raises(ValueError):
            # sentinel must clear the largest real value
            ModelOps(5, model.table(5), int(model.table(5)[-1]), aggregate="sum")

    def test_costmodel_is_a_cost_model_subclass_contract(self):
        for model in (LinearCost(),) + NONLINEAR_MODELS:
            assert isinstance(model, CostModel)
            assert model.aggregate in ("sum", "max")
