"""Batched move-pool kernels (`repro.core.batch`) and the backend
registry (`repro._backend`).

The contract under test is bit-exactness: every batch kernel entry must
equal the per-candidate speculative path's integers, `sweep_best` must
reproduce the sequential `best` loop's chosen move, deltas and
evaluation counts, and every registered backend arm must agree with the
numpy reference to the bit.
"""

import random
from fractions import Fraction

import networkx as nx
import numpy as np
import pytest

from repro import _backend
from repro.core import batch
from repro.core.costmodel import costmodel_from_spec
from repro.core.moves import AddEdge, CoalitionMove, RemoveEdge, Swap
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.graphs.generation import random_connected_gnp

REGIMES = ("uniform", "weighted", "modeled")


def make_state(graph: nx.Graph, alpha, regime: str, seed: int) -> GameState:
    n = graph.number_of_nodes()
    if regime == "uniform":
        return GameState(graph, alpha)
    traffic = TrafficMatrix.random_demands(n, seed=seed, high=5)
    if regime == "weighted":
        return GameState(graph, alpha, traffic=traffic)
    model = costmodel_from_spec({"model": "convex", "exponent": 2}, n)
    return GameState(graph, alpha, traffic=traffic, cost_model=model)


def random_state(seed: int, regime: str) -> GameState:
    rng = random.Random(seed)
    graph = random_connected_gnp(rng.randint(5, 11), 0.2 + rng.random() * 0.4, rng)
    alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
    return make_state(graph, alpha, regime, seed)


def all_swaps(state: GameState) -> list[Swap]:
    swaps = []
    for actor, old in state.graph.edges:
        for new in range(state.n):
            if new not in (actor, old) and not state.graph.has_edge(actor, new):
                swaps.append(Swap(actor=actor, old=old, new=new))
    return swaps


class TestKernelEquivalence:
    """Each kernel entry equals the per-candidate speculative integers."""

    @pytest.mark.parametrize("regime", REGIMES)
    def test_add_gains_match_per_candidate(self, regime):
        for seed in range(12):
            state = random_state(1000 + seed, regime)
            spec = SpeculativeEvaluator(state)
            pairs = list(state.non_edges())
            if not pairs:
                continue
            us = np.array([u for u, _ in pairs], dtype=np.int64)
            vs = np.array([v for _, v in pairs], dtype=np.int64)
            gains_u, gains_v = batch.batch_add_gains(spec, us, vs)
            for i, (u, v) in enumerate(pairs):
                expected = spec.add_gain_pair(u, v)
                assert (int(gains_u[i]), int(gains_v[i])) == expected

    @pytest.mark.parametrize("regime", REGIMES)
    def test_remove_losses_match_per_candidate(self, regime):
        for seed in range(12):
            state = random_state(2000 + seed, regime)
            spec = SpeculativeEvaluator(state)
            # both orientations of every edge: actor-side deltas differ
            moves = [
                RemoveEdge(a, o)
                for u, v in state.graph.edges
                for a, o in ((u, v), (v, u))
            ]
            actors = np.array([m.actor for m in moves], dtype=np.int64)
            others = np.array([m.other for m in moves], dtype=np.int64)
            deltas = batch.batch_remove_losses(spec, actors, others)
            for i, move in enumerate(moves):
                evaluation = spec.evaluate(move)
                ((_, cost_delta),) = evaluation.cost_deltas
                assert int(deltas[i]) == cost_delta + spec.alpha

    @pytest.mark.parametrize("regime", REGIMES)
    def test_swap_deltas_match_per_candidate(self, regime):
        for seed in range(12):
            state = random_state(3000 + seed, regime)
            spec = SpeculativeEvaluator(state)
            swaps = all_swaps(state)
            if not swaps:
                continue
            d_actor, d_new = batch.batch_swap_deltas(spec, swaps)
            for i, move in enumerate(swaps):
                evaluation = spec.evaluate(move)
                (_, actor_delta), (_, new_delta) = evaluation.cost_deltas
                assert int(d_actor[i]) == actor_delta
                assert int(d_new[i]) == new_delta - spec.alpha

    def test_swap_onto_existing_edge_raises(self):
        state = random_state(4000, "uniform")
        spec = SpeculativeEvaluator(state)
        actor, old = next(iter(state.graph.edges))
        partner = next(
            w for w in state.graph.neighbors(actor) if w != old
        )
        with pytest.raises(ValueError, match="already exists"):
            batch.batch_swap_deltas(
                spec, [Swap(actor=actor, old=old, new=partner)]
            )


class TestSweepBest:
    """`sweep_best` is a bit-identical drop-in for the sequential loop:
    same winner, same deltas, same evaluation counts, first-best ties."""

    @pytest.mark.parametrize("regime", REGIMES)
    def test_matches_sequential_on_mixed_pools(self, regime):
        for seed in range(15):
            state = random_state(5000 + seed, regime)
            spec = SpeculativeEvaluator(state)
            rng = random.Random(seed)
            pool = (
                [RemoveEdge(u, v) for u, v in state.graph.edges]
                + [AddEdge(u, v) for u, v in state.non_edges()]
                + all_swaps(state)
            )
            rng.shuffle(pool)
            before = spec.evaluations
            batched = batch.sweep_best(spec, iter(pool))
            batched_count = spec.evaluations - before
            before = spec.evaluations
            sequential = spec._best_sequential(iter(pool))
            sequential_count = spec.evaluations - before
            assert batched_count == sequential_count == len(pool)
            assert (batched is None) == (sequential is None)
            if batched is None:
                continue
            assert batched[0] == sequential[0]
            assert batched[1].cost_deltas == sequential[1].cost_deltas
            assert batched[1].improving == sequential[1].improving
            assert batched[1].total_delta == sequential[1].total_delta

    def test_first_best_tie_breaking_within_a_run(self):
        # a 4-cycle: every removal has the same delta; the first must win
        state = GameState(nx.cycle_graph(4), 2)
        spec = SpeculativeEvaluator(state)
        pool = [RemoveEdge(u, v) for u, v in state.graph.edges]
        chosen = batch.sweep_best(spec, iter(pool))
        reference = spec._best_sequential(iter(pool))
        assert chosen[0] == pool[0] == reference[0]

    def test_compound_moves_fall_back_per_candidate(self):
        state = GameState(nx.path_graph(6), Fraction(3, 2))
        spec = SpeculativeEvaluator(state)
        u, v = next(iter(state.non_edges()))
        compound = CoalitionMove(
            coalition=(u, v), removed_edges=(), added_edges=((u, v),)
        )
        pool = [AddEdge(*edge) for edge in state.non_edges()] + [compound]
        batched = batch.sweep_best(spec, iter(pool))
        sequential = spec._best_sequential(iter(pool))
        assert batched[0] == sequential[0]
        assert batched[1].cost_deltas == sequential[1].cost_deltas

    def test_best_routes_through_sweep_only_when_enabled(self, monkeypatch):
        state = GameState(nx.path_graph(5), 2)
        spec = SpeculativeEvaluator(state)
        pool = [AddEdge(u, v) for u, v in state.non_edges()]

        def boom(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("sweep_best called with batching disabled")

        monkeypatch.setattr(batch, "ENABLED", False)
        monkeypatch.setattr(batch, "sweep_best", boom)
        assert spec.best(iter(pool)) is not None  # sequential path

    def test_best_inside_speculation_scope_stays_sequential(self, monkeypatch):
        # active undo scopes invalidate the cached base totals: best must
        # not hand such a spec to the batch kernels
        state = GameState(nx.path_graph(6), 2)
        spec = SpeculativeEvaluator(state)

        def boom(*args, **kwargs):  # pragma: no cover - guard only
            raise AssertionError("sweep_best called inside an active scope")

        monkeypatch.setattr(batch, "sweep_best", boom)
        spec.push("remove", 0, 1)
        try:
            spec.best(iter([AddEdge(0, 2)]))
        finally:
            spec.pop()


class TestBackendRegistry:
    def test_numpy_always_registered(self):
        assert "numpy" in _backend.available_backends()

    def test_active_is_registered(self):
        assert _backend.active_name() in _backend.available_backends()
        assert _backend.active().name == _backend.active_name()

    def test_set_backend_roundtrip(self):
        previous = _backend.set_backend("numpy")
        try:
            assert _backend.active_name() == "numpy"
        finally:
            _backend.set_backend(previous)

    def test_unknown_backend_raises(self):
        with pytest.raises(RuntimeError, match="unknown backend"):
            _backend.set_backend("cuda")

    def test_use_backend_restores_on_exit(self):
        before = _backend.active_name()
        with _backend.use_backend("numpy") as arm:
            assert arm.name == "numpy"
        assert _backend.active_name() == before

    def test_env_override_selects_registered_arm(self, monkeypatch):
        monkeypatch.setenv(_backend.ENV_VAR, "numpy")
        assert _backend._select_at_import().name == "numpy"

    def test_env_override_unregistered_arm_raises(self, monkeypatch):
        monkeypatch.setenv(_backend.ENV_VAR, "not-an-arm")
        with pytest.raises(RuntimeError, match="unregistered"):
            _backend._select_at_import()

    def test_exact_int_fill_preserves_big_sentinel(self):
        sentinel = 10**17 + 3  # not representable in float64
        raw = np.array([0.0, 2.0, np.inf])
        filled = _backend.exact_int_fill(raw, sentinel)
        assert filled.dtype == np.int64
        assert filled.tolist() == [0, 2, sentinel]


NUMBA_MISSING = "numba" not in _backend.available_backends()


@pytest.mark.skipif(NUMBA_MISSING, reason="numba arm not registered")
class TestNumbaArmBitExact:
    """Direct kernel-level cross-validation: numba vs the numpy reference
    on random inputs (trajectory-level agreement is enforced in
    tests/test_cross_validation.py)."""

    def _matrix(self, seed):
        rng = random.Random(seed)
        graph = random_connected_gnp(rng.randint(8, 20), 0.3, rng)
        state = GameState(graph, 2)
        return state.dist.matrix, graph

    def test_add_gains_and_row_dots(self):
        numpy_arm = _backend._REGISTRY["numpy"]
        numba_arm = _backend._REGISTRY["numba"]
        for seed in range(8):
            matrix, graph = self._matrix(seed)
            n = matrix.shape[0]
            rng = np.random.default_rng(seed)
            us = rng.integers(0, n, size=12).astype(np.int64)
            vs = rng.integers(0, n, size=12).astype(np.int64)
            weights = rng.integers(0, 6, size=(n, n)).astype(np.int64)
            assert (
                numba_arm.add_gains(matrix, us, vs)
                == numpy_arm.add_gains(matrix, us, vs)
            ).all()
            assert (
                numba_arm.weighted_add_gains(matrix, weights, us, vs)
                == numpy_arm.weighted_add_gains(matrix, weights, us, vs)
            ).all()
            rows = matrix[us]
            assert (
                numba_arm.weighted_row_dots(weights[us], rows)
                == numpy_arm.weighted_row_dots(weights[us], rows)
            ).all()

    def test_bfs_rows_scalar_and_batch(self):
        from scipy.sparse import csr_array

        numpy_arm = _backend._REGISTRY["numpy"]
        numba_arm = _backend._REGISTRY["numba"]
        for seed in range(8):
            rng = random.Random(seed)
            n = rng.randint(6, 18)
            graph = nx.gnp_random_graph(n, 0.25, seed=seed)  # may disconnect
            adjacency = csr_array(nx.to_scipy_sparse_array(graph, dtype=np.int64))
            sentinel = 10**15 + 7
            sources = list(range(0, n, 2))
            batch_np = numpy_arm.bfs_rows(adjacency, sources, sentinel)
            batch_nb = numba_arm.bfs_rows(adjacency, sources, sentinel)
            assert batch_nb.shape == batch_np.shape
            assert (batch_nb == batch_np).all()
            row_np = numpy_arm.bfs_rows(adjacency, 0, sentinel)
            row_nb = numba_arm.bfs_rows(adjacency, 0, sentinel)
            assert row_nb.ndim == row_np.ndim == 1
            assert (row_nb == row_np).all()
