"""Tests for GameState and the cost model (repro.core.state / costs)."""

import random
from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import (
    agent_cost_after,
    all_strictly_improve,
    cost_strictly_less,
    max_agent_cost,
    strictly_improves,
)
from repro.core.state import GameState
from repro.graphs.generation import random_connected_gnp

from tests.reference import naive_cost


@st.composite
def states(draw, max_n=10):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    p = draw(st.floats(min_value=0.0, max_value=0.4))
    alpha = draw(
        st.sampled_from([Fraction(1, 2), 1, Fraction(3, 2), 2, 5, 11])
    )
    graph = random_connected_gnp(n, p, random.Random(seed))
    return GameState(graph, alpha)


class TestGameStateBasics:
    def test_relabels_foreign_nodes(self):
        state = GameState(nx.Graph([("x", "y"), ("y", "z")]), 1)
        assert set(state.graph.nodes) == {0, 1, 2}

    def test_input_graph_copied(self):
        graph = nx.path_graph(3)
        state = GameState(graph, 1)
        graph.add_edge(0, 2)
        assert not state.graph.has_edge(0, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GameState(nx.empty_graph(0), 1)

    def test_rejects_self_loop(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        with pytest.raises(ValueError):
            GameState(graph, 1)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            GameState(nx.path_graph(2), 0)

    def test_alpha_kept_exact(self):
        state = GameState(nx.path_graph(2), "104.5")
        assert state.alpha == Fraction(209, 2)

    def test_tree_and_connectivity_flags(self):
        assert GameState(nx.path_graph(4), 1).is_tree()
        assert not GameState(nx.cycle_graph(4), 1).is_tree()
        disconnected = nx.empty_graph(3)
        disconnected.add_edge(0, 1)
        assert not GameState(disconnected, 1).is_connected()

    def test_non_edges(self):
        state = GameState(nx.path_graph(3), 1)
        assert list(state.non_edges()) == [(0, 2)]


class TestCosts:
    def test_star_center_cost(self):
        state = GameState(nx.star_graph(3), 2)
        # center: 3 edges * alpha + distance 3
        assert state.cost(0) == 3 * 2 + 3
        # leaf: 1 edge * alpha + 1 + 2 + 2
        assert state.cost(1) == 2 + 5

    def test_social_cost_decomposition(self):
        state = GameState(nx.cycle_graph(5), 3)
        total_dist = sum(state.dist_cost(u) for u in range(5))
        assert state.social_cost() == 2 * 3 * 5 + total_dist

    def test_disconnected_distance_uses_m(self):
        graph = nx.empty_graph(3)
        graph.add_edge(0, 1)
        state = GameState(graph, 1)
        assert state.dist_cost(0) == 1 + state.m_constant

    @given(states())
    @settings(max_examples=40, deadline=None)
    def test_cost_matches_naive(self, state):
        for u in range(state.n):
            assert state.cost(u) == naive_cost(
                state.graph, state.alpha, u, state.m_constant
            )

    @given(states())
    @settings(max_examples=40, deadline=None)
    def test_social_cost_is_sum_of_agent_costs(self, state):
        assert state.social_cost() == sum(
            state.cost(u) for u in range(state.n)
        )

    def test_max_agent_cost(self):
        state = GameState(nx.star_graph(4), 10)
        assert max_agent_cost(state) == state.cost(0)


class TestCostComparisons:
    def test_cost_strictly_less_exact_at_boundary(self):
        # alpha=2: 1 edge + dist 5 = 7 vs 2 edges + dist 3 = 7 -> not less
        assert not cost_strictly_less(1, 5, 2, 3, Fraction(2))
        assert cost_strictly_less(1, 4, 2, 3, Fraction(2))

    def test_fractional_alpha_boundary(self):
        alpha = Fraction(9, 2)
        # 1 edge more costs 4.5; a distance gain of 4 is not enough, 5 is
        assert not cost_strictly_less(2, 6, 1, 10, alpha)
        assert cost_strictly_less(2, 5, 1, 10, alpha)

    def test_strictly_improves_via_graph(self):
        state = GameState(nx.path_graph(4), 1)
        closed = state.graph.copy()
        closed.add_edge(0, 3)
        assert strictly_improves(state, closed, 0)

    def test_all_strictly_improve(self):
        state = GameState(nx.path_graph(4), 1)
        closed = state.graph.copy()
        closed.add_edge(0, 3)
        assert all_strictly_improve(state, closed, [0, 3])
        assert not all_strictly_improve(state, closed, [0, 1])

    def test_agent_cost_after(self):
        state = GameState(nx.path_graph(3), 2)
        mutated = state.graph.copy()
        mutated.add_edge(0, 2)
        assert agent_cost_after(state, mutated, 0) == 2 * 2 + 2


class TestApplyMove:
    def test_with_graph_keeps_alpha(self):
        state = GameState(nx.path_graph(3), Fraction(7, 2))
        other = state.with_graph(nx.star_graph(3))
        assert other.alpha == Fraction(7, 2)
        assert other.n == 4
