"""Heterogeneous-traffic cost model: the weighted engine stack.

Three pillars:

* **uniform equivalence** — ``TrafficMatrix.uniform(n)`` (and no traffic
  model at all) produce identical equilibrium verdicts, costs, move
  pools and dynamics trajectories: the uniform dispatch keeps every
  layer on the original code paths;
* **weighted exactness** — kernel evaluations, move generators and all
  checkers agree with naive from-scratch recomputation
  (``agent_cost_after`` on a mutated copy) for random, hub-spoke,
  broadcast and gravity demand matrices, including the zero-demand
  regime where bridge removals become profitable;
* **plumbing** — constructors validate, specs round-trip, weighted
  states refuse the uniform-only ``rho()``.
"""

from __future__ import annotations

import itertools
import random
from fractions import Fraction

import networkx as nx
import numpy as np
import pytest

from repro.analysis.poa import empirical_tree_poa, empirical_weighted_poa
from repro.core.concepts import Concept
from repro.core.costs import (
    agent_cost,
    agent_cost_after,
    dist_totals_after,
    max_agent_cost,
    strictly_improves,
)
from repro.core.moves import (
    AddEdge,
    CoalitionMove,
    NeighborhoodMove,
    RemoveEdge,
    Swap,
    normalize_edge,
)
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix, traffic_from_spec
from repro.dynamics.engine import run_dynamics
from repro.dynamics.movegen import improving_moves
from repro.dynamics.schedulers import best_improvement_scheduler
from repro.equilibria.neighborhood import find_improving_neighborhood_move
from repro.equilibria.registry import check
from repro.equilibria.remove import is_remove_equilibrium, removal_loss
from repro.equilibria.strong import find_improving_coalition_move
from repro.graphs.generation import random_connected_gnp, random_tree

POLYNOMIAL_CONCEPTS = (
    Concept.RE,
    Concept.BAE,
    Concept.PS,
    Concept.BSWE,
    Concept.BGE,
)


def sample_traffic(n: int, trial: int, rng: random.Random) -> TrafficMatrix:
    """A rotating family of demand regimes for the randomized suites.

    Includes the asymmetric ``per_agent`` model — the weighted formulas
    only assume the *distance* matrix is symmetric.
    """
    kind = trial % 6
    if kind == 0:
        return TrafficMatrix.random_demands(n, seed=trial, high=4)
    if kind == 1:
        return TrafficMatrix.hub_spoke(
            n, [0], hub_demand=5, spoke_demand=rng.choice((0, 1))
        )
    if kind == 2:
        return TrafficMatrix.broadcast(n, sources=[0, n - 1])
    if kind == 3:
        return TrafficMatrix.gravity([rng.randint(1, 3) for _ in range(n)])
    if kind == 4:
        return TrafficMatrix.per_agent(
            [rng.randint(0, 3) for _ in range(n)]
        )
    return TrafficMatrix.random_demands(n, seed=trial, high=3, density=0.6)


def naive_improves(state: GameState, move) -> bool:
    """From-scratch verdict: fresh BFS costs on a mutated graph copy."""
    after = move.apply(state.graph)
    return all(
        agent_cost_after(state, after, agent) < agent_cost(state, agent)
        for agent in move.beneficiaries()
    )


# -- plumbing ----------------------------------------------------------------


class TestTrafficMatrix:
    def test_uniform_detection(self):
        assert TrafficMatrix.uniform(5).is_uniform
        assert not TrafficMatrix.hub_spoke(5, [0]).is_uniform
        explicit = TrafficMatrix.from_pairs(
            np.ones((4, 4), dtype=np.int64)
        )
        assert explicit.is_uniform  # diagonal is zeroed, rest is 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficMatrix.from_pairs([[0, -1], [1, 0]])
        with pytest.raises(ValueError):
            TrafficMatrix.from_pairs([[0, 1, 2], [1, 0, 1]])
        with pytest.raises(ValueError):
            TrafficMatrix.from_pairs([[0.0, 0.5], [0.5, 0.0]])
        # integer-valued floats are accepted exactly
        exact = TrafficMatrix.from_pairs([[0.0, 2.0], [2.0, 0.0]])
        assert exact.weights[0, 1] == 2

    def test_diagonal_zeroed_and_masses(self):
        traffic = TrafficMatrix.from_pairs([[7, 2], [3, 9]])
        assert traffic.weights[0, 0] == 0 and traffic.weights[1, 1] == 0
        assert traffic.mass(0) == 2 and traffic.mass(1) == 3
        assert traffic.max_row_mass == 3
        assert (traffic.masses() == np.array([2, 3])).all()

    def test_weights_are_read_only(self):
        traffic = TrafficMatrix.uniform(4)
        with pytest.raises(ValueError):
            traffic.weights[0, 1] = 5

    def test_generators_shapes(self):
        hub = TrafficMatrix.hub_spoke(5, [1], hub_demand=9, spoke_demand=2)
        assert hub.weights[1, 3] == 9 and hub.weights[0, 3] == 2
        broadcast = TrafficMatrix.broadcast(5, sources=[2])
        assert broadcast.weights[2, 0] == 1 and broadcast.weights[0, 1] == 0
        gravity = TrafficMatrix.gravity([2, 3, 1])
        assert gravity.weights[0, 1] == 6 and gravity.weights[0, 2] == 2
        per_agent = TrafficMatrix.per_agent([5, 1, 2])
        assert per_agent.weights[1, 0] == 5 and per_agent.weights[0, 1] == 1
        random_t = TrafficMatrix.random_demands(6, seed=3, high=4)
        assert (random_t.weights == random_t.weights.T).all()

    def test_spec_round_trip(self):
        for traffic in (
            TrafficMatrix.uniform(5),
            TrafficMatrix.hub_spoke(5, [0, 2], hub_demand=3, spoke_demand=1),
            TrafficMatrix.broadcast(5, sources=[1]),
            TrafficMatrix.gravity([1, 2, 3, 4, 5]),
            TrafficMatrix.per_agent([2, 0, 1, 1, 3]),
            TrafficMatrix.random_demands(5, seed=9, high=3, density=0.5),
            TrafficMatrix.from_pairs(np.arange(25).reshape(5, 5)),
        ):
            assert traffic_from_spec(traffic.spec, 5) == traffic
        assert traffic_from_spec(None, 5) is None
        with pytest.raises(ValueError):
            traffic_from_spec({"model": "nope"}, 5)

    def test_state_validation(self):
        with pytest.raises(ValueError):
            GameState(nx.path_graph(4), 2, traffic=TrafficMatrix.uniform(5))
        weighted = GameState(
            nx.path_graph(4), 2, traffic=TrafficMatrix.gravity([2, 1, 1, 1])
        )
        assert weighted.weighted
        with pytest.raises(ValueError):
            weighted.rho()
        uniform = GameState(
            nx.path_graph(4), 2, traffic=TrafficMatrix.uniform(4)
        )
        assert not uniform.weighted
        assert uniform.rho() == GameState(nx.path_graph(4), 2).rho()


# -- uniform equivalence -----------------------------------------------------


class TestUniformEquivalence:
    """``TrafficMatrix.uniform`` must be indistinguishable from no traffic."""

    def test_costs_and_verdicts_identical(self):
        rng = random.Random(2)
        for trial in range(12):
            n = rng.randint(3, 8)
            graph = random_connected_gnp(n, 0.45, rng)
            alpha = Fraction(rng.randint(1, 9), rng.choice((1, 2)))
            plain = GameState(graph, alpha)
            uniform = GameState(
                graph, alpha, traffic=TrafficMatrix.uniform(n)
            )
            assert plain.m_constant == uniform.m_constant
            for agent in range(n):
                assert plain.cost(agent) == uniform.cost(agent)
            assert plain.social_cost() == uniform.social_cost()
            for concept in POLYNOMIAL_CONCEPTS:
                assert check(plain, concept) == check(uniform, concept)

    def test_dynamics_trajectories_identical(self):
        rng = random.Random(5)
        for trial in range(6):
            n = rng.randint(5, 9)
            start = random_tree(n, rng)
            alpha = rng.randint(2, 6)
            concept = (Concept.PS, Concept.BGE)[trial % 2]
            plain = run_dynamics(
                start, alpha, concept, max_rounds=300,
                rng=random.Random(trial),
            )
            uniform = run_dynamics(
                start, alpha, concept, max_rounds=300,
                rng=random.Random(trial),
                traffic=TrafficMatrix.uniform(n),
            )
            assert plain.moves == uniform.moves
            assert plain.social_costs == uniform.social_costs
            assert plain.converged == uniform.converged

    def test_weighted_poa_uniform_matches_tree_poa(self):
        for alpha in (2, Fraction(9, 2), 8):
            reference = empirical_tree_poa(6, alpha, Concept.PS)
            weighted = empirical_weighted_poa(
                6, alpha, Concept.PS, TrafficMatrix.uniform(6)
            )
            assert weighted.poa == reference.poa
            assert weighted.equilibria == reference.equilibria
            assert weighted.candidates == reference.candidates


# -- weighted kernel exactness ----------------------------------------------


class TestWeightedKernel:
    def _move_pool(self, state: GameState, rng: random.Random):
        pool = []
        for u, v in state.graph.edges:
            pool.append(RemoveEdge(u, v))
        for u, v in state.non_edges():
            pool.append(AddEdge(u, v))
        for actor, old in list(state.graph.edges):
            for new in range(state.n):
                if new not in (actor, old) and not state.graph.has_edge(
                    actor, new
                ):
                    pool.append(Swap(actor=actor, old=old, new=new))
        rng.shuffle(pool)
        return pool[:20]

    def test_evaluate_matches_naive_costs(self):
        rng = random.Random(11)
        for trial in range(20):
            n = rng.randint(4, 9)
            graph = random_connected_gnp(n, 0.5, rng)
            traffic = sample_traffic(n, trial, rng)
            state = GameState(
                graph, Fraction(rng.randint(1, 9), 2), traffic=traffic
            )
            spec = SpeculativeEvaluator(state)
            for move in self._move_pool(state, rng):
                evaluation = spec.evaluate(move)
                after = move.apply(state.graph)
                for agent, delta in evaluation.cost_deltas:
                    naive_delta = agent_cost_after(
                        state, after, agent
                    ) - agent_cost(state, agent)
                    assert delta == naive_delta, (trial, move)

    def test_rows_only_matches_speculation(self):
        """Weighted rows-only sweeps are bit-identical to apply/undo."""
        rng = random.Random(13)
        for trial in range(20):
            n = rng.randint(4, 9)
            graph = random_connected_gnp(n, 0.5, rng)
            traffic = sample_traffic(n, trial, rng)
            state = GameState(
                graph, Fraction(rng.randint(1, 9), 2), traffic=traffic
            )
            spec = SpeculativeEvaluator(state)
            pool = self._move_pool(state, rng)
            version_before = state.dist._version
            chosen = spec.best(iter(pool))
            assert state.dist._version == version_before
            reference = None
            for move in pool:
                evaluation = spec.evaluate(move)
                if reference is None or (
                    evaluation.total_delta < reference[1].total_delta
                ):
                    reference = (move, evaluation)
            if reference is None:
                assert chosen is None
                continue
            assert chosen[0] == reference[0]
            assert chosen[1].cost_deltas == reference[1].cost_deltas

    def test_best_scheduler_picks_weighted_optimum(self):
        rng = random.Random(17)
        graph = random_connected_gnp(8, 0.4, rng)
        traffic = TrafficMatrix.hub_spoke(8, [0], hub_demand=6)
        state = GameState(graph, 3, traffic=traffic)
        moves = list(improving_moves(state, Concept.BGE, rng))
        if moves:
            chosen = best_improvement_scheduler(state, iter(moves), rng)
            assert chosen in moves

    def test_cost_helpers_are_traffic_aware(self):
        rng = random.Random(19)
        graph = random_connected_gnp(6, 0.5, rng)
        traffic = TrafficMatrix.gravity([3, 1, 2, 1, 1, 2])
        state = GameState(graph, 2, traffic=traffic)
        mutated = graph.copy()
        edge = next(iter(state.non_edges()))
        mutated.add_edge(*edge)
        totals = dist_totals_after(state, mutated, list(range(6)))
        reference = GameState(mutated, 2, traffic=traffic)
        for agent in range(6):
            assert totals[agent] == reference.dist_cost(agent)
            assert strictly_improves(state, mutated, agent) == (
                reference.cost(agent) < state.cost(agent)
            )
        assert max_agent_cost(state) == max(
            state.cost(agent) for agent in range(6)
        )


# -- weighted checkers vs naive ----------------------------------------------


class TestWeightedCheckersVsNaive:
    def naive_re(self, state):
        return all(
            not naive_improves(state, RemoveEdge(actor=actor, other=other))
            for u, v in state.graph.edges
            for actor, other in ((u, v), (v, u))
        )

    def naive_bae(self, state):
        return all(
            not naive_improves(state, AddEdge(u, v))
            for u, v in state.non_edges()
        )

    def naive_bswe(self, state):
        for u, v in state.graph.edges:
            for actor, old in ((u, v), (v, u)):
                for new in range(state.n):
                    if new in (actor, old) or state.graph.has_edge(
                        actor, new
                    ):
                        continue
                    if naive_improves(
                        state, Swap(actor=actor, old=old, new=new)
                    ):
                        return False
        return True

    def test_polynomial_checkers_match_naive(self):
        rng = random.Random(23)
        for trial in range(30):
            n = rng.randint(3, 8)
            graph = (
                random_tree(n, rng)
                if trial % 3 == 0
                else random_connected_gnp(n, 0.45, rng)
            )
            traffic = sample_traffic(n, trial, rng)
            state = GameState(
                graph, Fraction(rng.randint(1, 9), rng.choice((1, 2))),
                traffic=traffic,
            )
            assert check(state, Concept.RE) == self.naive_re(state)
            assert check(state, Concept.BAE) == self.naive_bae(state)
            assert check(state, Concept.BSWE) == self.naive_bswe(state)
            assert check(state, Concept.PS) == (
                self.naive_re(state) and self.naive_bae(state)
            )
            assert check(state, Concept.BGE) == (
                self.naive_re(state)
                and self.naive_bae(state)
                and self.naive_bswe(state)
            )

    def naive_bne(self, state):
        for center in range(state.n):
            neighbors = sorted(state.graph.neighbors(center))
            others = [
                v
                for v in range(state.n)
                if v != center and v not in state.graph[center]
            ]
            for r in range(len(neighbors) + 1):
                for removed in itertools.combinations(neighbors, r):
                    for a in range(len(others) + 1):
                        for added in itertools.combinations(others, a):
                            if not removed and not added:
                                continue
                            move = NeighborhoodMove(
                                center=center,
                                removed=removed,
                                added=added,
                            )
                            if naive_improves(state, move):
                                return False
        return True

    def naive_kbse(self, state, k):
        for size in range(1, k + 1):
            for coalition in itertools.combinations(range(state.n), size):
                members = set(coalition)
                removable = sorted(
                    normalize_edge(u, v)
                    for u, v in state.graph.edges
                    if u in members or v in members
                )
                addable = sorted(
                    normalize_edge(u, v)
                    for u, v in itertools.combinations(sorted(members), 2)
                    if not state.graph.has_edge(u, v)
                )
                for r in range(len(removable) + 1):
                    for removed in itertools.combinations(removable, r):
                        for a in range(len(addable) + 1):
                            for added in itertools.combinations(addable, a):
                                if not removed and not added:
                                    continue
                                move = CoalitionMove(
                                    coalition=coalition,
                                    removed_edges=removed,
                                    added_edges=added,
                                )
                                if naive_improves(state, move):
                                    return False
        return True

    def test_exponential_searches_match_naive(self):
        rng = random.Random(29)
        for trial in range(12):
            n = rng.randint(3, 6)
            graph = (
                random_tree(n, rng)
                if trial % 2 == 0
                else random_connected_gnp(n, 0.5, rng)
            )
            traffic = sample_traffic(n, trial, rng)
            state = GameState(
                graph, Fraction(rng.randint(1, 7), rng.choice((1, 2))),
                traffic=traffic,
            )
            assert (
                find_improving_neighborhood_move(state) is None
            ) == self.naive_bne(state)
            assert (
                find_improving_coalition_move(state, 3) is None
            ) == self.naive_kbse(state, 3)

    def test_zero_demand_bridge_drop_is_found(self):
        """Broadcast demand: a spoke serving no source gets dropped.

        Under uniform traffic every tree is RE (bridges cost >= M); with
        zero demand across the cut the removal is free and saves alpha —
        the weighted checker must find it where the uniform shortcut
        would skip it.
        """
        # path 0-1-2-3; only pairs touching source 0 carry demand, so
        # agent 2 has zero demand toward leaf 3 and gains by dropping
        # the bridge 2-3 (agent 3 itself must keep it to reach 0)
        state = GameState(
            nx.path_graph(4), 2, traffic=TrafficMatrix.broadcast(4, [0])
        )
        assert not is_remove_equilibrium(state)
        move = RemoveEdge(actor=2, other=3)
        assert naive_improves(state, move)
        assert removal_loss(state, 2, 3) == 0
        assert removal_loss(state, 3, 2) > state.alpha  # 3 needs the source
        # the same graph under uniform traffic is trivially RE
        assert is_remove_equilibrium(GameState(nx.path_graph(4), 2))

    def test_movegen_pools_are_certified_and_exhaustive(self):
        rng = random.Random(31)
        for trial in range(10):
            n = rng.randint(4, 7)
            graph = random_connected_gnp(n, 0.5, rng)
            traffic = sample_traffic(n, trial, rng)
            state = GameState(
                graph, Fraction(rng.randint(1, 7), 2), traffic=traffic
            )
            for concept in POLYNOMIAL_CONCEPTS:
                pool = list(improving_moves(state, concept, rng))
                for move in pool:
                    assert naive_improves(state, move), (trial, concept)
                # exhaustive: an empty pool means the checker agrees
                assert (len(pool) == 0) == check(state, concept)

    def test_unilateral_game_uses_weighted_costs(self):
        """The unilateral NCG checkers read the traffic model too.

        Regression: ``strategy_cost`` / ``is_unilateral_remove_equilibrium``
        once read unweighted totals on weighted states, judging
        deviations by the wrong cost function.
        """
        from repro.equilibria.nash import (
            EdgeAssignment,
            is_unilateral_remove_equilibrium,
            strategy_cost,
        )

        state = GameState(
            nx.path_graph(3), 2, traffic=TrafficMatrix.broadcast(3, [0])
        )
        assignment = EdgeAssignment.from_pairs([(0, 1), (1, 2)])
        # agent 2 buys nothing (edge 1-2 is owned by agent 1); its cost
        # is the weighted distance total alone — demand only toward
        # source 0 at d = 2 — not the unweighted row sum of 3
        assert strategy_cost(
            state, assignment, 2, frozenset()
        ) == state.dist_cost(2) == 2
        # agent 1 owns edge 1-2 and has zero demand toward 2: dropping
        # it saves alpha at zero weighted distance cost
        assert not is_unilateral_remove_equilibrium(state, assignment)
        # the same graph/assignment under uniform demand is stable
        assert is_unilateral_remove_equilibrium(
            GameState(nx.path_graph(3), 2), assignment
        )

    def test_weighted_dynamics_converge_to_weighted_equilibria(self):
        rng = random.Random(37)
        for trial in range(5):
            n = rng.randint(5, 8)
            start = random_tree(n, rng)
            traffic = sample_traffic(n, trial, rng)
            result = run_dynamics(
                start, 3, Concept.PS, max_rounds=400,
                rng=random.Random(trial), traffic=traffic,
            )
            if result.converged:
                assert check(result.final, Concept.PS)
                assert result.final.weighted == (not traffic.is_uniform)
