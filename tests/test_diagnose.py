"""Tests for the one-call stability profile (repro.equilibria.diagnose)."""

import networkx as nx

from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.diagnose import diagnose


class TestDiagnose:
    def test_star_stable_everywhere(self):
        reports = diagnose(GameState(nx.star_graph(6), 2))
        assert all(report.stable for report in reports.values())
        assert all(
            report.certificate is None for report in reports.values()
        )

    def test_path_unstable_with_certificates(self):
        state = GameState(nx.path_graph(8), 2)
        reports = diagnose(state)
        assert not reports[Concept.PS].stable
        assert validate_certificate(state, reports[Concept.PS].certificate)
        assert not reports[Concept.BAE].stable

    def test_ps_inherits_re_and_bae_breaks(self):
        state = GameState(nx.complete_graph(5), 10)
        reports = diagnose(state)
        assert not reports[Concept.RE].stable
        assert not reports[Concept.PS].stable

    def test_matches_individual_checkers(self):
        from repro.equilibria.registry import check

        for graph, alpha in (
            (nx.path_graph(6), 1),
            (nx.cycle_graph(6), 5),
            (nx.star_graph(5), 3),
        ):
            state = GameState(graph, alpha)
            reports = diagnose(state)
            for concept in (Concept.RE, Concept.BAE, Concept.PS,
                            Concept.BSWE, Concept.BGE):
                assert reports[concept].stable == check(state, concept)

    def test_budget_fallback_flags_non_exhaustive(self):
        """A 40-leaf star at alpha = 1/2 overflows the BNE budget; the
        probing fallback must label its verdict non-exhaustive."""
        from fractions import Fraction

        state = GameState(nx.star_graph(40), Fraction(1, 2))
        reports = diagnose(state, probe_samples=50)
        bne = reports[Concept.BNE]
        if bne.stable:
            assert not bne.exhaustive
            assert "budget" in bne.note
        else:
            assert validate_certificate(state, bne.certificate)

    def test_figure6_profile(self):
        """Figure 6's graph sits exactly between BNE and 2-BSE."""
        from repro.constructions.figures import figure6_bne_not_2bse

        fig = figure6_bne_not_2bse()
        state = GameState(fig.graph, fig.alpha)
        reports = diagnose(state, max_coalition_size=2)
        assert reports[Concept.BNE].stable
        assert not reports[Concept.BSE].stable  # 2-coalition breaks it
        assert validate_certificate(state, reports[Concept.BSE].certificate)
