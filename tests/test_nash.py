"""Tests for the unilateral NCG (repro.equilibria.nash)."""

from fractions import Fraction

import networkx as nx
import pytest

from repro.core.state import GameState
from repro.equilibria.nash import (
    EdgeAssignment,
    best_response,
    is_nash_equilibrium,
    is_unilateral_remove_equilibrium,
    strategy_cost,
)
from repro.equilibria.remove import is_remove_equilibrium


def rotating_assignment(graph: nx.Graph) -> EdgeAssignment:
    """Each edge owned by its smaller endpoint."""
    return EdgeAssignment.from_pairs((min(u, v), max(u, v)) for u, v in graph.edges)


class TestEdgeAssignment:
    def test_strategy_extraction(self):
        assignment = EdgeAssignment.from_pairs([(0, 1), (0, 2), (2, 3)])
        assert assignment.strategy(0) == {1, 2}
        assert assignment.strategy(2) == {3}
        assert assignment.strategy(1) == frozenset()

    def test_validate_accepts_matching(self):
        graph = nx.path_graph(3)
        rotating_assignment(graph).validate(graph)

    def test_validate_rejects_wrong_edges(self):
        graph = nx.path_graph(3)
        bad = EdgeAssignment.from_pairs([(0, 1)])
        with pytest.raises(ValueError):
            bad.validate(graph)

    def test_validate_rejects_foreign_owner(self):
        graph = nx.path_graph(3)
        bad = EdgeAssignment(owner={(0, 1): 2, (1, 2): 1})
        with pytest.raises(ValueError):
            bad.validate(graph)

    def test_owned_by_others(self):
        assignment = EdgeAssignment.from_pairs([(0, 1), (2, 1)])
        assert assignment.owned_by_others(0) == [(1, 2)]


class TestStrategyCost:
    def test_current_strategy_reproduces_graph_cost(self):
        graph = nx.star_graph(3)
        state = GameState(graph, 2)
        assignment = EdgeAssignment.from_pairs([(0, 1), (0, 2), (0, 3)])
        cost = strategy_cost(state, assignment, 0, assignment.strategy(0))
        assert cost == 3 * 2 + 3  # buys 3 edges, distance 3

    def test_empty_strategy_can_disconnect(self):
        graph = nx.path_graph(2)
        state = GameState(graph, 1)
        assignment = EdgeAssignment.from_pairs([(0, 1)])
        cost = strategy_cost(state, assignment, 0, frozenset())
        assert cost >= state.m_constant  # agent 0 cut itself off

    def test_double_buying_costs_twice(self):
        """Buying an edge the other agent already owns still costs alpha."""
        graph = nx.path_graph(2)
        state = GameState(graph, 5)
        assignment = EdgeAssignment.from_pairs([(0, 1)])
        redundant = strategy_cost(state, assignment, 1, frozenset({0}))
        free_ride = strategy_cost(state, assignment, 1, frozenset())
        assert redundant == free_ride + 5


class TestBestResponse:
    def test_leaf_keeps_single_edge_at_high_alpha(self):
        graph = nx.star_graph(4)
        state = GameState(graph, 10)
        assignment = EdgeAssignment.from_pairs(
            [(1, 0), (2, 0), (3, 0), (4, 0)]
        )  # leaves own their edges
        cost, strategy = best_response(state, assignment, 1)
        assert strategy == {0}
        assert cost == 10 + (1 + 2 * 3)

    def test_center_buys_nothing_when_leaves_pay(self):
        graph = nx.star_graph(3)
        state = GameState(graph, 2)
        assignment = EdgeAssignment.from_pairs([(1, 0), (2, 0), (3, 0)])
        cost, strategy = best_response(state, assignment, 0)
        assert strategy == frozenset()

    def test_guard_on_large_n(self):
        graph = nx.path_graph(20)
        state = GameState(graph, 1)
        assignment = rotating_assignment(graph)
        with pytest.raises(ValueError):
            best_response(state, assignment, 0)


class TestNashEquilibrium:
    def test_star_with_leaf_owners_is_ne(self):
        """Leaves owning their star edges is the canonical NE."""
        graph = nx.star_graph(4)
        state = GameState(graph, 3)
        assignment = EdgeAssignment.from_pairs(
            [(1, 0), (2, 0), (3, 0), (4, 0)]
        )
        assert is_nash_equilibrium(state, assignment)

    def test_star_with_center_owner_still_ne(self):
        """Even a center paying for everything cannot deviate: dropping any
        edge disconnects a leaf, which costs M >> alpha."""
        graph = nx.star_graph(4)
        state = GameState(graph, 100)
        assignment = EdgeAssignment.from_pairs(
            [(0, 1), (0, 2), (0, 3), (0, 4)]
        )
        assert is_nash_equilibrium(state, assignment)

    def test_triangle_owner_of_two_edges_deviates(self):
        """On a triangle at high alpha, an agent owning two edges drops one
        (distance loss 1 << alpha)."""
        graph = nx.cycle_graph(3)
        state = GameState(graph, 100)
        assignment = EdgeAssignment.from_pairs([(0, 1), (0, 2), (1, 2)])
        assert not is_nash_equilibrium(state, assignment)

    def test_ne_implies_bilateral_add_stability_small(self):
        """NE graphs pass the bilateral add checker (Prop 2.1 direction)."""
        from repro.equilibria.add import is_bilateral_add_equilibrium

        graph = nx.star_graph(4)
        state = GameState(graph, 3)
        assignment = EdgeAssignment.from_pairs(
            [(1, 0), (2, 0), (3, 0), (4, 0)]
        )
        assert is_nash_equilibrium(state, assignment)
        assert is_bilateral_add_equilibrium(state)


class TestUnilateralRemoveEquilibrium:
    def test_tree_always_stable(self):
        graph = nx.path_graph(5)
        state = GameState(graph, 2)
        assert is_unilateral_remove_equilibrium(
            state, rotating_assignment(graph)
        )

    def test_proposition_2_2_bilateral_iff_all_assignments(self):
        """RE in the BNCG == unilateral RE for every assignment (Prop 2.2),
        spot-checked on cycles around the stability boundary."""
        import itertools

        for alpha in (5, 6, Fraction(13, 2), 7):
            graph = nx.cycle_graph(6)
            state = GameState(graph, alpha)
            edges = list(graph.edges)
            all_assignments_stable = True
            for owners in itertools.product(*[(u, v) for u, v in edges]):
                assignment = EdgeAssignment.from_pairs(
                    (owner, u if owner == v else v)
                    for owner, (u, v) in zip(owners, edges)
                )
                if not is_unilateral_remove_equilibrium(state, assignment):
                    all_assignments_stable = False
                    break
            assert all_assignments_stable == is_remove_equilibrium(state)
