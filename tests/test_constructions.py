"""Tests for basic constructions, spiders, and stretched trees."""

import math
from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.constructions.basic import (
    almost_complete_dary_tree,
    clique,
    complete_binary_tree,
    complete_dary_tree,
    cycle,
    path,
    star,
)
from repro.constructions.spiders import (
    ps_lower_bound_spider,
    spider,
    tip_to_tip_gain,
)
from repro.constructions.stretched import (
    max_depth_for_size,
    stretched_binary_tree,
    stretched_tree_star,
)
from repro.core.state import GameState
from repro.equilibria.pairwise import is_pairwise_stable
from repro.graphs.trees import RootedTree, is_tree


class TestBasicFamilies:
    def test_star_shape(self):
        graph = star(6)
        assert graph.degree(0) == 5
        assert graph.number_of_edges() == 5

    def test_single_node_star(self):
        assert star(1).number_of_nodes() == 1

    def test_path_cycle_clique(self):
        assert path(4).number_of_edges() == 3
        assert cycle(5).number_of_edges() == 5
        assert clique(5).number_of_edges() == 10

    def test_cycle_needs_three(self):
        with pytest.raises(ValueError):
            cycle(2)

    def test_almost_complete_dary_is_tree(self):
        for n, d in [(1, 2), (7, 2), (20, 3), (50, 4)]:
            graph = almost_complete_dary_tree(n, d)
            assert is_tree(graph)

    def test_dary_degrees_bounded(self):
        graph = almost_complete_dary_tree(40, 3)
        for node in graph:
            assert graph.degree(node) <= 3 + 1

    def test_dary_depth_logarithmic(self):
        graph = almost_complete_dary_tree(40, 3)
        rooted = RootedTree(graph, root=0)
        assert rooted.depth() <= math.ceil(math.log(40, 3)) + 1

    def test_complete_binary_tree_size(self):
        assert complete_binary_tree(3).number_of_nodes() == 15
        assert complete_dary_tree(2, 3).number_of_nodes() == 13

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            almost_complete_dary_tree(5, 1)
        with pytest.raises(ValueError):
            complete_dary_tree(-1, 2)


class TestSpiders:
    def test_shape(self):
        graph = spider(3, 4)
        assert graph.number_of_nodes() == 13
        assert is_tree(graph)
        assert graph.degree(0) == 3

    def test_tip_to_tip_gain_formula(self):
        """The documented L^2 mutual gain is exact."""
        for leg_length in (1, 2, 3, 5, 8):
            graph = spider(2, leg_length)
            state = GameState(graph, 1)
            tip_a = leg_length  # last node of leg 0
            tip_b = 2 * leg_length
            gain = state.dist.add_gain(tip_a, tip_b)
            assert gain == tip_to_tip_gain(leg_length)

    @pytest.mark.parametrize("alpha", [4, 9, 25, 100, 400])
    def test_ps_spider_is_pairwise_stable(self, alpha):
        graph = ps_lower_bound_spider(60, alpha)
        assert is_pairwise_stable(GameState(graph, alpha))

    def test_ps_spider_size_cap(self):
        graph = ps_lower_bound_spider(50, 100)
        assert graph.number_of_nodes() <= 61  # legs trimmed near target


class TestStretchedBinaryTree:
    @given(
        d=st.integers(min_value=0, max_value=5),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_node_count_formula(self, d, k):
        tree = stretched_binary_tree(d, k)
        assert tree.n == (2 ** (d + 1) - 2) * k + 1
        assert is_tree(tree.graph)

    @given(
        d=st.integers(min_value=1, max_value=4),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_binary_distances_scale_by_k(self, d, k):
        """dist_T(u, v) = k * dist_B(u, v) for binary nodes u, v."""
        tree = stretched_binary_tree(d, k)
        state = GameState(tree.graph, 1)
        for heap_u, real_u in tree.binary_ids.items():
            for heap_v, real_v in tree.binary_ids.items():
                expected = _heap_distance(heap_u, heap_v) * k
                assert state.dist.dist(real_u, real_v) == expected

    def test_depth(self):
        tree = stretched_binary_tree(3, 2)
        rooted = RootedTree(tree.graph, root=tree.root)
        assert rooted.depth() == tree.depth == 6

    def test_degenerate_depth_zero(self):
        tree = stretched_binary_tree(0, 3)
        assert tree.n == 1

    def test_rejects_bad_stretch(self):
        with pytest.raises(ValueError):
            stretched_binary_tree(2, 0)


def _heap_distance(u: int, v: int) -> int:
    """Tree distance between heap indices of a complete binary tree."""
    depth_u = u.bit_length()
    depth_v = v.bit_length()
    distance = 0
    while depth_u > depth_v:
        u //= 2
        depth_u -= 1
        distance += 1
    while depth_v > depth_u:
        v //= 2
        depth_v -= 1
        distance += 1
    while u != v:
        u //= 2
        v //= 2
        distance += 2
    return distance


class TestMaxDepthForSize:
    def test_respects_bound(self):
        for k in (1, 2, 3):
            for t in (2 * k + 1, 10 * k, 50 * k):
                d = max_depth_for_size(t, k)
                assert (2 ** (d + 1) - 2) * k + 1 <= t
                assert (2 ** (d + 2) - 2) * k + 1 > t

    def test_rejects_too_small_target(self):
        with pytest.raises(ValueError):
            max_depth_for_size(4, 2)


class TestStretchedTreeStar:
    @given(
        k=st.integers(min_value=1, max_value=3),
        t_mult=st.integers(min_value=3, max_value=12),
        eta_mult=st.integers(min_value=3, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_lemma_d9_size_window(self, k, t_mult, eta_mult):
        """eta <= n <= 3 eta / 2 (Lemma D.9)."""
        t = t_mult * k
        eta = (2 * t + 1) * eta_mult
        built = stretched_tree_star(k, t, eta)
        assert eta <= built.n <= Fraction(3, 2) * eta
        assert is_tree(built.graph)

    def test_copy_roots_attach_to_root(self):
        built = stretched_tree_star(1, 7, 50)
        for copy_root in built.copy_roots:
            assert built.graph.has_edge(0, copy_root)

    def test_depth_is_tree_depth_plus_one(self):
        built = stretched_tree_star(2, 15, 80)
        rooted = RootedTree(built.graph, root=0)
        assert rooted.depth() == built.depth == built.tree.depth + 1

    def test_rejects_eta_too_small(self):
        with pytest.raises(ValueError):
            stretched_tree_star(1, 10, 15)


class TestTheoremParameterisedStars:
    def test_bge_lower_bound_star_parameters(self):
        from repro.constructions.stretched import bge_lower_bound_star

        star = bge_lower_bound_star(600, eta=600)
        assert star.k == 1
        assert star.t == Fraction(600, 15)
        assert 600 <= star.n <= 900

    def test_bge_lower_bound_star_guards(self):
        from repro.constructions.stretched import bge_lower_bound_star

        with pytest.raises(ValueError):
            bge_lower_bound_star(30, eta=100)  # alpha too small for t>=3
        with pytest.raises(ValueError):
            bge_lower_bound_star(600, eta=100)  # eta below alpha

    def test_bne_lower_bound_star_both_cases(self):
        from repro.constructions.stretched import bne_lower_bound_star

        high = bne_lower_bound_star(9 * 300, eta=300, epsilon=0.5)
        assert high.k == 1  # floor(2700 / 2700) = 1
        low = bne_lower_bound_star(200, eta=400, epsilon=0.5)
        assert low.k == 1
        assert low.n >= 400

    def test_bne_lower_bound_star_rejects_gap_range(self):
        from repro.constructions.stretched import bne_lower_bound_star

        with pytest.raises(ValueError):
            bne_lower_bound_star(500, eta=300, epsilon=0.5)  # between cases
