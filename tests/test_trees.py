"""Tests for the rooted-tree toolkit (repro.graphs.trees)."""

import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generation import random_tree
from repro.graphs.trees import (
    RootedTree,
    is_tree,
    one_medians,
    subtree_sizes_from,
    tree_split_masks,
)


@st.composite
def random_trees(draw, min_n=2, max_n=40):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_tree(n, random.Random(seed))


class TestIsTree:
    def test_path_is_tree(self):
        assert is_tree(nx.path_graph(5))

    def test_cycle_is_not(self):
        assert not is_tree(nx.cycle_graph(5))

    def test_forest_is_not(self):
        graph = nx.empty_graph(4)
        graph.add_edge(0, 1)
        assert not is_tree(graph)

    def test_single_node(self):
        assert is_tree(nx.empty_graph(1))


class TestOneMedians:
    def test_star_center(self):
        assert one_medians(nx.star_graph(6)) == [0]

    def test_even_path_has_two(self):
        assert one_medians(nx.path_graph(4)) == [1, 2]

    def test_odd_path_has_one(self):
        assert one_medians(nx.path_graph(5)) == [2]

    def test_rejects_non_tree(self):
        with pytest.raises(ValueError):
            one_medians(nx.cycle_graph(4))

    @given(random_trees())
    @settings(max_examples=50, deadline=None)
    def test_median_minimises_total_distance(self, tree):
        """1-medians are exactly the argmin of total distance."""
        totals = {
            u: sum(nx.single_source_shortest_path_length(tree, u).values())
            for u in tree
        }
        best = min(totals.values())
        expected = sorted(u for u, t in totals.items() if t == best)
        assert one_medians(tree) == expected

    @given(random_trees())
    @settings(max_examples=50, deadline=None)
    def test_median_components_at_most_half(self, tree):
        """Removing a 1-median leaves components of size <= n/2."""
        n = tree.number_of_nodes()
        for median in one_medians(tree):
            pruned = tree.copy()
            pruned.remove_node(median)
            for component in nx.connected_components(pruned):
                assert 2 * len(component) <= n

    @given(random_trees())
    @settings(max_examples=50, deadline=None)
    def test_one_or_two_medians(self, tree):
        assert 1 <= len(one_medians(tree)) <= 2


class TestRootedTree:
    def test_layers_on_path(self):
        tree = RootedTree(nx.path_graph(5), root=0)
        assert [tree.layer[i] for i in range(5)] == [0, 1, 2, 3, 4]
        assert tree.depth() == 4

    def test_default_root_is_median(self):
        tree = RootedTree(nx.path_graph(5))
        assert tree.root == 2

    def test_parent_child(self):
        tree = RootedTree(nx.star_graph(4), root=0)
        assert tree.parent(0) is None
        assert tree.parent(3) == 0
        assert sorted(tree.children(0)) == [1, 2, 3, 4]

    def test_subtree_nodes_and_mask(self):
        tree = RootedTree(nx.path_graph(5), root=0)
        assert sorted(tree.subtree_nodes(3)) == [3, 4]
        mask = tree.subtree_mask(3)
        assert mask.sum() == 2 and mask[3] and mask[4]

    def test_subtree_depth(self):
        tree = RootedTree(nx.path_graph(6), root=0)
        assert tree.subtree_depth(2) == 3
        assert tree.subtree_depth(5) == 0

    def test_path_to_root(self):
        tree = RootedTree(nx.path_graph(4), root=0)
        assert tree.path_to_root(3) == [3, 2, 1, 0]

    def test_rejects_non_tree(self):
        with pytest.raises(ValueError):
            RootedTree(nx.cycle_graph(4))

    def test_rejects_foreign_root(self):
        with pytest.raises(ValueError):
            RootedTree(nx.path_graph(3), root=99)

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_layers_match_bfs_distance(self, tree):
        rooted = RootedTree(tree)
        lengths = nx.single_source_shortest_path_length(tree, rooted.root)
        assert rooted.layer == lengths

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_edges_connect_adjacent_layers(self, tree):
        rooted = RootedTree(tree)
        for u, v in tree.edges:
            assert abs(rooted.layer[u] - rooted.layer[v]) == 1

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_subtree_sizes_sum(self, tree):
        rooted = RootedTree(tree)
        assert rooted.subtree_size[rooted.root] == tree.number_of_nodes()
        for node in tree:
            children_total = sum(
                rooted.subtree_size[c] for c in rooted.children(node)
            )
            assert rooted.subtree_size[node] == 1 + children_total

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_non_root_subtrees_at_most_half(self, tree):
        """The paper's key fact: rooted at a 1-median, |T_u| <= n/2."""
        rooted = RootedTree(tree)  # roots at a 1-median
        n = tree.number_of_nodes()
        for node in tree:
            if node != rooted.root:
                assert 2 * rooted.subtree_size[node] <= n

    def test_subtree_one_medians(self):
        tree = RootedTree(nx.path_graph(7), root=0)
        assert tree.subtree_one_medians(2) == [4]

    def test_oriented_edges(self):
        tree = RootedTree(nx.path_graph(3), root=0)
        assert sorted(tree.iter_edges_oriented()) == [(0, 1), (1, 2)]


class TestSubtreeSizes:
    def test_star(self):
        sizes = subtree_sizes_from(nx.star_graph(4), 0)
        assert sizes[0] == 5
        assert all(sizes[i] == 1 for i in range(1, 5))


class TestSplitMasks:
    def test_path_split(self):
        side_u, side_v = tree_split_masks(nx.path_graph(5), 1, 2, 5)
        assert list(side_u) == [True, True, False, False, False]
        assert list(side_v) == [False, False, True, True, True]

    def test_missing_edge_rejected(self):
        with pytest.raises(ValueError):
            tree_split_masks(nx.path_graph(3), 0, 2, 3)

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_masks_partition_and_match_components(self, tree):
        n = tree.number_of_nodes()
        for u, v in list(tree.edges)[:4]:
            side_u, side_v = tree_split_masks(tree, u, v, n)
            assert (side_u ^ side_v).all()
            mutated = tree.copy()
            mutated.remove_edge(u, v)
            component_u = nx.node_connected_component(mutated, u)
            assert set(np.flatnonzero(side_u)) == component_u
