"""Tests for the dynamics engine, move generators and schedulers."""

import random
from fractions import Fraction

import networkx as nx
import pytest

from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.dynamics.engine import run_dynamics
from repro.dynamics.movegen import improving_moves, move_generator_for
from repro.dynamics.schedulers import (
    best_improvement_scheduler,
    first_improvement_scheduler,
    random_improvement_scheduler,
)
from repro.equilibria.certificates import validate_certificate
from repro.equilibria.pairwise import (
    is_bilateral_greedy_equilibrium,
    is_pairwise_stable,
)
from repro.equilibria.registry import check
from repro.equilibria.remove import is_remove_equilibrium
from repro.graphs.generation import random_connected_gnp, random_tree


class TestMoveGenerators:
    def test_all_generated_moves_are_improving(self):
        state = GameState(nx.path_graph(8), 2)
        for concept in (Concept.RE, Concept.BAE, Concept.PS, Concept.BSWE,
                        Concept.BGE):
            for move in improving_moves(state, concept):
                assert validate_certificate(state, move), (concept, move)

    def test_equilibrium_generates_nothing(self):
        state = GameState(nx.star_graph(7), 2)
        for concept in (Concept.RE, Concept.BAE, Concept.PS, Concept.BSWE,
                        Concept.BGE, Concept.BNE):
            assert list(improving_moves(state, concept)) == []

    def test_generator_consistency_with_checkers(self, rng):
        """No improving move <=> the concept's checker passes."""
        for seed in range(12):
            graph = random_connected_gnp(7, 0.25, random.Random(seed))
            for alpha in (1, 2, 4):
                state = GameState(graph, alpha)
                for concept in (Concept.PS, Concept.BGE):
                    empty = not list(improving_moves(state, concept))
                    assert empty == check(state, concept)

    def test_swap_moves_on_general_graphs(self):
        state = GameState(nx.cycle_graph(8), 2)
        for move in improving_moves(state, Concept.BSWE):
            assert validate_certificate(state, move)

    def test_curried_generator(self):
        generate = move_generator_for(Concept.PS)
        state = GameState(nx.path_graph(6), 1)
        assert list(generate(state)) == list(
            improving_moves(state, Concept.PS)
        )

    def test_unknown_concept_rejected(self):
        state = GameState(nx.path_graph(3), 1)
        with pytest.raises(ValueError):
            list(improving_moves(state, Concept.UNILATERAL_NE))


class TestSchedulers:
    def test_first_returns_first(self):
        state = GameState(nx.path_graph(8), 1)
        moves = list(improving_moves(state, Concept.PS))
        chosen = first_improvement_scheduler(
            state, iter(moves), random.Random(0)
        )
        assert chosen == moves[0]

    def test_random_is_seeded(self):
        state = GameState(nx.path_graph(8), 1)
        pick = lambda seed: random_improvement_scheduler(
            state, improving_moves(state, Concept.PS), random.Random(seed)
        )
        assert pick(7) == pick(7)

    def test_best_picks_largest_drop(self):
        state = GameState(nx.path_graph(9), 1)
        best = best_improvement_scheduler(
            state, improving_moves(state, Concept.BAE), random.Random(0)
        )
        # closing the two ends is the single most valuable addition
        assert best is not None
        assert {best.u, best.v} == {0, 8}

    def test_empty_iterator_gives_none(self):
        state = GameState(nx.star_graph(4), 2)
        for scheduler in (
            first_improvement_scheduler,
            random_improvement_scheduler,
            best_improvement_scheduler,
        ):
            assert scheduler(state, iter([]), random.Random(0)) is None


class TestRunDynamics:
    def test_converged_state_passes_checker(self, rng):
        for seed in range(8):
            graph = random_tree(9, random.Random(seed))
            result = run_dynamics(graph, 3, Concept.PS, max_rounds=300)
            if result.converged:
                assert is_pairwise_stable(result.final)

    def test_bge_dynamics_reach_bge(self, rng):
        for seed in range(6):
            graph = random_tree(8, random.Random(100 + seed))
            result = run_dynamics(graph, 2, Concept.BGE, max_rounds=300)
            if result.converged:
                assert is_bilateral_greedy_equilibrium(result.final)

    def test_social_cost_recorded_per_move(self):
        result = run_dynamics(nx.path_graph(7), 1, Concept.PS, max_rounds=100)
        assert len(result.social_costs) == len(result.moves) + 1

    def test_removal_dynamics_monotone_for_actor(self):
        """Every applied move is validated improving (spot check RE)."""
        graph = nx.complete_graph(6)
        result = run_dynamics(graph, 5, Concept.RE, max_rounds=100)
        assert result.converged
        assert is_remove_equilibrium(result.final)

    def test_star_converges_immediately(self):
        result = run_dynamics(nx.star_graph(6), 2, Concept.BGE)
        assert result.converged
        assert result.rounds == 0

    def test_rho_trace(self):
        result = run_dynamics(nx.path_graph(6), 1, Concept.PS, max_rounds=50)
        trace = result.rho_trace
        assert len(trace) == len(result.social_costs)
        assert all(value >= 1 for value in trace)

    def test_max_rounds_respected(self):
        result = run_dynamics(
            nx.path_graph(12), 1, Concept.PS, max_rounds=1
        )
        assert result.rounds <= 1

    def test_best_scheduler_also_converges(self):
        result = run_dynamics(
            nx.path_graph(8),
            2,
            Concept.PS,
            scheduler=best_improvement_scheduler,
            max_rounds=200,
        )
        if result.converged:
            assert is_pairwise_stable(result.final)

    def test_improving_dynamics_lower_cost_weakly_for_ps_trees(self):
        """On trees, PS moves are additions (removals disconnect), and each
        addition strictly helps both movers; social cost may still rise,
        but rho stays finite and the run terminates."""
        result = run_dynamics(nx.path_graph(10), 2, Concept.PS, max_rounds=500)
        assert result.converged or result.cycled or result.rounds == 500


class TestCyclingBehaviour:
    """The BNCG admits no potential function: improving dynamics can
    revisit a state.  This pins a concrete deterministic cycle so the
    detection machinery stays honest."""

    def test_ps_dynamics_can_cycle(self):
        start = random_tree(24, random.Random(7))
        result = run_dynamics(
            start, 12, Concept.PS, max_rounds=2000, rng=random.Random(7)
        )
        assert result.cycled
        assert not result.converged
        assert result.rounds == 26

    def test_cycled_runs_do_not_claim_equilibrium(self):
        start = random_tree(24, random.Random(7))
        result = run_dynamics(
            start, 12, Concept.PS, max_rounds=2000, rng=random.Random(7)
        )
        # the final state genuinely admits an improving move
        assert list(improving_moves(result.final, Concept.PS))
