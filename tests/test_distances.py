"""Tests for the distance engine (repro.graphs.distances)."""

import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.distances import (
    DistanceMatrix,
    added_edge_dist_gain,
    apsp_matrix,
    canonical_labels,
    component_labels,
    dist_vector_after_add,
    removed_edge_dist_vector,
    single_source_distances,
)
from repro.graphs.generation import random_connected_gnp

UNREACHABLE = 10**6


def nx_apsp(graph: nx.Graph) -> np.ndarray:
    n = graph.number_of_nodes()
    dist = np.full((n, n), UNREACHABLE, dtype=np.int64)
    for source, lengths in nx.all_pairs_shortest_path_length(graph):
        for target, value in lengths.items():
            dist[source, target] = value
    return dist


@st.composite
def connected_graphs(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.0, max_value=0.5))
    return random_connected_gnp(n, p, random.Random(seed))


class TestApspMatrix:
    def test_path(self):
        dist = apsp_matrix(nx.path_graph(4), UNREACHABLE)
        assert dist[0, 3] == 3
        assert dist[1, 2] == 1
        assert (np.diag(dist) == 0).all()

    def test_disconnected_pairs_get_unreachable(self):
        graph = nx.empty_graph(3)
        graph.add_edge(0, 1)
        dist = apsp_matrix(graph, UNREACHABLE)
        assert dist[0, 2] == UNREACHABLE
        assert dist[2, 1] == UNREACHABLE
        assert dist[0, 1] == 1

    def test_edgeless(self):
        dist = apsp_matrix(nx.empty_graph(3), UNREACHABLE)
        assert (np.diag(dist) == 0).all()
        assert dist[0, 1] == UNREACHABLE

    def test_rejects_noncanonical_nodes(self):
        graph = nx.Graph([("a", "b")])
        with pytest.raises(ValueError):
            apsp_matrix(graph, UNREACHABLE)

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, graph):
        ours = apsp_matrix(graph, UNREACHABLE)
        assert (ours == nx_apsp(graph)).all()

    @given(connected_graphs())
    @settings(max_examples=25, deadline=None)
    def test_symmetry_and_triangle_inequality(self, graph):
        dist = apsp_matrix(graph, UNREACHABLE)
        assert (dist == dist.T).all()
        n = graph.number_of_nodes()
        for k in range(n):
            via_k = dist[:, k][:, None] + dist[k][None, :]
            assert (dist <= via_k).all()

    def test_big_m_sentinel_survives_exactly(self):
        """Regression: sentinels above 2**53 must not round-trip through
        float64 (float(2**53 + 1) == 2**53 would corrupt the big constant)."""
        sentinel = 2**53 + 1
        assert int(float(sentinel)) != sentinel  # the trap being guarded
        graph = nx.empty_graph(3)
        graph.add_edge(0, 1)
        dist = apsp_matrix(graph, sentinel)
        assert dist[0, 2] == sentinel
        assert dist[2, 1] == sentinel
        assert dist[0, 1] == 1

    def test_big_m_sentinel_near_int64_boundary(self):
        sentinel = 2**62 - 3  # largest class of sentinels callers may use
        graph = nx.empty_graph(2)
        dist = apsp_matrix(graph, sentinel)
        assert dist[0, 1] == sentinel


class TestSingleSource:
    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_apsp_row(self, graph):
        dist = apsp_matrix(graph, UNREACHABLE)
        for source in range(graph.number_of_nodes()):
            row = single_source_distances(graph, source, UNREACHABLE)
            assert (row == dist[source]).all()

    def test_isolated_source(self):
        graph = nx.empty_graph(3)
        graph.add_edge(1, 2)
        row = single_source_distances(graph, 0, UNREACHABLE)
        assert row[0] == 0
        assert row[1] == UNREACHABLE

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_single_source(self, graph):
        """Cross-check the vectorised BFS against networkx levels."""
        for source in range(graph.number_of_nodes()):
            row = single_source_distances(graph, source, UNREACHABLE)
            expected = nx.single_source_shortest_path_length(graph, source)
            for node in graph:
                assert row[node] == expected.get(node, UNREACHABLE)

    def test_big_sentinel_exact(self):
        graph = nx.empty_graph(3)
        graph.add_edge(0, 1)
        sentinel = 2**53 + 1
        row = single_source_distances(graph, 0, sentinel)
        assert row[2] == sentinel


class TestAdjacencyCsr:
    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_adjacency(self, graph):
        from repro.graphs.distances import adjacency_csr

        ours = adjacency_csr(graph).toarray()
        expected = nx.to_numpy_array(graph, nodelist=range(len(graph)))
        assert (ours == expected).all()

    def test_edgeless(self):
        from repro.graphs.distances import adjacency_csr

        csr = adjacency_csr(nx.empty_graph(4))
        assert csr.shape == (4, 4)
        assert csr.nnz == 0


class TestIncrementalAdd:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_add_identity_is_exact(self, graph):
        """min(d_u, 1 + d_v) equals a fresh BFS after adding uv."""
        dist = apsp_matrix(graph, UNREACHABLE)
        non_edges = [
            (u, v)
            for u in graph
            for v in graph
            if u < v and not graph.has_edge(u, v)
        ]
        for u, v in non_edges[:5]:
            predicted = dist_vector_after_add(dist, u, v)
            mutated = graph.copy()
            mutated.add_edge(u, v)
            actual = single_source_distances(mutated, u, UNREACHABLE)
            assert (predicted == actual).all()

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_gain_matches_recomputation(self, graph):
        dist = apsp_matrix(graph, UNREACHABLE)
        non_edges = [
            (u, v)
            for u in graph
            for v in graph
            if u != v and not graph.has_edge(u, v)
        ]
        for u, v in non_edges[:5]:
            mutated = graph.copy()
            mutated.add_edge(u, v)
            recomputed = single_source_distances(mutated, u, UNREACHABLE)
            expected = int(dist[u].sum() - recomputed.sum())
            assert added_edge_dist_gain(dist, u, v) == expected

    def test_gain_nonnegative(self):
        dist = apsp_matrix(nx.path_graph(6), UNREACHABLE)
        assert added_edge_dist_gain(dist, 0, 5) > 0
        assert added_edge_dist_gain(dist, 0, 2) >= 0


class TestRemoval:
    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_removal_vector_matches_recomputation(self, graph):
        for u, v in list(graph.edges)[:5]:
            predicted = removed_edge_dist_vector(graph, u, v, UNREACHABLE)
            mutated = graph.copy()
            mutated.remove_edge(u, v)
            actual = single_source_distances(mutated, u, UNREACHABLE)
            assert (predicted == actual).all()
            assert graph.has_edge(u, v)  # graph restored

    def test_missing_edge_rejected(self):
        with pytest.raises(ValueError):
            removed_edge_dist_vector(nx.path_graph(3), 0, 2, UNREACHABLE)


class TestDistanceMatrixClass:
    def test_totals_and_diameter(self):
        dm = DistanceMatrix(nx.path_graph(4), UNREACHABLE)
        assert dm.total(0) == 1 + 2 + 3
        assert dm.diameter() == 3
        assert dm.eccentricity(1) == 2

    def test_remove_loss_on_cycle(self):
        dm = DistanceMatrix(nx.cycle_graph(5), UNREACHABLE)
        # breaking one edge turns the 5-cycle into a path: 6 -> 10
        assert dm.remove_loss(0, 1) == 4

    def test_add_gain_on_path_ends(self):
        dm = DistanceMatrix(nx.path_graph(5), UNREACHABLE)
        # closing the path into a cycle: dist(0) drops from 10 to 6
        assert dm.add_gain(0, 4) == 4


class TestComponents:
    def test_component_labels(self):
        graph = nx.empty_graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        labels = component_labels(graph)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]


class TestCanonicalLabels:
    def test_string_nodes(self):
        graph = nx.Graph([("b", "a"), ("a", "c")])
        relabeled = canonical_labels(graph)
        assert set(relabeled.nodes) == {0, 1, 2}
        assert relabeled.number_of_edges() == 2

    def test_preserves_structure(self):
        graph = nx.star_graph(4)
        relabeled = canonical_labels(graph)
        assert nx.is_isomorphic(graph, relabeled)
