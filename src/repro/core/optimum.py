"""Social optima of the BNCG (Section 3.1).

* ``alpha < 1``: the clique is the unique optimum,
  ``cost(OPT) = n (n-1) (1 + alpha)``.
* ``alpha >= 1``: the star is an optimum (unique for ``alpha > 1``),
  ``cost(OPT) = 2 (n-1) (alpha + n - 1)``.

At ``alpha = 1`` both formulas agree (``2 n (n-1)``), and any graph of
diameter at most two is optimal.
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx

from repro._alpha import AlphaLike, as_alpha
from repro.core.state import GameState

__all__ = [
    "brute_force_optimum_cost",
    "optimum_cost",
    "optimum_graph",
    "social_cost_ratio",
]


def optimum_cost(n: int, alpha: AlphaLike) -> Fraction:
    """Social cost of a social optimum for ``n`` agents at price ``alpha``."""
    if n <= 0:
        raise ValueError("n must be positive")
    price = as_alpha(alpha)
    if n == 1:
        return Fraction(0)
    if price < 1:
        return n * (n - 1) * (1 + price)
    return 2 * (n - 1) * (price + n - 1)


def optimum_graph(n: int, alpha: AlphaLike) -> nx.Graph:
    """A social optimum: the clique for ``alpha < 1``, else the star."""
    if n <= 0:
        raise ValueError("n must be positive")
    if as_alpha(alpha) < 1:
        return nx.complete_graph(n)
    if n == 1:
        return nx.empty_graph(1)
    return nx.star_graph(n - 1)


def social_cost_ratio(state: GameState) -> Fraction:
    """``rho(G) = cost(G) / cost(OPT)``; equals 1 exactly at an optimum."""
    if state.n == 1:
        return Fraction(1)
    return state.social_cost() / optimum_cost(state.n, state.alpha)


def brute_force_optimum_cost(n: int, alpha: AlphaLike) -> Fraction:
    """Minimum social cost over *all* non-isomorphic connected graphs.

    Exponential reference implementation used by the tests to validate the
    closed-form optimum; supports ``n <= 7`` (graph atlas).
    """
    from repro.graphs.generation import all_connected_graphs

    price = as_alpha(alpha)
    best: Fraction | None = None
    for graph in all_connected_graphs(n):
        value = GameState(graph, price).social_cost()
        if best is None or value < best:
            best = value
    assert best is not None
    return best
