"""Social optima of the BNCG (Section 3.1).

* ``alpha < 1``: the clique is the unique optimum,
  ``cost(OPT) = n (n-1) (1 + alpha)``.
* ``alpha >= 1``: the star is an optimum (unique for ``alpha > 1``),
  ``cost(OPT) = 2 (n-1) (alpha + n - 1)``.

At ``alpha = 1`` both formulas agree (``2 n (n-1)``), and any graph of
diameter at most two is optimal.
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx

from repro._alpha import AlphaLike, as_alpha
from repro.core.state import GameState

__all__ = [
    "brute_force_optimum_cost",
    "optimum_cost",
    "optimum_graph",
    "quality_ratio",
    "reference_social_cost",
    "social_cost_ratio",
]


def optimum_cost(n: int, alpha: AlphaLike) -> Fraction:
    """Social cost of a social optimum for ``n`` agents at price ``alpha``."""
    if n <= 0:
        raise ValueError("n must be positive")
    price = as_alpha(alpha)
    if n == 1:
        return Fraction(0)
    if price < 1:
        return n * (n - 1) * (1 + price)
    return 2 * (n - 1) * (price + n - 1)


def optimum_graph(n: int, alpha: AlphaLike) -> nx.Graph:
    """A social optimum: the clique for ``alpha < 1``, else the star."""
    if n <= 0:
        raise ValueError("n must be positive")
    if as_alpha(alpha) < 1:
        return nx.complete_graph(n)
    if n == 1:
        return nx.empty_graph(1)
    return nx.star_graph(n - 1)


def social_cost_ratio(state: GameState) -> Fraction:
    """``rho(G) = cost(G) / cost(OPT)``; equals 1 exactly at an optimum."""
    if state.n == 1:
        return Fraction(1)
    return state.social_cost() / optimum_cost(state.n, state.alpha)


def reference_social_cost(
    n: int,
    alpha: AlphaLike,
    traffic=None,
    cost_model=None,
) -> Fraction:
    """Best social cost over the closed-form optimum families — the
    clique and every star — under the given traffic / cost-model regime.

    For uniform traffic and a linear model this equals
    :func:`optimum_cost` exactly (Section 3.1).  Under non-uniform
    demands or a non-linear ``f`` no closed-form optimum is known, so
    the best clique/star cost anchors quality reporting instead: it is
    the genuine social cost of a buildable network, hence an upper bound
    on the true optimum, and ``social_cost / reference`` is a meaningful
    headline in every regime.  With demands the star center matters, so
    all ``n`` centers are tried.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    price = as_alpha(alpha)
    if n == 1:
        return Fraction(0)
    uniform = traffic is None or traffic.is_uniform
    linear = cost_model is None or cost_model.is_linear
    if uniform and linear:
        return optimum_cost(n, price)
    candidates = [nx.complete_graph(n)]
    centers = range(n) if not uniform else range(1)  # stars are isomorphic
    for center in centers:
        star = nx.empty_graph(n)
        star.add_edges_from((center, x) for x in range(n) if x != center)
        candidates.append(star)
    return min(
        GameState(
            graph, price, traffic=traffic, cost_model=cost_model
        ).social_cost()
        for graph in candidates
    )


def quality_ratio(state: GameState) -> Fraction:
    """``cost(G) / reference`` — :meth:`GameState.rho`'s regime-aware
    generalisation.

    Equals ``rho(G)`` bit-exactly for uniform traffic with a linear
    model; for weighted or modeled games it compares against
    :func:`reference_social_cost`, so dynamics trials in every regime
    report a headline on the same scale (1 = as good as the best
    classical optimum shape).
    """
    if state.n == 1:
        return Fraction(1)
    return state.social_cost() / reference_social_cost(
        state.n,
        state.alpha,
        traffic=state.traffic,
        cost_model=state.cost_model,
    )


def brute_force_optimum_cost(n: int, alpha: AlphaLike) -> Fraction:
    """Minimum social cost over *all* non-isomorphic connected graphs.

    Exponential reference implementation used by the tests to validate the
    closed-form optimum; practical to ``n ~ 8`` (atlas to ``n = 7``,
    canonical-key enumeration above).
    """
    from repro.graphs.generation import all_connected_graphs

    price = as_alpha(alpha)
    best: Fraction | None = None
    for graph in all_connected_graphs(n):
        value = GameState(graph, price).social_cost()
        if best is None or value < best:
            best = value
    assert best is not None
    return best
