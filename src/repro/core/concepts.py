"""The cooperation ladder: solution concepts of the paper, in one enum.

Ordered by increasing cooperation, matching Section 1.1:

RE -> BAE -> PS -> BSwE -> BGE -> BNE -> 2-BSE -> 3-BSE -> ... -> BSE.

The enum is the key used by the checker registry
(:mod:`repro.equilibria.registry`), the dynamics move generators and the
analysis tables.  ``k``-BSE is parametrised separately because ``k`` is an
argument, not a fixed concept.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Concept", "TREE_LADDER"]


class Concept(str, Enum):
    """Solution concepts for the BNCG (plus the unilateral references)."""

    RE = "remove-equilibrium"
    BAE = "bilateral-add-equilibrium"
    PS = "pairwise-stability"
    BSWE = "bilateral-swap-equilibrium"
    BGE = "bilateral-greedy-equilibrium"
    BNE = "bilateral-neighborhood-equilibrium"
    BSE = "bilateral-strong-equilibrium"
    # unilateral reference concepts (Section 2 comparisons)
    UNILATERAL_AE = "unilateral-add-equilibrium"
    UNILATERAL_NE = "unilateral-nash-equilibrium"

    @property
    def is_bilateral(self) -> bool:
        return self not in (Concept.UNILATERAL_AE, Concept.UNILATERAL_NE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The tree-PoA ladder of Table 1, weakest to strongest cooperation.
TREE_LADDER = (
    Concept.PS,
    Concept.BSWE,
    Concept.BGE,
    Concept.BNE,
)
