"""Game core: states, costs, optima, moves, and the concept ladder."""

from repro.core.state import GameState
from repro.core.costmodel import (
    ConcaveCost,
    ConvexCost,
    CostModel,
    LinearCost,
    MaxCost,
    TableCost,
    costmodel_from_spec,
)
from repro.core.costs import (
    agent_cost,
    agent_cost_after,
    cost_strictly_less,
    social_cost,
)
from repro.core.optimum import (
    optimum_cost,
    optimum_graph,
    social_cost_ratio,
)
from repro.core.moves import (
    AddEdge,
    CoalitionMove,
    Move,
    NeighborhoodMove,
    RemoveEdge,
    Swap,
)
from repro.core.concepts import Concept
from repro.core.speculative import (
    MoveEvaluation,
    SpeculativeEvaluator,
    evaluation_count,
)
from repro.core.traffic import TrafficMatrix, traffic_from_spec

__all__ = [
    "AddEdge",
    "CoalitionMove",
    "ConcaveCost",
    "Concept",
    "ConvexCost",
    "CostModel",
    "GameState",
    "LinearCost",
    "MaxCost",
    "Move",
    "MoveEvaluation",
    "NeighborhoodMove",
    "RemoveEdge",
    "SpeculativeEvaluator",
    "Swap",
    "TableCost",
    "TrafficMatrix",
    "agent_cost",
    "agent_cost_after",
    "cost_strictly_less",
    "costmodel_from_spec",
    "evaluation_count",
    "optimum_cost",
    "optimum_graph",
    "social_cost",
    "social_cost_ratio",
    "traffic_from_spec",
]
