"""Pool-at-once move evaluation: one vectorised pass per candidate run.

:meth:`repro.core.speculative.SpeculativeEvaluator.best` used to price a
round's move pool one candidate at a time — per candidate one or two
O(n) numpy dispatches, each carrying microseconds of Python and
allocator overhead.  This module sweeps whole *runs* of same-type
one-edge moves through three matrix-level kernels instead:

* :func:`batch_add_gains` — the one-edge-add identity for all ``k``
  candidate pairs in one ``(k, n)`` outer-min pass (uniform, weighted
  ``W``-row-dot and :class:`~repro.core.costmodel.ModelOps` f-valued
  variants, reusing the exact sentinel arithmetic of the per-candidate
  path);
* :func:`batch_remove_losses` — bridge removals vectorised off the cut
  side masks (``d(x, other) < d(x, actor)`` rows to the sentinel, read
  straight off the cached matrix), non-bridge removals grouped by edge
  so both directions share one probe-BFS batch;
* :func:`batch_swap_deltas` — swaps grouped by their removed edge: one
  ``rows_after_remove_from`` batch per *distinct* edge (search-free for
  bridges, one batched BFS otherwise) amortised across every partner,
  then the add identity ``min(row_a, 1 + row_n)`` and the value
  reduction vectorised across the group.

The inner loops (outer-min sweep, BFS rows, weighted row dots) dispatch
through :mod:`repro._backend`, so a numba arm accelerates them when
registered.

**Bit-exactness contract.**  :func:`sweep_best` reproduces the
sequential ``best`` loop exactly: the same candidates are evaluated (the
module/instance evaluation spies advance by the same counts), the chosen
move is the same — within a same-type run the alpha buy term is constant,
so the first argmin over the integer distance deltas *is* the sequential
first-strict-less winner, and across runs totals compare as exact
``Fraction`` values — and the winner's
:class:`~repro.core.speculative.MoveEvaluation` is rebuilt with the very
same ``Fraction`` arithmetic as ``evaluate_rows_only``.  Compound moves
(coalition / neighborhood) fall back to one per-candidate speculation
each, in pool order, exactly as before.

``REPRO_BATCH=0`` forces the sequential path (the fuzz arm of
``tests/test_cross_validation.py`` runs whole trajectories both ways);
tests may also monkeypatch :data:`ENABLED`.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro._backend import active as _active_backend
from repro.core.moves import AddEdge, Move, RemoveEdge, Swap
from repro.obs import metrics as _obs

__all__ = [
    "ENABLED",
    "batch_add_gains",
    "batch_remove_losses",
    "batch_swap_deltas",
    "sweep_best",
]

#: Whether ``SpeculativeEvaluator.best`` routes homogeneous runs through
#: the batch kernels (``REPRO_BATCH=0`` forces the sequential path).
ENABLED = os.environ.get("REPRO_BATCH", "1") != "0"


def _owned_rows_value(spec, owners: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Distance totals (model values when modeled) of a ``(k, n)`` row
    stack whose row ``i`` belongs to agent ``owners[i]`` — the shared
    value reduction of all three kernels, bit-identical per row to
    ``SpeculativeEvaluator.row_dist``."""
    if spec._ops is not None:
        return spec._ops.rows_value_owned(owners, rows)
    if spec._weights is None:
        return rows.sum(axis=1)
    return _active_backend().weighted_row_dots(spec._weights[owners], rows)


def batch_add_gains(
    spec, us: np.ndarray, vs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Distance gains of both endpoints for ``k`` candidate additions.

    One vectorised outer-min pass over the cached matrix per direction —
    entry ``i`` equals ``spec.add_gain_pair(us[i], vs[i])`` exactly
    (uniform: the backend add sweep; weighted: the backend's
    demand-weighted sweep; modeled: ``min(row_u, 1 + row_v)`` blocks
    through the model's sentinel-exact value map).
    """
    matrix = spec.engine.matrix
    if spec._ops is not None:
        ops = spec._ops
        base = spec._base_totals_arr
        new_u = np.minimum(matrix[us], 1 + matrix[vs])
        new_v = np.minimum(matrix[vs], 1 + matrix[us])
        return (
            base[us] - ops.rows_value_owned(us, new_u),
            base[vs] - ops.rows_value_owned(vs, new_v),
        )
    backend = _active_backend()
    if spec._weights is None:
        return (
            backend.add_gains(matrix, us, vs),
            backend.add_gains(matrix, vs, us),
        )
    return (
        backend.weighted_add_gains(matrix, spec._weights, us, vs),
        backend.weighted_add_gains(matrix, spec._weights, vs, us),
    )


def batch_remove_losses(
    spec, actors: np.ndarray, others: np.ndarray
) -> np.ndarray:
    """Actor-side distance deltas for ``k`` candidate removals.

    Entry ``i`` is ``dist_after(actor_i) - dist_base(actor_i)`` in
    ``G - (actor_i, other_i)``.  Bridge removals vectorise wholesale:
    the far side of each cut is the mask ``d(x, other) < d(x, actor)``
    read off the cached matrix (exactly the per-source branch of
    ``rows_after_remove_from``), sent to the sentinel in one ``(k, n)``
    ``where``.  Non-bridge removals group by edge so both directions
    share a single probe batch.
    """
    engine = spec.engine
    matrix = engine.matrix
    base = spec._base_totals_arr
    k = len(actors)
    deltas = np.empty(k, dtype=np.int64)
    bridge = np.fromiter(
        (engine.is_bridge(int(a), int(o)) for a, o in zip(actors, others)),
        dtype=bool,
        count=k,
    )
    hits = np.flatnonzero(bridge)
    if hits.size:
        a = actors[hits]
        rows_a = matrix[a]
        far = matrix[others[hits]] < rows_a
        rows = np.where(far, engine.unreachable, rows_a)
        deltas[hits] = _owned_rows_value(spec, a, rows) - base[a]
    rest = np.flatnonzero(~bridge)
    if rest.size:
        groups: dict[tuple[int, int], list[int]] = {}
        for i in rest:
            a, o = int(actors[i]), int(others[i])
            edge = (a, o) if a <= o else (o, a)
            groups.setdefault(edge, []).append(int(i))
        for (a, o), members in groups.items():
            group_actors = actors[members]
            rows = engine.rows_after_remove_from(a, o, group_actors)
            deltas[members] = (
                _owned_rows_value(spec, group_actors, rows)
                - base[group_actors]
            )
    return deltas


def batch_swap_deltas(
    spec, swaps: Sequence[Swap]
) -> tuple[np.ndarray, np.ndarray]:
    """(actor, new-partner) distance deltas for ``k`` candidate swaps.

    Swaps are grouped by their removed edge; each distinct edge pays one
    ``rows_after_remove_from`` batch over the group's actors and
    partners (search-free for bridges, one batched BFS otherwise), after
    which the add identity ``min(row_actor, 1 + row_new)`` and the value
    reduction vectorise across the whole group.  Exact values are
    unique, so the totals equal the per-candidate Fold/BFS path's
    bit-for-bit.
    """
    engine = spec.engine
    graph = spec.graph
    k = len(swaps)
    d_actor = np.empty(k, dtype=np.int64)
    d_new = np.empty(k, dtype=np.int64)
    base = spec._base_totals_arr
    groups: dict[tuple[int, int], list[int]] = {}
    for i, move in enumerate(swaps):
        if graph.has_edge(move.actor, move.new):
            raise ValueError(f"edge {move.actor}-{move.new} already exists")
        a, o = move.actor, move.old
        edge = (a, o) if a <= o else (o, a)
        groups.setdefault(edge, []).append(i)
    for (a, o), members in groups.items():
        position: dict[int, int] = {}
        sources: list[int] = []
        for i in members:
            move = swaps[i]
            for node in (move.actor, move.new):
                if node not in position:
                    position[node] = len(sources)
                    sources.append(node)
        rows = engine.rows_after_remove_from(a, o, sources)
        actors = np.fromiter(
            (swaps[i].actor for i in members), np.int64, len(members)
        )
        news = np.fromiter(
            (swaps[i].new for i in members), np.int64, len(members)
        )
        rows_a = rows[[position[int(x)] for x in actors]]
        rows_n = rows[[position[int(x)] for x in news]]
        d_actor[members] = (
            _owned_rows_value(spec, actors, np.minimum(rows_a, 1 + rows_n))
            - base[actors]
        )
        d_new[members] = (
            _owned_rows_value(spec, news, np.minimum(rows_n, 1 + rows_a))
            - base[news]
        )
    return d_actor, d_new


# -- the pool sweep ----------------------------------------------------------


def _sweep_add_run(spec, run: Sequence[AddEdge]):
    graph = spec.graph
    for move in run:
        if graph.has_edge(move.u, move.v):
            raise ValueError(f"edge {move.u}-{move.v} already exists")
    us = np.fromiter((move.u for move in run), np.int64, len(run))
    vs = np.fromiter((move.v for move in run), np.int64, len(run))
    gains_u, gains_v = batch_add_gains(spec, us, vs)
    pooled = gains_u + gains_v
    # total_i = 2*alpha - pooled_i: the buy term is constant across the
    # run, so the first max pooled gain is the sequential first-best
    index = int(np.argmax(pooled))
    total = 2 * spec.alpha - int(pooled[index])

    def make_eval():
        move = run[index]
        deltas = (
            (move.u, spec.alpha - int(gains_u[index])),
            (move.v, spec.alpha - int(gains_v[index])),
        )
        return _evaluation(move, deltas)

    return index, total, make_eval


def _sweep_remove_run(spec, run: Sequence[RemoveEdge]):
    actors = np.fromiter((move.actor for move in run), np.int64, len(run))
    others = np.fromiter((move.other for move in run), np.int64, len(run))
    dist_deltas = batch_remove_losses(spec, actors, others)
    # total_i = dist_delta_i - alpha: constant buy term again
    index = int(np.argmin(dist_deltas))
    total = int(dist_deltas[index]) - spec.alpha

    def make_eval():
        move = run[index]
        deltas = ((move.actor, int(dist_deltas[index]) - spec.alpha),)
        return _evaluation(move, deltas)

    return index, total, make_eval


def _sweep_swap_run(spec, run: Sequence[Swap]):
    d_actor, d_new = batch_swap_deltas(spec, run)
    pooled = d_actor + d_new
    # total_i = alpha + pooled_i (the actor trades an edge 1:1, the new
    # partner buys one): constant buy term once more
    index = int(np.argmin(pooled))
    total = spec.alpha + int(pooled[index])

    def make_eval():
        from fractions import Fraction

        move = run[index]
        deltas = (
            (move.actor, Fraction(int(d_actor[index]))),
            (move.new, int(d_new[index]) + spec.alpha),
        )
        return _evaluation(move, deltas)

    return index, total, make_eval


def _evaluation(move, deltas):
    from repro.core.speculative import MoveEvaluation

    return MoveEvaluation(
        move=move,
        cost_deltas=deltas,
        improving=all(value < 0 for _, value in deltas),
    )


_RUN_SWEEPS = {
    AddEdge: _sweep_add_run,
    RemoveEdge: _sweep_remove_run,
    Swap: _sweep_swap_run,
}

#: Dispatch-arm meters: how many same-type runs each batch kernel priced
#: and how many compound candidates fell back to per-move speculation.
_DISPATCH = {
    AddEdge: _obs.counter(
        "repro_batch_dispatch_total", "batched sweep runs by kernel arm",
        {"arm": "add"},
    ),
    RemoveEdge: _obs.counter(
        "repro_batch_dispatch_total", "batched sweep runs by kernel arm",
        {"arm": "remove"},
    ),
    Swap: _obs.counter(
        "repro_batch_dispatch_total", "batched sweep runs by kernel arm",
        {"arm": "swap"},
    ),
}
_DISPATCH_FALLBACK = _obs.counter(
    "repro_batch_dispatch_total", "batched sweep runs by kernel arm",
    {"arm": "fallback"},
)


def sweep_best(spec, moves: Iterable[Move]):
    """Batched drop-in for the sequential ``SpeculativeEvaluator.best``.

    Partitions the pool into contiguous runs of same-type one-edge moves
    (enumeration order preserved), sweeps each run through its batch
    kernel, and keeps the strict-less winner across runs — bit-identical
    move, deltas and evaluation counts to the sequential loop.  Compound
    moves evaluate per-candidate in place.  Only the winning candidate's
    :class:`~repro.core.speculative.MoveEvaluation` is materialised.
    """
    pool = list(moves)
    best_move: Move | None = None
    best_total = None
    best_make = None
    i = 0
    size = len(pool)
    while i < size:
        kind = type(pool[i])
        sweep = _RUN_SWEEPS.get(kind)
        if sweep is None:
            move = pool[i]
            _DISPATCH_FALLBACK.inc()
            evaluation = spec.evaluate(move)
            if best_total is None or evaluation.total_delta < best_total:
                best_move = move
                best_total = evaluation.total_delta
                best_make = lambda result=evaluation: result  # noqa: E731
            i += 1
            continue
        j = i + 1
        while j < size and type(pool[j]) is kind:
            j += 1
        run = pool[i:j]
        _DISPATCH[kind].inc()
        index, total, make_eval = sweep(spec, run)
        spec.note_evaluations(len(run))
        if best_total is None or total < best_total:
            best_move = run[index]
            best_total = total
            best_make = make_eval
        i = j
    if best_move is None or best_make is None:
        return None
    return best_move, best_make()
