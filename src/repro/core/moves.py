"""Move datatypes: the strategy changes the solution concepts quantify over.

Every move knows how to ``apply`` itself to a graph (returning a new graph),
which agents must strictly benefit for the move to count as *improving*
under its concept (``beneficiaries``), and the ordered one-edge changes it
consists of (``edge_deltas``) — the hook the incremental distance engine
uses to update a cached APSP matrix instead of rebuilding it.  Moves double
as violation certificates: a checker that finds an instability returns the
concrete move, and tests re-validate it by applying it and comparing exact
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import networkx as nx

__all__ = [
    "AddEdge",
    "CoalitionMove",
    "Move",
    "NeighborhoodMove",
    "RemoveEdge",
    "Swap",
    "normalize_edge",
]


def normalize_edge(u: int, v: int) -> tuple[int, int]:
    """Canonical (sorted) endpoint order for an undirected edge."""
    if u == v:
        raise ValueError("self-loops are not valid edges")
    return (u, v) if u < v else (v, u)


class Move(Protocol):
    """Common protocol for all move types."""

    def apply(self, graph: nx.Graph) -> nx.Graph: ...

    def beneficiaries(self) -> Sequence[int]: ...

    def edge_deltas(self) -> Sequence[tuple[str, int, int]]: ...


@dataclass(frozen=True)
class RemoveEdge:
    """Agent ``actor`` unilaterally drops edge ``actor``–``other``."""

    actor: int
    other: int

    def apply(self, graph: nx.Graph) -> nx.Graph:
        result = graph.copy()
        result.remove_edge(self.actor, self.other)
        return result

    def beneficiaries(self) -> Sequence[int]:
        return (self.actor,)

    def edge_deltas(self) -> Sequence[tuple[str, int, int]]:
        return (("remove", self.actor, self.other),)


@dataclass(frozen=True)
class AddEdge:
    """Agents ``u`` and ``v`` jointly create edge ``uv`` (both pay alpha)."""

    u: int
    v: int

    def apply(self, graph: nx.Graph) -> nx.Graph:
        if graph.has_edge(self.u, self.v):
            raise ValueError(f"edge {self.u}-{self.v} already exists")
        result = graph.copy()
        result.add_edge(self.u, self.v)
        return result

    def beneficiaries(self) -> Sequence[int]:
        return (self.u, self.v)

    def edge_deltas(self) -> Sequence[tuple[str, int, int]]:
        return (("add", self.u, self.v),)


@dataclass(frozen=True)
class Swap:
    """``actor`` replaces edge to ``old`` by an edge to ``new``.

    ``new`` consents (and starts paying); ``old`` is not asked.  The actor's
    buying cost is unchanged, ``new`` pays one extra edge.
    """

    actor: int
    old: int
    new: int

    def __post_init__(self):
        if self.new in (self.actor, self.old):
            raise ValueError(
                "the swap partner must differ from the actor and the "
                "dropped neighbor"
            )

    def apply(self, graph: nx.Graph) -> nx.Graph:
        if not graph.has_edge(self.actor, self.old):
            raise ValueError(f"edge {self.actor}-{self.old} not in graph")
        if graph.has_edge(self.actor, self.new):
            raise ValueError(f"edge {self.actor}-{self.new} already exists")
        result = graph.copy()
        result.remove_edge(self.actor, self.old)
        result.add_edge(self.actor, self.new)
        return result

    def beneficiaries(self) -> Sequence[int]:
        return (self.actor, self.new)

    def edge_deltas(self) -> Sequence[tuple[str, int, int]]:
        return (
            ("remove", self.actor, self.old),
            ("add", self.actor, self.new),
        )


@dataclass(frozen=True)
class NeighborhoodMove:
    """BNE move: ``center`` removes edges to ``removed`` and adds edges to
    ``added``; the center and every *added* partner must strictly benefit."""

    center: int
    removed: tuple[int, ...] = ()
    added: tuple[int, ...] = ()

    def __post_init__(self):
        if set(self.removed) & set(self.added):
            raise ValueError("removed and added partners must be disjoint")
        if self.center in self.removed or self.center in self.added:
            raise ValueError("the center cannot partner with itself")

    def apply(self, graph: nx.Graph) -> nx.Graph:
        result = graph.copy()
        for partner in self.removed:
            result.remove_edge(self.center, partner)
        for partner in self.added:
            if result.has_edge(self.center, partner):
                raise ValueError(
                    f"edge {self.center}-{partner} already exists"
                )
            result.add_edge(self.center, partner)
        return result

    def beneficiaries(self) -> Sequence[int]:
        return (self.center, *self.added)

    def edge_deltas(self) -> Sequence[tuple[str, int, int]]:
        return tuple(
            ("remove", self.center, partner) for partner in self.removed
        ) + tuple(("add", self.center, partner) for partner in self.added)


@dataclass(frozen=True)
class CoalitionMove:
    """k-BSE move by ``coalition``: delete ``removed_edges`` (each incident
    to the coalition), add ``added_edges`` (both endpoints inside); every
    coalition member must strictly benefit."""

    coalition: tuple[int, ...]
    removed_edges: tuple[tuple[int, int], ...] = ()
    added_edges: tuple[tuple[int, int], ...] = field(default=())

    def __post_init__(self):
        members = set(self.coalition)
        for u, v in self.removed_edges:
            if u not in members and v not in members:
                raise ValueError(
                    f"removed edge {u}-{v} is not incident to the coalition"
                )
        for u, v in self.added_edges:
            if u not in members or v not in members:
                raise ValueError(
                    f"added edge {u}-{v} is not inside the coalition"
                )

    def apply(self, graph: nx.Graph) -> nx.Graph:
        result = graph.copy()
        for u, v in self.removed_edges:
            result.remove_edge(u, v)
        for u, v in self.added_edges:
            if result.has_edge(u, v):
                raise ValueError(f"edge {u}-{v} already exists")
            result.add_edge(u, v)
        return result

    def beneficiaries(self) -> Sequence[int]:
        return self.coalition

    def edge_deltas(self) -> Sequence[tuple[str, int, int]]:
        return tuple(("remove", u, v) for u, v in self.removed_edges) + tuple(
            ("add", u, v) for u, v in self.added_edges
        )
