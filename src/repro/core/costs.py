"""Exact cost comparisons for move evaluation.

An agent's cost is ``alpha * k + d`` with ``k`` the number of bought edges
and ``d`` an integer distance total.  Comparing two such costs reduces to
comparing an integer against ``alpha * (k2 - k1)``, which Python evaluates
exactly on ``Fraction``s — no floating point is involved anywhere in an
equilibrium decision.

Under a heterogeneous traffic model the distance total is the weighted
``d = sum_v W[u, v] * dist(u, v)`` — still an exact integer, so the same
comparison applies.  Every helper here reads the state's traffic model:
none of them silently assumes uniform demand, and callers that mix a
weighted state with unweighted totals get weighted answers, not wrong
ones.

Under a pluggable cost model the distance total is the model value
``sum_v W[u, v] * f(dist(u, v))`` (or the max aggregate) — the same
no-silent-mixing guarantee holds: :func:`weighted_dist_total` is the one
place a raw distance row becomes a cost term, and it dispatches on
``state.modeled`` *before* the traffic model, so no caller of these
helpers (``agent_cost_after``, ``dist_totals_after``,
``strictly_improves``, certificate verifiers, tests) can ever sum raw
distances against a non-linear state.  The only linear-by-definition
quantities left in the repo — ``GameState.rho()``,
``DynamicsResult.rho_trace``, the Prop. 3.1 RE bound — raise on modeled
states instead of silently comparing against the linear optimum.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.core.state import GameState
from repro.graphs.distances import single_source_distances

__all__ = [
    "agent_cost",
    "agent_cost_after",
    "cost_strictly_less",
    "social_cost",
    "weighted_dist_total",
]


def cost_strictly_less(
    buy_count_new: int,
    dist_new: int,
    buy_count_old: int,
    dist_old: int,
    alpha: Fraction,
) -> bool:
    """Whether ``alpha*buy_new + dist_new < alpha*buy_old + dist_old``.

    Exact for any ``Fraction`` alpha and Python-int distances; the
    distance totals may be uniform or demand-weighted — both are exact
    integers.
    """
    return alpha * (buy_count_new - buy_count_old) < dist_old - dist_new


def weighted_dist_total(state: GameState, u: int, dist: np.ndarray) -> int:
    """``sum_v W[u, v] * f(dist[v])`` under the state's cost and traffic
    models.

    ``dist`` is a fresh distance row (e.g. from
    :func:`~repro.graphs.distances.single_source_distances`).  The single
    dispatch point where raw distances become cost terms: modeled states
    route through the model's value arithmetic (so no caller can mix a
    non-linear state with linear totals), weighted states take the demand
    dot product, uniform states the plain row sum — bit-identical to the
    historical behaviour.
    """
    if state.modeled:
        return state.model_ops.row_value(u, np.asarray(dist))
    if state.weighted:
        return int((state.traffic.weights[u] * dist).sum())
    return int(dist.sum())


def agent_cost(state: GameState, u: int) -> Fraction:
    """``cost(u)`` in the given state."""
    return state.cost(u)


def agent_cost_after(state: GameState, graph_after, u: int) -> Fraction:
    """``cost(u)`` in a mutated graph, using the state's ``alpha``, ``M``
    and traffic model.

    ``graph_after`` must keep the node set ``0..n-1``.  One BFS; intended
    for checking candidate moves without building a full new state.
    """
    dist = single_source_distances(graph_after, u, state.m_constant)
    return state.alpha * graph_after.degree(u) + weighted_dist_total(
        state, u, dist
    )


def social_cost(state: GameState) -> Fraction:
    """Total cost over all agents (also available as a method on the state)."""
    return state.social_cost()


def dist_totals_after(
    state: GameState, graph_after, agents: list[int]
) -> dict[int, int]:
    """Distance totals for several agents in a mutated graph (one BFS each).

    Weighted under the state's traffic model, so a checker can never mix
    a weighted state with unweighted totals.
    """
    result = {}
    for agent in agents:
        vector = single_source_distances(graph_after, agent, state.m_constant)
        result[agent] = weighted_dist_total(state, agent, vector)
    return result


def strictly_improves(
    state: GameState, graph_after, u: int
) -> bool:
    """Whether agent ``u``'s total cost strictly drops in ``graph_after``."""
    new_dist = weighted_dist_total(
        state, u, single_source_distances(graph_after, u, state.m_constant)
    )
    return cost_strictly_less(
        graph_after.degree(u),
        new_dist,
        state.graph.degree(u),
        state.dist_cost(u),
        state.alpha,
    )


def all_strictly_improve(
    state: GameState, graph_after, agents
) -> bool:
    """Whether every agent in ``agents`` strictly improves in ``graph_after``."""
    return all(strictly_improves(state, graph_after, u) for u in agents)


def max_agent_cost(state: GameState) -> Fraction:
    """``max_u cost(u)`` — the quantity of Lemma 3.17.

    Reads :meth:`GameState.dist_cost`, so weighted states maximise the
    demand-weighted costs.
    """
    degrees = state.degrees()
    best: Fraction | None = None
    for u in range(state.n):
        value = state.alpha * int(degrees[u]) + state.dist_cost(u)
        if best is None or value > best:
            best = value
    assert best is not None
    return best
