"""Exact cost comparisons for move evaluation.

An agent's cost is ``alpha * k + d`` with ``k`` the number of bought edges
and ``d`` an integer distance total.  Comparing two such costs reduces to
comparing an integer against ``alpha * (k2 - k1)``, which Python evaluates
exactly on ``Fraction``s — no floating point is involved anywhere in an
equilibrium decision.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.state import GameState
from repro.graphs.distances import single_source_distances

__all__ = [
    "agent_cost",
    "agent_cost_after",
    "cost_strictly_less",
    "social_cost",
]


def cost_strictly_less(
    buy_count_new: int,
    dist_new: int,
    buy_count_old: int,
    dist_old: int,
    alpha: Fraction,
) -> bool:
    """Whether ``alpha*buy_new + dist_new < alpha*buy_old + dist_old``.

    Exact for any ``Fraction`` alpha and Python-int distances.
    """
    return alpha * (buy_count_new - buy_count_old) < dist_old - dist_new


def agent_cost(state: GameState, u: int) -> Fraction:
    """``cost(u)`` in the given state."""
    return state.cost(u)


def agent_cost_after(state: GameState, graph_after, u: int) -> Fraction:
    """``cost(u)`` in a mutated graph, using the state's ``alpha`` and ``M``.

    ``graph_after`` must keep the node set ``0..n-1``.  One BFS; intended
    for checking candidate moves without building a full new state.
    """
    dist = single_source_distances(graph_after, u, state.m_constant)
    return state.alpha * graph_after.degree(u) + int(dist.sum())


def social_cost(state: GameState) -> Fraction:
    """Total cost over all agents (also available as a method on the state)."""
    return state.social_cost()


def dist_totals_after(
    state: GameState, graph_after, agents: list[int]
) -> dict[int, int]:
    """Distance totals for several agents in a mutated graph (one BFS each)."""
    result = {}
    for agent in agents:
        vector = single_source_distances(graph_after, agent, state.m_constant)
        result[agent] = int(vector.sum())
    return result


def strictly_improves(
    state: GameState, graph_after, u: int
) -> bool:
    """Whether agent ``u``'s total cost strictly drops in ``graph_after``."""
    new_dist = int(
        single_source_distances(graph_after, u, state.m_constant).sum()
    )
    return cost_strictly_less(
        graph_after.degree(u),
        new_dist,
        state.graph.degree(u),
        state.dist.total(u),
        state.alpha,
    )


def all_strictly_improve(
    state: GameState, graph_after, agents
) -> bool:
    """Whether every agent in ``agents`` strictly improves in ``graph_after``."""
    return all(strictly_improves(state, graph_after, u) for u in agents)


def max_agent_cost(state: GameState) -> Fraction:
    """``max_u cost(u)`` — the quantity of Lemma 3.17."""
    totals = state.dist.totals()
    degrees = state.degrees()
    best: Fraction | None = None
    for u in range(state.n):
        value = state.alpha * int(degrees[u]) + int(totals[u])
        if best is None or value > best:
            best = value
    assert best is not None
    return best
