"""Speculative move-evaluation kernel: one engine-backed "cost after
hypothetical move" path for every solution concept.

Every checker and searcher in the repo answers the same question — *what
would agent u's cost be if this candidate move were applied?* — thousands
to millions of times.  :class:`SpeculativeEvaluator` is the single code
path that answers it.  It wraps a :class:`~repro.core.state.GameState`'s
cached :class:`~repro.graphs.distances.DistanceMatrix` and evaluates a
candidate by *applying* its one-edge deltas in place (``apply_add`` /
``apply_remove``), reading exact post-move degrees and distance totals,
and rolling everything back through the engine's LIFO undo tokens.

Contract (extends the PR-1 engine contract):

* **undo-token discipline** — every speculation scope collects its tokens
  and undoes them in strict LIFO order on exit, including on exceptions
  and early returns; a scope never leaks a token, so the shared matrix,
  graph, CSR cache and totals are bit-exactly restored no matter how the
  caller unwinds.  Scopes nest freely (nested tokens are younger, hence
  undone first), which lets searchers amortise a shared edge-removal
  prefix across many candidate add-sets.
* **exactness per move type** — additions update by the outer-min
  identity (exact, no search), *bridge* removals on any graph by the
  two-component split read off the engine's incrementally maintained
  bridge set (exact, no search; forests are the special case where every
  edge qualifies), remaining removals by batched BFS over the affected
  rows (exact, merely slower when the affected set is large).  Cost
  comparisons reduce to ``alpha * d_buy < -d_dist`` — the exact
  ``Fraction``/int comparison of
  :func:`repro.core.costs.cost_strictly_less`, with a pure-integer fast
  path when the buying cost is unchanged — so a kernel verdict can never
  differ from a from-scratch recomputation.
* **batching semantics** — :meth:`SpeculativeEvaluator.best` sweeps k
  candidates and keeps the move with the largest total beneficiary cost
  drop, breaking ties by enumeration order (first wins); partial
  evaluation state never survives between candidates.  One-edge moves
  (additions, removals, swaps) are evaluated **rows-only** — the add
  identity, the bridge split, or a probe BFS, never an engine mutation —
  via :meth:`SpeculativeEvaluator.evaluate_rows_only`; only compound
  moves fall back to a per-candidate apply/undo speculation.  Both paths
  produce identical exact deltas, so the sweep's verdicts are
  bit-for-bit those of the speculating path.
* **base snapshot** — deltas compare against the state at evaluator
  construction.  The evaluator is valid as long as the underlying state
  is only mutated *through* its own speculation scopes; apply a move for
  real and the evaluator must be rebuilt.

* **heterogeneous traffic** — when the state carries a non-uniform
  :class:`~repro.core.traffic.TrafficMatrix`, every distance total above
  becomes the demand-weighted row dot product ``sum_v W[u, v] * d(u, v)``
  (base snapshots, live deltas, rows-only evaluations and
  :class:`Fold` totals alike), and the per-agent distance floor used by
  the searchers' size pruning becomes the agent's demand mass.  Uniform
  states bypass all weighted arithmetic and stay bit-exact with the
  historical behaviour.
* **pluggable cost models** — when the state carries a non-linear
  :class:`~repro.core.costmodel.CostModel`, every "distance total" above
  is the model value ``sum_v W[u, v] * f(d(u, v))`` (or the max
  aggregate): base snapshots, live reads, rows-only evaluations and
  :class:`Fold` totals all map hypothetical distance rows through the
  model's int table at the aggregation boundary — the rows themselves
  stay raw distances, so the add identity and the bridge split are
  untouched.  The pruning floor generalises to the model's
  ``floors()`` (demand mass times ``f(1)``, max-weight times ``f(1)``
  for max aggregates), sound because ``f`` is monotone: removals only
  grow distances, hence only grow model values.  Linear models keep
  every historical code path bit-exactly.

The module-level :data:`EVALUATIONS` spy counts candidate evaluations so
tests can assert that a refactored searcher inspects exactly the same
number of candidates as its reference implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from repro.core.moves import AddEdge, Move, RemoveEdge, Swap
from repro.core.state import GameState
from repro.graphs.distances import weighted_added_edge_dist_gain
from repro.obs import metrics as _obs
from repro.obs import trace as _trace

__all__ = [
    "Fold",
    "MoveEvaluation",
    "SpeculativeEvaluator",
    "evaluation_count",
]

#: Number of candidate-move evaluations since import — a test spy used to
#: assert budget accounting is unchanged across searcher refactors.
#: Registry-backed; ``speculative.EVALUATIONS`` stays a read-only alias
#: via module ``__getattr__``.
_EVALUATIONS = _obs.counter(
    "repro_engine_evaluations_total", "speculative candidate evaluations"
)


def __getattr__(name: str) -> int:
    if name == "EVALUATIONS":
        return _EVALUATIONS.value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def evaluation_count() -> int:
    """How many candidate moves have been speculatively evaluated."""
    return _EVALUATIONS.value


@dataclass(frozen=True)
class MoveEvaluation:
    """Exact outcome of one speculative move evaluation.

    ``cost_deltas`` maps each evaluated agent to ``cost_after -
    cost_before`` (an exact ``Fraction``); ``improving`` is whether every
    evaluated agent strictly improves — i.e. whether the move is an
    improving move of a concept whose beneficiary set equals ``agents``.
    """

    move: Move
    cost_deltas: tuple[tuple[int, Fraction], ...]
    improving: bool

    def delta(self, agent: int) -> Fraction:
        for who, value in self.cost_deltas:
            if who == agent:
                return value
        raise KeyError(f"agent {agent} was not evaluated for this move")

    @property
    def total_delta(self) -> Fraction:
        """Sum of the evaluated agents' cost changes (negative = drop)."""
        return sum((value for _, value in self.cost_deltas), Fraction(0))


class SpeculativeEvaluator:
    """Engine-backed evaluation of hypothetical moves on one state.

    Construction materialises the state's distance engine and snapshots
    base degrees and distance totals; every query inside a speculation
    scope compares the live engine against that snapshot.
    """

    def __init__(self, state: GameState):
        self.state = state
        self.engine = state.dist  # materialises the cached APSP once
        self.graph = state.graph  # the same object the engine mutates
        self.alpha = state.alpha
        # a non-linear cost model routes every total below through its
        # value arithmetic; the weighted-linear branch is then never
        # taken (the ops object owns the demand matrix itself)
        self._ops = state.model_ops if state.modeled else None
        # heterogeneous traffic: a non-uniform demand matrix switches
        # every distance total below to the weighted row dot product;
        # uniform states keep the historical plain row sums bit-exactly
        self._weights = (
            state.traffic.weights
            if state.weighted and self._ops is None
            else None
        )
        # plain-int snapshots: row sums read straight off the matrix (no
        # forced materialisation of the engine's incremental totals) and
        # the adjacency dict the engine mutates in place, so per-candidate
        # queries cost a handful of C-level ops
        self._adj = self.graph._adj
        if self._ops is not None:
            self._base_totals = [
                int(value) for value in self._ops.totals(self.engine.matrix)
            ]
            # the model's own floor: every destination sits at distance
            # >= 1 and f is monotone, so no value total can ever drop
            # below mass * f(1) (max-weight * f(1) for max aggregates)
            self._floors = [int(value) for value in self._ops.floors()]
        elif self._weights is None:
            self._base_totals = [
                int(value) for value in self.engine.matrix.sum(axis=1)
            ]
            self._floors = None
        else:
            self._base_totals = [
                int(value)
                for value in (self.engine.matrix * self._weights).sum(axis=1)
            ]
            # each positive-demand destination sits at distance >= 1, so
            # an agent's weighted distance total can never drop below its
            # demand mass — the weighted analogue of the n - 1 floor
            self._floors = [
                int(value) for value in self._weights.sum(axis=1)
            ]
        # int64 view of the base totals for the batch kernels' vectorised
        # delta arithmetic (repro.core.batch)
        self._base_totals_arr = np.asarray(self._base_totals, dtype=np.int64)
        self._base_degrees = [len(self._adj[u]) for u in range(state.n)]
        # numerator/denominator of alpha for pure-integer comparisons
        self._alpha_num = self.alpha.numerator
        self._alpha_den = self.alpha.denominator
        self._stack = []  # undo tokens of the active speculation, LIFO
        #: candidate evaluations performed through this evaluator
        self.evaluations = 0

    # -- speculation scopes -------------------------------------------------

    def push(self, op: str, u: int, v: int) -> None:
        """Apply one speculative edge delta (paired with :meth:`pop`).

        The DFS-style searchers drive the stack directly so that sibling
        candidates share their common op prefix: each enumerated subset
        then costs exactly one apply + one undo.
        """
        if op == "add":
            self._stack.append(self.engine.apply_add(u, v))
        elif op == "remove":
            self._stack.append(self.engine.apply_remove(u, v))
        else:
            raise ValueError(f"unknown edge delta {op!r}")

    def pop(self) -> None:
        """Undo the most recent :meth:`push` (strict LIFO)."""
        self.engine.undo(self._stack.pop())

    @property
    def depth(self) -> int:
        """Number of speculative deltas currently applied."""
        return len(self._stack)

    @contextmanager
    def applied(self, deltas: Iterable[tuple[str, int, int]]):
        """Apply ordered one-edge deltas; undo them all (LIFO) on exit.

        Safe against exceptions and early exits mid-application: the
        scope unwinds back to its entry depth no matter what.
        """
        entry_depth = len(self._stack)
        try:
            for op, u, v in deltas:
                self.push(op, u, v)
            yield self
        finally:
            while len(self._stack) > entry_depth:
                self.pop()

    @contextmanager
    def speculate(self, move: Move):
        """Apply a whole :class:`~repro.core.moves.Move` speculatively."""
        with self.applied(move.edge_deltas()):
            yield self

    # -- queries valid inside a speculation scope ---------------------------

    def buy_delta(self, agent: int) -> int:
        """Change in the number of edges ``agent`` pays for."""
        return len(self._adj[agent]) - self._base_degrees[agent]

    def current_dist(self, agent: int) -> int:
        """``agent``'s distance total (model value when modeled) on the
        live matrix."""
        if self._ops is not None:
            return self._ops.row_value(agent, self.engine.matrix[agent])
        if self._weights is None:
            return int(self.engine.matrix[agent].sum())
        return int((self._weights[agent] * self.engine.matrix[agent]).sum())

    def dist_floor(self, agent: int) -> int:
        """The smallest distance total ``agent`` can ever reach.

        ``n - 1`` uniform (everyone at distance 1); the agent's demand
        mass under a traffic model; the model's ``mass * f(1)`` analogue
        when a cost model is bound (sound since ``f`` is monotone).  The
        lower bound behind the searchers' size pruning.
        """
        if self._floors is None:
            return self.state.n - 1
        return self._floors[agent]

    def row_dist(self, agent: int, row: np.ndarray) -> int:
        """The distance total (model value when modeled) of a hypothetical
        distance row."""
        if self._ops is not None:
            return self._ops.row_value(agent, row)
        if self._weights is None:
            return int(row.sum())
        return int((self._weights[agent] * row).sum())

    def dist_delta(self, agent: int) -> int:
        """Exact change in ``agent``'s total distance cost."""
        return self.current_dist(agent) - self._base_totals[agent]

    def cost_delta(self, agent: int) -> Fraction:
        """``cost_after - cost_before`` for ``agent`` (exact)."""
        return self.alpha * self.buy_delta(agent) + self.dist_delta(agent)

    def base_cost(self, agent: int) -> Fraction:
        """``cost(agent)`` in the un-speculated base state."""
        return self.alpha * self._base_degrees[agent] + self._base_totals[agent]

    def base_dist(self, agent: int) -> int:
        """``dist(agent)`` in the un-speculated base state."""
        return self._base_totals[agent]

    def improves(self, agent: int) -> bool:
        """Whether ``agent``'s total cost strictly drops (exact).

        Semantically :func:`repro.core.costs.cost_strictly_less`, with a
        pure-integer fast path when the agent's buying cost is unchanged.
        """
        buy_delta = len(self._adj[agent]) - self._base_degrees[agent]
        dist_new = self.current_dist(agent)
        if buy_delta == 0:
            return dist_new < self._base_totals[agent]
        return self._alpha_num * buy_delta < (
            self._base_totals[agent] - dist_new
        ) * self._alpha_den

    def all_improve(self, agents: Sequence[int]) -> bool:
        """Whether every agent in ``agents`` strictly improves."""
        return all(self.improves(agent) for agent in agents)

    def alpha_lt(self, count: int, bound: int) -> bool:
        """Exact ``alpha * count < bound`` in pure-integer arithmetic.

        The hot-loop form of the strict-improvement comparison: cross-
        multiplying by alpha's (positive) denominator avoids building a
        ``Fraction`` per candidate.
        """
        return self._alpha_num * count < bound * self._alpha_den

    # -- whole-move conveniences (each counts one evaluation) ---------------

    def note_evaluation(self) -> None:
        """Record one candidate evaluation (for budget-accounting spies).

        Searchers that drive :meth:`applied` scopes by hand call this once
        per candidate; :meth:`move_improves` / :meth:`evaluate` call it
        automatically.
        """
        _EVALUATIONS.inc()
        self.evaluations += 1

    def note_evaluations(self, count: int) -> None:
        """Record ``count`` candidate evaluations at once.

        The batch kernels (:mod:`repro.core.batch`) price a whole run of
        candidates in one vectorised pass; charging the run in one call
        keeps the module/instance spies bit-identical to the sequential
        per-candidate loop.
        """
        _EVALUATIONS.inc(count)
        self.evaluations += count

    def move_improves(
        self, move: Move, agents: Sequence[int] | None = None
    ) -> bool:
        """Whether ``move`` strictly improves every agent in ``agents``
        (default: the move's beneficiaries)."""
        self.note_evaluation()
        if agents is None:
            agents = move.beneficiaries()
        with self.speculate(move):
            return self.all_improve(agents)

    def evaluate(
        self, move: Move, agents: Sequence[int] | None = None
    ) -> MoveEvaluation:
        """Exact per-agent cost deltas of ``move`` (matrix untouched after)."""
        self.note_evaluation()
        if agents is None:
            agents = move.beneficiaries()
        with self.speculate(move):
            deltas = tuple((agent, self.cost_delta(agent)) for agent in agents)
        improving = all(value < 0 for _, value in deltas)
        return MoveEvaluation(move=move, cost_deltas=deltas, improving=improving)

    def evaluate_rows_only(self, move: Move) -> MoveEvaluation | None:
        """Exact evaluation of a one-edge move without touching the engine.

        Additions read the one-edge-add identity, removals of bridges the
        two-component split, other removals a probe BFS on the cached
        CSR, and swaps compose the two (a :class:`Fold` split + extend
        over ``{actor, old, new}`` when the dropped edge is a bridge) —
        no matrix mutation, no undo token, ever.  Returns ``None`` for
        compound move types (neighborhood / coalition) and inside an
        active speculation scope — deltas compare against the
        construction-time base snapshot, so at depth > 0 only
        :meth:`evaluate` composes correctly with the pushed prefix.
        Where both paths apply they produce bit-identical
        :class:`MoveEvaluation` results.
        """
        if self._stack:
            return None  # base snapshot vs speculated matrix would mix
        if isinstance(move, AddEdge):
            u, v = move.u, move.v
            if self.graph.has_edge(u, v):
                raise ValueError(f"edge {u}-{v} already exists")
            self.note_evaluation()
            gain_u, gain_v = self.add_gain_pair(u, v)
            deltas = (
                (u, self.alpha - gain_u),
                (v, self.alpha - gain_v),
            )
        elif isinstance(move, RemoveEdge):
            actor, other = move.actor, move.other
            self.note_evaluation()
            row = self.engine.rows_after_remove_from(actor, other, (actor,))
            dist_after = self.row_dist(actor, row[0])
            deltas = (
                (actor, dist_after - self._base_totals[actor] - self.alpha),
            )
        elif isinstance(move, Swap):
            actor, old, new = move.actor, move.old, move.new
            if self.graph.has_edge(actor, new):
                raise ValueError(f"edge {actor}-{new} already exists")
            if self.engine.is_bridge(actor, old):
                fold = (
                    self.fold((actor, old, new))
                    .split(actor, old)
                    .extend(actor, new)
                )
                dist_actor = fold.dist_total(actor)
                dist_new = fold.dist_total(new)
            else:
                rows = self.engine.rows_after_remove_from(
                    actor, old, (actor, new)
                )
                dist_actor = self.row_dist(
                    actor, np.minimum(rows[0], 1 + rows[1])
                )
                dist_new = self.row_dist(
                    new, np.minimum(rows[1], 1 + rows[0])
                )
            self.note_evaluation()
            deltas = (
                (actor, Fraction(dist_actor - self._base_totals[actor])),
                (new, dist_new - self._base_totals[new] + self.alpha),
            )
        else:
            return None
        improving = all(value < 0 for _, value in deltas)
        return MoveEvaluation(
            move=move, cost_deltas=deltas, improving=improving
        )

    def best(
        self, moves: Iterable[Move]
    ) -> tuple[Move, MoveEvaluation] | None:
        """Sweep candidates and keep the largest total cost drop.

        Runs of same-type one-edge moves are priced **pool-at-once**
        through the batch kernels of :mod:`repro.core.batch` (one
        vectorised outer-min for additions, side-mask/grouped-BFS
        batches for removals and swaps) — no engine mutation at all;
        compound moves fall back to one speculation each.  The batched
        sweep is bit-identical to the sequential rows-only loop
        (:meth:`evaluate_rows_only` per candidate), which remains the
        path inside active speculation scopes and under
        ``REPRO_BATCH=0``.  Ties break by enumeration order (the first
        best candidate wins); returns ``None`` for an empty stream.
        """
        from repro.core import batch

        if not self._stack and batch.ENABLED:
            with _trace.span("engine.sweep", arm="batched"):
                return batch.sweep_best(self, moves)
        with _trace.span("engine.sweep", arm="sequential"):
            return self._best_sequential(moves)

    def _best_sequential(
        self, moves: Iterable[Move]
    ) -> tuple[Move, MoveEvaluation] | None:
        """The per-candidate reference sweep behind :meth:`best`."""
        best_move: Move | None = None
        best_eval: MoveEvaluation | None = None
        for move in moves:
            evaluation = self.evaluate_rows_only(move)
            if evaluation is None:
                evaluation = self.evaluate(move)
            if (
                best_eval is None
                or evaluation.total_delta < best_eval.total_delta
            ):
                best_move = move
                best_eval = evaluation
        if best_move is None or best_eval is None:
            return None
        return best_move, best_eval

    # -- delegated speculative queries (engine fast paths) ------------------

    def add_gain_pair(self, u: int, v: int) -> tuple[int, int]:
        """(Weighted/model-valued) distance gains of both endpoints when
        edge ``uv`` is added (one-edge-add identity; no mutation, no
        search)."""
        if self._ops is not None:
            matrix = self.engine.matrix
            new_u = np.minimum(matrix[u], 1 + matrix[v])
            new_v = np.minimum(matrix[v], 1 + matrix[u])
            return (
                self._ops.row_value(u, matrix[u])
                - self._ops.row_value(u, new_u),
                self._ops.row_value(v, matrix[v])
                - self._ops.row_value(v, new_v),
            )
        if self._weights is None:
            return self.engine.add_gain(u, v), self.engine.add_gain(v, u)
        matrix = self.engine.matrix
        return (
            weighted_added_edge_dist_gain(matrix, self._weights[u], u, v),
            weighted_added_edge_dist_gain(matrix, self._weights[v], v, u),
        )

    def remove_loss_pair(self, u: int, v: int) -> tuple[int, int]:
        """(Weighted/model-valued) distance losses of both endpoints when
        edge ``uv`` is removed (a matrix read for bridges — each side
        charged by its demand mass toward the far side — one batched BFS
        on the cached CSR otherwise; no mutation)."""
        if self._weights is None and self._ops is None:
            return self.engine.remove_loss_pair(u, v)
        row_u, row_v = self.engine.rows_after_remove(u, v)
        return (
            self.row_dist(u, row_u) - self.current_dist(u),
            self.row_dist(v, row_v) - self.current_dist(v),
        )

    def is_bridge(self, u: int, v: int) -> bool:
        """Whether edge ``uv`` is a bridge of the current (speculated)
        graph — O(1) off the engine's maintained bridge set.  Gates the
        search-free removal paths and :meth:`Fold.split`."""
        return self.engine.is_bridge(u, v)

    def fold(self, nodes: Sequence[int]) -> "Fold":
        """Rows-only view of ``nodes`` for query-evaluated move suffixes.

        Seeds a :class:`Fold` from the engine's *current* matrix (any
        pushed deltas are reflected), after which whole addition subsets
        — and removal subsets whose dropped edges are bridges of the
        folded graph — evaluate without touching the engine at all.
        Under a traffic model the fold carries the tracked agents'
        demand rows, so its ``dist_total`` answers are weighted; under a
        cost model it carries the model's value map and aggregate, so
        ``dist_total`` answers are model values (the rows themselves stay
        raw distances — extend/split are untouched).
        """
        order = list(nodes)
        index = {node: position for position, node in enumerate(order)}
        if self._ops is not None:
            weights = (
                None
                if self._ops.weights is None
                else self._ops.weights[order]
            )
            return Fold(
                index,
                self.engine.matrix[order],
                self.engine.unreachable,
                weights,
                f_apply=self._ops.apply_f,
                f_max=self._ops.aggregate == "max",
            )
        weights = None if self._weights is None else self._weights[order]
        return Fold(
            index, self.engine.matrix[order], self.engine.unreachable, weights
        )


class Fold:
    """Exact distance rows of tracked nodes under hypothetical deltas.

    The one-edge-add identity ``d'(x, y) = min(d(x, y), d(x, u) + 1 +
    d(v, y), d(x, v) + 1 + d(u, y))`` closes over any row set that
    contains both endpoints of every folded edge: all quantities on the
    right live in the tracked rows.  Folding edges one at a time is
    therefore exact, and a DFS over addition subsets can branch by
    keeping the parent fold and extending copies — ``O(|tracked| * n)``
    per candidate, no matrix mutation, no undo, no search.

    The same closure holds for removing any **bridge** of the folded
    graph (forest edges are the special case where every edge qualifies):
    deleting bridge ``uv`` sends exactly the cross pairs between
    ``{x : d(x, u) < d(x, v)}`` and ``{x : d(x, v) < d(x, u)}`` to the
    unreachable sentinel and changes nothing else — ties occur only for
    nodes in other components, whose rows are correctly left untouched.
    Both side masks are read off the tracked endpoint rows
    (:meth:`split`; the caller is responsible for only splitting edges
    that are bridges of the *folded* graph — e.g. certified by
    :meth:`SpeculativeEvaluator.is_bridge` before any fold deltas, or by
    folding on a forest, where removals preserve and additions break the
    property).

    This is the kernel's batch fast path for the BNE and coalition
    searches (their added edges always live inside the tracked set:
    center plus willing partners, or the coalition; removable-edge
    endpoints join the tracked set on forest instances) and for the
    dynamics schedulers' rows-only sweep over a round's move pool
    (:meth:`SpeculativeEvaluator.best`).
    """

    __slots__ = (
        "_index", "_rows", "_unreachable", "_weights", "_f_apply", "_f_max"
    )

    def __init__(
        self,
        index: dict,
        rows: np.ndarray,
        unreachable: int,
        weights: np.ndarray | None = None,
        f_apply=None,
        f_max: bool = False,
    ):
        self._index = index
        self._rows = rows
        self._unreachable = unreachable
        # demand rows of the tracked nodes (aligned with ``rows``); None
        # means uniform traffic and plain row sums
        self._weights = weights
        # cost-model value map and aggregate flag: rows stay raw
        # distances, the map applies only inside dist_total
        self._f_apply = f_apply
        self._f_max = f_max

    def restrict(self, nodes: Sequence[int]) -> "Fold":
        """A fold tracking only ``nodes`` (e.g. drop removable-edge
        endpoints before an addition-only suffix — extends get cheaper)."""
        order = list(nodes)
        index = {node: position for position, node in enumerate(order)}
        positions = [self._index[node] for node in order]
        return Fold(
            index,
            self._rows[positions],
            self._unreachable,
            None if self._weights is None else self._weights[positions],
            f_apply=self._f_apply,
            f_max=self._f_max,
        )

    def extend(self, u: int, v: int) -> "Fold":
        """A new fold with edge ``uv`` added (both endpoints tracked)."""
        index = self._index
        rows = self._rows
        row_u = rows[index[u]]
        row_v = rows[index[v]]
        folded = np.minimum(rows, rows[:, u, None] + (row_v + 1))
        np.minimum(folded, rows[:, v, None] + (row_u + 1), out=folded)
        return Fold(
            index, folded, self._unreachable, self._weights,
            f_apply=self._f_apply, f_max=self._f_max,
        )

    def split(self, u: int, v: int) -> "Fold":
        """A new fold with bridge ``uv`` removed (endpoints tracked).

        Exact exactly when ``uv`` is a bridge of the folded graph (every
        path between the cut sides crossed ``uv``, so
        ``d(x, u) != d(x, v)`` for every ``x`` in their component; nodes
        of other components tie and are correctly untouched).  Forests
        are the classic case — there every edge qualifies.
        """
        index = self._index
        rows = self._rows
        row_u = rows[index[u]]
        row_v = rows[index[v]]
        cols_u_side = row_u < row_v
        cols_v_side = row_v < row_u
        tracked_u_side = rows[:, u] < rows[:, v]
        tracked_v_side = rows[:, v] < rows[:, u]
        cross = tracked_u_side[:, None] & cols_v_side[None, :]
        cross |= tracked_v_side[:, None] & cols_u_side[None, :]
        folded = rows.copy()
        folded[cross] = self._unreachable
        return Fold(
            index, folded, self._unreachable, self._weights,
            f_apply=self._f_apply, f_max=self._f_max,
        )

    def dist_total(self, node: int) -> int:
        """Exact distance total (model value when a cost model is bound)
        of a tracked node under the folded deltas."""
        position = self._index[node]
        row = self._rows[position]
        if self._f_apply is not None:
            values = self._f_apply(row)
            if self._weights is not None:
                values = self._weights[position] * values
            if self._f_max:
                return int(values.max())
            return int(values.sum())
        if self._weights is None:
            return int(row.sum())
        return int((self._weights[position] * row).sum())
