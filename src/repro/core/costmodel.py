"""Pluggable distance-cost models: ``cost(u) = alpha*deg(u) + F_u(d(u, .))``.

The paper's cost function is the linear distance sum, but the same
authors' follow-up (*Cooperation in Bilateral Generalized Network
Creation*, arXiv 2510.00239) generalizes it to

    cost(u) = alpha * deg(u) + sum_v W[u, v] * f(d(u, v))

for a monotone non-decreasing ``f`` — concave regimes (nearby agents
matter, far ones barely more), convex regimes (long detours are
punishing) — plus the **max/eccentricity objective**
``max_v W[u, v] * f(d(u, v))``.  A :class:`CostModel` names one such
regime; :class:`~repro.core.state.GameState` accepts ``cost_model=...``
and every layer of the stack (distance engine, speculative kernel,
checkers, move generators, schedulers, campaigns) routes its cost
arithmetic through the model.

Exactness contract (mirrors :mod:`repro.core.traffic`):

* ``f`` is realised as an **int64 lookup table** ``f(0..n-1)`` with
  ``f(0) = 0`` and ``f`` monotone non-decreasing — so every model value
  is an exact integer and cost comparisons stay exact ``Fraction``-vs-int
  (:class:`ConcaveCost` floors ``scale * d**(p/q)`` through an exact
  integer root, never a float);
* unreachable pairs carry the **value sentinel** ``F`` (the aggregate-
  space analogue of the distance big-M, sized by
  :meth:`CostModel.unreachable_cost` so that reconnecting one
  positive-demand pair dominates any buying saving plus any real value
  total);
* :class:`LinearCost` *is* the paper's game: ``state.modeled`` stays
  ``False`` and every layer dispatches to the original (un)weighted code
  paths — the byte-exact equivalence guarantee, same discipline as
  ``TrafficMatrix.uniform``;
* monotonicity is what keeps the searchers' pruning sound: removals only
  grow distances, so with ``f`` non-decreasing they only grow model
  values — the generalized ``dist_floor`` bounds of the BNE/k-BSE DFS
  remain valid lower bounds.

Every model carries a lossless JSON-able ``spec``
(:func:`costmodel_from_spec` is the inverse) so campaign trials naming a
regime stay content-addressed.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "ConcaveCost",
    "ConvexCost",
    "CostModel",
    "LinearCost",
    "MaxCost",
    "ModelOps",
    "TableCost",
    "costmodel_from_spec",
    "integer_root",
]


def integer_root(value: int, k: int) -> int:
    """Exact ``floor(value ** (1/k))`` for non-negative integers.

    A float seed refined by integer Newton steps — correct for any
    magnitude (the float is only a starting guess, every comparison is
    pure-integer).
    """
    if k <= 0:
        raise ValueError("the root index must be positive")
    if value < 0:
        raise ValueError("integer roots need a non-negative radicand")
    if value == 0 or k == 1:
        return value
    guess = int(round(value ** (1.0 / k)))
    if guess < 1:
        guess = 1
    while guess > 1 and guess**k > value:
        guess -= 1
    while (guess + 1) ** k <= value:
        guess += 1
    return guess


def _validate_table(table: np.ndarray) -> np.ndarray:
    """Enforce the table contract: int64, ``f(0) = 0``, monotone, exact."""
    table = np.asarray(table)
    if table.ndim != 1 or table.size == 0:
        raise ValueError("a cost table must be a non-empty 1-d array")
    if not np.issubdtype(table.dtype, np.integer):
        raise ValueError("cost tables must be integer-valued (exact arithmetic)")
    table = table.astype(np.int64)
    if int(table[0]) != 0:
        raise ValueError("cost tables must satisfy f(0) = 0")
    if table.size > 1 and (np.diff(table) < 0).any():
        raise ValueError("cost tables must be monotone non-decreasing")
    table.setflags(write=False)
    return table


class CostModel:
    """One distance-cost regime ``(f, aggregate)``.

    Subclasses fix :attr:`kind`, :attr:`aggregate` (``"sum"`` or
    ``"max"``) and implement :meth:`table` / :attr:`spec`.  Instances
    hash/compare by spec (value semantics, like
    :class:`~repro.core.traffic.TrafficMatrix`).
    """

    kind: str = "abstract"
    aggregate: str = "sum"

    @property
    def is_linear(self) -> bool:
        """Whether this model is the paper's linear sum.

        ``True`` keeps ``GameState.modeled`` off, so every layer runs
        the original code paths byte-exactly — the cost-model analogue
        of uniform traffic.
        """
        return False

    def table(self, n: int) -> np.ndarray:
        """The int64 lookup table ``f(0..n-1)`` (read-only)."""
        raise NotImplementedError

    @property
    def spec(self) -> dict[str, Any]:
        """A lossless JSON-able description (for campaign content hashes)."""
        raise NotImplementedError

    def unreachable_cost(self, n: int, alpha: Fraction, max_row_mass: int) -> int:
        """The value sentinel ``F`` for unreachable pairs.

        Sized so one unit of unmet demand dominates any buying saving
        (``<= alpha * n``) plus any real value total
        (``<= max_row_mass * f(n - 1)``) — the aggregate-space analogue
        of :func:`repro._alpha.big_m`, and strictly above every real
        table value.
        """
        top = int(self.table(n)[-1])
        return (
            math.floor(alpha * n)
            + (int(max_row_mass) + 1) * max(top, 1)
            + 1
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CostModel):
            return NotImplemented
        return self.spec == other.spec

    def __hash__(self) -> int:
        return hash(_freeze(self.spec))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec!r})"


def _freeze(value):
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(item)) for key, item in value.items()))
    return value


class LinearCost(CostModel):
    """The paper's game: ``f(d) = d``, sum aggregate, byte-exact dispatch."""

    kind = "linear"

    @property
    def is_linear(self) -> bool:
        return True

    def table(self, n: int) -> np.ndarray:
        return _validate_table(np.arange(n, dtype=np.int64))

    @property
    def spec(self) -> dict[str, Any]:
        return {"model": "linear"}


class ConcaveCost(CostModel):
    """``f(d) = floor(scale * d**exponent)`` for a rational exponent in
    ``(0, 1]`` — computed exactly as the integer ``q``-th root of
    ``scale**q * d**p`` (no float ever touches a cost)."""

    kind = "concave"

    def __init__(self, exponent=Fraction(1, 2), scale: int = 1):
        exponent = (
            exponent
            if isinstance(exponent, Fraction)
            else Fraction(str(exponent))
        )
        if not 0 < exponent <= 1:
            raise ValueError("a concave exponent must lie in (0, 1]")
        if int(scale) < 1:
            raise ValueError("scale must be a positive integer")
        self.exponent = exponent
        self.scale = int(scale)

    def table(self, n: int) -> np.ndarray:
        p, q = self.exponent.numerator, self.exponent.denominator
        values = [
            integer_root(self.scale**q * d**p, q) for d in range(n)
        ]
        return _validate_table(np.array(values, dtype=np.int64))

    @property
    def spec(self) -> dict[str, Any]:
        return {
            "model": "concave",
            "exponent": str(self.exponent),
            "scale": self.scale,
        }


class ConvexCost(CostModel):
    """``f(d) = scale * d**exponent`` for an integer exponent ``>= 1``."""

    kind = "convex"

    def __init__(self, exponent: int = 2, scale: int = 1):
        if int(exponent) < 1:
            raise ValueError("a convex exponent must be an integer >= 1")
        if int(scale) < 1:
            raise ValueError("scale must be a positive integer")
        self.exponent = int(exponent)
        self.scale = int(scale)

    def table(self, n: int) -> np.ndarray:
        values = [self.scale * d**self.exponent for d in range(n)]
        return _validate_table(np.array(values, dtype=np.int64))

    @property
    def spec(self) -> dict[str, Any]:
        return {
            "model": "convex",
            "exponent": self.exponent,
            "scale": self.scale,
        }


class MaxCost(CostModel):
    """The eccentricity objective: ``cost(u) = alpha*deg(u) +
    max_v W[u, v] * d(u, v)`` (``f`` is the identity, max aggregate)."""

    kind = "max"
    aggregate = "max"

    def table(self, n: int) -> np.ndarray:
        return _validate_table(np.arange(n, dtype=np.int64))

    @property
    def spec(self) -> dict[str, Any]:
        return {"model": "max"}


class TableCost(CostModel):
    """An explicit ``f`` table — any monotone integer values with
    ``f(0) = 0``; must cover every distance ``0..n-1`` of the game it is
    used in."""

    kind = "table"

    def __init__(self, values: Sequence[int]):
        self.values = _validate_table(np.array(list(values), dtype=np.int64))

    def table(self, n: int) -> np.ndarray:
        if self.values.size < n:
            raise ValueError(
                f"cost table covers distances 0..{self.values.size - 1}, "
                f"the game needs 0..{n - 1}"
            )
        table = self.values[:n].copy()
        table.setflags(write=False)
        return table

    @property
    def spec(self) -> dict[str, Any]:
        return {"model": "table", "values": [int(v) for v in self.values]}


class ModelOps:
    """Vectorised model-value arithmetic bound to one game size.

    The one object the engine binding, the speculative kernel and the
    vectorised checkers share: ``apply_f`` maps a distance array through
    the table (sentinel entries — ``d >= n``, exact because real
    distances are at most ``n - 1`` and the distance sentinel is at
    least ``n`` — map to the value sentinel ``F``), and the ``*_value``
    helpers aggregate per-agent rows under the model's demand weighting.
    ``weights is None`` means uniform demand (all off-diagonal 1; the
    diagonal contributes ``f(0) = 0`` either way).
    """

    __slots__ = ("n", "table", "unreachable_value", "weights", "aggregate")

    def __init__(
        self,
        n: int,
        table: np.ndarray,
        unreachable_value: int,
        weights: np.ndarray | None = None,
        aggregate: str = "sum",
    ):
        if aggregate not in ("sum", "max"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        self.n = int(n)
        self.table = _validate_table(table)
        if self.table.size != self.n:
            raise ValueError("the cost table must cover exactly 0..n-1")
        self.unreachable_value = int(unreachable_value)
        if self.unreachable_value <= int(self.table[-1]):
            raise ValueError(
                "the value sentinel must exceed every real table value"
            )
        self.weights = weights
        self.aggregate = aggregate

    def apply_f(self, dist: np.ndarray) -> np.ndarray:
        """``f`` over a distance array; sentinel distances map to ``F``."""
        dist = np.asarray(dist)
        values = self.table[np.minimum(dist, self.n - 1)]
        sentinel = dist >= self.n
        if sentinel.any():
            values[sentinel] = self.unreachable_value
        return values

    def row_value(self, agent: int, row: np.ndarray) -> int:
        """The model value of one distance row owned by ``agent``."""
        values = self.apply_f(row)
        if self.weights is not None:
            values = self.weights[agent] * values
        if self.aggregate == "max":
            return int(values.max())
        return int(values.sum())

    def rows_value(self, agent: int, rows: np.ndarray) -> np.ndarray:
        """Per-row model values of a ``(k, n)`` row stack, all owned by
        ``agent`` (the swap searchers' candidate batches)."""
        values = self.apply_f(rows)
        if self.weights is not None:
            values = values * self.weights[agent]
        if self.aggregate == "max":
            return values.max(axis=1)
        return values.sum(axis=1)

    def rows_value_owned(
        self, owners: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Per-row model values of a ``(k, n)`` row stack where row ``i``
        is owned by agent ``owners[i]`` (the batch kernel's candidate
        blocks — owners are arbitrary, possibly repeated, agents)."""
        values = self.apply_f(rows)
        if self.weights is not None:
            values = values * self.weights[owners]
        if self.aggregate == "max":
            return values.max(axis=1)
        return values.sum(axis=1)

    def rows_value_per_owner(self, rows: np.ndarray) -> np.ndarray:
        """Per-row model values where row ``i`` is owned by agent ``i``
        (full ``(n, n)`` stacks — e.g. a distance matrix)."""
        values = self.apply_f(rows)
        if self.weights is not None:
            values = values * self.weights
        if self.aggregate == "max":
            return values.max(axis=1)
        return values.sum(axis=1)

    def totals(self, matrix: np.ndarray) -> np.ndarray:
        """Naive from-scratch per-agent totals of a distance matrix —
        the reference the engine's incremental ``ftotals()`` is
        cross-validated against."""
        return self.rows_value_per_owner(matrix)

    def floors(self) -> np.ndarray:
        """Per-agent lower bound on the model value in *any* graph.

        Every off-diagonal destination sits at distance at least 1, so a
        sum aggregate can never drop below ``mass * f(1)`` and a max
        aggregate never below ``max_v W[u, v] * f(1)`` (both achieved on
        a star) — the generalized ``dist_floor`` behind the searchers'
        size pruning, sound because ``f`` is monotone.
        """
        f1 = int(self.table[1]) if self.n >= 2 else 0
        if self.aggregate == "max":
            if self.weights is None:
                per = np.full(
                    self.n, f1 if self.n >= 2 else 0, dtype=np.int64
                )
            else:
                per = self.weights.max(axis=1) * f1
        else:
            if self.weights is None:
                per = np.full(self.n, (self.n - 1) * f1, dtype=np.int64)
            else:
                per = self.weights.sum(axis=1) * f1
        return per


def costmodel_from_spec(
    spec: Mapping[str, Any] | None, n: int
) -> CostModel | None:
    """Build a :class:`CostModel` from its JSON-able ``spec`` dict.

    The inverse of :attr:`CostModel.spec`, mirroring
    :func:`repro.core.traffic.traffic_from_spec`: a campaign trial's
    ``costmodel`` parameter is the spec dict, so the regime is a pure
    function of the trial's content-addressed identity.  ``None`` passes
    through (the unmodeled linear game); ``n`` early-validates explicit
    tables.
    """
    if spec is None:
        return None
    if not isinstance(spec, Mapping):
        raise TypeError(f"cost model spec must be a mapping, got {spec!r}")
    payload = dict(spec)
    model = payload.pop("model", None)
    if model == "linear":
        _expect_keys(payload, set())
        return LinearCost()
    if model == "concave":
        _expect_keys(payload, {"exponent", "scale"})
        return ConcaveCost(
            exponent=payload.get("exponent", Fraction(1, 2)),
            scale=payload.get("scale", 1),
        )
    if model == "convex":
        _expect_keys(payload, {"exponent", "scale"})
        return ConvexCost(
            exponent=payload.get("exponent", 2),
            scale=payload.get("scale", 1),
        )
    if model == "max":
        _expect_keys(payload, set())
        return MaxCost()
    if model == "table":
        _expect_keys(payload, {"values"})
        cost = TableCost(payload["values"])
        cost.table(n)  # fail fast if the table is too short for the game
        return cost
    raise ValueError(f"unknown cost model {model!r}")


def _expect_keys(payload: Mapping[str, Any], allowed: set) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown cost model spec fields: {sorted(unknown)}")
