"""Heterogeneous traffic: per-pair demand matrices for the weighted BNCG.

The paper's cost model is uniform — every agent wants to reach every
other agent equally, ``cost(u) = alpha * deg(u) + sum_v d(u, v)``.  Its
natural generalization (Àlvarez–Fernàndez 2012; Gawendowicz–Lenzner–
Weyand 2025) attaches an integer *demand* ``W[u, v] >= 0`` to every
ordered pair and charges

    cost(u) = alpha * deg(u) + sum_v W[u, v] * d(u, v).

:class:`TrafficMatrix` is the exact, immutable demand matrix the whole
engine stack threads through: :class:`~repro.core.state.GameState`
carries one, :class:`~repro.graphs.distances.DistanceMatrix` maintains
the weighted totals incrementally alongside the uniform ones, and the
:class:`~repro.core.speculative.SpeculativeEvaluator` kernel computes
weighted per-agent deltas so every checker, move generator, scheduler
and analysis sweep answers the same questions for any demand matrix.

Exactness contract:

* demands are **non-negative int64 integers** (so weighted distance
  totals stay exact integers and cost comparisons stay exact
  ``Fraction``-vs-int);
* the diagonal is identically zero (``d(u, u) = 0`` makes it
  meaningless; zeroing it keeps row masses honest);
* ``TrafficMatrix.uniform(n)`` — all off-diagonal demands 1 — is
  **bit-exactly equivalent** to no traffic model at all: every layer
  dispatches uniform traffic to the original unweighted code paths, so
  equilibrium verdicts, trajectories and reports are byte-identical.

Demand matrices may be asymmetric (``u`` may care about reaching ``v``
more than ``v`` cares back); all weighted formulas in the stack only
assume the *distance* matrix is symmetric.

Zero demand changes the game qualitatively: an agent with no demand
toward a bridge's far side can profitably drop the bridge, so the
uniform shortcuts "bridges are never improving removals" and "trees are
always RE" do not survive weighting — the weighted checkers evaluate
bridge removals through the search-free two-component split, weighting
each side's demand mass, instead of skipping them.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro._rng import coerce_rng

__all__ = [
    "TrafficMatrix",
    "traffic_from_spec",
]


def _as_demand_array(values, n: int | None = None) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValueError("a demand matrix must be square")
    if n is not None and array.shape[0] != n:
        raise ValueError(
            f"demand matrix is {array.shape[0]}x{array.shape[0]}, "
            f"expected {n}x{n}"
        )
    if array.dtype == bool or not np.issubdtype(array.dtype, np.integer):
        if np.issubdtype(array.dtype, np.floating) and not (
            array == np.floor(array)
        ).all():
            raise ValueError("demands must be integers (exact arithmetic)")
        try:
            array = array.astype(np.int64, casting="unsafe")
        except (ValueError, TypeError):
            raise ValueError("demands must be integers (exact arithmetic)")
    else:
        array = array.astype(np.int64)
    if (array < 0).any():
        raise ValueError("demands must be non-negative")
    array = array.copy()
    np.fill_diagonal(array, 0)
    array.setflags(write=False)
    return array


class TrafficMatrix:
    """Immutable per-pair integer demand matrix for one game size ``n``.

    Build one with the named constructors (:meth:`uniform`,
    :meth:`per_agent`, :meth:`gravity`, :meth:`hub_spoke`,
    :meth:`broadcast`, :meth:`random_demands`) or :meth:`from_pairs`
    with an explicit matrix.  Instances hash/compare by value and carry
    a lossless JSON-able ``spec`` so campaign trials stay
    content-addressed.
    """

    __slots__ = ("weights", "n", "_spec", "_is_uniform")

    def __init__(self, weights, spec: Mapping[str, Any] | None = None):
        self.weights = _as_demand_array(weights)
        self.n = int(self.weights.shape[0])
        if self.n == 0:
            raise ValueError("a traffic matrix needs at least one agent")
        self._spec = dict(spec) if spec is not None else None
        off_diagonal = ~np.eye(self.n, dtype=bool)
        self._is_uniform = bool((self.weights[off_diagonal] == 1).all())

    # -- named generators ----------------------------------------------------

    @classmethod
    def uniform(cls, n: int) -> "TrafficMatrix":
        """All off-diagonal demands 1 — the paper's model, bit-exactly."""
        weights = np.ones((n, n), dtype=np.int64)
        return cls(weights, spec={"model": "uniform"})

    @classmethod
    def from_pairs(cls, matrix) -> "TrafficMatrix":
        """Explicit per-pair demands (any square non-negative int matrix)."""
        array = _as_demand_array(matrix)
        return cls(
            array,
            spec={"model": "explicit", "rows": array.tolist()},
        )

    @classmethod
    def per_agent(cls, weights: Sequence[int]) -> "TrafficMatrix":
        """Destination-importance demands: ``W[u, v] = weight[v]``.

        Everyone wants to reach agent ``v`` in proportion to ``v``'s
        weight (popular content hosts, say); ``W`` is asymmetric unless
        all weights are equal.
        """
        vector = np.asarray(list(weights), dtype=np.int64)
        if vector.ndim != 1:
            raise ValueError("per-agent weights must be a flat sequence")
        matrix = np.broadcast_to(vector, (len(vector), len(vector)))
        return cls(
            matrix,
            spec={"model": "per_agent", "weights": vector.tolist()},
        )

    @classmethod
    def gravity(cls, weights: Sequence[int]) -> "TrafficMatrix":
        """Gravity demands ``W[u, v] = weight[u] * weight[v]`` (symmetric).

        The classic traffic-engineering model: flow between two networks
        scales with the product of their sizes.
        """
        vector = np.asarray(list(weights), dtype=np.int64)
        if vector.ndim != 1:
            raise ValueError("gravity weights must be a flat sequence")
        return cls(
            np.outer(vector, vector),
            spec={"model": "gravity", "weights": vector.tolist()},
        )

    @classmethod
    def hub_spoke(
        cls,
        n: int,
        hubs: Sequence[int],
        hub_demand: int = 4,
        spoke_demand: int = 1,
    ) -> "TrafficMatrix":
        """Hub-and-spoke demands: pairs touching a hub carry
        ``hub_demand``, spoke-to-spoke pairs carry ``spoke_demand``."""
        hub_list = sorted({int(h) for h in hubs})
        for hub in hub_list:
            if not 0 <= hub < n:
                raise ValueError(f"hub {hub} outside 0..{n - 1}")
        matrix = np.full((n, n), int(spoke_demand), dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        mask[hub_list] = True
        matrix[mask, :] = int(hub_demand)
        matrix[:, mask] = int(hub_demand)
        return cls(
            matrix,
            spec={
                "model": "hub_spoke",
                "hubs": hub_list,
                "hub_demand": int(hub_demand),
                "spoke_demand": int(spoke_demand),
            },
        )

    @classmethod
    def broadcast(cls, n: int, sources: Sequence[int]) -> "TrafficMatrix":
        """Broadcast demands: only pairs touching a source carry traffic.

        ``W[u, v] = 1`` iff ``u`` or ``v`` is a source — the
        one-to-many regime (spoke-to-spoke demand is zero, so e.g.
        dropping a leaf that serves no source can be improving).
        """
        return cls.hub_spoke(n, sources, hub_demand=1, spoke_demand=0)._with_spec(
            {"model": "broadcast", "sources": sorted({int(s) for s in sources})}
        )

    @classmethod
    def random_demands(
        cls, n: int, seed: int, high: int = 4, density: float = 1.0
    ) -> "TrafficMatrix":
        """Seeded random symmetric demands in ``0..high``.

        A pure function of ``(n, seed, high, density)`` — campaign
        trials using it stay content-addressed and bit-reproducible.
        ``density < 1`` zeroes pairs independently (exercising the
        zero-demand regime).
        """
        rng = coerce_rng(int(seed))
        matrix = np.zeros((n, n), dtype=np.int64)
        for u in range(n):
            for v in range(u + 1, n):
                demand = (
                    rng.randint(0, int(high))
                    if rng.random() < density
                    else 0
                )
                matrix[u, v] = matrix[v, u] = demand
        return cls(
            matrix,
            spec={
                "model": "random",
                "seed": int(seed),
                "high": int(high),
                "density": float(density),
            },
        )

    def _with_spec(self, spec: Mapping[str, Any]) -> "TrafficMatrix":
        return TrafficMatrix(self.weights, spec=spec)

    # -- queries -------------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """Whether every off-diagonal demand is exactly 1.

        Uniform traffic dispatches to the original unweighted code paths
        everywhere, which is what makes the uniform-equivalence
        guarantee *byte*-exact rather than merely numerically equal.
        """
        return self._is_uniform

    @property
    def spec(self) -> dict[str, Any]:
        """A lossless JSON-able description (for campaign content hashes)."""
        if self._spec is not None:
            return dict(self._spec)
        return {"model": "explicit", "rows": self.weights.tolist()}

    def row(self, u: int) -> np.ndarray:
        """Demands of agent ``u`` toward every destination (read-only)."""
        return self.weights[u]

    def masses(self) -> np.ndarray:
        """Per-agent demand mass ``sum_v W[u, v]``.

        This is also each agent's weighted distance floor: every
        positive-demand destination sits at distance at least 1.
        """
        return self.weights.sum(axis=1)

    def mass(self, u: int) -> int:
        return int(self.weights[u].sum())

    @property
    def max_row_mass(self) -> int:
        """The largest per-agent demand mass (sizing the big-M constant)."""
        return int(self.weights.sum(axis=1).max())

    def __eq__(self, other) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return self.n == other.n and bool(
            (self.weights == other.weights).all()
        )

    def __hash__(self) -> int:
        return hash((self.n, self.weights.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        model = (self._spec or {}).get("model", "explicit")
        return f"TrafficMatrix(n={self.n}, model={model!r})"


def traffic_from_spec(
    spec: Mapping[str, Any] | None, n: int
) -> TrafficMatrix | None:
    """Build a :class:`TrafficMatrix` from its JSON-able ``spec`` dict.

    The inverse of :attr:`TrafficMatrix.spec`, used by the campaign
    runners: a trial's ``traffic`` parameter is the spec dict, so the
    demand matrix is a pure function of the trial's content-addressed
    parameters.  ``None`` passes through (uniform game).
    """
    if spec is None:
        return None
    if not isinstance(spec, Mapping):
        raise TypeError(f"traffic spec must be a mapping, got {spec!r}")
    payload = dict(spec)
    model = payload.pop("model", None)
    if model == "uniform":
        _expect_keys(payload, set())
        return TrafficMatrix.uniform(n)
    if model == "explicit":
        _expect_keys(payload, {"rows"})
        return TrafficMatrix.from_pairs(payload["rows"])
    if model == "per_agent":
        _expect_keys(payload, {"weights"})
        return TrafficMatrix.per_agent(payload["weights"])
    if model == "gravity":
        _expect_keys(payload, {"weights"})
        return TrafficMatrix.gravity(payload["weights"])
    if model == "hub_spoke":
        _expect_keys(payload, {"hubs", "hub_demand", "spoke_demand"})
        return TrafficMatrix.hub_spoke(
            n,
            payload["hubs"],
            hub_demand=payload.get("hub_demand", 4),
            spoke_demand=payload.get("spoke_demand", 1),
        )
    if model == "broadcast":
        _expect_keys(payload, {"sources"})
        return TrafficMatrix.broadcast(n, payload["sources"])
    if model == "random":
        _expect_keys(payload, {"seed", "high", "density"})
        if "seed" not in payload:
            raise ValueError("the random traffic model requires a 'seed'")
        return TrafficMatrix.random_demands(
            n,
            payload["seed"],
            high=payload.get("high", 4),
            density=payload.get("density", 1.0),
        )
    raise ValueError(f"unknown traffic model {model!r}")


def _expect_keys(payload: Mapping[str, Any], allowed: set) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown traffic spec fields: {sorted(unknown)}")
