"""Immutable game snapshots: a graph, an edge price, and cached distances.

In equilibrium, BNCG strategy vectors and created graphs are in bijection
(Section 1.1 of the paper), so a *state* is simply an undirected graph plus
``alpha``.  ``GameState`` freezes a copy of the graph, normalises ``alpha``
to an exact :class:`~fractions.Fraction`, fixes the big constant ``M``, and
lazily caches the all-pairs distance matrix every checker consumes.  The
cache is *transferred*, not recomputed, along :meth:`GameState.apply` chains:
the incremental engine updates it in place for the successor state, so whole
dynamics trajectories cost one APSP build total.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

import networkx as nx
import numpy as np

from repro._alpha import AlphaLike, as_alpha, big_m, fits_int64
from repro.core.costmodel import CostModel, ModelOps
from repro.core.traffic import TrafficMatrix
from repro.graphs.distances import DistanceMatrix, canonical_labels
from repro.graphs.trees import is_tree

__all__ = ["GameState"]


class GameState:
    """One state of the Bilateral Network Creation Game.

    Parameters
    ----------
    graph:
        Undirected simple graph; nodes are relabelled to ``0..n-1`` if needed
        (a copy is always taken — mutating the input later is safe).
    alpha:
        Edge price; int, float, ``str`` or ``Fraction`` (kept exact).
    traffic:
        Optional :class:`~repro.core.traffic.TrafficMatrix` of per-pair
        demands.  ``None`` (and the bit-exactly equivalent
        ``TrafficMatrix.uniform(n)``) gives the paper's uniform cost
        model through the original unweighted code paths; a non-uniform
        matrix switches every cost to
        ``alpha * deg(u) + sum_v W[u, v] * d(u, v)`` with the big
        constant ``M`` re-sized so disconnecting any positive-demand
        pair still dominates every possible saving.
    cost_model:
        Optional :class:`~repro.core.costmodel.CostModel` replacing the
        linear distance term by ``sum_v W[u, v] * f(d(u, v))`` (or the
        max aggregate) for a monotone int-valued ``f``.  ``None`` and
        :class:`~repro.core.costmodel.LinearCost` (``is_linear``) give
        the paper's game through the original code paths byte-exactly;
        any other model flips :attr:`modeled` and routes every layer
        through the model's value arithmetic, with unreachable pairs
        carrying the model's own value sentinel ``F`` (the distance
        machinery and its ``M`` are untouched — values are mapped at the
        aggregation boundary).

    >>> state = GameState(nx.star_graph(3), 2)
    >>> state.cost(0)            # center: 3 edges bought, distance 3
    Fraction(9, 1)
    >>> state.social_cost() == state.optimum_cost()
    True
    """

    def __init__(
        self,
        graph: nx.Graph,
        alpha: AlphaLike,
        traffic: TrafficMatrix | None = None,
        cost_model: CostModel | None = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("the game needs at least one agent")
        if any(u == v for u, v in graph.edges):
            raise ValueError("self-loops are not part of the game")
        self.graph = canonical_labels(graph)
        self.n = self.graph.number_of_nodes()
        self.alpha: Fraction = as_alpha(alpha)
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if traffic is not None and traffic.n != self.n:
            raise ValueError(
                f"traffic matrix is for n={traffic.n}, game has n={self.n}"
            )
        self.traffic = traffic
        if self.weighted:
            # the weighted disconnection constant: one unit of unmet
            # demand (the smallest positive) must dominate any buying
            # saving (<= alpha * n) plus any real weighted distance
            # (<= (n - 1) * max_row_mass); the uniform formula is the
            # special case max_row_mass = n - 1
            self.m_constant = max(
                self.n,
                int(self.alpha * self.n) + self.n * traffic.max_row_mass + 1,
            )
            headroom = self.m_constant * max(traffic.max_row_mass, self.n)
        else:
            self.m_constant = big_m(self.n, self.alpha)
            headroom = self.m_constant * self.n
        if not fits_int64(headroom):
            raise ValueError(
                "alpha, n and demand mass too large for exact int64 "
                "distance arithmetic"
            )
        if cost_model is not None and not isinstance(cost_model, CostModel):
            raise TypeError(
                f"cost_model must be a CostModel, got {cost_model!r}"
            )
        self.cost_model = cost_model
        self._model_ops: ModelOps | None = None
        if self.modeled:
            mass = (
                traffic.max_row_mass if traffic is not None else self.n - 1
            )
            f_unreachable = cost_model.unreachable_cost(
                self.n, self.alpha, mass
            )
            if not fits_int64(f_unreachable * max(mass, self.n)):
                raise ValueError(
                    "alpha, n, demand mass and cost table too large for "
                    "exact int64 model-value arithmetic"
                )
            self._model_ops = ModelOps(
                self.n,
                cost_model.table(self.n),
                f_unreachable,
                weights=self.traffic.weights if self.weighted else None,
                aggregate=cost_model.aggregate,
            )
        self._dist: DistanceMatrix | None = None

    # -- structure ---------------------------------------------------------

    @property
    def weighted(self) -> bool:
        """Whether a non-uniform traffic matrix governs this state's costs.

        Uniform traffic (``None`` or ``TrafficMatrix.uniform``) keeps
        every layer on the original unweighted code paths — the
        byte-exact equivalence guarantee.
        """
        return self.traffic is not None and not self.traffic.is_uniform

    @property
    def modeled(self) -> bool:
        """Whether a non-linear cost model governs this state's costs.

        ``None`` and ``LinearCost`` keep every layer on the original
        (un)weighted code paths — the byte-exact equivalence guarantee,
        mirroring :attr:`weighted` for uniform traffic.
        """
        return self.cost_model is not None and not self.cost_model.is_linear

    @property
    def model_ops(self) -> ModelOps:
        """The bound model-value arithmetic (modeled states only)."""
        if self._model_ops is None:
            raise ValueError("this state has no non-linear cost model")
        return self._model_ops

    @property
    def dist(self) -> DistanceMatrix:
        """Cached all-pairs distances (``M`` for disconnected pairs)."""
        if self._dist is None:
            self._dist = DistanceMatrix(self.graph, self.m_constant)
            if self.weighted:
                self._dist.bind_traffic(self.traffic.weights)
            if self._model_ops is not None:
                self._dist.bind_cost_model(self._model_ops)
        return self._dist

    @property
    def dist_matrix(self) -> np.ndarray:
        """The live int64 APSP array of the cached engine.

        This is a *view*, not a snapshot: :meth:`apply` hands the engine to
        the successor state and updates the same array in place, so copy it
        (``state.dist_matrix.copy()``) before applying a move if you need
        the predecessor's distances afterwards.
        """
        return self.dist.matrix

    def degree(self, u: int) -> int:
        return self.graph.degree(u)

    def degrees(self) -> np.ndarray:
        return np.array([self.graph.degree(u) for u in range(self.n)])

    def is_connected(self) -> bool:
        return self.n == 1 or nx.is_connected(self.graph)

    def is_tree(self) -> bool:
        return is_tree(self.graph)

    def edges(self) -> Iterable[tuple[int, int]]:
        return self.graph.edges

    def non_edges(self) -> Iterable[tuple[int, int]]:
        for u in range(self.n):
            for v in range(u + 1, self.n):
                if not self.graph.has_edge(u, v):
                    yield u, v

    # -- costs --------------------------------------------------------------

    def buy_cost(self, u: int) -> Fraction:
        """``alpha * |S_u|``; in the graph abstraction ``|S_u| = deg(u)``."""
        return self.alpha * self.graph.degree(u)

    def dist_cost(self, u: int) -> int:
        """``dist(u) = sum_v W[u, v] * f(d(u, v))`` (``W = 1``: uniform,
        ``f = id``: linear; max aggregate under :class:`MaxCost`).

        Unreachable agents carry ``M`` per unit of demand (the model's
        ``F`` sentinel when modeled).  Served by the engine's
        incrementally maintained totals in every regime.
        """
        if self.modeled:
            return self.dist.ftotal(u)
        if self.weighted:
            return self.dist.wtotal(u)
        return self.dist.total(u)

    def cost(self, u: int) -> Fraction:
        """``cost(u) = buy(u) + dist(u)``."""
        return self.buy_cost(u) + self.dist_cost(u)

    def social_cost(self) -> Fraction:
        """``sum_u cost(u) = 2 * alpha * m + sum_u dist(u)``."""
        if self.modeled:
            total_dist = int(self.dist.ftotals().sum())
        elif self.weighted:
            total_dist = int(self.dist.wtotals().sum())
        else:
            total_dist = int(self.dist.totals().sum())
        return 2 * self.alpha * self.graph.number_of_edges() + total_dist

    def optimum_cost(self) -> Fraction:
        from repro.core.optimum import optimum_cost

        return optimum_cost(self.n, self.alpha)

    def rho(self) -> Fraction:
        """Social cost ratio ``rho(G) = cost(G) / cost(OPT)``.

        Defined against the paper's closed-form *uniform* optimum, so it
        is only meaningful for uniform traffic; weighted states compare
        within an enumerated family instead
        (:func:`repro.analysis.poa.empirical_weighted_poa`).
        """
        if self.weighted:
            raise ValueError(
                "rho() compares against the uniform optimum; for weighted "
                "traffic use repro.analysis.poa.empirical_weighted_poa"
            )
        if self.modeled:
            raise ValueError(
                "rho() compares against the linear uniform optimum; for a "
                "non-linear cost model compare social costs within an "
                "enumerated family (repro.analysis.poa.empirical_weighted_poa)"
            )
        from repro.core.optimum import social_cost_ratio

        return social_cost_ratio(self)

    # -- derived states ------------------------------------------------------

    def with_graph(self, graph: nx.Graph) -> "GameState":
        """A new state with the same ``alpha``/traffic/model, a different
        graph."""
        return GameState(
            graph, self.alpha, traffic=self.traffic,
            cost_model=self.cost_model,
        )

    def apply(self, move) -> "GameState":
        """State after applying a :class:`repro.core.moves.Move`.

        If this state's distance matrix has already been materialised, it is
        *handed off* to the successor: the successor gets its own graph copy,
        the matrix is updated in place through the incremental engine
        (``apply_add`` / ``apply_remove``), and this state drops its cache —
        it rebuilds lazily if queried again.  A dynamics trajectory therefore
        performs exactly one full APSP build no matter how many moves it
        applies.  Consequence: arrays previously obtained from
        :attr:`dist_matrix` are updated in place to the successor's
        distances — copy them first if a pre-move snapshot is needed.
        Moves without :meth:`~repro.core.moves.Move.edge_deltas` fall back
        to a fresh state.
        """
        deltas = getattr(move, "edge_deltas", None)
        if self._dist is None or deltas is None:
            return self.with_graph(move.apply(self.graph))
        dist = self._dist
        self._dist = None  # hand off; rebuilt lazily if this state is reused
        graph = self.graph.copy()
        dist.rebind(graph)
        for op, u, v in deltas():
            if op == "add":
                dist.apply_add(u, v)
            elif op == "remove":
                dist.apply_remove(u, v)
            else:
                raise ValueError(f"unknown edge delta {op!r}")
        return self._successor(graph, dist)

    def _successor(self, graph: nx.Graph, dist: DistanceMatrix) -> "GameState":
        """Construct an apply-chained state around an already-updated engine.

        The one place besides ``__init__`` that builds a ``GameState`` —
        keep the two field lists in sync when adding cached attributes.
        """
        successor = GameState.__new__(GameState)
        successor.graph = graph
        successor.n = self.n
        successor.alpha = self.alpha
        successor.m_constant = self.m_constant
        successor.traffic = self.traffic
        successor.cost_model = self.cost_model
        successor._model_ops = self._model_ops
        successor._dist = dist
        return successor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GameState(n={self.n}, m={self.graph.number_of_edges()}, "
            f"alpha={self.alpha})"
        )
