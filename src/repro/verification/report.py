"""One-shot verification report: run every lemma/proposition check.

Used by ``examples/worst_case_gallery.py`` and handy for a quick health
check of the whole reproduction::

    python -m repro.verification.report
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.tables import render_table
from repro.constructions.stretched import (
    bge_lower_bound_star,
    stretched_binary_tree,
    stretched_tree_star,
)
from repro.core.state import GameState
from repro.verification.lemmas import (
    LemmaCheck,
    check_lemma_2_4_window,
    check_lemma_3_3,
    check_lemma_3_4,
    check_lemma_3_5,
    check_lemma_3_11_condition,
    check_lemma_3_18,
    check_lemma_D1,
    check_lemma_D8,
    check_lemma_D9,
    check_lemma_D10,
    check_theorem_3_6,
)
from repro.verification.propositions import (
    check_proposition_3_7,
    check_proposition_3_8,
    check_proposition_3_16,
)

__all__ = ["run_all_checks"]


def run_all_checks() -> list[LemmaCheck]:
    """All instance-level lemma checks on representative constructions."""
    checks: list[LemmaCheck] = []

    # A BGE (hence BSwE) stretched tree star: Theorem 3.10's parameters.
    alpha = 600
    star = bge_lower_bound_star(alpha, eta=max(600, alpha))
    state = GameState(star.graph, alpha)
    checks.append(check_lemma_3_3(state))
    checks.append(check_lemma_3_4(state))
    checks.append(check_lemma_3_5(state))
    checks.append(check_theorem_3_6(state))
    checks.append(check_lemma_D9(star))
    checks.append(check_lemma_D10(star, alpha))

    tree = stretched_binary_tree(d=4, k=3)
    checks.append(check_lemma_D1(tree))
    checks.append(check_lemma_D8(k=3, t=200))

    bne_star = stretched_tree_star(k=1, t=20, eta=500)
    checks.append(check_lemma_3_11_condition(bne_star, alpha=4500))

    checks.append(check_lemma_3_18(n=500, alpha=700, d=3))
    checks.append(check_lemma_2_4_window(n=6, alpha=5))
    checks.append(check_proposition_3_7(n=6, alphas=[1, 2, Fraction(7, 2)]))
    checks.append(check_proposition_3_8(d=2, k=2))
    checks.append(check_proposition_3_16(n=5))
    return checks


def main() -> None:
    checks = run_all_checks()
    rows = [[c.name, c.holds, c.details] for c in checks]
    print(render_table(["check", "holds", "details"], rows,
                       title="Verification report"))
    failed = [c for c in checks if not c.holds]
    print(f"\n{len(checks) - len(failed)}/{len(checks)} checks hold")


if __name__ == "__main__":
    main()
