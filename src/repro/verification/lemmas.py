"""Executable checks of the lemmas behind Table 1, on concrete instances.

Each ``check_*`` evaluates the lemma's inequality exactly as stated (finite
size, no asymptotics) and returns a :class:`LemmaCheck` carrying the
measured quantities, so the tests and benchmarks can both assert and report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

from repro._alpha import AlphaLike, as_alpha
from repro.analysis.bounds import dary_tree_cost_bound
from repro.constructions.basic import almost_complete_dary_tree
from repro.constructions.stretched import (
    StretchedTree,
    StretchedTreeStar,
    max_depth_for_size,
    stretched_binary_tree,
)
from repro.core.costs import max_agent_cost
from repro.core.state import GameState
from repro.graphs.trees import RootedTree

__all__ = [
    "LemmaCheck",
    "check_lemma_2_4_window",
    "check_lemma_3_3",
    "check_lemma_3_4",
    "check_lemma_3_5",
    "check_lemma_3_11_condition",
    "check_lemma_3_14",
    "check_lemma_3_18",
    "check_lemma_D1",
    "check_lemma_D8",
    "check_lemma_D9",
    "check_lemma_D10",
    "check_theorem_3_6",
    "check_theorem_3_13",
    "check_theorem_3_15",
    "cycle_bse_window",
]


@dataclass(frozen=True)
class LemmaCheck:
    """One verified (or refuted) lemma instance."""

    name: str
    holds: bool
    details: str = ""
    data: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


def _rooted(state: GameState) -> RootedTree:
    if not state.is_tree():
        raise ValueError("this lemma is about trees")
    return RootedTree(state.graph)  # roots at a 1-median


def check_lemma_3_3(state: GameState) -> LemmaCheck:
    """BSwE trees: every ``T_u`` has a 1-median within ``2 alpha / n``
    layers below ``u``."""
    tree = _rooted(state)
    budget = 2 * state.alpha / state.n
    worst_excess: Fraction = Fraction(-10**9)
    for u in tree.graph:
        medians = tree.subtree_one_medians(u)
        closest = min(tree.layer[v] for v in medians)
        worst_excess = max(worst_excess, closest - tree.layer[u] - budget)
    return LemmaCheck(
        name="Lemma 3.3",
        holds=worst_excess <= 0,
        details=f"max layer excess over 2a/n: {float(worst_excess):.3f}",
        data={"worst_excess": worst_excess},
    )


def check_lemma_3_4(state: GameState) -> LemmaCheck:
    """BSwE trees: ``depth(T_u) <= (1 + 2 alpha / n) log2 |T_u|``."""
    tree = _rooted(state)
    factor = 1 + 2 * float(state.alpha) / state.n
    worst: tuple[float, int] | None = None
    holds = True
    for u in tree.graph:
        size = tree.subtree_size[u]
        depth = tree.subtree_depth(u)
        bound = factor * math.log2(size) if size > 1 else 0.0
        if depth > bound + 1e-9:
            holds = False
        if worst is None or depth - bound > worst[0]:
            worst = (depth - bound, u)
    return LemmaCheck(
        name="Lemma 3.4",
        holds=holds,
        details=f"max depth excess: {worst[0]:.3f}",
        data={"worst_node": worst[1]},
    )


def check_lemma_3_5(state: GameState) -> LemmaCheck:
    """BSwE trees: layer >= 2 subtrees satisfy ``|T_u| <= alpha/(l(u)-1)``."""
    tree = _rooted(state)
    holds = True
    worst = Fraction(0)
    for u in tree.graph:
        layer = tree.layer[u]
        if layer < 2:
            continue
        excess = tree.subtree_size[u] - state.alpha / (layer - 1)
        worst = max(worst, excess)
        if excess > 0:
            holds = False
    return LemmaCheck(
        name="Lemma 3.5",
        holds=holds,
        details=f"max size excess: {float(worst):.3f}",
    )


def check_theorem_3_6(state: GameState) -> LemmaCheck:
    """BSwE trees: ``rho <= 2 + 2 log2 alpha`` (alpha >= 1)."""
    rho = float(state.rho())
    bound = 2 + 2 * math.log2(float(state.alpha))
    return LemmaCheck(
        name="Theorem 3.6",
        holds=rho <= bound + 1e-9,
        details=f"rho={rho:.3f} <= {bound:.3f}",
        data={"rho": rho, "bound": bound},
    )


def check_theorem_3_13(state: GameState) -> LemmaCheck:
    """BNE trees with ``alpha <= sqrt n`` and ``n > 15``: ``rho <= 4``."""
    if state.n <= 15:
        raise ValueError("Theorem 3.13 assumes n > 15")
    if state.alpha * state.alpha > state.n:
        raise ValueError("Theorem 3.13 assumes alpha <= sqrt(n)")
    rho = state.rho()
    return LemmaCheck(
        name="Theorem 3.13",
        holds=rho <= 4,
        details=f"rho={float(rho):.3f} <= 4",
        data={"rho": rho},
    )


def check_lemma_3_14(state: GameState) -> LemmaCheck:
    """3-BSE trees: at most one child subtree deeper than
    ``2 ceil(4 alpha / n) + 1`` per node."""
    tree = _rooted(state)
    threshold = 2 * math.ceil(4 * state.alpha / state.n) + 1
    offenders = []
    for u in tree.graph:
        deep = [
            c
            for c in tree.children(u)
            if tree.subtree_depth(c) > threshold
        ]
        if len(deep) > 1:
            offenders.append((u, tuple(deep)))
    return LemmaCheck(
        name="Lemma 3.14",
        holds=not offenders,
        details=f"deep-sibling violations: {len(offenders)}",
        data={"threshold": threshold, "offenders": offenders},
    )


def check_theorem_3_15(state: GameState) -> LemmaCheck:
    """3-BSE trees: ``rho <= 25``."""
    rho = state.rho()
    return LemmaCheck(
        name="Theorem 3.15",
        holds=rho <= 25,
        details=f"rho={float(rho):.3f} <= 25",
        data={"rho": rho},
    )


def check_lemma_3_11_condition(
    star: StretchedTreeStar, alpha: AlphaLike
) -> LemmaCheck:
    """The sufficient condition for a stretched tree star to be in BNE:
    ``3 n depth(G) / alpha + 1 <= alpha / (3 |T| depth(G))`` plus
    ``k = 1 or alpha >= 6 k n``."""
    price = as_alpha(alpha)
    n = star.n
    depth = star.depth
    tree_size = star.tree.n
    lhs = 3 * n * depth / price + 1
    rhs = price / (3 * tree_size * depth)
    stretch_ok = star.k == 1 or price >= 6 * star.k * n
    return LemmaCheck(
        name="Lemma 3.11",
        holds=lhs <= rhs and stretch_ok,
        details=(
            f"lhs={float(lhs):.3f} <= rhs={float(rhs):.3f}; "
            f"stretch condition: {stretch_ok}"
        ),
        data={"lhs": lhs, "rhs": rhs},
    )


def check_lemma_D1(tree: StretchedTree) -> LemmaCheck:
    """Stretched trees: average node layer is at least ``k (d - 3/2)``."""
    rooted = RootedTree(tree.graph, root=tree.root)
    total_layers = sum(rooted.layer.values())
    average = Fraction(total_layers, tree.n)
    bound = Fraction(tree.k) * (Fraction(tree.d) - Fraction(3, 2))
    return LemmaCheck(
        name="Lemma D.1",
        holds=average >= bound,
        details=f"avg layer {float(average):.3f} >= {float(bound):.3f}",
        data={"average": average, "bound": bound},
    )


def check_lemma_D8(k: int, t: AlphaLike) -> LemmaCheck:
    """Maximal stretched tree under target ``t``: ``t/3 <= n <= t`` and
    ``k log2(t / 6k) <= depth <= k log2 t``."""
    target = as_alpha(t)
    d = max_depth_for_size(target, k)
    tree = stretched_binary_tree(d, k)
    n = tree.n
    depth = tree.depth
    size_ok = target / 3 <= n <= target
    low = k * math.log2(float(target) / (6 * k))
    high = k * math.log2(float(target))
    depth_ok = low - 1e-9 <= depth <= high + 1e-9
    return LemmaCheck(
        name="Lemma D.8",
        holds=size_ok and depth_ok,
        details=f"n={n} in [{float(target)/3:.1f}, {float(target):.1f}], "
        f"depth={depth} in [{low:.2f}, {high:.2f}]",
        data={"n": n, "depth": depth},
    )


def check_lemma_D9(star: StretchedTreeStar) -> LemmaCheck:
    """Stretched tree stars: ``eta <= n <= 3 eta / 2`` and
    ``depth(T) <= depth(G) <= 2 k log2 t``."""
    n_ok = star.eta <= star.n <= Fraction(3, 2) * star.eta
    high = 2 * star.k * math.log2(float(star.t))
    depth_ok = star.tree.depth <= star.depth <= high + 1e-9
    return LemmaCheck(
        name="Lemma D.9",
        holds=n_ok and depth_ok,
        details=f"n={star.n} in [{star.eta}, {float(Fraction(3,2)*star.eta):.0f}], "
        f"depth={star.depth} <= {high:.2f}",
    )


def check_lemma_D10(star: StretchedTreeStar, alpha: AlphaLike) -> LemmaCheck:
    """Stretched tree stars:
    ``rho >= n k (log2(t/k) - 9/2) / (2 (alpha + n - 1))``."""
    price = as_alpha(alpha)
    state = GameState(star.graph, price)
    rho = state.rho()
    bound = (
        star.n
        * star.k
        * (math.log2(float(star.t) / star.k) - 4.5)
        / (2 * float(price + star.n - 1))
    )
    return LemmaCheck(
        name="Lemma D.10",
        holds=float(rho) >= bound - 1e-9,
        details=f"rho={float(rho):.3f} >= {bound:.3f}",
        data={"rho": rho, "bound": bound},
    )


def check_lemma_3_18(n: int, alpha: AlphaLike, d: int) -> LemmaCheck:
    """Almost complete d-ary trees: every agent costs at most
    ``(d+1) alpha + 2 (n-1) log_d n`` (checked against the exact maximum)."""
    price = as_alpha(alpha)
    state = GameState(almost_complete_dary_tree(n, d), price)
    measured = max_agent_cost(state)
    bound = dary_tree_cost_bound(n, price, d)
    return LemmaCheck(
        name="Lemma 3.18",
        holds=float(measured) <= bound + 1e-9,
        details=f"max cost {float(measured):.1f} <= {bound:.1f}",
        data={"measured": measured, "bound": bound},
    )


def cycle_bse_window(n: int) -> dict[str, Fraction]:
    """Lemma 2.4's alpha window for ``C_n``, paper's and corrected form.

    The paper states ``(n^2/4 - (n-1), n(n-2)/4)`` for even ``n`` and
    ``((n+1)(n-1)/4 - (n-1), (n+1)(n-1)/4)`` for odd ``n``.  The upper end
    must not exceed the exact single-removal loss — ``n(n-2)/4`` for even
    ``n`` (matches) but ``(n-1)^2/4`` for odd ``n`` (the paper's odd upper
    end ``(n+1)(n-1)/4`` overshoots it; our checker exhibits the removal).
    """
    if n < 3:
        raise ValueError("cycles need n >= 3")
    if n % 2 == 0:
        cycle_dist = Fraction(n * n, 4)
        paper_high = Fraction(n * (n - 2), 4)
    else:
        cycle_dist = Fraction((n + 1) * (n - 1), 4)
        paper_high = Fraction((n + 1) * (n - 1), 4)
    path_end_dist = Fraction(n * (n - 1), 2)
    removal_loss = path_end_dist - cycle_dist
    low = cycle_dist - (n - 1)
    return {
        "paper_low": low,
        "paper_high": paper_high,
        "removal_loss": removal_loss,
        "corrected_high": removal_loss,  # stability iff alpha <= loss
    }


def check_lemma_2_4_window(n: int, alpha: AlphaLike) -> LemmaCheck:
    """Whether ``alpha`` lies in the *corrected* BSE window for ``C_n``."""
    price = as_alpha(alpha)
    window = cycle_bse_window(n)
    inside = window["paper_low"] < price <= window["corrected_high"]
    return LemmaCheck(
        name="Lemma 2.4",
        holds=inside,
        details=(
            f"alpha={float(price):.2f} in "
            f"({float(window['paper_low']):.2f}, "
            f"{float(window['corrected_high']):.2f}]"
        ),
        data=window,
    )
