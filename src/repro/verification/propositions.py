"""Executable checks of the paper's propositions on concrete instances."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

import networkx as nx

from repro._alpha import AlphaLike, as_alpha
from repro.constructions.basic import almost_complete_dary_tree, clique, star
from repro.constructions.stretched import stretched_binary_tree
from repro.core.costs import all_strictly_improve, max_agent_cost
from repro.core.moves import CoalitionMove
from repro.core.state import GameState
from repro.equilibria.pairwise import is_bilateral_greedy_equilibrium
from repro.equilibria.strong import is_k_strong_equilibrium, is_strong_equilibrium
from repro.graphs.generation import all_trees
from repro.graphs.trees import RootedTree
from repro.verification.lemmas import LemmaCheck

__all__ = [
    "check_proposition_3_7",
    "check_proposition_3_8",
    "check_proposition_3_16",
    "lemma_3_14_coalition_move",
    "minimum_max_cost_profile",
]


def check_proposition_3_7(
    n: int, alphas: Sequence[AlphaLike]
) -> LemmaCheck:
    """On trees, BGE and 2-BSE coincide — verified by enumerating every
    non-isomorphic tree on ``n`` nodes against both exact checkers."""
    mismatches = []
    trees = 0
    for tree in all_trees(n):
        trees += 1
        for alpha in alphas:
            state = GameState(tree, alpha)
            greedy = is_bilateral_greedy_equilibrium(state)
            two_strong = is_k_strong_equilibrium(state, 2)
            if greedy != two_strong:
                mismatches.append((sorted(tree.edges), as_alpha(alpha)))
    return LemmaCheck(
        name="Proposition 3.7",
        holds=not mismatches,
        details=f"{trees} trees x {len(alphas)} alphas, "
        f"{len(mismatches)} mismatches",
        data={"mismatches": mismatches},
    )


def check_proposition_3_8(d: int, k: int) -> LemmaCheck:
    """Stretched binary trees are in BGE for ``alpha >= 7 k n`` — verified
    with the exact polynomial checkers at ``alpha = 7 k n`` exactly."""
    tree = stretched_binary_tree(d, k)
    alpha = 7 * k * tree.n
    state = GameState(tree.graph, alpha)
    stable = is_bilateral_greedy_equilibrium(state)
    return LemmaCheck(
        name="Proposition 3.8",
        holds=stable,
        details=f"d={d}, k={k}, n={tree.n}, alpha={alpha}: BGE={stable}",
    )


def check_proposition_3_16(n: int) -> LemmaCheck:
    """BSE structure at the alpha boundaries (exact BSE checks, small n):

    * ``alpha < 1``: the clique is in BSE, the star is not;
    * ``alpha = 1``: diameter <= 2 is exactly the BSE frontier for the
      families checked (cycle C_n vs path P_n);
    * ``alpha > 1``: the star is in BSE, and so is a path of four nodes at
      ``alpha = 100``.
    """
    half = Fraction(1, 2)
    checks = {
        "clique @ 1/2": is_strong_equilibrium(GameState(clique(n), half)),
        "star not @ 1/2": not is_strong_equilibrium(GameState(star(n), half)),
        "star @ 2": is_strong_equilibrium(GameState(star(n), 2)),
        "C5 @ 1 (diam 2)": is_strong_equilibrium(
            GameState(nx.cycle_graph(5), 1)
        ),
        "P4 @ 100": is_strong_equilibrium(GameState(nx.path_graph(4), 100)),
        "P4 not @ 1 (diam 3)": not is_strong_equilibrium(
            GameState(nx.path_graph(4), 1)
        ),
    }
    return LemmaCheck(
        name="Proposition 3.16",
        holds=all(checks.values()),
        details=", ".join(f"{k}: {v}" for k, v in checks.items()),
        data=checks,
    )


def lemma_3_14_coalition_move(state: GameState) -> CoalitionMove | None:
    """Construct Lemma 3.14's size-3 coalition move on a tree that has two
    deep sibling subtrees, and return it if it certifies instability.

    The proof shows the move ``{x, z, z'}: add xz and zz', drop xy`` (or its
    mirror) is improving whenever some node has two children whose subtrees
    are deeper than ``2 ceil(4 alpha/n) + 2``; both orientations are tried.
    """
    if not state.is_tree():
        raise ValueError("Lemma 3.14 is about trees")
    tree = RootedTree(state.graph)
    offset = math.ceil(4 * state.alpha / state.n)
    needed = 2 * offset + 2
    for u in state.graph:
        deep = [
            c for c in tree.children(u) if tree.subtree_depth(c) >= needed
        ]
        if len(deep) < 2:
            continue
        for c, c_prime in ((deep[0], deep[1]), (deep[1], deep[0])):
            path = _descend(tree, c, needed)
            path_prime = _descend(tree, c_prime, needed)
            # path[j] sits at layer l(u) + j; the proof places
            # x at l(u) + ceil(4a/n) + 2, its child y below it, and
            # z, z' at l(u) + 2 ceil(4a/n) + 3 (depth `needed` below c, c')
            x = path[offset + 2]
            y = path[offset + 3]
            z = path[needed + 1]
            z_prime = path_prime[needed + 1]
            move = CoalitionMove(
                coalition=(x, z, z_prime),
                removed_edges=((min(x, y), max(x, y)),),
                added_edges=tuple(
                    sorted(
                        (
                            (min(x, z), max(x, z)),
                            (min(z, z_prime), max(z, z_prime)),
                        )
                    )
                ),
            )
            graph_after = move.apply(state.graph)
            if all_strictly_improve(state, graph_after, move.beneficiaries()):
                return move
    return None


def _descend(tree: RootedTree, top: int, steps: int) -> list[int]:
    """The path ``[parent(top), top, ...]`` following the deepest child for
    ``steps`` further levels: ``path[j]`` sits ``j`` layers below
    ``parent(top)``."""
    path = [tree.parent(top), top]
    current = top
    for _ in range(steps):
        children = tree.children(current)
        if not children:
            break
        current = max(children, key=tree.subtree_depth)
        path.append(current)
    return path


def minimum_max_cost_profile(
    n: int, d_values: Sequence[int] | None = None
) -> Fraction:
    """Proposition 3.22's quantity at ``alpha = n``: the smallest
    ``max_u cost(u) / (alpha + n - 1)`` over the d-ary tree family (the
    best known flat-cost family).  Grows without bound as ``n`` grows."""
    if d_values is None:
        d_values = [2, 3, 4, 8, 16, 32]
    best: Fraction | None = None
    for d in d_values:
        if d >= n:
            continue
        state = GameState(almost_complete_dary_tree(n, d), n)
        value = max_agent_cost(state) / (as_alpha(n) + n - 1)
        if best is None or value < best:
            best = value
    if best is None:
        raise ValueError("no valid d for this n")
    return best
