"""Numeric verification of the paper's lemmas and propositions on instances."""

from repro.verification.lemmas import (
    LemmaCheck,
    check_lemma_2_4_window,
    check_lemma_3_3,
    check_lemma_3_4,
    check_lemma_3_5,
    check_lemma_3_11_condition,
    check_lemma_3_14,
    check_lemma_3_18,
    check_lemma_D1,
    check_lemma_D8,
    check_lemma_D9,
    check_lemma_D10,
    check_theorem_3_6,
    check_theorem_3_13,
    check_theorem_3_15,
    cycle_bse_window,
)
from repro.verification.propositions import (
    check_proposition_3_7,
    check_proposition_3_8,
    check_proposition_3_16,
    lemma_3_14_coalition_move,
    minimum_max_cost_profile,
)
from repro.verification.report import run_all_checks

__all__ = [
    "LemmaCheck",
    "check_lemma_2_4_window",
    "check_lemma_3_3",
    "check_lemma_3_4",
    "check_lemma_3_5",
    "check_lemma_3_11_condition",
    "check_lemma_3_14",
    "check_lemma_3_18",
    "check_lemma_D1",
    "check_lemma_D8",
    "check_lemma_D9",
    "check_lemma_D10",
    "check_proposition_3_7",
    "check_proposition_3_8",
    "check_proposition_3_16",
    "check_theorem_3_6",
    "check_theorem_3_13",
    "check_theorem_3_15",
    "cycle_bse_window",
    "lemma_3_14_coalition_move",
    "minimum_max_cost_profile",
    "run_all_checks",
]
