"""Trace spans: ``with span("engine.apsp_build", n=16): ...`` -> JSONL.

Disabled by default and *near-free* when disabled: :func:`span` checks
one module-level flag and returns a shared stateless no-op context
manager — no allocation, no clock read, no I/O.  Enabled by pointing
``REPRO_TRACE`` at a sink path before the process starts (read once at
import) or by calling :func:`enable_trace` programmatically (tests, the
benchmark's enabled arm).

One emitted record per *closed* span::

    {"span": "campaign.trial", "pid": 1234, "tid": 5678,
     "ts": 1699999999.123, "dur_ns": 48211375, "kind": "exact_poa", ...}

``dur_ns`` comes from ``time.monotonic_ns`` (immune to wall-clock
steps); ``ts`` is the wall-clock *end* time, recorded purely so humans
and the ``profile`` report can order spans across processes.  Records
are written as single ``os.write`` calls on an ``O_APPEND`` descriptor,
so campaign worker processes and serve threads can share one sink file
— lines interleave but do not interleave *within* a line for sane line
lengths.  Readers (``python -m repro.campaigns profile``) tolerate the
occasional torn line the same way the campaign store does.

Determinism contract, inherited from the engine lockdown style: tracing
writes **only** to the sink.  No span result, timestamp or sequence
number ever reaches result records, content-addressed keys, campaign
reports or serve response bodies — ``tests/test_obs.py`` asserts
byte-identity of all of those with tracing on vs off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

from repro.obs import metrics as _metrics

__all__ = [
    "disable_trace",
    "enable_trace",
    "span",
    "trace_enabled",
    "trace_path",
]

_ENV_VAR = "REPRO_TRACE"

_ENABLED = False
_PATH: str | None = None
_FD: int | None = None
_LOCK = threading.Lock()

#: spans actually written to the sink (0 while tracing is off)
_SPANS_EMITTED = _metrics.counter(
    "repro_trace_spans_total", "trace spans emitted to the REPRO_TRACE sink"
)
#: undecodable/unwritable span emissions dropped instead of raised
_SPANS_DROPPED = _metrics.counter(
    "repro_trace_spans_dropped_total",
    "trace spans dropped because the sink write failed",
)


class _NullSpan:
    """The disabled path: a stateless, shared, reentrant no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL = _NullSpan()


class Span:
    """One live span; emits itself on ``__exit__``."""

    __slots__ = ("name", "attrs", "_t0")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (status, counts…)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._t0 = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, *exc_info: Any) -> bool:
        dur_ns = time.monotonic_ns() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _emit(self.name, dur_ns, self.attrs)
        return False


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """A context manager timing one named operation.

    With tracing disabled this is one flag check and a shared no-op —
    call sites never need their own guards.
    """
    if not _ENABLED:
        return _NULL
    return Span(name, attrs)


def trace_enabled() -> bool:
    return _ENABLED


def trace_path() -> str | None:
    return _PATH


def enable_trace(path: str | os.PathLike) -> None:
    """Start emitting spans to ``path`` (append; created if missing)."""
    global _ENABLED, _PATH, _FD
    with _LOCK:
        if _FD is not None:
            os.close(_FD)
            _FD = None
        _PATH = os.fspath(path)
        _ENABLED = True


def disable_trace() -> None:
    """Stop emitting spans and close the sink."""
    global _ENABLED, _FD
    with _LOCK:
        _ENABLED = False
        if _FD is not None:
            os.close(_FD)
            _FD = None


def _emit(name: str, dur_ns: int, attrs: dict[str, Any]) -> None:
    record: dict[str, Any] = {
        "span": name,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "ts": time.time(),
        "dur_ns": dur_ns,
    }
    for key, value in attrs.items():
        record.setdefault(key, value)
    try:
        # default=str keeps exotic attr values (Fraction alphas, paths)
        # from killing the traced operation
        line = json.dumps(
            record, sort_keys=True, separators=(",", ":"), default=str
        ).encode() + b"\n"
    except (TypeError, ValueError):
        _SPANS_DROPPED.inc()
        return
    global _FD
    with _LOCK:
        if not _ENABLED or _PATH is None:
            return
        try:
            if _FD is None:
                _FD = os.open(
                    _PATH, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            os.write(_FD, line)  # one write = one (uninterleaved) line
        except OSError:
            _SPANS_DROPPED.inc()
            return
    _SPANS_EMITTED.inc()


# One env read at import: campaign CLI runs and serve processes (and the
# ProcessPoolExecutor workers they fork/spawn, which re-import) inherit
# REPRO_TRACE from their environment and start emitting immediately.
_env_path = os.environ.get(_ENV_VAR)
if _env_path:
    enable_trace(_env_path)
del _env_path
