"""Thread-safe metric registry: counters, gauges, log-bucketed histograms.

The engine grew up with *module-global spy counters* (``APSP_BUILDS``,
``TOTALS_REBUILDS``, ``BRIDGE_REBUILDS``, the canonical-key memo
hits/misses, ``ENGINE_BUILDS`` …): plain ints bumped with ``global X;
X += 1``.  That idiom was fine while every workload was one thread, but
``repro.serve`` now runs the engine from a ``ThreadPoolExecutor`` — and
a CPython ``int`` increment is a read-modify-write that can interleave
(the GIL serialises bytecodes, not statements), so two serve threads
bumping the same spy can lose updates.  The ``EngineCache`` per-entry
``RLock`` protects one engine's *matrix*, not the module globals the
engine code updates along the way.

**Thread-safety audit (the PR-10 migration).**  Spies reachable from
concurrent serve threads, and therefore racy as module globals:

* ``repro.serve.cache.ENGINE_BUILDS`` — cold builds race by design (two
  distinct instances may materialise concurrently);
* ``repro.graphs.canonical._HITS`` / ``_MISSES`` — every request
  canonicalises before touching the cache, on the calling thread;
* ``repro.graphs.distances.APSP_BUILDS`` / ``TOTALS_REBUILDS`` /
  ``WTOTALS_REBUILDS`` / ``FTOTALS_REBUILDS`` / ``REMOVE_BFS_REPAIRS``
  and ``repro.graphs.bridges.BRIDGE_REBUILDS`` / ``BRIDGE_SWEEPS`` —
  engine builds and speculative evaluations on *different* engines hold
  different per-entry locks yet share these module counters;
* ``repro.core.speculative.EVALUATIONS`` — ``best_response`` requests on
  distinct engines evaluate concurrently;
* ``repro.equilibria.strong`` DFS dispatch spies — ``classify`` requests
  run coalition searches concurrently.

All of them now live here as :class:`Counter` objects whose increments
take a per-metric lock (their legacy module names survive as read-only
aliases via module ``__getattr__``, so every existing spy test reads the
same numbers through the same names).  The single-threaded cost is one
lock round-trip per increment — nanoseconds against the numpy work each
spy brackets, measured by ``benchmarks/bench_obs_overhead.py``.

Metrics carry Prometheus-style names (``repro_*_total`` for counters)
plus an optional frozen label set; :func:`render` writes the standard
text exposition format, which is what the serve ``/metricsz`` endpoint
returns.  The registry is deliberately tiny and stdlib-only: no client
library, no background threads, and **no timestamps anywhere near result
bytes** — telemetry never alters what the engine computes.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_BUCKETS",
    "MetricRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The fixed log-spaced histogram bucket edges (seconds): half-decade
#: steps from one microsecond to ~31.6 s.  Fixed so two processes (or
#: two runs) always bucket identically and traces stay comparable.
LOG_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** (k / 2.0) for k in range(-12, 4)
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"bad metric name {name!r}")
    return name


def _frozen_labels(
    labels: Mapping[str, str] | None,
) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"bad label name {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count with atomic (locked) increments.

    ``reset()`` exists for the spy discipline — ``canonical_cache_clear``
    and tests zero counters between phases — and is the one deliberate
    departure from Prometheus counter semantics.
    """

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = _frozen_labels(labels)
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, tuple[tuple[str, str], ...], Any]]:
        return [(self.name, self.labels, self.value)]


class Gauge:
    """A value that can go up and down (resident bytes, cache entries…)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_lock", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        fn: Callable[[], int | float] | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = _frozen_labels(labels)
        self._lock = threading.Lock()
        self._value = 0
        self._fn = fn  # callback gauges read live state at collection

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> int | float:
        if self._fn is not None:
            return self._fn()
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, tuple[tuple[str, str], ...], Any]]:
        return [(self.name, self.labels, self.value)]


class Histogram:
    """Fixed-bucket histogram (log-spaced by default, see ``LOG_BUCKETS``).

    ``observe`` files a value into the first bucket whose upper edge is
    ``>= value`` and tracks the running sum and count; rendering emits
    the cumulative ``_bucket`` / ``_sum`` / ``_count`` series Prometheus
    expects.  Percentile *estimates* (:meth:`quantile`) return the upper
    edge of the containing bucket — coarse on purpose, they exist for
    ``statsz`` summaries, not SLO math.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "buckets", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = _frozen_labels(labels)
        edges = tuple(buckets) if buckets is not None else LOG_BUCKETS
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)  # final slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        # bisect over a ~16-entry tuple: cheap, and exact bucket edges
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Upper bucket edge containing the ``q``-quantile (0 if empty)."""
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return math.inf
        return math.inf  # pragma: no cover - defensive

    def samples(self) -> list[tuple[str, tuple[tuple[str, str], ...], Any]]:
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        out = []
        cumulative = 0
        for edge, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            out.append((
                f"{self.name}_bucket",
                self.labels + (("le", _format(edge)),),
                cumulative,
            ))
        out.append((
            f"{self.name}_bucket", self.labels + (("le", "+Inf"),),
            total_count,
        ))
        out.append((f"{self.name}_sum", self.labels, total_sum))
        out.append((f"{self.name}_count", self.labels, total_count))
        return out


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == math.inf:
            return "+Inf"
        return repr(value)
    return str(value)


class MetricRegistry:
    """Name+labels -> metric, with get-or-create semantics.

    One process-wide default instance (:data:`REGISTRY`) absorbs the
    engine spies; components with per-instance counters (one
    :class:`~repro.serve.service.ServeApp` per test, say) build their
    own so their numbers start at zero.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, _frozen_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        fn: Callable[[], int | float] | None = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels, fn=fn)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def collect(self) -> list[Any]:
        """Every registered metric, sorted by (name, labels) — stable."""
        with self._lock:
            metrics = list(self._metrics.items())
        return [metric for _, metric in sorted(metrics, key=lambda kv: kv[0])]

    def snapshot(self) -> dict[str, Any]:
        """Flat ``name{labels}`` -> value map (counters and gauges only)."""
        out: dict[str, Any] = {}
        for metric in self.collect():
            if metric.kind == "histogram":
                continue
            out[_series_name(metric.name, metric.labels)] = metric.value
        return out


def _series_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in labels
    )
    return f"{name}{{{inner}}}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def render(*registries: MetricRegistry) -> str:
    """The Prometheus text exposition (version 0.0.4) of the registries.

    Metrics render sorted by name; ``# HELP`` / ``# TYPE`` headers are
    emitted once per metric family even when several label sets share a
    name.  Deterministic byte-for-byte given equal metric values.
    """
    families: dict[str, list[Any]] = {}
    kinds: dict[str, tuple[str, str]] = {}
    for registry in registries or (REGISTRY,):
        for metric in registry.collect():
            families.setdefault(metric.name, []).append(metric)
            kinds.setdefault(metric.name, (metric.kind, metric.help))
    lines: list[str] = []
    for name in sorted(families):
        kind, help_text = kinds[name]
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in families[name]:
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{_series_name(sample_name, labels)} {_format(value)}"
                )
    return "\n".join(lines) + "\n"


#: The process-wide default registry: every module-global spy lives here.
REGISTRY = MetricRegistry()


def counter(
    name: str, help: str = "", labels: Mapping[str, str] | None = None
) -> Counter:
    """Get-or-create a counter in the process-wide registry."""
    return REGISTRY.counter(name, help=help, labels=labels)


def gauge(
    name: str,
    help: str = "",
    labels: Mapping[str, str] | None = None,
    fn: Callable[[], int | float] | None = None,
) -> Gauge:
    """Get-or-create a gauge in the process-wide registry."""
    return REGISTRY.gauge(name, help=help, labels=labels, fn=fn)


def histogram(
    name: str,
    help: str = "",
    labels: Mapping[str, str] | None = None,
    buckets: Iterable[float] | None = None,
) -> Histogram:
    """Get-or-create a histogram in the process-wide registry."""
    return REGISTRY.histogram(name, help=help, labels=labels, buckets=buckets)
