"""repro.obs — unified telemetry: metric registry, trace spans, exposition.

Three pieces, all stdlib-only and import-cycle-free (nothing here
imports the rest of ``repro``):

* :mod:`repro.obs.metrics` — thread-safe ``Counter`` / ``Gauge`` /
  ``Histogram`` in a process-wide :data:`~repro.obs.metrics.REGISTRY`.
  Every legacy module-global spy (``APSP_BUILDS``, ``BRIDGE_REBUILDS``,
  ``ENGINE_BUILDS``, the canonical memo…) now lives here, with its old
  module attribute kept as a read-only alias.
* :mod:`repro.obs.trace` — ``span(name, **attrs)`` context managers
  over ``time.monotonic_ns`` emitting JSONL to the sink named by
  ``REPRO_TRACE`` (default off; near-zero overhead when disabled).
* Exposition — :func:`repro.obs.metrics.render` produces the Prometheus
  text format served by ``/metricsz``; ``python -m repro.campaigns
  profile`` aggregates trace sinks into per-layer time breakdowns.

Hard rule carried everywhere telemetry touches: **never alter result
bytes**.  Counters and spans observe; they do not participate in
content-addressed keys, campaign records, reports or response bodies.
"""

from repro.obs.metrics import (
    LOG_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    render,
)
from repro.obs.trace import (
    disable_trace,
    enable_trace,
    span,
    trace_enabled,
    trace_path,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_BUCKETS",
    "MetricRegistry",
    "REGISTRY",
    "counter",
    "disable_trace",
    "enable_trace",
    "gauge",
    "histogram",
    "render",
    "span",
    "trace_enabled",
    "trace_path",
]
