"""Named graph families: optima, worst cases, and the paper's figures."""

from repro.constructions.basic import (
    almost_complete_dary_tree,
    clique,
    complete_binary_tree,
    complete_dary_tree,
    cycle,
    path,
    star,
)
from repro.constructions.spiders import spider, ps_lower_bound_spider
from repro.constructions.stretched import (
    StretchedTree,
    StretchedTreeStar,
    bge_lower_bound_star,
    bne_lower_bound_star,
    max_depth_for_size,
    stretched_binary_tree,
    stretched_tree_star,
)
from repro.constructions.figures import (
    figure2_nash_not_pairwise_stable,
    figure5_bae_bge_not_bne,
    figure6_bne_not_2bse,
    figure7_kbse_not_bne,
    figure8_bae_not_unilateral_ae,
)
from repro.constructions.venn import VENN_WITNESSES, venn_witness

__all__ = [
    "StretchedTree",
    "StretchedTreeStar",
    "VENN_WITNESSES",
    "almost_complete_dary_tree",
    "bge_lower_bound_star",
    "bne_lower_bound_star",
    "clique",
    "complete_binary_tree",
    "complete_dary_tree",
    "cycle",
    "max_depth_for_size",
    "figure2_nash_not_pairwise_stable",
    "figure5_bae_bge_not_bne",
    "figure6_bne_not_2bse",
    "figure7_kbse_not_bne",
    "figure8_bae_not_unilateral_ae",
    "path",
    "ps_lower_bound_spider",
    "spider",
    "star",
    "stretched_binary_tree",
    "stretched_tree_star",
    "venn_witness",
]
