"""Stretched binary trees and stretched tree stars (Figure 3, Section 3.2.2).

A *stretched binary tree* ``T`` with parameters ``d`` (depth of the
underlying complete binary tree ``B``) and stretch ``k`` replaces every edge
of ``B`` by a path of ``k`` edges: distances among ``B``-nodes scale by
``k`` and ``|T| = (2^(d+1) - 2) k + 1``.  Stretching preserves the distance
cost while letting the node count shrink relative to ``alpha`` — the engine
of the Omega(log alpha) lower bounds for BGE and BNE (Theorems 3.10, 3.12).

A *stretched tree star* glues ``ceil((eta - 1) / |T|)`` copies of a maximal
``|T| <= t`` stretched tree under a fresh root, which scales the family to
any target size ``eta`` (Lemma D.9: ``eta <= n <= 3 eta / 2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

import networkx as nx

from repro._alpha import AlphaLike, as_alpha

__all__ = [
    "StretchedTree",
    "StretchedTreeStar",
    "bge_lower_bound_star",
    "bne_lower_bound_star",
    "max_depth_for_size",
    "stretched_binary_tree",
    "stretched_tree_star",
]


@dataclass(frozen=True)
class StretchedTree:
    """A stretched binary tree plus the structure the proofs refer to."""

    graph: nx.Graph
    d: int
    k: int
    root: int
    #: ids of the "real" binary-tree nodes, indexed by heap position
    #: (1 = root, children of ``i`` at ``2i`` and ``2i + 1``).
    binary_ids: dict[int, int] = field(repr=False)

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def depth(self) -> int:
        """``depth(T) = k * depth(B)``."""
        return self.k * self.d

    def binary_layer(self, heap_index: int) -> int:
        return heap_index.bit_length() - 1


def stretched_binary_tree(d: int, k: int) -> StretchedTree:
    """Build the stretched binary tree with parameters ``d`` and ``k >= 1``.

    ``d = 0`` degenerates to a single root.  Node 0 is the root; ids are
    assigned walking each stretched edge from the parent outwards.
    """
    if d < 0:
        raise ValueError("d must be non-negative")
    if k < 1:
        raise ValueError("the stretch factor k must be at least 1")
    graph = nx.Graph()
    graph.add_node(0)
    binary_ids = {1: 0}
    next_id = 1
    for heap in range(2, 2 ** (d + 1)):
        parent_real = binary_ids[heap // 2]
        previous = parent_real
        for _ in range(k - 1):  # the intermediate path nodes u^1..u^(k-1)
            graph.add_edge(previous, next_id)
            previous = next_id
            next_id += 1
        graph.add_edge(previous, next_id)  # the real binary node
        binary_ids[heap] = next_id
        next_id += 1
    return StretchedTree(graph=graph, d=d, k=k, root=0, binary_ids=binary_ids)


def max_depth_for_size(t: AlphaLike, k: int) -> int:
    """Largest ``d`` with ``|T(d, k)| = (2^(d+1) - 2) k + 1 <= t``.

    The paper's definition requires ``t >= 2k + 1`` so that ``d >= 1``.
    """
    target = as_alpha(t)
    if target < 2 * k + 1:
        raise ValueError("the target size t must be at least 2k + 1")
    d = 1
    while (2 ** (d + 2) - 2) * k + 1 <= target:
        d += 1
    return d


@dataclass(frozen=True)
class StretchedTreeStar:
    """Root plus copies of a maximal stretched tree (scaling construction)."""

    graph: nx.Graph
    tree: StretchedTree
    copies: int
    copy_roots: tuple[int, ...]
    k: int
    t: Fraction
    eta: int

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def depth(self) -> int:
        """``depth(G) = depth(T) + 1``."""
        return self.tree.depth + 1


def stretched_tree_star(k: int, t: AlphaLike, eta: int) -> StretchedTreeStar:
    """Stretched tree star with stretch ``k``, subtree target ``t`` and size
    target ``eta`` (requires ``t >= 2k + 1`` and ``eta >= 2t + 1``)."""
    target = as_alpha(t)
    if eta < 2 * target + 1:
        raise ValueError("the target size eta must be at least 2t + 1")
    d = max_depth_for_size(target, k)
    tree = stretched_binary_tree(d, k)
    size = tree.n
    copies = math.ceil((eta - 1) / size)
    graph = nx.Graph()
    graph.add_node(0)
    copy_roots = []
    for copy in range(copies):
        offset = 1 + copy * size
        for u, v in tree.graph.edges:
            graph.add_edge(offset + u, offset + v)
        copy_root = offset + tree.root
        graph.add_node(copy_root)  # guards the degenerate one-node tree
        graph.add_edge(0, copy_root)
        copy_roots.append(copy_root)
    return StretchedTreeStar(
        graph=graph,
        tree=tree,
        copies=copies,
        copy_roots=tuple(copy_roots),
        k=k,
        t=target,
        eta=eta,
    )


def bge_lower_bound_star(alpha: AlphaLike, eta: int) -> StretchedTreeStar:
    """Theorem 3.10's witness: ``k = 1``, ``t = alpha / 15``.

    In BGE with ``rho >= log(alpha)/4 - 17/8``; needs ``alpha >= 45`` so
    that ``t >= 2k + 1``, and ``eta >= alpha`` as in the theorem.
    """
    price = as_alpha(alpha)
    if price < 45:
        raise ValueError("Theorem 3.10's construction needs alpha >= 45")
    if eta < price:
        raise ValueError("Theorem 3.10 requires eta >= alpha")
    return stretched_tree_star(k=1, t=price / 15, eta=eta)


def bne_lower_bound_star(alpha: AlphaLike, eta: int, epsilon: float) -> StretchedTreeStar:
    """Theorem 3.12's witnesses.

    * ``alpha >= 9 eta`` (case i): ``k = floor(alpha / (9 eta))``,
      ``t = eta^(1 - eps/2)``;
    * ``alpha <= eta`` (case ii): ``k = 1``, ``t = eta^eps``.
    """
    price = as_alpha(alpha)
    if price >= 9 * eta:
        k = math.floor(price / (9 * eta))
        t = Fraction(math.floor(eta ** (1 - epsilon / 2)))
    elif price <= eta:
        k = 1
        t = Fraction(math.floor(eta**epsilon))
    else:
        raise ValueError(
            "Theorem 3.12 covers alpha >= 9 eta or alpha <= eta only"
        )
    t = max(t, 2 * k + 1)
    return stretched_tree_star(k=k, t=t, eta=eta)
