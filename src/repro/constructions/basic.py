"""Elementary families: stars, paths, cycles, cliques, and d-ary trees.

The d-ary trees implement Lemma 3.18's *almost complete d-ary tree*: all
levels full except the last, which fills left to right.  Every agent there
buys at most ``d + 1`` edges and sits within ``log_d n`` of everyone, which
is the even-cost-profile ingredient of the BSE upper bounds
(Theorems 3.19-3.21).
"""

from __future__ import annotations

import networkx as nx

__all__ = [
    "almost_complete_dary_tree",
    "clique",
    "complete_binary_tree",
    "complete_dary_tree",
    "cycle",
    "path",
    "star",
]


def star(n: int) -> nx.Graph:
    """A star on ``n`` nodes; node 0 is the center.  Social optimum for
    ``alpha >= 1`` and an equilibrium for every concept in the paper."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return nx.empty_graph(1)
    return nx.star_graph(n - 1)


def path(n: int) -> nx.Graph:
    """A path on ``n`` nodes ``0 - 1 - ... - n-1``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return nx.path_graph(n)


def cycle(n: int) -> nx.Graph:
    """The cycle ``C_n`` (Lemma 2.4: in BSE for a Theta(n^2) alpha window)."""
    if n < 3:
        raise ValueError("cycles need at least 3 nodes")
    return nx.cycle_graph(n)


def clique(n: int) -> nx.Graph:
    """The complete graph; unique optimum and unique BSE for ``alpha < 1``."""
    if n <= 0:
        raise ValueError("n must be positive")
    return nx.complete_graph(n)


def almost_complete_dary_tree(n: int, d: int) -> nx.Graph:
    """Almost complete ``d``-ary tree on ``n`` nodes (BFS numbering).

    Node ``i >= 1`` attaches to parent ``(i - 1) // d``; all levels full
    except possibly the last, filled left to right.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if d < 2:
        raise ValueError("d must be at least 2 (Lemma 3.18)")
    graph = nx.empty_graph(n)
    for node in range(1, n):
        graph.add_edge(node, (node - 1) // d)
    return graph


def complete_dary_tree(depth: int, d: int) -> nx.Graph:
    """Complete ``d``-ary tree with all leaves at distance ``depth``."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if d < 2:
        raise ValueError("d must be at least 2")
    n = (d ** (depth + 1) - 1) // (d - 1)
    return almost_complete_dary_tree(n, d)


def complete_binary_tree(depth: int) -> nx.Graph:
    """Complete binary tree of the given depth (``2^(depth+1) - 1`` nodes)."""
    return complete_dary_tree(depth, 2)
