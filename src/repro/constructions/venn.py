"""Frozen witnesses for the eight RE / BAE / BSwE regions (Figure 1b).

The paper exhibits graphs ``G1 .. G8`` proving that Remove Equilibria,
Bilateral Add Equilibria and Bilateral Swap Equilibria are pairwise
incomparable.  The drawings are not reproducible from the text, so the
witnesses below were found by the exhaustive search
:func:`repro.analysis.search.search_venn_witnesses` over the connected
graph atlas — they establish exactly the same eight non-emptiness claims.

Region keys are ``(in_RE, in_BAE, in_BSwE)`` triples; every entry is
re-verified by the exact checkers in the test suite and the Figure 1b
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import networkx as nx

__all__ = ["VENN_WITNESSES", "VennWitness", "venn_witness"]


@dataclass(frozen=True)
class VennWitness:
    """One region of the Figure 1b Venn diagram with a concrete witness."""

    name: str
    region: tuple[bool, bool, bool]  # (RE, BAE, BSwE)
    edges: tuple[tuple[int, int], ...]
    alpha: Fraction

    @property
    def graph(self) -> nx.Graph:
        return nx.Graph(list(self.edges))


#: All eight regions.  Names follow the paper's G1..G8 ordering by region,
#: not by the (unknown) drawings.
VENN_WITNESSES: tuple[VennWitness, ...] = (
    VennWitness(  # path P3: optimal star at alpha = 1
        name="G1",
        region=(True, True, True),
        edges=((0, 1), (0, 2)),
        alpha=Fraction(1),
    ),
    VennWitness(  # long odd cycle with a chord structure: only a swap helps
        name="G2",
        region=(True, True, False),
        edges=(
            (0, 1), (0, 5), (1, 2), (1, 6), (2, 3),
            (3, 4), (4, 5), (5, 6),
        ),
        alpha=Fraction(2),
    ),
    VennWitness(  # cheap edges: additions improve, removals/swaps do not
        name="G3",
        region=(True, False, True),
        edges=((0, 1), (0, 2)),
        alpha=Fraction(1, 2),
    ),
    VennWitness(  # path P4 at alpha = 1/2: adding and swapping both help
        name="G4",
        region=(True, False, False),
        edges=((0, 1), (0, 3), (1, 2)),
        alpha=Fraction(1, 2),
    ),
    VennWitness(  # triangle at alpha = 3/2: dropping an edge saves alpha
        name="G5",
        region=(False, True, True),
        edges=((0, 1), (0, 2), (1, 2)),
        alpha=Fraction(3, 2),
    ),
    VennWitness(  # 5-cycle with pendant: removal and swap, but no mutual add
        name="G6",
        region=(False, True, False),
        edges=((0, 4), (1, 2), (1, 3), (2, 3), (3, 4)),
        alpha=Fraction(2),
    ),
    VennWitness(  # triangle with two pendants: removal + addition improve
        name="G7",
        region=(False, False, True),
        edges=((0, 1), (0, 2), (0, 4), (1, 2), (2, 3)),
        alpha=Fraction(3, 2),
    ),
    VennWitness(  # everything improves somewhere
        name="G8",
        region=(False, False, False),
        edges=((0, 4), (1, 2), (1, 3), (2, 3), (3, 4)),
        alpha=Fraction(3, 2),
    ),
)


def venn_witness(in_re: bool, in_bae: bool, in_bswe: bool) -> VennWitness:
    """Witness for a given (RE, BAE, BSwE) membership combination."""
    region = (in_re, in_bae, in_bswe)
    for witness in VENN_WITNESSES:
        if witness.region == region:
            return witness
    raise KeyError(f"no witness recorded for region {region}")
