"""The paper's figure graphs, reconstructed and frozen.

Figures 5-8 are drawings; their exact graphs were reconstructed from the
quantities stated in the accompanying proofs (distance costs, gains, the
improving moves) and every such quantity is re-verified by the test suite.
Figure 2 supports a pure existence claim (Proposition 2.3); the frozen
witness below was found by the exhaustive search in
:func:`repro.analysis.search.search_nash_not_pairwise_stable` and is smaller
(n = 5) than the paper's drawing.

Node labels: each constructor returns a :class:`FigureGraph` whose
``labels`` map the paper's node names (``"a"``, ``"c1"``, ``"e17"``, ...)
to integer node ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import networkx as nx

from repro.equilibria.nash import EdgeAssignment

__all__ = [
    "FigureGraph",
    "figure2_nash_not_pairwise_stable",
    "figure5_bae_bge_not_bne",
    "figure6_bne_not_2bse",
    "figure7_kbse_not_bne",
    "figure8_bae_not_unilateral_ae",
]


@dataclass(frozen=True)
class FigureGraph:
    """A figure's graph, its edge price, and the paper's node names."""

    graph: nx.Graph
    alpha: Fraction
    labels: dict[str, int] = field(repr=False)
    assignment: EdgeAssignment | None = None

    def node(self, name: str) -> int:
        return self.labels[name]


def figure2_nash_not_pairwise_stable() -> FigureGraph:
    """Proposition 2.3 witness: unilateral NE that is not pairwise stable.

    Triangle ``a-b-c`` with pendant ``p`` on ``a`` and pendant ``q`` on
    ``c``, ``alpha = 2``.  With the frozen ownership, every agent plays an
    exact best response (exhaustively verified over all strategies per
    agent), yet in the bilateral game agent ``a`` strictly improves by
    dropping edge ``ab``: the removal costs her one unit of distance and
    saves ``alpha = 2``.  Hence NE does not imply PS — the Corbo–Parkes
    conjecture fails.
    """
    labels = {"a": 0, "b": 1, "c": 2, "q": 3, "p": 4}
    graph = nx.Graph([(0, 1), (0, 2), (0, 4), (1, 2), (2, 3)])
    assignment = EdgeAssignment.from_pairs(
        [(1, 0), (0, 2), (0, 4), (1, 2), (2, 3)]
    )
    return FigureGraph(
        graph=graph, alpha=Fraction(2), labels=labels, assignment=assignment
    )


def figure5_bae_bge_not_bne() -> FigureGraph:
    """Proposition A.4 witness (Figure 5): in BAE and BGE, not in BNE.

    Center ``a`` carries 100 leaves ``e1..e100`` and two chains
    ``a - b_i - c_i - d_i``; ``alpha = 104.5``.  Swapping ``a b1`` for
    ``a c1`` helps ``c1`` by exactly 104 < alpha, so no single swap or add
    is mutually improving; but the *double* swap (remove ``a b1, a b2``,
    add ``a c1, a c2``) is a neighborhood move that gains 105 > alpha for
    each ``c_i`` and 2 for ``a``.
    """
    labels: dict[str, int] = {
        "a": 0, "b1": 1, "b2": 2, "c1": 3, "c2": 4, "d1": 5, "d2": 6,
    }
    edges = [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 6)]
    for index in range(100):
        node = 7 + index
        labels[f"e{index + 1}"] = node
        edges.append((0, node))
    return FigureGraph(
        graph=nx.Graph(edges), alpha=Fraction(209, 2), labels=labels
    )


def figure6_bne_not_2bse() -> FigureGraph:
    """Proposition A.5 witness (Figure 6): in BNE, not in 2-BSE.

    A six-cycle ``a1 c1 a2 a3 c2 a4`` with a pendant ``b_i`` on each
    ``a_i``; ``alpha = 7``, ``n = 10``.  Matches the proof's distance costs
    ``dist(a1) = 19``, ``dist(b1) = 27``, ``dist(c1) = 19``.  The coalition
    ``{a1, a3}`` removes ``a1 c1`` and ``a3 c2`` and adds ``a1 a3``,
    improving both (19 -> 17 at unchanged buying cost).
    """
    labels = {
        "a1": 0, "a2": 1, "a3": 2, "a4": 3,
        "b1": 4, "b2": 5, "b3": 6, "b4": 7,
        "c1": 8, "c2": 9,
    }
    edges = [
        (0, 8), (8, 1), (1, 2), (2, 9), (9, 3), (3, 0),  # the six-cycle
        (0, 4), (1, 5), (2, 6), (3, 7),  # pendants b_i on a_i
    ]
    return FigureGraph(graph=nx.Graph(edges), alpha=Fraction(7), labels=labels)


def figure7_kbse_not_bne(k: int = 2, i: int | None = None) -> FigureGraph:
    """Proposition A.7 witness (Figure 7): in k-BSE, not in BNE.

    A star of ``i`` three-node legs ``a - b_j - c_j - d_j`` with
    ``alpha = 4 i - 4`` (the paper uses ``i = 20 k``).  The center's
    neighborhood move — drop all ``a b_j``, connect to all ``c_j`` — gains
    ``1 + 4 (i - 1) > alpha`` for every ``c_j`` while no coalition of size
    ``<= k`` can improve.
    """
    if i is None:
        i = 20 * k
    if i < 2:
        raise ValueError("the construction needs at least two legs")
    labels: dict[str, int] = {"a": 0}
    edges = []
    for leg in range(i):
        b, c, d = 1 + 3 * leg, 2 + 3 * leg, 3 + 3 * leg
        labels[f"b{leg + 1}"] = b
        labels[f"c{leg + 1}"] = c
        labels[f"d{leg + 1}"] = d
        edges.extend([(0, b), (b, c), (c, d)])
    return FigureGraph(
        graph=nx.Graph(edges), alpha=Fraction(4 * i - 4), labels=labels
    )


def figure8_bae_not_unilateral_ae() -> FigureGraph:
    """Proposition 2.1 witness (Figure 8): in BAE, not in unilateral AE.

    Spider tree: hub ``d`` holds 18 leaves ``e1..e18`` and the node ``c``;
    ``c`` holds ``b1..b4``; each ``b_i`` holds ``a_i``; ``alpha = 4.5``.
    No pair gains mutually more than ``alpha`` (the checker confirms BAE),
    but ``a1`` alone would buy ``a1 d``: it shortcuts her to all 18 leaves,
    a gain far above alpha — so no edge assignment makes this a unilateral
    Add Equilibrium.
    """
    labels: dict[str, int] = {"d": 0, "c": 1}
    edges = [(0, 1)]
    for index in range(4):
        b, a = 2 + index, 6 + index
        labels[f"b{index + 1}"] = b
        labels[f"a{index + 1}"] = a
        edges.extend([(1, b), (b, a)])
    for index in range(18):
        node = 10 + index
        labels[f"e{index + 1}"] = node
        edges.append((0, node))
    return FigureGraph(
        graph=nx.Graph(edges), alpha=Fraction(9, 2), labels=labels
    )
