"""Spiders (stars of paths): the pairwise-stability lower-bound family.

A spider with ``legs`` paths of ``leg_length = L`` nodes each has large
distance cost (``Theta(n * L)``) yet is pairwise stable once no shortcut
benefits both endpoints by more than ``alpha``.  The binding shortcut joins
two leg tips: each tip gains exactly ``L^2`` (the ``j``-th node of the other
leg gets closer by ``2j - 1``), so ``L = floor(sqrt(alpha))`` is stable and
``rho = Theta(min(sqrt(alpha), n / sqrt(alpha)))`` — the PS row of Table 1
(upper bound [14], matching lower bound [19]).
"""

from __future__ import annotations

import math

import networkx as nx

__all__ = ["ps_lower_bound_spider", "spider", "tip_to_tip_gain"]


def spider(legs: int, leg_length: int) -> nx.Graph:
    """Star of ``legs`` paths with ``leg_length`` nodes per leg.

    Node 0 is the center; leg ``i`` occupies nodes
    ``1 + i * leg_length .. (i + 1) * leg_length`` walking outwards.
    """
    if legs < 1 or leg_length < 1:
        raise ValueError("legs and leg_length must be positive")
    graph = nx.empty_graph(1 + legs * leg_length)
    for leg in range(legs):
        previous = 0
        for step in range(leg_length):
            node = 1 + leg * leg_length + step
            graph.add_edge(previous, node)
            previous = node
    return graph


def tip_to_tip_gain(leg_length: int) -> int:
    """Mutual distance gain of connecting two leg tips: ``sum (2j-1) = L^2``."""
    return leg_length**2


def ps_lower_bound_spider(n: int, alpha, verify: bool = True) -> nx.Graph:
    """A spider on at most ``n`` nodes that is pairwise stable at ``alpha``.

    Leg length starts at ``floor(sqrt(alpha))`` (tip-to-tip gain exactly
    ``alpha`` or below) and, with ``verify=True``, is decreased until the
    exact PS checker confirms stability — so the returned family is PS *by
    construction and by certification*.
    """
    if n < 3:
        raise ValueError("n must be at least 3")
    leg_length = max(1, math.isqrt(max(1, math.floor(alpha))))
    leg_length = min(leg_length, max(1, (n - 1) // 2))
    while leg_length >= 1:
        legs = max(2, (n - 1) // leg_length)
        graph = spider(legs, leg_length)
        if not verify:
            return graph
        from repro.core.state import GameState
        from repro.equilibria.pairwise import is_pairwise_stable

        if is_pairwise_stable(GameState(graph, alpha)):
            return graph
        leg_length -= 1
    raise AssertionError("a star (leg_length=1) is always pairwise stable")
