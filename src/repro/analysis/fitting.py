"""Shape fitting: does a measured PoA curve grow like ``log alpha``,
``sqrt(alpha)``, or stay flat?

The paper's claims are asymptotic; the benchmarks compare *shapes*.  A
logarithmic claim is confirmed by a good linear fit of ``rho`` against
``log2(alpha)`` with a clearly positive slope; a square-root claim by a
log-log slope near 1/2; constancy by a tiny relative spread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFit", "fit_log_slope", "fit_power_law", "relative_spread"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept`` with fit quality."""

    slope: float
    intercept: float
    r_squared: float


def _linear_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    if len(x) < 2:
        raise ValueError("need at least two points to fit a line")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r_squared = 1.0 if total == 0 else 1 - residual / total
    return LinearFit(float(slope), float(intercept), r_squared)


def fit_log_slope(alphas: Sequence[float], rhos: Sequence[float]) -> LinearFit:
    """Fit ``rho ~ slope * log2(alpha) + b``.

    A Theta(log alpha) family shows a stable positive slope; a constant
    family shows slope ~ 0.
    """
    x = np.array([math.log2(float(a)) for a in alphas], dtype=float)
    y = np.array([float(r) for r in rhos], dtype=float)
    return _linear_fit(x, y)


def fit_power_law(alphas: Sequence[float], rhos: Sequence[float]) -> LinearFit:
    """Fit ``log2 rho ~ exponent * log2 alpha + c`` (slope = the exponent).

    A Theta(sqrt alpha) family shows exponent ~ 0.5.
    """
    x = np.array([math.log2(float(a)) for a in alphas], dtype=float)
    y = np.array([math.log2(float(r)) for r in rhos], dtype=float)
    return _linear_fit(x, y)


def relative_spread(values: Sequence[float]) -> float:
    """``(max - min) / min`` — near zero for a constant family."""
    floats = [float(v) for v in values]
    low, high = min(floats), max(floats)
    if low <= 0:
        raise ValueError("values must be positive")
    return (high - low) / low
