"""Witness searches over small graphs.

Two existence claims in Section 2 are supported by drawings whose exact
graphs matter less than their existence:

* **Proposition 2.3 / Figure 2** — a graph with an edge assignment that is a
  unilateral Pure Nash Equilibrium but is *not* pairwise stable in the BNCG
  (refuting the Corbo–Parkes conjecture);
* **Figure 1b** — witnesses for all eight regions of the RE / BAE / BSwE
  Venn diagram.

Both are re-derived here by exhaustive search over all connected graphs
(:func:`repro.graphs.generation.all_connected_graphs` — atlas-backed to
``n = 7``, canonical-key enumerated above); the frozen results live in
:mod:`repro.constructions.figures` and
:mod:`repro.constructions.venn` with tests re-verifying them.  All
stability verdicts consumed here come from the engine-backed checkers
(speculative-kernel evaluation); :func:`classify_full_ladder` extends the
polynomial triple to the whole cooperation ladder with seeded,
reproducible probe fallbacks for the exponential concepts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

import networkx as nx

from repro._alpha import AlphaLike
from repro._rng import RngLike
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.add import (
    is_bilateral_add_equilibrium,
    is_unilateral_add_equilibrium,
)
from repro.equilibria.certificates import StabilityReport
from repro.equilibria.diagnose import diagnose
from repro.equilibria.nash import EdgeAssignment, is_nash_equilibrium
from repro.equilibria.remove import is_remove_equilibrium, removal_loss
from repro.equilibria.swap import is_bilateral_swap_equilibrium
from repro.graphs.generation import all_connected_graphs

__all__ = [
    "ConjectureSweepResult",
    "NashWitness",
    "classify_full_ladder",
    "classify_re_bae_bswe",
    "exhaustive_conjecture_sweep",
    "search_nash_not_pairwise_stable",
    "search_venn_witnesses",
]


@dataclass(frozen=True)
class NashWitness:
    """A (graph, assignment, alpha) triple refuting the C&P conjecture."""

    graph: nx.Graph
    assignment: EdgeAssignment
    alpha: Fraction
    weak_edge: tuple[int, int]  # edge whose non-owner gains by dropping it


def _bilateral_removal_break(state: GameState) -> tuple[int, int] | None:
    """An edge whose removal benefits one endpoint bilaterally, or None."""
    for u, v in state.graph.edges:
        for actor, other in ((u, v), (v, u)):
            if removal_loss(state, actor, other) < state.alpha:
                return actor, other
    return None


def search_nash_not_pairwise_stable(
    sizes: Iterable[int] = (5, 6),
    alphas: Sequence[AlphaLike] = (2, Fraction(5, 2), 3, Fraction(7, 2), 4, 5),
    max_results: int = 1,
) -> list[NashWitness]:
    """Exhaustive search for Proposition 2.3 witnesses on small graphs.

    Pre-filters (all necessary for a witness): the graph must violate
    bilateral RE at ``alpha`` (else it stays PS), must satisfy unilateral AE
    (else no assignment is NE), and every edge must have at least one
    endpoint whose removal loss reaches ``alpha`` (a possible owner).  The
    surviving assignment space is enumerated against the exact NE checker.
    """
    results: list[NashWitness] = []
    for n in sizes:
        for graph in all_connected_graphs(n):
            for alpha in alphas:
                state = GameState(graph, alpha)
                weak = _bilateral_removal_break(state)
                if weak is None:
                    continue
                if not is_unilateral_add_equilibrium(state):
                    continue
                allowed_owners: list[list[int]] = []
                feasible = True
                for u, v in state.graph.edges:
                    owners = [
                        endpoint
                        for endpoint, other in ((u, v), (v, u))
                        if not removal_loss(state, endpoint, other)
                        < state.alpha
                    ]
                    if not owners:
                        feasible = False
                        break
                    allowed_owners.append(owners)
                if not feasible:
                    continue
                edges = list(state.graph.edges)
                for owner_choice in itertools.product(*allowed_owners):
                    assignment = EdgeAssignment.from_pairs(
                        (owner, u if owner == v else v)
                        for owner, (u, v) in zip(owner_choice, edges)
                    )
                    if is_nash_equilibrium(state, assignment):
                        results.append(
                            NashWitness(
                                graph=state.graph.copy(),
                                assignment=assignment,
                                alpha=state.alpha,
                                weak_edge=weak,
                            )
                        )
                        if len(results) >= max_results:
                            return results
                        break  # one assignment per (graph, alpha) suffices
    return results


@dataclass(frozen=True)
class ConjectureSweepResult:
    """One exhaustive Corbo–Parkes cell: every NE on every connected graph.

    ``certificates`` carries JSON-able refutation witnesses: the graph's
    canonical-key digest and edge list, one concrete NE edge assignment,
    and the bilateral move that breaks pairwise stability — enough to
    replay the refutation without re-running the sweep.
    """

    n: int
    alpha: Fraction
    candidates: int  # connected graphs scanned
    feasible_graphs: int  # graphs surviving the NE pre-filters
    ne_graphs: int  # graphs supporting at least one NE assignment
    ne_assignments: int  # total NE assignments across all graphs
    counterexample_graphs: int  # NE-supporting graphs that are not PS
    certificates: tuple[dict, ...]


def exhaustive_conjecture_sweep(
    n: int, alpha: AlphaLike, max_certificates: int = 5
) -> ConjectureSweepResult:
    """Exhaustively test the Corbo–Parkes conjecture at ``(n, alpha)``.

    For **every** connected graph on ``n`` nodes (canonical enumeration,
    so one representative per isomorphism class) and **every** edge
    ownership assignment that is a unilateral Pure Nash Equilibrium,
    check whether the underlying graph is pairwise stable.  Any NE whose
    graph admits a bilateral improvement refutes the conjecture; the
    first ``max_certificates`` refutations are returned as replayable
    certificates.

    Pre-filters (both *necessary* for an NE assignment to exist) keep the
    assignment product small: the graph must be a unilateral add
    equilibrium, and every edge needs at least one endpoint whose removal
    loss reaches ``alpha`` (a feasible owner).  Everything is exact and
    deterministic — no sampling, no seeds.
    """
    from hashlib import blake2b

    from repro._alpha import as_alpha
    from repro.equilibria.pairwise import find_pairwise_violation
    from repro.graphs.canonical import canonical_key

    price = as_alpha(alpha)
    candidates = 0
    feasible_graphs = 0
    ne_graphs = 0
    ne_assignments = 0
    counterexample_graphs = 0
    certificates: list[dict] = []
    for graph in all_connected_graphs(n):
        candidates += 1
        state = GameState(graph, price)
        if not is_unilateral_add_equilibrium(state):
            continue
        allowed_owners: list[list[int]] = []
        feasible = True
        for u, v in state.graph.edges:
            owners = [
                endpoint
                for endpoint, other in ((u, v), (v, u))
                if not removal_loss(state, endpoint, other) < price
            ]
            if not owners:
                feasible = False
                break
            allowed_owners.append(owners)
        if not feasible:
            continue
        feasible_graphs += 1
        edges = list(state.graph.edges)
        found_here = 0
        first_ne: EdgeAssignment | None = None
        for owner_choice in itertools.product(*allowed_owners):
            assignment = EdgeAssignment.from_pairs(
                (owner, u if owner == v else v)
                for owner, (u, v) in zip(owner_choice, edges)
            )
            if is_nash_equilibrium(state, assignment):
                found_here += 1
                if first_ne is None:
                    first_ne = assignment
        if not found_here:
            continue
        ne_graphs += 1
        ne_assignments += found_here
        violation = find_pairwise_violation(state)
        if violation is None:
            continue
        counterexample_graphs += 1
        if len(certificates) < max_certificates:
            assert first_ne is not None
            certificates.append(
                {
                    "witness_key": blake2b(
                        canonical_key(state.graph), digest_size=16
                    ).hexdigest(),
                    "edges": sorted([int(u), int(v)] for u, v in edges),
                    "owners": sorted(
                        [int(owner), int(v if owner == u else u)]
                        for (u, v), owner in first_ne.owner.items()
                    ),
                    "ne_assignments": found_here,
                    "break_type": type(violation).__name__,
                    "break": str(violation),
                }
            )
    return ConjectureSweepResult(
        n=n,
        alpha=price,
        candidates=candidates,
        feasible_graphs=feasible_graphs,
        ne_graphs=ne_graphs,
        ne_assignments=ne_assignments,
        counterexample_graphs=counterexample_graphs,
        certificates=tuple(certificates),
    )


def classify_re_bae_bswe(state: GameState) -> tuple[bool, bool, bool]:
    """Membership triple ``(RE, BAE, BSwE)`` — the Figure 1b coordinates."""
    return (
        is_remove_equilibrium(state),
        is_bilateral_add_equilibrium(state),
        is_bilateral_swap_equilibrium(state),
    )


def classify_full_ladder(
    state: GameState,
    max_coalition_size: int = 3,
    seed: RngLike = 0,
    probe_samples: int = 2000,
) -> dict[Concept, StabilityReport]:
    """Stability report across the whole cooperation ladder.

    Polynomial concepts are exact; BNE and k-BSE degrade to *seeded*
    randomized probing when out of budget, so a witness-hunt over many
    instances is reproducible from ``seed`` alone (pass an integer seed
    or a ready ``random.Random``).  Reports with ``exhaustive=False``
    mark probe-based verdicts.
    """
    return diagnose(
        state,
        max_coalition_size=max_coalition_size,
        seed=seed,
        probe_samples=probe_samples,
    )


def search_venn_witnesses(
    sizes: Iterable[int] = (3, 4, 5, 6),
    alphas: Sequence[AlphaLike] = (
        Fraction(1, 2),
        1,
        Fraction(3, 2),
        2,
        Fraction(5, 2),
        3,
        4,
        5,
        7,
    ),
) -> dict[tuple[bool, bool, bool], tuple[nx.Graph, Fraction]]:
    """One ``(graph, alpha)`` witness per RE/BAE/BSwE region (Figure 1b).

    Searches small connected graphs until all eight regions are populated.
    """
    found: dict[tuple[bool, bool, bool], tuple[nx.Graph, Fraction]] = {}
    for n in sizes:
        for graph in all_connected_graphs(n):
            for alpha in alphas:
                state = GameState(graph, alpha)
                region = classify_re_bae_bswe(state)
                if region not in found:
                    found[region] = (state.graph.copy(), state.alpha)
                    if len(found) == 8:
                        return found
    return found
