"""Structural statistics of equilibrium families.

The paper's tree lemmas are really statements about *shape*: BSwE trees
have depth O((1 + 2α/n) log n) (Lemma 3.4), their layer-2 subtrees hold at
most α/(l-1) nodes (Lemma 3.5), and 3-BSE trees have at most one deep
child per node (Lemma 3.14).  This module measures those shapes across
whole equilibrium families so the benchmarks can compare structure, not
just cost ratios.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro._alpha import AlphaLike, as_alpha
from repro.core.concepts import Concept
from repro.core.state import GameState
from repro.equilibria.registry import check
from repro.graphs.generation import all_trees
from repro.graphs.trees import RootedTree

__all__ = ["FamilyShape", "equilibrium_family_shape", "tree_shape"]


@dataclass(frozen=True)
class FamilyShape:
    """Aggregate shape of all equilibrium trees at one (n, alpha)."""

    n: int
    alpha: Fraction
    concept: Concept
    k: int | None
    count: int
    max_depth: int
    mean_depth: float
    max_diameter: int
    max_degree: int
    lemma_3_4_bound: float

    @property
    def depth_within_lemma_3_4(self) -> bool:
        return self.max_depth <= self.lemma_3_4_bound + 1e-9


def tree_shape(state: GameState) -> tuple[int, int, int]:
    """(depth from a 1-median, diameter, max degree) of a tree state."""
    rooted = RootedTree(state.graph)
    return (
        rooted.depth(),
        state.dist.diameter(),
        max(degree for _, degree in state.graph.degree),
    )


def equilibrium_family_shape(
    n: int,
    alpha: AlphaLike,
    concept: Concept,
    k: int | None = None,
    trees: Iterable | None = None,
) -> FamilyShape:
    """Shape statistics over every equilibrium tree on ``n`` nodes."""
    price = as_alpha(alpha)
    depths: list[int] = []
    diameters: list[int] = []
    degrees: list[int] = []
    source = all_trees(n) if trees is None else trees
    for tree in source:
        state = GameState(tree, price)
        if not check(state, concept, k=k):
            continue
        depth, diameter, degree = tree_shape(state)
        depths.append(depth)
        diameters.append(diameter)
        degrees.append(degree)
    if not depths:
        raise ValueError(f"no {concept} trees at n={n}, alpha={price}")
    bound = (1 + 2 * float(price) / n) * math.log2(n)
    return FamilyShape(
        n=n,
        alpha=price,
        concept=concept,
        k=k,
        count=len(depths),
        max_depth=max(depths),
        mean_depth=statistics.fmean(depths),
        max_diameter=max(diameters),
        max_degree=max(degrees),
        lemma_3_4_bound=bound,
    )
