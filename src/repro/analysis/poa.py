"""Empirical Price of Anarchy: exhaustive worst cases and certified bounds.

Small instances allow the real thing: enumerate *all* non-isomorphic trees
(or connected graphs), keep those passing a concept's exact checker, and
take the worst social cost ratio.  That is the PoA by definition, not an
estimate.  Larger instances use the paper's own reductions (Lemma 3.17 /
3.18) to produce certified upper bounds.

Enumeration rides the canonical-key machinery of
:mod:`repro.graphs.canonical` / :mod:`repro.graphs.enumerate`: connected
graphs reach n = 8-9 (past the networkx atlas), :func:`empirical_layer_poa`
scans one edge-count layer — the unit of campaign-level resume — and
:func:`exact_weighted_tree_poa` quantifies over **all labelled trees**
modulo the joint ``(tree, W)`` symmetries, settling the weighted tree PoA
exactly rather than over one representative per unlabelled class.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

import networkx as nx

from repro._alpha import AlphaLike, as_alpha
from repro.analysis.bounds import proposition_3_1_bound
from repro.constructions.basic import almost_complete_dary_tree
from repro.core.concepts import Concept
from repro.core.costmodel import CostModel
from repro.core.costs import max_agent_cost
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix
from repro.equilibria.registry import check
from repro.graphs.generation import all_connected_graphs, all_trees

__all__ = [
    "PoAResult",
    "WeightedPoAResult",
    "bse_upper_bound_via_dary_tree",
    "empirical_layer_poa",
    "empirical_poa",
    "empirical_tree_poa",
    "empirical_weighted_poa",
    "exact_weighted_tree_poa",
    "worst_equilibria",
]


@dataclass(frozen=True)
class PoAResult:
    """Worst-case ratio over an enumerated family, with the witness."""

    n: int
    alpha: Fraction
    concept: Concept
    k: int | None
    poa: Fraction | None  # None when no equilibrium exists in the family
    witness: nx.Graph | None
    equilibria: int
    candidates: int


def _scan(
    graphs: Iterable[nx.Graph],
    alpha: Fraction,
    concept: Concept,
    k: int | None,
    n: int,
) -> PoAResult:
    worst: Fraction | None = None
    witness: nx.Graph | None = None
    equilibria = 0
    candidates = 0
    for graph in graphs:
        candidates += 1
        state = GameState(graph, alpha)
        if not check(state, concept, k=k):
            continue
        equilibria += 1
        rho = state.rho()
        if worst is None or rho > worst:
            worst = rho
            witness = state.graph.copy()
    return PoAResult(
        n=n,
        alpha=alpha,
        concept=concept,
        k=k,
        poa=worst,
        witness=witness,
        equilibria=equilibria,
        candidates=candidates,
    )


def empirical_tree_poa(
    n: int, alpha: AlphaLike, concept: Concept, k: int | None = None
) -> PoAResult:
    """Exact PoA restricted to tree equilibria on ``n`` nodes.

    Enumerates every non-isomorphic tree; feasible up to ``n ~ 13``
    (1301 trees) for the polynomial concepts, less for BNE/k-BSE.
    """
    price = as_alpha(alpha)
    return _scan(all_trees(n), price, concept, k, n)


def empirical_poa(
    n: int, alpha: AlphaLike, concept: Concept, k: int | None = None
) -> PoAResult:
    """Exact PoA over *all* connected graphs on ``n`` nodes.

    Atlas-backed to ``n = 7``; the canonical-key layered enumerator
    carries the sweep to ``n = 8`` in seconds and ``n = 9`` in minutes
    (the checker cost, not the enumeration, dominates there).
    """
    price = as_alpha(alpha)
    return _scan(all_connected_graphs(n), price, concept, k, n)


def empirical_layer_poa(
    n: int,
    m: int,
    alpha: AlphaLike,
    concept: Concept,
    k: int | None = None,
) -> PoAResult:
    """Exact PoA over connected graphs with exactly ``m`` edges.

    One edge-count layer of the canonical enumerator — the resume unit
    of the ``exact_poa`` campaign runner: the full-graph PoA at ``n`` is
    the max over its layers ``m = n-1 .. n(n-1)/2``, and each layer is a
    content-addressed trial that survives being killed independently.
    """
    from repro.graphs.canonical import decode_key
    from repro.graphs.enumerate import connected_graph_layer

    price = as_alpha(alpha)
    graphs = (
        decode_key(key)[0] for key in connected_graph_layer(n, m)
    )
    return _scan(graphs, price, concept, k, n)


def worst_equilibria(
    n: int,
    alpha: AlphaLike,
    concept: Concept,
    k: int | None = None,
    top: int = 3,
    trees_only: bool = True,
) -> list[tuple[Fraction, nx.Graph]]:
    """The ``top`` worst equilibria (ratio, graph), descending."""
    price = as_alpha(alpha)
    graphs = all_trees(n) if trees_only else all_connected_graphs(n)
    scored: list[tuple[Fraction, nx.Graph]] = []
    for graph in graphs:
        state = GameState(graph, price)
        if check(state, concept, k=k):
            scored.append((state.rho(), state.graph.copy()))
    scored.sort(key=lambda item: item[0], reverse=True)
    return scored[:top]


@dataclass(frozen=True)
class WeightedPoAResult:
    """Family-relative worst-case ratio under a heterogeneous demand matrix.

    The uniform game has a closed-form optimum; a weighted game does
    not, and demands break label symmetry, so the ratio here is
    *family-relative*: worst equilibrium social cost over the **minimum
    social cost in the enumerated family** (a certified lower bound on
    the true weighted PoA — the enumeration quantifies over one labelled
    representative per isomorphism class).
    """

    n: int
    alpha: Fraction
    concept: Concept
    k: int | None
    poa: Fraction | None  # None when no equilibrium exists in the family
    worst_cost: Fraction | None
    best_cost: Fraction
    witness: nx.Graph | None
    equilibria: int
    candidates: int


def empirical_weighted_poa(
    n: int,
    alpha: AlphaLike,
    concept: Concept,
    traffic: TrafficMatrix | None = None,
    k: int | None = None,
    trees_only: bool = True,
    cost_model: CostModel | None = None,
) -> WeightedPoAResult:
    """Worst equilibrium vs family optimum under a demand matrix and/or a
    cost model.

    Enumerates the same family as :func:`empirical_tree_poa` /
    :func:`empirical_poa` (one labelled representative per isomorphism
    class), checks each representative against the *weighted/modeled*
    concept checkers, and divides the worst equilibrium's social cost by
    the family's minimum social cost.  With
    ``TrafficMatrix.uniform(n)`` (and a linear or absent ``cost_model``)
    the checkers run the unweighted code paths, and whenever the
    closed-form optimum lies inside the enumerated family — for trees
    that is ``alpha >= 1``, where the optimum is the star — the ratio
    reproduces the uniform PoA exactly (for ``alpha < 1`` the uniform
    optimum is the clique, so the tree-family ratio is denominated by
    the cheapest tree instead).  Non-linear models have no closed-form
    optimum at all, so the family-relative ratio is the definition of
    record for them.
    """
    price = as_alpha(alpha)
    graphs = all_trees(n) if trees_only else all_connected_graphs(n)
    worst: Fraction | None = None
    witness: nx.Graph | None = None
    best: Fraction | None = None
    equilibria = 0
    candidates = 0
    for graph in graphs:
        candidates += 1
        state = GameState(graph, price, traffic=traffic, cost_model=cost_model)
        cost = state.social_cost()
        if best is None or cost < best:
            best = cost
        if not check(state, concept, k=k):
            continue
        equilibria += 1
        if worst is None or cost > worst:
            worst = cost
            witness = state.graph.copy()
    assert best is not None, "the family enumeration was empty"
    return WeightedPoAResult(
        n=n,
        alpha=price,
        concept=concept,
        k=k,
        poa=None if worst is None else worst / best,
        worst_cost=worst,
        best_cost=best,
        witness=witness,
        equilibria=equilibria,
        candidates=candidates,
    )


def exact_weighted_tree_poa(
    n: int,
    alpha: AlphaLike,
    concept: Concept,
    traffic: TrafficMatrix,
    k: int | None = None,
    cost_model: CostModel | None = None,
) -> WeightedPoAResult:
    """Exact weighted PoA over **all labelled trees** on ``n`` nodes.

    :func:`empirical_weighted_poa` checks one labelled representative per
    *unlabelled* isomorphism class against a fixed demand matrix — a
    certified lower bound, because demands break label symmetry and a
    different labelling of the same shape is a genuinely different game.
    This function closes that gap: it sweeps every Pruefer sequence (all
    ``n**(n-2)`` labelled trees) deduplicated by the **joint**
    ``(tree, W)`` canonical key (:func:`repro.graphs.enumerate.
    enumerate_labelled_trees`), so the quantifier runs over the complete
    labelled family modulo the symmetries the demand matrix actually
    has.  Under ``TrafficMatrix.uniform(n)`` the joint classes collapse
    to the unlabelled ones and the result matches
    :func:`empirical_weighted_poa` exactly.  Feasible to ``n ~ 8``
    (262144 sequences).
    """
    from repro.graphs.enumerate import enumerate_labelled_trees

    price = as_alpha(alpha)
    worst: Fraction | None = None
    witness: nx.Graph | None = None
    best: Fraction | None = None
    equilibria = 0
    candidates = 0
    for graph in enumerate_labelled_trees(n, traffic):
        candidates += 1
        state = GameState(graph, price, traffic=traffic, cost_model=cost_model)
        cost = state.social_cost()
        if best is None or cost < best:
            best = cost
        if not check(state, concept, k=k):
            continue
        equilibria += 1
        if worst is None or cost > worst:
            worst = cost
            witness = state.graph.copy()
    assert best is not None, "the labelled-tree enumeration was empty"
    return WeightedPoAResult(
        n=n,
        alpha=price,
        concept=concept,
        k=k,
        poa=None if worst is None else worst / best,
        worst_cost=worst,
        best_cost=best,
        witness=witness,
        equilibria=equilibria,
        candidates=candidates,
    )


def bse_upper_bound_via_dary_tree(
    n: int, alpha: AlphaLike, d: int
) -> Fraction:
    """Certified PoA upper bound for BSE at ``(n, alpha)`` via Lemma 3.17.

    Builds the almost complete ``d``-ary tree, computes the *exact* maximum
    agent cost, and divides by ``alpha + n - 1``: every BSE on ``n`` agents
    has ``rho`` at most this value, because otherwise the grand coalition
    would deviate to (a relabelling of) the tree.
    """
    price = as_alpha(alpha)
    state = GameState(almost_complete_dary_tree(n, d), price)
    return max_agent_cost(state) / (price + n - 1)


def re_upper_bound_via_prop_3_1(state: GameState) -> Fraction:
    """Best Proposition 3.1 bound over all nodes of a connected RE graph.

    The proposition's arithmetic is linear in raw distances, so it is
    undefined for non-linear cost models — modeled states raise rather
    than silently bounding the wrong game.
    """
    if state.modeled:
        raise ValueError(
            "Proposition 3.1 bounds the linear game; modeled states have "
            "no closed-form RE bound"
        )
    totals = state.dist.totals()
    best = min(int(value) for value in totals)
    return proposition_3_1_bound(state.n, state.alpha, best)
