"""The paper's bound functions, as executable formulas.

Two kinds of bounds appear in Table 1 and its proofs:

* *exact finite-size inequalities* the proofs actually establish (e.g.
  Theorem 3.6's ``rho <= 2 + 2 log2(alpha)``) — these are directly
  checkable on concrete instances and the verification harness does so;
* *asymptotic shapes* (``Theta(min(sqrt a, n/sqrt a))``) — exposed as
  reference curves for the shape comparisons in the benchmarks.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro._alpha import AlphaLike, as_alpha

__all__ = [
    "bge_tree_lower_bound",
    "bne_small_alpha_bound",
    "bse_any_alpha_bound",
    "bse_high_alpha_bound",
    "bse_low_alpha_bound",
    "bswe_tree_upper_bound",
    "dary_tree_cost_bound",
    "proposition_3_1_bound",
    "ps_tree_shape",
    "re_corollary_3_2_bound",
    "three_bse_tree_bound",
]


def ps_tree_shape(n: int, alpha: AlphaLike) -> float:
    """Reference shape ``min(sqrt(alpha), n / sqrt(alpha))`` for PS trees
    (Table 1 row 1; constants are asymptotic, use for shape only)."""
    a = float(as_alpha(alpha))
    return min(math.sqrt(a), n / math.sqrt(a))


def bswe_tree_upper_bound(alpha: AlphaLike) -> float:
    """Theorem 3.6: trees in BSwE satisfy ``rho <= 2 + 2 log2 alpha``
    (exact inequality, ``alpha >= 1``)."""
    return 2 + 2 * math.log2(float(as_alpha(alpha)))


def bge_tree_lower_bound(alpha: AlphaLike) -> float:
    """Theorem 3.10: a BGE tree family with
    ``rho >= log2(alpha)/4 - 17/8`` exists (for large alpha)."""
    return math.log2(float(as_alpha(alpha))) / 4 - Fraction(17, 8)


def bne_small_alpha_bound() -> int:
    """Theorem 3.13: trees in BNE with ``alpha <= sqrt n``, ``n > 15``
    satisfy ``rho <= 4``."""
    return 4


def three_bse_tree_bound() -> int:
    """Theorem 3.15: trees in 3-BSE satisfy ``rho <= 25``."""
    return 25


def re_corollary_3_2_bound(n: int, alpha: AlphaLike) -> Fraction:
    """Corollary 3.2: connected RE graphs satisfy ``rho <= 1 + n^2/alpha``."""
    return 1 + Fraction(n**2) / as_alpha(alpha)


def proposition_3_1_bound(n: int, alpha: AlphaLike, dist_u: int) -> Fraction:
    """Proposition 3.1: ``rho(G) <= (alpha + dist(u)) / (alpha + n - 1)``
    for any node ``u`` of a connected RE graph."""
    a = as_alpha(alpha)
    return (a + dist_u) / (a + n - 1)


def dary_tree_cost_bound(n: int, alpha: AlphaLike, d: int) -> float:
    """Lemma 3.18: every agent of an almost complete d-ary tree has
    ``cost(u) <= (d+1) alpha + 2 (n-1) log_d n``."""
    if d < 2:
        raise ValueError("d must be at least 2")
    return (d + 1) * float(as_alpha(alpha)) + 2 * (n - 1) * math.log(n, d)


def bse_high_alpha_bound() -> int:
    """Theorem 3.19: BSE with ``alpha >= n log n`` satisfy ``rho <= 5``."""
    return 5


def bse_low_alpha_bound(epsilon: float) -> float:
    """Theorem 3.20: BSE with ``alpha <= n^(1-eps)`` satisfy
    ``rho <= 3 + 2/eps``."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return 3 + 2 / epsilon


def bse_any_alpha_bound(n: int) -> float:
    """Theorem 3.21: BSE satisfy
    ``rho <= 2 + log log n + 2 log n / log log log n`` (for n large enough
    that the triple logarithm is positive)."""
    if n < 2:
        raise ValueError("n must be at least 2")
    loglog = math.log2(math.log2(n)) if math.log2(n) > 1 else 0.0
    logloglog = math.log2(loglog) if loglog > 1 else float("nan")
    return 2 + loglog + 2 * math.log2(n) / logloglog
