"""Analysis harness: PoA measurement, bound formulas, fitting, reporting."""

from repro.analysis.bounds import (
    bge_tree_lower_bound,
    bne_small_alpha_bound,
    bse_any_alpha_bound,
    bse_high_alpha_bound,
    bse_low_alpha_bound,
    bswe_tree_upper_bound,
    dary_tree_cost_bound,
    proposition_3_1_bound,
    ps_tree_shape,
    re_corollary_3_2_bound,
    three_bse_tree_bound,
)
from repro.analysis.fitting import (
    LinearFit,
    fit_log_slope,
    fit_power_law,
    relative_spread,
)
from repro.analysis.poa import (
    PoAResult,
    bse_upper_bound_via_dary_tree,
    empirical_poa,
    empirical_tree_poa,
    worst_equilibria,
)
from repro.analysis.search import (
    NashWitness,
    classify_full_ladder,
    classify_re_bae_bswe,
    search_nash_not_pairwise_stable,
    search_venn_witnesses,
)
from repro.analysis.structure import (
    FamilyShape,
    equilibrium_family_shape,
    tree_shape,
)
from repro.analysis.tables import format_value, render_table

__all__ = [
    "LinearFit",
    "NashWitness",
    "PoAResult",
    "bge_tree_lower_bound",
    "bne_small_alpha_bound",
    "bse_any_alpha_bound",
    "bse_high_alpha_bound",
    "bse_low_alpha_bound",
    "bse_upper_bound_via_dary_tree",
    "bswe_tree_upper_bound",
    "classify_full_ladder",
    "classify_re_bae_bswe",
    "dary_tree_cost_bound",
    "empirical_poa",
    "empirical_tree_poa",
    "equilibrium_family_shape",
    "FamilyShape",
    "fit_log_slope",
    "fit_power_law",
    "format_value",
    "proposition_3_1_bound",
    "ps_tree_shape",
    "re_corollary_3_2_bound",
    "relative_spread",
    "render_table",
    "search_nash_not_pairwise_stable",
    "search_venn_witnesses",
    "three_bse_tree_bound",
    "tree_shape",
    "worst_equilibria",
]
