"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's Table 1 reports
(concept, alpha regime, bound, measured value); this module keeps the
formatting in one place so every benchmark reads uniformly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

__all__ = ["format_value", "render_table"]


def format_value(value) -> str:
    """Compact human formatting for ints, Fractions and floats."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{float(value):.4g}"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Monospace table with a header rule, ready for printing."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
