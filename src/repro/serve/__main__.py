"""``python -m repro.serve`` — run the query service on a socket.

::

    python -m repro.serve [--host H] [--port P] [--cache-bytes N]
                          [--threads N] [--views STORE_DIR ...]

``--views`` registers campaign store directories whose results back the
``poa`` endpoint; repeat it per store.  ``--cache-bytes 0`` disables the
warm-engine registry (every request builds cold — the benchmark's
baseline arm).  SIGTERM/SIGINT shut the loop down cleanly.

Observability: ``GET /metricsz`` exposes the :mod:`repro.obs` registries
in Prometheus text format; setting ``REPRO_TRACE=<path>`` before start
streams trace spans (one JSON line per request / engine build) there.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.serve.http import serve_forever
from repro.serve.service import ServeApp
from repro.serve.views import MaterialisedViews


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on query service over warm game engines.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--cache-bytes", type=int, default=256 * 1024 * 1024,
        help="warm-engine byte budget (0 disables caching)",
    )
    parser.add_argument(
        "--threads", type=int, default=4,
        help="worker threads for request handling",
    )
    parser.add_argument(
        "--views", action="append", default=[], metavar="STORE_DIR",
        help="campaign store to materialise for the poa endpoint "
        "(repeatable)",
    )
    return parser


async def _main(args: argparse.Namespace) -> int:
    views = MaterialisedViews()
    for root in args.views:
        info = views.add_store(root)
        print(
            f"view {info['campaign']}: {info['indexed']}/{info['trials']} "
            f"trials materialised from {info['source']}",
            file=sys.stderr,
        )
    app = ServeApp(cache_bytes=args.cache_bytes, views=views)
    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, shutdown.set)

    def ready(port: int) -> None:
        print(f"serving on http://{args.host}:{port}", file=sys.stderr)

    await serve_forever(
        app, args.host, args.port, threads=args.threads,
        ready=ready, shutdown=shutdown,
    )
    print("shut down cleanly", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    return asyncio.run(_main(build_parser().parse_args(argv)))


if __name__ == "__main__":
    raise SystemExit(main())
