"""Campaign stores materialised as query views for the ``poa`` endpoint.

A completed (or in-flight) campaign store already holds exact answers —
"the worst-case PoA of pairwise stability at ``n=9, alpha=4``" — as
content-addressed trial records.  This module indexes those records at
startup so the service answers ``poa`` queries with dictionary reads
instead of re-running enumeration:

* the **exact index** maps every :func:`~repro.campaigns.spec.trial_key`
  in every registered store to its decoded result;
* the **layer index** re-aggregates ``m``-sharded ``exact_poa`` trials
  the same way :func:`~repro.campaigns.aggregate.reduce_exact_poa_table`
  does — PoA is the max over edge-count layers, equilibria/candidates
  the sums — so a query that does not mention ``m`` still resolves
  against a campaign that ran layered.

Queries are content-addressed exactly like trials (``alpha: 4.5`` and
``alpha: "9/2"`` hit the same record), so the view needs no schema
knowledge beyond the shared ``m``-is-the-layer-axis convention.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.campaigns.spec import CampaignSpec, trial_key
from repro.campaigns.store import CampaignStore

__all__ = ["MaterialisedViews"]


def _stripped_key(kind: str, params: Mapping[str, Any]) -> str:
    return trial_key(
        kind, {name: value for name, value in params.items() if name != "m"}
    )


class MaterialisedViews:
    """Trial-key index over any number of campaign stores."""

    def __init__(self, roots: list[str | Path] | None = None):
        self.sources: list[dict[str, Any]] = []
        self._exact: dict[str, dict[str, Any]] = {}
        # stripped key -> {"source", "kind", "layers": [m...], "results": []}
        self._layers: dict[str, dict[str, Any]] = {}
        for root in roots or []:
            self.add_store(root)

    def add_store(self, root: str | Path) -> dict[str, Any]:
        """Index one campaign store (its spec defines the trial universe)."""
        store = CampaignStore(root)
        spec = store.load_spec()
        if spec is None:
            raise ValueError(f"{root} is not a campaign store (no spec.json)")
        return self._index(spec, store, str(root))

    def add_campaign(
        self, spec: CampaignSpec, store: CampaignStore, label: str | None = None
    ) -> dict[str, Any]:
        """Index an in-memory (spec, store) pair — the test-facing entry."""
        return self._index(spec, store, label or spec.name)

    def _index(
        self, spec: CampaignSpec, store: CampaignStore, source: str
    ) -> dict[str, Any]:
        indexed = 0
        for trial in spec.trials():
            result = store.result(trial.key)
            if result is not None and trial.key not in self._exact:
                self._exact[trial.key] = {
                    "source": source,
                    "campaign": spec.name,
                    "kind": trial.kind,
                    "params": trial.params,
                    "result": result,
                }
                indexed += 1
            if "m" in trial.params:
                stripped = _stripped_key(trial.kind, trial.params)
                group = self._layers.setdefault(
                    stripped,
                    {
                        "source": source,
                        "campaign": spec.name,
                        "kind": trial.kind,
                        "layers": [],
                        "results": [],
                    },
                )
                group["layers"].append(trial.params["m"])
                group["results"].append(result)
        info = {
            "source": source,
            "campaign": spec.name,
            "trials": len(spec.trials()),
            "indexed": indexed,
        }
        self.sources.append(info)
        return info

    def __len__(self) -> int:
        return len(self._exact)

    def lookup(self, kind: str, params: Mapping[str, Any]) -> dict[str, Any] | None:
        """Resolve one query cell; ``None`` when no view covers it.

        Tries the exact trial first, then the layered aggregation (a
        query without ``m`` against an ``m``-sharded campaign).  A
        layered cell with any layer still pending reports
        ``"complete": false`` and aggregates what exists, mirroring the
        report's ``?`` semantics without hiding partial coverage.
        """
        key = trial_key(kind, params)
        hit = self._exact.get(key)
        if hit is not None:
            return {
                "layered": False,
                "source": hit["source"],
                "campaign": hit["campaign"],
                "complete": True,
                "result": hit["result"],
            }
        if "m" in params:
            return None
        group = self._layers.get(_stripped_key(kind, params))
        if group is None:
            return None
        present = [result for result in group["results"] if result is not None]
        if not present:
            return None
        poas = [r["poa"] for r in present if r.get("poa") is not None]
        aggregated: dict[str, Any] = {
            "poa": max(poas) if poas else None,
            "equilibria": sum(r.get("equilibria", 0) for r in present),
            "candidates": sum(r.get("candidates", 0) for r in present),
        }
        return {
            "layered": True,
            "source": group["source"],
            "campaign": group["campaign"],
            "complete": all(r is not None for r in group["results"]),
            "layers": len(group["results"]),
            "layers_present": len(present),
            "result": aggregated,
        }

    def stats(self) -> dict[str, Any]:
        return {
            "view_sources": len(self.sources),
            "view_trials_indexed": len(self._exact),
            "view_layer_groups": len(self._layers),
        }
