"""Warm-engine registry: LRU over canonical instance keys, byte-budgeted.

One *instance* of the service's query surface is ``(graph, W, alpha,
cost_model)``.  Its cache identity is the BLAKE2b digest of the PR-8
joint canonical key (:func:`repro.graphs.canonical.canonical_key` —
isomorphism-invariant over the labelled weighted pair) plus the exact
``alpha`` and the cost-model spec, so two requests about relabelled
copies of the same instance share a single cached engine (the
materialised :class:`~repro.core.state.GameState` with its incremental
:class:`~repro.graphs.distances.DistanceMatrix`): the expensive APSP
build, bridge set and maintained totals are paid once per isomorphism
class, not once per request.

Eviction is least-recently-used under a byte budget (the dominant term
is the ``n x n`` int64 distance matrix; the estimate below charges the
engine's resident arrays, not Python object overhead).  A budget of
``0`` disables caching entirely — every request builds cold, which is
the baseline arm of ``bench_serve_qps.py``.

Module counters follow the engine's spy discipline
(``TOTALS_REBUILDS`` & co): ``ENGINE_BUILDS`` counts every cold engine
construction process-wide, so tests can assert a warm path built
nothing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.core.state import GameState
from repro.obs import metrics as _obs

__all__ = [
    "ENGINE_BUILDS",
    "CachedEngine",
    "EngineCache",
    "engine_cache_info",
    "estimate_engine_bytes",
]

#: process-wide count of cold engine materialisations.  Registry-backed
#: (requests from different serve threads build concurrently, and the
#: per-entry RLock never protected this count); ``cache.ENGINE_BUILDS``
#: stays a read-only alias via module ``__getattr__``.
_ENGINE_BUILDS = _obs.counter(
    "repro_serve_engine_builds_total", "cold engine materialisations"
)

#: process-wide LRU traffic (per-instance counts live on the cache)
_CACHE_HITS = _obs.counter(
    "repro_serve_engine_cache_hits_total", "warm engine-cache lookups"
)
_CACHE_MISSES = _obs.counter(
    "repro_serve_engine_cache_misses_total", "cold engine-cache lookups"
)
_CACHE_EVICTIONS = _obs.counter(
    "repro_serve_engine_cache_evictions_total",
    "engines evicted past the byte budget",
)


def __getattr__(name: str) -> int:
    if name == "ENGINE_BUILDS":
        return _ENGINE_BUILDS.value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def note_engine_build() -> None:
    _ENGINE_BUILDS.inc()


def engine_cache_info() -> dict[str, int]:
    """The module-level spy counters (process-wide)."""
    return {"engine_builds": _ENGINE_BUILDS.value}


def estimate_engine_bytes(state: GameState) -> int:
    """Resident-byte estimate of one warm engine.

    Charges the distance matrix, its CSR/bridge/totals side structures
    (~2x the matrix in practice) and the demand matrix; the fixed term
    covers the graph object and bookkeeping.  An estimate is enough —
    the budget bounds growth, it is not an allocator.
    """
    matrix_bytes = state.dist.matrix.nbytes
    weights_bytes = (
        state.traffic.weights.nbytes if state.traffic is not None else 0
    )
    return 3 * matrix_bytes + weights_bytes + 4096


@dataclass
class CachedEngine:
    """One resident instance: the canonical state plus cache metadata."""

    digest: str
    state: GameState  # canonically labelled (graph and demand matrix)
    # labelling memo: request fingerprint -> (sigma, sigma inverse), so a
    # repeated representative pays the individualisation search once
    sigma_cache: dict = field(default_factory=dict)
    # engine queries mutate the shared distance matrix speculatively;
    # concurrent requests on one entry serialise here
    lock: threading.RLock = field(default_factory=threading.RLock)
    nbytes: int = 0
    hits: int = 0


class EngineCache:
    """LRU of :class:`CachedEngine` under a byte budget."""

    def __init__(self, byte_budget: int = 256 * 1024 * 1024):
        if byte_budget < 0:
            raise ValueError("byte budget must be >= 0")
        self.byte_budget = int(byte_budget)
        self._entries: "OrderedDict[str, CachedEngine]" = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> CachedEngine | None:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            _CACHE_MISSES.inc()
            return None
        self._entries.move_to_end(digest)
        entry.hits += 1
        self.hits += 1
        _CACHE_HITS.inc()
        return entry

    def put(self, digest: str, state: GameState) -> CachedEngine:
        """Insert a freshly built engine (evicting LRU past the budget).

        With a zero budget nothing is retained — the entry is returned
        for the current request but the registry stays empty.
        """
        entry = CachedEngine(
            digest=digest, state=state, nbytes=estimate_engine_bytes(state)
        )
        if self.byte_budget == 0:
            return entry
        existing = self._entries.pop(digest, None)
        if existing is not None:
            self.bytes -= existing.nbytes
        self._entries[digest] = entry
        self.bytes += entry.nbytes
        while self.bytes > self.byte_budget and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self.bytes -= evicted.nbytes
            self.evictions += 1
            _CACHE_EVICTIONS.inc()
        return entry

    def stats(self) -> dict[str, Any]:
        return {
            "engines_resident": len(self._entries),
            "engine_bytes": self.bytes,
            "engine_byte_budget": self.byte_budget,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
