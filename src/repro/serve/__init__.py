"""``repro.serve`` — an always-on query service over warm engines.

The batch subsystems answer "what is the PoA of this whole regime"
overnight; this package answers "classify *this* graph" / "what is agent
``u``'s best move" / "what did the campaign measure here" interactively,
from a long-lived process that keeps engines warm:

* :mod:`repro.serve.cache` — the warm-engine registry.  Instances are
  identified by the PR-8 canonical key of ``(graph, W, alpha,
  cost_model)``, so *any* relabelling of a known instance is a cache hit
  and shares one materialised :class:`~repro.core.state.GameState`
  (label-dependent answers are mapped through the canonical labelling
  and back).  Eviction is LRU under a byte budget.
* :mod:`repro.serve.views` — campaign reducers materialised as views:
  completed campaign stores are indexed by trial key at startup so
  ``poa`` lookups are dictionary reads, including the layered
  ``exact_poa`` aggregation.
* :mod:`repro.serve.service` — the transport-free application object
  (parse request, consult caches, run checkers/kernel, account stats).
  Everything testable lives here.
* :mod:`repro.serve.http` — a minimal asyncio HTTP/1.1 layer (stdlib
  only) putting the service on a socket; cold misses run on a bounded
  thread pool so the event loop keeps accepting while engines build.

Run it::

    python -m repro.serve --port 8080 --views .campaigns/exact-poa
"""

from repro.serve.cache import EngineCache, engine_cache_info
from repro.serve.service import ServeApp
from repro.serve.views import MaterialisedViews

__all__ = [
    "EngineCache",
    "MaterialisedViews",
    "ServeApp",
    "engine_cache_info",
]
