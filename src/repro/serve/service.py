"""The transport-free serve application: parse, canonicalise, answer.

:class:`ServeApp` owns the warm-engine registry, the response cache and
the materialised campaign views, and answers four endpoints:

``classify``
    The full cooperation-ladder verdict of one game state
    (:func:`repro.analysis.search.classify_full_ladder`), certificates
    included.
``best_response``
    Agent ``u``'s best improving move within a polynomial concept's move
    space (RE / BAE / PS / BSWE / BGE), priced by the speculative
    kernel; ``best_responding: true`` when ``u`` has none.
``poa``
    Dictionary reads against :class:`~repro.serve.views.MaterialisedViews`
    (campaign stores indexed by trial key, layered ``exact_poa`` cells
    re-aggregated).
``healthz`` / ``statsz`` / ``metricsz``
    Liveness, the full counter surface (engine cache hits/misses/
    evictions, response cache, per-endpoint request counts and p50/p99
    latency, the process-wide ``ENGINE_BUILDS`` spy) and the Prometheus
    text exposition of the :mod:`repro.obs` registries.

Label discipline: every graph query is mapped onto its canonical
representative before touching an engine.  The request's labelling
``sigma`` (:func:`repro.graphs.canonical.canonical_labelling`) carries
agent ids and moves into canonical space; answers travel back through
``sigma``'s inverse.  Engines are therefore shared across *isomorphic*
requests, while responses — which speak the requester's labels — are
cached per (instance, labelling, parameters) fingerprint.

Everything here is synchronous and transport-free; the asyncio HTTP
layer (:mod:`repro.serve.http`) calls :meth:`ServeApp.handle` from a
bounded worker pool.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from hashlib import blake2b
from typing import Any, Mapping

import networkx as nx
import numpy as np

from repro._alpha import as_alpha
from repro.analysis.search import classify_full_ladder
from repro.campaigns.spec import to_jsonable
from repro.core.concepts import Concept
from repro.core.costmodel import costmodel_from_spec
from repro.core.moves import AddEdge, RemoveEdge, Swap
from repro.core.speculative import SpeculativeEvaluator
from repro.core.state import GameState
from repro.core.traffic import TrafficMatrix, traffic_from_spec
from repro.dynamics.movegen import improving_moves
from repro.graphs.canonical import canonical_key, canonical_labelling
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.serve.cache import CachedEngine, EngineCache, engine_cache_info
from repro.serve import cache as _cache_mod
from repro.serve.views import MaterialisedViews

__all__ = ["ServeApp", "ServeError"]

#: concepts whose move space ``best_response`` enumerates exhaustively
#: in polynomial time (the exponential BNE/BSE spaces are refused)
BEST_RESPONSE_CONCEPTS = (
    Concept.RE,
    Concept.BAE,
    Concept.PS,
    Concept.BSWE,
    Concept.BGE,
)

_LATENCY_WINDOW = 2048  # per-endpoint rolling latency samples
_RESPONSE_CACHE_MAX = 4096  # response-cache entries (LRU)


class ServeError(Exception):
    """A client-visible request failure with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _concept_of(value: Any) -> Concept:
    if isinstance(value, Concept):
        return value
    if isinstance(value, str):
        if value in Concept.__members__:
            return Concept[value]
        try:
            return Concept(value)
        except ValueError:
            pass
    raise ServeError(
        400,
        f"unknown concept {value!r}; expected one of "
        f"{sorted(Concept.__members__)}",
    )


class _Instance:
    """One parsed graph query: the game plus its canonical identity."""

    __slots__ = (
        "graph", "n", "alpha", "traffic", "cost_model",
        "digest", "fingerprint",
    )

    def __init__(self, payload: Mapping[str, Any]):
        edges = payload.get("edges")
        if not isinstance(edges, list):
            raise ServeError(400, "'edges' must be a list of [u, v] pairs")
        pairs: list[tuple[int, int]] = []
        for edge in edges:
            if (
                not isinstance(edge, (list, tuple))
                or len(edge) != 2
                or not all(isinstance(x, int) and x >= 0 for x in edge)
                or edge[0] == edge[1]
            ):
                raise ServeError(400, f"bad edge {edge!r}")
            pairs.append((int(edge[0]), int(edge[1])))
        top = max((max(u, v) for u, v in pairs), default=-1)
        n = payload.get("n", top + 1)
        if not isinstance(n, int) or n < 1 or top >= n:
            raise ServeError(400, f"bad node count n={n!r} for the edge list")
        self.n = n
        self.graph = nx.empty_graph(n)
        self.graph.add_edges_from(pairs)
        if n > 1 and not nx.is_connected(self.graph):
            raise ServeError(400, "graph must be connected")

        if "alpha" not in payload:
            raise ServeError(400, "'alpha' is required (int, float or 'p/q')")
        try:
            self.alpha = as_alpha(payload["alpha"])
        except (ValueError, TypeError, ZeroDivisionError) as exc:
            raise ServeError(400, f"bad alpha: {exc}") from None

        try:
            self.traffic = traffic_from_spec(payload.get("traffic"), n)
            self.cost_model = costmodel_from_spec(payload.get("costmodel"), n)
        except (ValueError, TypeError, KeyError) as exc:
            raise ServeError(400, f"bad traffic/costmodel spec: {exc}") from None

        regime = json.dumps(
            to_jsonable(
                {
                    "alpha": self.alpha,
                    "costmodel": (
                        dict(payload["costmodel"])
                        if payload.get("costmodel")
                        else None
                    ),
                }
            ),
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        # isomorphism-invariant engine identity ...
        self.digest = blake2b(
            canonical_key(self.graph, self.traffic) + b"\x00" + regime,
            digest_size=16,
        ).hexdigest()
        # ... and the labelled request identity (for sigma memoisation and
        # the response cache, whose answers speak these labels)
        weights = (
            self.traffic.weights.tobytes()
            if self.traffic is not None
            else b""
        )
        self.fingerprint = blake2b(
            repr(sorted(pairs)).encode() + b"\x00" + weights + b"\x00" + regime,
            digest_size=16,
        ).hexdigest()


def _move_payload(move: Any, inv: list[int]) -> dict[str, Any]:
    """A move in the *requester's* labels (canonical -> original)."""
    if isinstance(move, RemoveEdge):
        return {
            "type": "remove", "actor": inv[move.actor],
            "other": inv[move.other],
        }
    if isinstance(move, AddEdge):
        return {"type": "add", "u": inv[move.u], "v": inv[move.v]}
    if isinstance(move, Swap):
        return {
            "type": "swap", "actor": inv[move.actor],
            "old": inv[move.old], "new": inv[move.new],
        }
    return {
        "type": type(move).__name__,
        "edge_deltas": [
            [op, inv[u], inv[v]] for op, u, v in move.edge_deltas()
        ],
    }


class _EndpointStats:
    """Per-endpoint meters, backed by the app's metric registry.

    The registry carries the counts and a log-bucketed latency histogram
    (rendered by ``/metricsz``); the rolling deque stays for the exact
    p50/p99 that ``statsz`` has always reported (bucket upper edges
    would quantise them).
    """

    __slots__ = ("_requests", "_errors", "latency", "latencies")

    def __init__(self, registry: _obs.MetricRegistry, endpoint: str) -> None:
        labels = {"endpoint": endpoint}
        self._requests = registry.counter(
            "repro_serve_requests_total", "requests by endpoint", labels
        )
        self._errors = registry.counter(
            "repro_serve_errors_total",
            "4xx/5xx responses by endpoint", labels,
        )
        self.latency = registry.histogram(
            "repro_serve_latency_seconds",
            "request latency by endpoint", labels,
        )
        self.latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def errors(self) -> int:
        return self._errors.value

    def note_request(self) -> None:
        self._requests.inc()

    def note_result(self, elapsed: float, error: bool) -> None:
        self.latency.observe(elapsed)
        if error:
            self._errors.inc()

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "requests": self.requests, "errors": self.errors,
        }
        if self.latencies:
            ordered = sorted(self.latencies)
            out["p50_ms"] = round(
                ordered[len(ordered) // 2] * 1000, 3
            )
            out["p99_ms"] = round(
                ordered[min(len(ordered) - 1, (len(ordered) * 99) // 100)]
                * 1000,
                3,
            )
        return out


class ServeApp:
    """The query service, transport-free (see the module docstring)."""

    def __init__(
        self,
        cache_bytes: int = 256 * 1024 * 1024,
        views: MaterialisedViews | None = None,
    ):
        self.engines = EngineCache(byte_budget=cache_bytes)
        self.views = views if views is not None else MaterialisedViews()
        self._lock = threading.Lock()
        # cache_bytes=0 means "serve everything cold": the response cache
        # is disabled along with the engine registry, so the benchmark's
        # baseline arm recomputes every answer
        self._response_max = 0 if cache_bytes == 0 else _RESPONSE_CACHE_MAX
        self._responses: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        # per-app registry: statsz counts start at zero for every app,
        # unlike the process-wide REGISTRY the engine spies live in;
        # /metricsz renders both
        self.registry = _obs.MetricRegistry()
        self._response_hits = self.registry.counter(
            "repro_serve_response_cache_hits_total", "response-cache hits"
        )
        self._response_misses = self.registry.counter(
            "repro_serve_response_cache_misses_total",
            "response-cache misses",
        )
        self.registry.gauge(
            "repro_serve_engines_resident", "warm engines resident",
            fn=lambda: len(self.engines),
        )
        self.registry.gauge(
            "repro_serve_engine_bytes", "resident engine byte estimate",
            fn=lambda: self.engines.bytes,
        )
        self.registry.gauge(
            "repro_serve_response_cache_entries",
            "response-cache entries resident",
            fn=lambda: len(self._responses),
        )
        self._endpoints: dict[str, _EndpointStats] = {}
        self.started = time.monotonic()

    @property
    def response_hits(self) -> int:
        return self._response_hits.value

    @property
    def response_misses(self) -> int:
        return self._response_misses.value

    # -- engine plumbing -----------------------------------------------------

    def _engine_for(self, inst: _Instance) -> CachedEngine:
        with self._lock:
            entry = self.engines.get(inst.digest)
        if entry is not None:
            return entry
        state = self._build_state(inst)
        with self._lock:
            # a racing thread may have inserted meanwhile; keep its entry
            # (and its sigma memo) rather than replacing a warm engine
            current = self.engines._entries.get(inst.digest)
            if current is not None:
                return current
            return self.engines.put(inst.digest, state)

    def _build_state(self, inst: _Instance) -> GameState:
        """Materialise the canonical engine for one instance (cold path)."""
        _cache_mod.note_engine_build()
        with _trace.span(
            "serve.engine_build", digest=inst.digest, n=inst.n
        ):
            return self._build_state_inner(inst)

    def _build_state_inner(self, inst: _Instance) -> GameState:
        sigma = canonical_labelling(inst.graph, inst.traffic)
        relabelled = nx.empty_graph(inst.n)
        relabelled.add_edges_from(
            (sigma[u], sigma[v]) for u, v in inst.graph.edges
        )
        traffic = None
        if inst.traffic is not None:
            inv = [0] * inst.n
            for u, c in enumerate(sigma):
                inv[c] = u
            traffic = TrafficMatrix(
                inst.traffic.weights[np.ix_(inv, inv)]
            )
        state = GameState(
            relabelled, inst.alpha, traffic=traffic,
            cost_model=inst.cost_model,
        )
        state.dist.matrix  # materialise the APSP while we are cold
        return state

    def _labelling(
        self, entry: CachedEngine, inst: _Instance
    ) -> tuple[tuple[int, ...], list[int]]:
        """(sigma, inverse) for this request's labels, memoised per engine."""
        memo = entry.sigma_cache.get(inst.fingerprint)
        if memo is not None:
            return memo
        sigma = canonical_labelling(inst.graph, inst.traffic)
        inv = [0] * inst.n
        for u, c in enumerate(sigma):
            inv[c] = u
        if len(entry.sigma_cache) >= 64:
            entry.sigma_cache.pop(next(iter(entry.sigma_cache)))
        entry.sigma_cache[inst.fingerprint] = (sigma, inv)
        return sigma, inv

    # -- response cache ------------------------------------------------------

    def _response_key(
        self, endpoint: str, inst: _Instance, params: Mapping[str, Any]
    ) -> str:
        tail = json.dumps(dict(params), sort_keys=True, separators=(",", ":"))
        return f"{endpoint}|{inst.fingerprint}|{tail}"

    @staticmethod
    def _raw_key(endpoint: str, payload: Mapping[str, Any]) -> str:
        """Pre-parse cache identity: the request's canonical JSON text.

        A byte-identical repeat (the common case in a replayed or
        polling client) hits before any graph parsing or
        canonicalisation happens; respellings of the same instance fall
        through to the semantic key computed after parsing.
        """
        return "raw|" + endpoint + "|" + json.dumps(
            dict(payload), sort_keys=True, separators=(",", ":")
        )

    def _cached_response(
        self, key: str, count_miss: bool = True
    ) -> dict[str, Any] | None:
        if self._response_max == 0:
            return None
        with self._lock:
            hit = self._responses.get(key)
            if hit is None:
                if count_miss:
                    self._response_misses.inc()
                return None
            self._responses.move_to_end(key)
            self._response_hits.inc()
            return dict(hit, cached=True)

    def _remember_response(self, *keys: str, body: dict[str, Any]) -> None:
        if self._response_max == 0:
            return
        with self._lock:
            for key in keys:
                self._responses[key] = body
                self._responses.move_to_end(key)
            while len(self._responses) > self._response_max:
                self._responses.popitem(last=False)

    # -- endpoints -----------------------------------------------------------

    def _classify(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        raw_key = self._raw_key("classify", payload)
        cached = self._cached_response(raw_key, count_miss=False)
        if cached is not None:
            return cached
        inst = _Instance(payload)
        max_coalition = int(payload.get("max_coalition_size", 3))
        seed = int(payload.get("seed", 0))
        probe_samples = int(payload.get("probe_samples", 2000))
        key = self._response_key(
            "classify", inst,
            {
                "max_coalition_size": max_coalition,
                "seed": seed,
                "probe_samples": probe_samples,
            },
        )
        cached = self._cached_response(key)
        if cached is not None:
            self._remember_response(raw_key, body=cached)
            return cached
        entry = self._engine_for(inst)
        with entry.lock:
            sigma, inv = self._labelling(entry, inst)
            reports = classify_full_ladder(
                entry.state,
                max_coalition_size=max_coalition,
                seed=seed,
                probe_samples=probe_samples,
            )
        verdicts = {}
        for concept, report in reports.items():
            verdicts[concept.name] = {
                "stable": report.stable,
                "exhaustive": report.exhaustive,
                "note": report.note,
                "certificate": (
                    _move_payload(report.certificate, inv)
                    if report.certificate is not None
                    else None
                ),
            }
        body = {
            "n": inst.n,
            "alpha": str(inst.alpha),
            "engine": inst.digest,
            "verdicts": verdicts,
            "stable_concepts": sorted(
                concept.name
                for concept, report in reports.items()
                if report.stable
            ),
            "cached": False,
        }
        self._remember_response(key, raw_key, body=body)
        return body

    def _best_response(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        raw_key = self._raw_key("best_response", payload)
        cached = self._cached_response(raw_key, count_miss=False)
        if cached is not None:
            return cached
        inst = _Instance(payload)
        if "agent" not in payload:
            raise ServeError(400, "'agent' is required")
        agent = payload["agent"]
        if not isinstance(agent, int) or not (0 <= agent < inst.n):
            raise ServeError(400, f"agent must be an int in [0, {inst.n})")
        concept = _concept_of(payload.get("concept", "BGE"))
        if concept not in BEST_RESPONSE_CONCEPTS:
            raise ServeError(
                400,
                f"best_response serves the polynomial ladder "
                f"{[c.name for c in BEST_RESPONSE_CONCEPTS]}, not "
                f"{concept.name}",
            )
        key = self._response_key(
            "best_response", inst,
            {"agent": agent, "concept": concept.name},
        )
        cached = self._cached_response(key)
        if cached is not None:
            self._remember_response(raw_key, body=cached)
            return cached
        entry = self._engine_for(inst)
        with entry.lock:
            sigma, inv = self._labelling(entry, inst)
            actor = sigma[agent]
            pool = [
                move
                for move in improving_moves(entry.state, concept)
                if self._initiates(move, actor)
            ]
            evaluator = SpeculativeEvaluator(entry.state)
            best = None
            best_delta = None
            for move in pool:
                evaluation = evaluator.evaluate(move)
                delta = dict(evaluation.cost_deltas)[actor]
                if best_delta is None or delta < best_delta:
                    best, best_delta = move, delta
        body = {
            "agent": agent,
            "concept": concept.name,
            "engine": inst.digest,
            "pool": len(pool),
            "best_responding": best is None,
            "move": _move_payload(best, inv) if best is not None else None,
            "cost_delta": str(best_delta) if best_delta is not None else None,
            "cached": False,
        }
        self._remember_response(key, raw_key, body=body)
        return body

    @staticmethod
    def _initiates(move: Any, actor: int) -> bool:
        if isinstance(move, RemoveEdge):
            return move.actor == actor
        if isinstance(move, AddEdge):
            return actor in (move.u, move.v)
        if isinstance(move, Swap):
            return move.actor == actor
        return False

    def _poa(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        kind = payload.get("kind")
        params = payload.get("params")
        if not isinstance(kind, str) or not isinstance(params, Mapping):
            raise ServeError(
                400, "'kind' (str) and 'params' (object) are required"
            )
        try:
            hit = self.views.lookup(kind, params)
        except (ValueError, TypeError, KeyError) as exc:
            raise ServeError(400, f"bad trial params: {exc}") from None
        if hit is None:
            raise ServeError(
                404, "no materialised view covers this trial cell"
            )
        return {
            "kind": kind,
            "layered": hit["layered"],
            "complete": hit["complete"],
            "source": hit["source"],
            "campaign": hit["campaign"],
            **(
                {
                    "layers": hit["layers"],
                    "layers_present": hit["layers_present"],
                }
                if hit["layered"]
                else {}
            ),
            "result": to_jsonable(hit["result"]),
        }

    def _healthz(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
        }

    def _statsz(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock:
            body: dict[str, Any] = {
                **self.engines.stats(),
                **engine_cache_info(),
                "response_cache_entries": len(self._responses),
                "response_hits": self.response_hits,
                "response_misses": self.response_misses,
                **self.views.stats(),
                "uptime_s": round(time.monotonic() - self.started, 3),
                "endpoints": {
                    name: stats.summary()
                    for name, stats in sorted(self._endpoints.items())
                },
            }
        return body

    def _metricsz(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """The Prometheus text exposition of both registries.

        The JSON-only transport special-cases the reserved
        ``_raw_text`` key into a ``text/plain`` response (Prometheus
        scrapers do not parse JSON); callers of :meth:`handle` get the
        text under that key.
        """
        return {
            "_raw_text": _obs.render(_obs.REGISTRY, self.registry),
        }

    # -- dispatch ------------------------------------------------------------

    _HANDLERS = {
        "classify": _classify,
        "best_response": _best_response,
        "poa": _poa,
        "healthz": _healthz,
        "statsz": _statsz,
        "metricsz": _metricsz,
    }

    def handle(
        self, endpoint: str, payload: Mapping[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """Answer one request: ``(http status, json-safe body)``.

        Thread-safe; never raises — client mistakes come back as 4xx
        bodies, anything unexpected as a 500 with the exception text.
        """
        handler = self._HANDLERS.get(endpoint)
        if handler is None:
            return 404, {
                "error": f"unknown endpoint {endpoint!r}",
                "endpoints": sorted(self._HANDLERS),
            }
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = _EndpointStats(self.registry, endpoint)
                self._endpoints[endpoint] = stats
        stats.note_request()
        started = time.perf_counter()
        with _trace.span("serve.request", endpoint=endpoint) as sp:
            try:
                body = handler(self, payload or {})
                status = 200
            except ServeError as exc:
                status, body = exc.status, {"error": exc.message}
            except Exception as exc:  # pragma: no cover - defensive surface
                status = 500
                body = {"error": f"{type(exc).__name__}: {exc}"}
            sp.set(status=status)
        elapsed = time.perf_counter() - started
        stats.note_result(elapsed, error=status >= 400)
        with self._lock:
            stats.latencies.append(elapsed)
        return status, body
