"""A minimal asyncio HTTP/1.1 layer over :class:`~repro.serve.service.ServeApp`.

Stdlib only: ``asyncio`` streams parse requests, JSON bodies go to
:meth:`ServeApp.handle` on a bounded :class:`ThreadPoolExecutor` (cold
engine builds and ladder classifications are CPU work — running them off
the event loop keeps ``/healthz`` responsive while a miss materialises),
and answers come back as ``application/json``.  Keep-alive is supported
so a replayed trace pays one TCP handshake.

Routing is trivial: ``POST /<endpoint>`` and ``GET /<endpoint>`` both
dispatch to ``ServeApp.handle(endpoint, body)``; GETs carry an empty
payload, which is all the introspection endpoints need.

``start_server_in_thread`` runs the whole loop on a daemon thread and
returns the bound port plus a stopper — the test- and benchmark-facing
entry point.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.serve.service import ServeApp

__all__ = ["serve_forever", "start_server_in_thread"]

_MAX_BODY = 8 * 1024 * 1024  # bytes; a polite bound, not a schema
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Error"}


def _render(status: int, body: dict[str, Any]) -> bytes:
    # the reserved "_raw_text" key (the /metricsz Prometheus exposition)
    # ships as text/plain — scrapers do not parse JSON
    raw = body.get("_raw_text") if isinstance(body, dict) else None
    if isinstance(raw, str):
        payload = raw.encode()
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        payload = json.dumps(body).encode()
        content_type = "application/json"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"\r\n"
    ).encode()
    return head + payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, Any], bool] | None:
    """Parse one request: ``(method, path, body, keep_alive)``.

    Returns ``None`` on a cleanly closed connection; raises
    ``ValueError`` on a malformed request (the caller answers 400 and
    closes).
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {line!r}")
    method, path, _version = parts

    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()

    length = int(headers.get("content-length", 0) or 0)
    if length < 0 or length > _MAX_BODY:
        raise ValueError(f"unreasonable content-length {length}")
    body: dict[str, Any] = {}
    if length:
        raw_body = await reader.readexactly(length)
        try:
            decoded = json.loads(raw_body)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not JSON: {exc}") from None
        if not isinstance(decoded, dict):
            raise ValueError("request body must be a JSON object")
        body = decoded
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    return method, path, body, keep_alive


async def _handle_connection(
    app: ServeApp,
    pool: ThreadPoolExecutor,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as exc:
                writer.write(_render(400, {"error": str(exc)}))
                await writer.drain()
                break
            if request is None:
                break
            method, path, body, keep_alive = request
            endpoint = path.lstrip("/").split("?", 1)[0]
            if method not in ("GET", "POST"):
                status, answer = 400, {
                    "error": f"unsupported method {method}"
                }
            else:
                status, answer = await loop.run_in_executor(
                    pool, app.handle, endpoint, body
                )
            writer.write(_render(status, answer))
            await writer.drain()
            if not keep_alive:
                break
    except ConnectionError:
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve_forever(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    threads: int = 4,
    ready: Callable[[int], None] | None = None,
    shutdown: asyncio.Event | None = None,
) -> None:
    """Accept connections until ``shutdown`` is set (or forever).

    ``ready`` is called with the actually bound port once listening —
    pass ``port=0`` to let the OS pick one.
    """
    pool = ThreadPoolExecutor(
        max_workers=max(1, threads), thread_name_prefix="serve"
    )
    connections: set[asyncio.Task] = set()

    async def _on_connect(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        connections.add(task)
        try:
            await _handle_connection(app, pool, reader, writer)
        except asyncio.CancelledError:
            # shutdown cancelled an idle keep-alive connection: that is
            # the clean path, not an error to surface
            writer.close()
        finally:
            connections.discard(task)

    server = await asyncio.start_server(_on_connect, host, port)
    bound = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(bound)
    try:
        async with server:
            if shutdown is None:
                await server.serve_forever()
            else:
                await shutdown.wait()
    finally:
        # idle keep-alive connections would otherwise dangle past the loop
        for task in list(connections):
            task.cancel()
        await asyncio.gather(*connections, return_exceptions=True)
        pool.shutdown(wait=False)


def start_server_in_thread(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 0,
    threads: int = 4,
) -> tuple[int, Callable[[], None]]:
    """Run the server on a daemon thread; returns ``(port, stop)``.

    ``stop()`` shuts the loop down and joins the thread — tests and the
    QPS benchmark wrap the whole lifetime in ``try/finally stop()``.
    """
    started = threading.Event()
    bound: list[int] = []
    loop_holder: list[asyncio.AbstractEventLoop] = []
    stop_event_holder: list[asyncio.Event] = []

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder.append(loop)
        stop_event = asyncio.Event()
        stop_event_holder.append(stop_event)

        def _ready(value: int) -> None:
            bound.append(value)
            started.set()

        try:
            loop.run_until_complete(
                serve_forever(
                    app, host, port, threads,
                    ready=_ready, shutdown=stop_event,
                )
            )
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="serve-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve loop failed to start")

    def stop() -> None:
        loop = loop_holder[0]
        loop.call_soon_threadsafe(stop_event_holder[0].set)
        thread.join(timeout=30)

    return bound[0], stop
