"""Pluggable numerical backends for the engine's three hot inner loops.

The distance engine and the batch move-pool kernel
(:mod:`repro.core.batch`) spend essentially all of their time in three
inner loops:

* the **outer-min add sweep** — per candidate pair ``(u, v)``, the
  one-edge-add identity's row gain
  ``sum_y max(0, d(u, y) - 1 - d(v, y))`` (plain and demand-weighted);
* **BFS distance rows** — fresh rows from a set of sources on a CSR
  adjacency, the repair/probe primitive behind every non-bridge removal;
* **weighted row dots** — ``sum_y W[row] * rows[row]`` over a ``(k, n)``
  row stack, the aggregation boundary of every weighted evaluation.

This module is a tiny registry of interchangeable implementations of
exactly those loops.  The **numpy arm is the reference**: scipy's
C-level dijkstra plus vectorised numpy arithmetic, always registered,
always available.  A **numba arm** registers itself *only when numba
imports cleanly* — the dependency stays optional (``pip install``
requirements are unchanged) and the ``@njit`` kernels compile lazily on
first use.  Selection happens once at import: the fastest registered
arm wins (numba when present), overridable with ``REPRO_BACKEND=numpy``
or ``REPRO_BACKEND=numba`` (requesting an unregistered arm raises
immediately rather than silently falling back).

Exactness contract: every arm must be **bit-identical** to the numpy
reference — BFS hop counts are unique, the gain/dot arithmetic is pure
int64, and the big-M sentinel is filled with the exact Python integer —
so swapping arms can never change a game-theoretic verdict.  The
randomized trajectory harness in ``tests/test_cross_validation.py``
enforces this whenever more than one arm is registered.

This module must stay import-light (numpy/scipy only): the engine
(:mod:`repro.graphs.distances`) imports it at module load.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.sparse.csgraph import dijkstra

__all__ = [
    "Backend",
    "active",
    "active_name",
    "available_backends",
    "exact_int_fill",
    "set_backend",
    "use_backend",
]

#: Environment variable naming the arm to select at import.
ENV_VAR = "REPRO_BACKEND"


def exact_int_fill(raw: np.ndarray, unreachable: int) -> np.ndarray:
    """Convert scipy's float distances to int64 with an exact sentinel.

    Finite unweighted distances are below ``2**53``, so the float cast is
    lossless; the ``inf`` mask is then overwritten with the exact Python
    integer (numpy raises ``OverflowError`` if it does not fit ``int64``),
    so big-M sentinels never round-trip through float64.
    """
    mask = np.isinf(raw)
    dist = np.where(mask, 0.0, raw).astype(np.int64)
    if mask.any():
        dist[mask] = unreachable
    return dist


@dataclass(frozen=True)
class Backend:
    """One implementation of the three hot inner loops.

    ``add_gains(matrix, us, vs)`` returns the ``(k,)`` int64 vector of
    one-edge-add row gains ``sum_y max(0, d(us[i], y) - 1 - d(vs[i], y))``;
    ``weighted_add_gains`` weights each term by ``weights[us[i], y]``;
    ``bfs_rows(csr, sources, unreachable)`` mirrors scipy's dijkstra
    semantics exactly (a scalar source yields a 1-D row, a sequence a
    ``(k, n)`` stack, unreached entries hold the exact sentinel);
    ``weighted_row_dots(weights_rows, rows)`` reduces a ``(k, n)`` row
    stack against its aligned demand rows.
    """

    name: str
    add_gains: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
    weighted_add_gains: Callable[
        [np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray
    ]
    bfs_rows: Callable[[object, object, int], np.ndarray]
    weighted_row_dots: Callable[[np.ndarray, np.ndarray], np.ndarray]


# -- numpy arm (the reference) ----------------------------------------------


def _np_add_gains(
    matrix: np.ndarray, us: np.ndarray, vs: np.ndarray
) -> np.ndarray:
    diff = matrix[us] - (1 + matrix[vs])
    np.maximum(diff, 0, out=diff)
    return diff.sum(axis=1)


def _np_weighted_add_gains(
    matrix: np.ndarray, weights: np.ndarray, us: np.ndarray, vs: np.ndarray
) -> np.ndarray:
    diff = matrix[us] - (1 + matrix[vs])
    np.maximum(diff, 0, out=diff)
    diff *= weights[us]
    return diff.sum(axis=1)


def _np_bfs_rows(adjacency, sources, unreachable: int) -> np.ndarray:
    raw = dijkstra(adjacency, unweighted=True, indices=sources)
    return exact_int_fill(raw, unreachable)


def _np_weighted_row_dots(
    weights_rows: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    return (weights_rows * rows).sum(axis=1)


_NUMPY = Backend(
    name="numpy",
    add_gains=_np_add_gains,
    weighted_add_gains=_np_weighted_add_gains,
    bfs_rows=_np_bfs_rows,
    weighted_row_dots=_np_weighted_row_dots,
)


# -- optional numba arm ------------------------------------------------------


def _make_numba_backend() -> Backend | None:
    """Build the ``@njit`` arm, or ``None`` when numba is unavailable.

    Import failures of any flavour (missing package, broken install,
    unsupported interpreter) all mean "arm not registered" — never an
    error: the dependency is strictly optional.
    """
    try:
        import numba
    except Exception:
        return None

    @numba.njit(cache=True)
    def nb_add_gains(matrix, us, vs):
        k = us.shape[0]
        n = matrix.shape[1]
        out = np.empty(k, dtype=np.int64)
        for i in range(k):
            u = us[i]
            v = vs[i]
            acc = np.int64(0)
            for y in range(n):
                diff = matrix[u, y] - 1 - matrix[v, y]
                if diff > 0:
                    acc += diff
            out[i] = acc
        return out

    @numba.njit(cache=True)
    def nb_weighted_add_gains(matrix, weights, us, vs):
        k = us.shape[0]
        n = matrix.shape[1]
        out = np.empty(k, dtype=np.int64)
        for i in range(k):
            u = us[i]
            v = vs[i]
            acc = np.int64(0)
            for y in range(n):
                diff = matrix[u, y] - 1 - matrix[v, y]
                if diff > 0:
                    acc += weights[u, y] * diff
            out[i] = acc
        return out

    @numba.njit(cache=True)
    def nb_bfs_rows(indptr, indices, sources, n, unreachable):
        k = sources.shape[0]
        out = np.empty((k, n), dtype=np.int64)
        queue = np.empty(n, dtype=np.int64)
        for s in range(k):
            row = out[s]
            for y in range(n):
                row[y] = -1
            source = sources[s]
            row[source] = 0
            queue[0] = source
            head = 0
            tail = 1
            while head < tail:
                node = queue[head]
                head += 1
                step = row[node] + 1
                for p in range(indptr[node], indptr[node + 1]):
                    neighbor = indices[p]
                    if row[neighbor] < 0:
                        row[neighbor] = step
                        queue[tail] = neighbor
                        tail += 1
            if tail < n:
                for y in range(n):
                    if row[y] < 0:
                        row[y] = unreachable
        return out

    @numba.njit(cache=True)
    def nb_weighted_row_dots(weights_rows, rows):
        k = rows.shape[0]
        n = rows.shape[1]
        out = np.empty(k, dtype=np.int64)
        for i in range(k):
            acc = np.int64(0)
            for y in range(n):
                acc += weights_rows[i, y] * rows[i, y]
            out[i] = acc
        return out

    def bfs_rows(adjacency, sources, unreachable: int) -> np.ndarray:
        # mirror scipy's indices semantics: scalar source -> 1-D row
        scalar = np.isscalar(sources) or isinstance(sources, (int, np.integer))
        idx = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        rows = nb_bfs_rows(
            adjacency.indptr,
            adjacency.indices,
            idx,
            adjacency.shape[0],
            np.int64(unreachable),
        )
        return rows[0] if scalar else rows

    return Backend(
        name="numba",
        add_gains=nb_add_gains,
        weighted_add_gains=nb_weighted_add_gains,
        bfs_rows=bfs_rows,
        weighted_row_dots=nb_weighted_row_dots,
    )


# -- registry & selection ----------------------------------------------------

_REGISTRY: dict[str, Backend] = {"numpy": _NUMPY}
_numba_backend = _make_numba_backend()
if _numba_backend is not None:
    _REGISTRY["numba"] = _numba_backend


def available_backends() -> tuple[str, ...]:
    """Names of the registered arms (``numpy`` is always present)."""
    return tuple(sorted(_REGISTRY))


def _select_at_import() -> Backend:
    requested = os.environ.get(ENV_VAR)
    if requested:
        try:
            return _REGISTRY[requested]
        except KeyError:
            raise RuntimeError(
                f"{ENV_VAR}={requested!r} requests an unregistered backend; "
                f"available: {', '.join(available_backends())} "
                "(the numba arm registers only when numba imports cleanly)"
            ) from None
    # default: the fastest registered arm — numba when present
    return _REGISTRY.get("numba", _REGISTRY["numpy"])


_ACTIVE: Backend = _select_at_import()


def active() -> Backend:
    """The currently selected backend."""
    return _ACTIVE


def active_name() -> str:
    """Name of the currently selected backend."""
    return _ACTIVE.name


def set_backend(name: str) -> str:
    """Select a registered arm; returns the previously active name.

    Primarily a test hook (the cross-validation suite swaps arms
    mid-process); production selection happens once at import.
    """
    global _ACTIVE
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise RuntimeError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    previous = _ACTIVE.name
    _ACTIVE = backend
    return previous


@contextmanager
def use_backend(name: str):
    """Context manager: run a block under a specific arm, then restore."""
    previous = set_backend(name)
    try:
        yield _ACTIVE
    finally:
        set_backend(previous)
