"""Entry point for ``python -m repro.campaigns``."""

import sys

from repro.campaigns.cli import main

if __name__ == "__main__":
    sys.exit(main())
