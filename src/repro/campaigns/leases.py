"""Atomic chunk-claim leases for multi-host campaign execution.

A campaign store that several hosts work on concurrently needs a way to
divide the pending trials without a coordinator.  The lease protocol
lives entirely in the filesystem — a ``claims/`` directory next to the
result files — and uses only *atomic metadata operations* (``link`` to
acquire, ``rename`` to refresh and to break), so it is safe on the
shared filesystems campaign stores live on and needs no ``fcntl`` locks
(whose semantics are famously unreliable over NFS).

Protocol, per chunk of the deterministic trial partition:

``claims/<chunk>.lease``
    Held by exactly one host.  *Acquire* writes the lease body to a
    private temp file and ``os.link``\\ s it to the lease path — the link
    either creates the name atomically or fails because another host
    holds it; there is no window in which two hosts both succeed.
    *Heartbeat* rewrites the temp file with a fresh ``refreshed``
    timestamp and ``os.rename``\\ s it over the lease (atomic replace; only
    the owner refreshes).  *Release* unlinks it.
``claims/<chunk>.done``
    Written (atomic rename) once every trial of the chunk has an ``ok``
    record; a done chunk is never claimable again.

Crash recovery: a host that dies stops heartbeating, so its lease's
``refreshed`` timestamp ages past the TTL.  Another host *breaks* the
stale lease by renaming it aside — the rename succeeds for exactly one
contender (the loser's rename raises ``FileNotFoundError``) — and then
runs the normal acquire.  A torn lease body (SIGKILL mid-write) parses
as stale, so it is breakable immediately.

The TTL must exceed the longest heartbeat gap — the executor refreshes
after every finished trial, so in practice: the slowest single trial.
A lease broken *while its owner still lives* (TTL set too low) cannot
corrupt results: trials are deterministic and shard records are
idempotent, so the worst case is duplicated work, never divergence.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Sequence

from repro.obs import metrics as _obs
from repro.obs import trace as _trace

__all__ = ["Lease", "LeaseManager", "chunk_id"]

_CLAIMS_DIR = "claims"

#: Protocol meters (process-wide; per-manager counts live on the
#: instance).  ``break``/``reclaim`` firing on a healthy campaign means
#: the TTL sits below the slowest trial — the first thing ``status``
#: checks when a multi-host run goes slower than expected.
_ACQUIRED = _obs.counter(
    "repro_lease_acquired_total", "chunk leases acquired"
)
_BROKEN = _obs.counter(
    "repro_lease_broken_total", "stale leases broken (dead-host reclaims)"
)
_REFRESHED = _obs.counter(
    "repro_lease_refreshed_total", "lease heartbeats written"
)
_RELEASED = _obs.counter(
    "repro_lease_released_total", "leases released"
)
_DONE = _obs.counter(
    "repro_lease_done_total", "chunks retired with a done marker"
)


def chunk_id(trial_keys: Sequence[str]) -> str:
    """Content-addressed identity of one chunk of the trial partition.

    Hashing the ordered trial keys makes the id a pure function of the
    spec expansion and the chunking, so every cooperating host computes
    the same ids without coordination (hosts must agree on the chunk
    size for the partitions to line up; the executor derives it
    deterministically from the spec for exactly this reason).
    """
    digest = blake2b("\n".join(trial_keys).encode(), digest_size=12)
    return digest.hexdigest()


@dataclass(frozen=True)
class Lease:
    """Decoded body of one lease file."""

    chunk: str
    host: str
    acquired: float
    refreshed: float
    ttl: float

    def stale(self, now: float) -> bool:
        return now > self.refreshed + self.ttl


class LeaseManager:
    """Claim, heartbeat, release and reclaim chunk leases for one host.

    ``clock`` is injectable for the TTL-expiry tests; production uses
    ``time.time`` (wall time — lease timestamps are compared *across
    hosts*, so a shared wall clock with seconds-level agreement is
    assumed, which TTLs of tens of seconds tolerate comfortably).
    """

    def __init__(
        self,
        root: str | Path,
        host_id: str,
        ttl: float = 60.0,
        clock=time.time,
    ):
        if not host_id:
            raise ValueError("claiming needs a non-empty host id")
        if any(sep in host_id for sep in ("/", "\\", "\0")):
            raise ValueError(f"host id {host_id!r} must be filename-safe")
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.root = Path(root)
        self.claims = self.root / _CLAIMS_DIR
        self.claims.mkdir(parents=True, exist_ok=True)
        self.host_id = host_id
        self.ttl = float(ttl)
        self._clock = clock
        #: chunks this manager currently holds
        self.held: set[str] = set()
        #: stale leases this manager broke (dead-host reclaims)
        self.reclaimed = 0

    # -- paths ---------------------------------------------------------------

    def _lease_path(self, chunk: str) -> Path:
        return self.claims / f"{chunk}.lease"

    def _done_path(self, chunk: str) -> Path:
        return self.claims / f"{chunk}.done"

    def _tmp_path(self, chunk: str) -> Path:
        return self.claims / f".{chunk}.{self.host_id}.{uuid.uuid4().hex}.tmp"

    # -- inspection ----------------------------------------------------------

    def read(self, chunk: str) -> Lease | None:
        """The current lease of ``chunk``, or ``None`` (absent or torn)."""
        try:
            payload = json.loads(self._lease_path(chunk).read_text())
            return Lease(
                chunk=chunk,
                host=str(payload["host"]),
                acquired=float(payload["acquired"]),
                refreshed=float(payload["refreshed"]),
                ttl=float(payload["ttl"]),
            )
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # torn body from a killed writer: report as a stale sentinel
            # so claimants break it through the normal rename path
            return Lease(
                chunk=chunk, host="?", acquired=0.0, refreshed=0.0,
                ttl=0.0,
            )

    def is_done(self, chunk: str) -> bool:
        return self._done_path(chunk).exists()

    def active(self) -> list[Lease]:
        """Every currently-parseable lease (diagnostics / ``status``)."""
        leases = []
        for path in sorted(self.claims.glob("*.lease")):
            lease = self.read(path.stem)
            if lease is not None:
                leases.append(lease)
        return leases

    # -- the protocol --------------------------------------------------------

    def _write_body(self, chunk: str, acquired: float) -> Path:
        now = self._clock()
        tmp = self._tmp_path(chunk)
        tmp.write_text(
            json.dumps(
                {
                    "host": self.host_id,
                    "acquired": acquired if acquired else now,
                    "refreshed": now,
                    "ttl": self.ttl,
                },
                sort_keys=True,
            )
        )
        return tmp

    def claim(self, chunk: str) -> bool:
        """Try to acquire ``chunk``; True iff this host now holds it."""
        with _trace.span("campaign.lease.claim", chunk=chunk) as sp:
            held = self._claim(chunk)
            sp.set(held=held)
            return held

    def _claim(self, chunk: str) -> bool:
        if self.is_done(chunk):
            return False
        lease = self.read(chunk)
        if lease is not None:
            if lease.host == self.host_id and chunk in self.held:
                return True
            if not lease.stale(self._clock()):
                return False
            # stale: break it by renaming aside — atomic, single-winner
            broken = self.claims / f".{chunk}.broken.{uuid.uuid4().hex}"
            try:
                os.rename(self._lease_path(chunk), broken)
            except FileNotFoundError:
                # another contender broke it first; fall through and race
                # for the acquire like everyone else
                pass
            else:
                self.reclaimed += 1
                _BROKEN.inc()
                broken.unlink(missing_ok=True)
        tmp = self._write_body(chunk, acquired=0.0)
        try:
            os.link(tmp, self._lease_path(chunk))
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)
        self.held.add(chunk)
        _ACQUIRED.inc()
        return True

    def refresh(self, chunk: str) -> None:
        """Heartbeat: push the held lease's ``refreshed`` forward.

        Guarded by an ownership check so a host whose lease was broken
        (it was presumed dead) does not resurrect it; past that check the
        ``rename`` is atomic, so readers always see a whole body.
        """
        if chunk not in self.held:
            raise ValueError(f"host {self.host_id} does not hold {chunk}")
        lease = self.read(chunk)
        if lease is None or lease.host != self.host_id:
            self.held.discard(chunk)
            raise ValueError(
                f"lease for {chunk} was reclaimed by "
                f"{lease.host if lease else 'nobody'} — "
                "raise the ttl above the slowest trial"
            )
        acquired = lease.acquired
        tmp = self._write_body(chunk, acquired=acquired)
        os.rename(tmp, self._lease_path(chunk))
        _REFRESHED.inc()

    def release(self, chunk: str, done: bool = False) -> None:
        """Drop a held lease; ``done=True`` also retires the chunk."""
        if done:
            tmp = self._tmp_path(chunk)
            tmp.write_text(
                json.dumps({"host": self.host_id, "at": self._clock()})
            )
            os.rename(tmp, self._done_path(chunk))
            _DONE.inc()
        lease = self.read(chunk)
        if lease is not None and lease.host == self.host_id:
            self._lease_path(chunk).unlink(missing_ok=True)
        self.held.discard(chunk)
        _RELEASED.inc()

    def release_all(self) -> None:
        for chunk in list(self.held):
            self.release(chunk)
