"""Trial runners: how one cell of a campaign grid is executed.

Each runner is a plain function ``(params, base_seed) -> result dict``
registered under a *kind* name; :func:`execute_trial` dispatches a
:class:`~repro.campaigns.spec.Trial` to its runner inside a worker
process.  Results must be exact (``Fraction`` where the quantity is
exact) and JSON-encodable through
:func:`repro.campaigns.spec.to_jsonable`.

Determinism contract: a runner's randomness, if any, is derived from the
campaign's base seed and the trial's own parameters through
:mod:`repro._rng` — never from ambient state — so a sharded pool
reproduces the serial run bit-for-bit at any worker count.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro._rng import coerce_rng, trial_seed
from repro.core.concepts import Concept

__all__ = ["RUNNERS", "execute_trial", "runner", "scheduler_by_name"]

Runner = Callable[[Mapping[str, Any], int], dict[str, Any]]

RUNNERS: dict[str, Runner] = {}


def runner(kind: str) -> Callable[[Runner], Runner]:
    """Register a trial runner under ``kind``."""

    def register(fn: Runner) -> Runner:
        if kind in RUNNERS:
            raise ValueError(f"duplicate runner kind {kind!r}")
        RUNNERS[kind] = fn
        return fn

    return register


def execute_trial(
    kind: str, params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """Run one trial and return its result dict (raises on failure)."""
    try:
        run = RUNNERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown trial kind {kind!r}; known: {sorted(RUNNERS)}"
        ) from None
    return run(params, base_seed)


def scheduler_by_name(name: str):
    """Dynamics scheduler lookup by short name (first / random / best)."""
    from repro.dynamics.schedulers import (
        best_improvement_scheduler,
        first_improvement_scheduler,
        random_improvement_scheduler,
    )

    table = {
        "first": first_improvement_scheduler,
        "random": random_improvement_scheduler,
        "best": best_improvement_scheduler,
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(table)}"
        ) from None


def _concept(params: Mapping[str, Any]) -> Concept:
    concept = params["concept"]
    if not isinstance(concept, Concept):
        raise TypeError(f"concept param must be a Concept, got {concept!r}")
    return concept


@runner("tree_poa")
def run_tree_poa(params: Mapping[str, Any], base_seed: int) -> dict[str, Any]:
    """Exact worst-case PoA over all non-isomorphic trees (one cell of
    Table 1); deterministic, so the base seed is unused."""
    from repro.analysis.poa import empirical_tree_poa

    result = empirical_tree_poa(
        int(params["n"]),
        params["alpha"],
        _concept(params),
        k=params.get("k"),
    )
    return {
        "poa": result.poa,
        "equilibria": result.equilibria,
        "candidates": result.candidates,
    }


@runner("graph_poa")
def run_graph_poa(params: Mapping[str, Any], base_seed: int) -> dict[str, Any]:
    """Exact worst-case PoA over all connected graphs (``n <= 7``)."""
    from repro.analysis.poa import empirical_poa

    result = empirical_poa(
        int(params["n"]),
        params["alpha"],
        _concept(params),
        k=params.get("k"),
    )
    return {
        "poa": result.poa,
        "equilibria": result.equilibria,
        "candidates": result.candidates,
    }


@runner("dynamics")
def run_dynamics_trial(
    params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """One seeded improving-move dynamics run from a random tree.

    Mirrors one index of
    :func:`repro.dynamics.convergence.convergence_study` exactly: the
    per-run rng is ``coerce_rng(trial_seed(base_seed, index))`` (the
    study's historical formula), the start tree is drawn first, then the
    stability factor of the start is measured, then the dynamics run —
    so a campaign over ``index: range(runs)`` aggregates to the very
    same :class:`~repro.dynamics.convergence.ConvergenceStats`.
    """
    from repro.core.state import GameState
    from repro.dynamics.engine import run_dynamics
    from repro.equilibria.approximate import stability_factor
    from repro.graphs.generation import random_tree

    concept = _concept(params)
    n = int(params["n"])
    index = int(params["index"])
    max_rounds = int(params.get("max_rounds", 2000))
    scheduler = scheduler_by_name(params.get("scheduler", "first"))

    rng = coerce_rng(trial_seed(base_seed, index))
    start = random_tree(n, rng)
    start_state = GameState(start, params["alpha"])
    instability = stability_factor(start_state, concept)
    result = run_dynamics(
        start,
        params["alpha"],
        concept,
        scheduler=scheduler,
        max_rounds=max_rounds,
        rng=rng,
    )
    return {
        "converged": bool(result.converged),
        "cycled": bool(result.cycled),
        "rounds": int(result.rounds),
        "final_rho": result.final.rho(),
        "start_instability": instability,
    }
