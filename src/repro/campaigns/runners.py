"""Trial runners: how one cell of a campaign grid is executed.

Each runner is a plain function ``(params, base_seed) -> result dict``
registered under a *kind* name; :func:`execute_trial` dispatches a
:class:`~repro.campaigns.spec.Trial` to its runner inside a worker
process.  Results must be exact (``Fraction`` where the quantity is
exact) and JSON-encodable through
:func:`repro.campaigns.spec.to_jsonable`.

Determinism contract: a runner's randomness, if any, is derived from the
campaign's base seed and the trial's own parameters through
:mod:`repro._rng` — never from ambient state — so a sharded pool
reproduces the serial run bit-for-bit at any worker count.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro._rng import coerce_rng, derive_seed, trial_seed
from repro.core.concepts import Concept

__all__ = ["RUNNERS", "execute_trial", "runner", "scheduler_by_name"]

Runner = Callable[[Mapping[str, Any], int], dict[str, Any]]

RUNNERS: dict[str, Runner] = {}


def runner(kind: str) -> Callable[[Runner], Runner]:
    """Register a trial runner under ``kind``."""

    def register(fn: Runner) -> Runner:
        if kind in RUNNERS:
            raise ValueError(f"duplicate runner kind {kind!r}")
        RUNNERS[kind] = fn
        return fn

    return register


def execute_trial(
    kind: str, params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """Run one trial and return its result dict (raises on failure)."""
    try:
        run = RUNNERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown trial kind {kind!r}; known: {sorted(RUNNERS)}"
        ) from None
    return run(params, base_seed)


def scheduler_by_name(name: str):
    """Dynamics scheduler lookup by short name (first / random / best)."""
    from repro.dynamics.schedulers import (
        best_improvement_scheduler,
        first_improvement_scheduler,
        random_improvement_scheduler,
    )

    table = {
        "first": first_improvement_scheduler,
        "random": random_improvement_scheduler,
        "best": best_improvement_scheduler,
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(table)}"
        ) from None


def _concept(params: Mapping[str, Any]) -> Concept:
    concept = params["concept"]
    if not isinstance(concept, Concept):
        raise TypeError(f"concept param must be a Concept, got {concept!r}")
    return concept


@runner("tree_poa")
def run_tree_poa(params: Mapping[str, Any], base_seed: int) -> dict[str, Any]:
    """Exact worst-case PoA over all non-isomorphic trees (one cell of
    Table 1); deterministic, so the base seed is unused."""
    from repro.analysis.poa import empirical_tree_poa

    result = empirical_tree_poa(
        int(params["n"]),
        params["alpha"],
        _concept(params),
        k=params.get("k"),
    )
    return {
        "poa": result.poa,
        "equilibria": result.equilibria,
        "candidates": result.candidates,
    }


@runner("graph_poa")
def run_graph_poa(params: Mapping[str, Any], base_seed: int) -> dict[str, Any]:
    """Exact worst-case PoA over all connected graphs.

    Atlas-backed to ``n = 7``, canonical-key enumerated above; for
    ``n >= 8`` prefer the ``exact_poa`` kind with an ``m`` axis — one
    trial per edge-count layer resumes at layer granularity."""
    from repro.analysis.poa import empirical_poa

    result = empirical_poa(
        int(params["n"]),
        params["alpha"],
        _concept(params),
        k=params.get("k"),
    )
    return {
        "poa": result.poa,
        "equilibria": result.equilibria,
        "candidates": result.candidates,
    }


@runner("weighted_poa")
def run_weighted_poa(
    params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """Family-relative worst-case PoA under a heterogeneous demand matrix.

    ``params["traffic"]`` is a **required** JSON-able traffic spec
    (:func:`repro.core.traffic.traffic_from_spec`) — part of the trial's
    content hash, so the demand matrix is a pure function of the trial's
    identity and every trial has exactly one spelling (an absent axis
    would hash differently from an explicit ``{"model": "uniform"}``,
    splitting one semantic trial across two keys).  Deterministic; the
    base seed is unused (seeded traffic models carry their own ``seed``
    parameter).
    """
    from repro.analysis.poa import empirical_weighted_poa
    from repro.core.traffic import traffic_from_spec

    n = int(params["n"])
    if params.get("traffic") is None:
        raise ValueError(
            "weighted_poa trials need an explicit 'traffic' spec "
            '(use {"model": "uniform"} for the uniform game)'
        )
    traffic = traffic_from_spec(params["traffic"], n)
    family = params.get("family", "trees")
    if family not in ("trees", "graphs"):
        raise ValueError(f"unknown graph family {family!r}")
    result = empirical_weighted_poa(
        n,
        params["alpha"],
        _concept(params),
        traffic,
        k=params.get("k"),
        trees_only=family == "trees",
    )
    return {
        "poa": result.poa,
        "worst_cost": result.worst_cost,
        "best_cost": result.best_cost,
        "equilibria": result.equilibria,
        "candidates": result.candidates,
    }


@runner("generalized_poa")
def run_generalized_poa(
    params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """Family-relative worst-case PoA under a pluggable cost model.

    ``params["costmodel"]`` is a **required** JSON-able cost-model spec
    (:func:`repro.core.costmodel.costmodel_from_spec`) — part of the
    trial's content hash for the same single-spelling reason as the
    ``weighted_poa`` runner's traffic axis (use ``{"model": "linear"}``
    for the paper's game).  An optional ``traffic`` spec composes a
    demand matrix with the model.  Deterministic; the base seed is
    unused.
    """
    from repro.analysis.poa import empirical_weighted_poa
    from repro.core.costmodel import costmodel_from_spec
    from repro.core.traffic import traffic_from_spec

    n = int(params["n"])
    if params.get("costmodel") is None:
        raise ValueError(
            "generalized_poa trials need an explicit 'costmodel' spec "
            '(use {"model": "linear"} for the paper\'s game)'
        )
    cost_model = costmodel_from_spec(params["costmodel"], n)
    traffic = traffic_from_spec(params.get("traffic"), n)
    family = params.get("family", "trees")
    if family not in ("trees", "graphs"):
        raise ValueError(f"unknown graph family {family!r}")
    result = empirical_weighted_poa(
        n,
        params["alpha"],
        _concept(params),
        traffic,
        k=params.get("k"),
        trees_only=family == "trees",
        cost_model=cost_model,
    )
    return {
        "poa": result.poa,
        "worst_cost": result.worst_cost,
        "best_cost": result.best_cost,
        "equilibria": result.equilibria,
        "candidates": result.candidates,
    }


def _witness_payload(witness, traffic=None) -> dict[str, Any]:
    """Content-addressed witness certificate: canonical-key digest + edges.

    The digest is the BLAKE2b of the (joint, when ``traffic`` is given)
    canonical key, so two campaigns that find isomorphic worst cases
    report byte-identical certificates; the edge list makes the witness
    replayable without the store.
    """
    from hashlib import blake2b

    from repro.graphs.canonical import canonical_key

    if witness is None:
        return {"witness_key": None, "witness_edges": None}
    return {
        "witness_key": blake2b(
            canonical_key(witness, traffic), digest_size=16
        ).hexdigest(),
        "witness_edges": sorted(
            [int(u), int(v)] if u < v else [int(v), int(u)]
            for u, v in witness.edges
        ),
    }


@runner("exact_poa")
def run_exact_poa(params, base_seed: int) -> dict[str, Any]:
    """Exact PoA over a canonically enumerated family, with certificates.

    ``family`` selects the quantifier: ``"trees"`` (all non-isomorphic
    trees), ``"graphs"`` (all connected graphs — optionally one
    edge-count layer ``m``, the campaign resume unit: the full PoA is
    the max over the ``m`` axis and each layer is its own
    content-addressed trial), or ``"labelled_trees"`` (**all** labelled
    trees deduplicated by the joint ``(tree, W)`` canonical key, which
    needs an explicit ``traffic`` spec — the exact weighted tree PoA).
    Results carry the worst witness as a canonical-key digest plus edge
    list.  Deterministic; the base seed is unused.
    """
    from repro.analysis.poa import (
        empirical_layer_poa,
        empirical_poa,
        empirical_tree_poa,
        exact_weighted_tree_poa,
    )

    n = int(params["n"])
    family = params.get("family", "graphs")
    concept = _concept(params)
    k = params.get("k")
    if family == "trees":
        result = empirical_tree_poa(n, params["alpha"], concept, k=k)
    elif family == "graphs":
        if params.get("m") is not None:
            result = empirical_layer_poa(
                n, int(params["m"]), params["alpha"], concept, k=k
            )
        else:
            result = empirical_poa(n, params["alpha"], concept, k=k)
    elif family == "labelled_trees":
        from repro.core.traffic import traffic_from_spec

        if params.get("traffic") is None:
            raise ValueError(
                "labelled_trees trials need an explicit 'traffic' spec "
                "(the joint canonical key acts on the demand matrix)"
            )
        traffic = traffic_from_spec(params["traffic"], n)
        weighted = exact_weighted_tree_poa(
            n, params["alpha"], concept, traffic, k=k
        )
        return {
            "poa": weighted.poa,
            "worst_cost": weighted.worst_cost,
            "best_cost": weighted.best_cost,
            "equilibria": weighted.equilibria,
            "candidates": weighted.candidates,
            **_witness_payload(weighted.witness, traffic),
        }
    else:
        raise ValueError(f"unknown graph family {family!r}")
    return {
        "poa": result.poa,
        "equilibria": result.equilibria,
        "candidates": result.candidates,
        **_witness_payload(result.witness),
    }


@runner("conjecture_hunt")
def run_conjecture_hunt(
    params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """One exhaustive Corbo–Parkes cell: every NE on every connected
    graph at ``(n, alpha)``, each checked for pairwise stability
    (:func:`repro.analysis.search.exhaustive_conjecture_sweep`), with
    replayable refutation certificates.  Deterministic — no sampling —
    so the sweep shards and resumes like any other campaign."""
    from repro.analysis.search import exhaustive_conjecture_sweep

    sweep = exhaustive_conjecture_sweep(
        int(params["n"]),
        params["alpha"],
        max_certificates=int(params.get("max_certificates", 5)),
    )
    return {
        "candidates": sweep.candidates,
        "feasible_graphs": sweep.feasible_graphs,
        "ne_graphs": sweep.ne_graphs,
        "ne_assignments": sweep.ne_assignments,
        "counterexample_graphs": sweep.counterexample_graphs,
        "certificates": list(sweep.certificates),
    }


def _figure_registry():
    from repro.constructions.figures import (
        figure2_nash_not_pairwise_stable,
        figure5_bae_bge_not_bne,
        figure6_bne_not_2bse,
        figure7_kbse_not_bne,
        figure8_bae_not_unilateral_ae,
    )

    return {
        "figure2": figure2_nash_not_pairwise_stable,
        "figure5": figure5_bae_bge_not_bne,
        "figure6": figure6_bne_not_2bse,
        "figure7": figure7_kbse_not_bne,
        "figure8": figure8_bae_not_unilateral_ae,
    }


@runner("constructions")
def run_constructions(
    params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """One paper figure as a campaign trial.

    Rebuilds the named construction
    (:mod:`repro.constructions.figures`; ``figure7`` accepts ``k`` /
    ``i``) and reports its exact polynomial-ladder memberships plus the
    headline quantities — deterministic, so figure sweeps shard and
    resume like any other campaign.
    """
    from repro.analysis.search import classify_re_bae_bswe
    from repro.core.state import GameState

    registry = _figure_registry()
    name = params["figure"]
    try:
        build = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; known: {sorted(registry)}"
        ) from None
    if name == "figure7":
        kwargs = {}
        if params.get("k") is not None:
            kwargs["k"] = int(params["k"])
        if params.get("i") is not None:
            kwargs["i"] = int(params["i"])
        fig = build(**kwargs)
    else:
        fig = build()
    state = GameState(fig.graph, fig.alpha)
    re_ok, bae_ok, bswe_ok = classify_re_bae_bswe(state)
    return {
        "n": state.n,
        "alpha": fig.alpha,
        "re": re_ok,
        "bae": bae_ok,
        "bswe": bswe_ok,
        "ps": re_ok and bae_ok,
        "bge": re_ok and bae_ok and bswe_ok,
        "rho": state.rho(),
    }


@runner("ladder_classify")
def run_ladder_classify(
    params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """Full-ladder stability profile of one seeded random instance.

    Draws the start graph from ``(base_seed, n, alpha, start, index)``
    through :func:`repro._rng.derive_seed` and runs
    :func:`repro.analysis.search.classify_full_ladder` with a second
    derived seed for the exponential concepts' probe fallbacks — fully
    reproducible at any worker count.  Results carry per-concept
    ``stable`` / ``exhaustive`` flags.

    An optional ``costmodel`` spec re-classifies the same seeded
    instance under a generalized cost regime (the start graph draw does
    not depend on the model, so linear-vs-concave-vs-max rows of a sweep
    see identical instances).  Modeled trials report the exact
    ``social_cost`` instead of ``rho`` (no linear optimum to divide by);
    trials without the axis are byte-identical to the historical result.
    """
    from repro.analysis.search import classify_full_ladder
    from repro.core.costmodel import costmodel_from_spec
    from repro.core.state import GameState
    from repro.graphs.generation import random_connected_gnp, random_tree

    n = int(params["n"])
    index = int(params["index"])
    start = params.get("start", "tree")
    alpha = params["alpha"]
    cost_model = costmodel_from_spec(params.get("costmodel"), n)
    rng = coerce_rng(derive_seed(base_seed, "ladder", n, str(alpha), start, index))
    if start == "tree":
        graph = random_tree(n, rng)
    elif start == "gnp":
        graph = random_connected_gnp(n, float(params.get("p", 0.3)), rng)
    else:
        raise ValueError(f"unknown start family {start!r}")
    state = GameState(graph, alpha, cost_model=cost_model)
    reports = classify_full_ladder(
        state,
        max_coalition_size=int(params.get("max_coalition_size", 3)),
        seed=derive_seed(base_seed, "ladder-probe", n, str(alpha), start, index),
        probe_samples=int(params.get("probe_samples", 2000)),
    )
    headline = (
        {"social_cost": state.social_cost()}
        if state.modeled
        else {"rho": state.rho()}
    )
    return {
        **headline,
        "ladder": {
            concept.name: {
                "stable": bool(report.stable),
                "exhaustive": bool(report.exhaustive),
            }
            for concept, report in sorted(
                reports.items(), key=lambda item: item[0].name
            )
        },
    }


@runner("dynamics")
def run_dynamics_trial(
    params: Mapping[str, Any], base_seed: int
) -> dict[str, Any]:
    """One seeded improving-move dynamics run from a random tree.

    Mirrors one index of
    :func:`repro.dynamics.convergence.convergence_study` exactly: the
    per-run rng is ``coerce_rng(trial_seed(base_seed, index))`` (the
    study's historical formula), the start tree is drawn first, then the
    stability factor of the start is measured, then the dynamics run —
    so a campaign over ``index: range(runs)`` aggregates to the very
    same :class:`~repro.dynamics.convergence.ConvergenceStats`.

    ``traffic`` / ``costmodel`` spec params run the weighted or
    generalized game.  Every trial reports ``final_quality``
    (:func:`repro.core.optimum.quality_ratio` — clique/star-relative,
    == rho for uniform-linear) and ``final_social_cost``; ``final_rho``
    is only present in the uniform-linear regime, where the closed-form
    optimum applies.
    """
    from repro.core.costmodel import costmodel_from_spec
    from repro.core.optimum import quality_ratio
    from repro.core.state import GameState
    from repro.core.traffic import traffic_from_spec
    from repro.dynamics.engine import run_dynamics
    from repro.equilibria.approximate import stability_factor
    from repro.graphs.generation import random_tree

    concept = _concept(params)
    n = int(params["n"])
    index = int(params["index"])
    max_rounds = int(params.get("max_rounds", 2000))
    scheduler = scheduler_by_name(params.get("scheduler", "first"))
    traffic = traffic_from_spec(params.get("traffic"), n)
    cost_model = costmodel_from_spec(params.get("costmodel"), n)

    rng = coerce_rng(trial_seed(base_seed, index))
    start = random_tree(n, rng)
    start_state = GameState(
        start, params["alpha"], traffic=traffic, cost_model=cost_model
    )
    instability = stability_factor(start_state, concept)
    result = run_dynamics(
        start,
        params["alpha"],
        concept,
        scheduler=scheduler,
        max_rounds=max_rounds,
        rng=rng,
        traffic=traffic,
        cost_model=cost_model,
    )
    final = result.final
    out = {
        "converged": bool(result.converged),
        "cycled": bool(result.cycled),
        "rounds": int(result.rounds),
        "final_social_cost": final.social_cost(),
        "final_quality": quality_ratio(final),
        "start_instability": instability,
    }
    if not (final.weighted or final.modeled):
        out["final_rho"] = final.rho()
    return out
