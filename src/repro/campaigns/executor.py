"""Sharded campaign execution over a ``multiprocessing`` pool.

The executor expands a :class:`~repro.campaigns.spec.CampaignSpec`,
drops every trial the store has already completed (resumability),
partitions the remainder into contiguous chunks, and runs the chunks
either in-process (``workers <= 1``) or on a process pool, streaming
finished records into the store as each chunk lands.

Failure model:

* a trial that raises is recorded as an ``error`` record — never fatal
  to the campaign;
* a *worker process* that dies (OOM-kill, segfault, pool breakage) makes
  its chunk's future raise; the parent falls back to re-running that
  chunk serially in-process, trial-by-trial, so one bad worker cannot
  lose work or wedge the run;
* a killed *campaign* (SIGKILL mid-run) leaves at most one torn JSONL
  line, which the store tolerates; the next run skips everything with an
  ``ok`` record and re-executes only the rest.

Determinism: trial results depend only on the trial's parameters and the
campaign's base seed (see :mod:`repro.campaigns.runners`), and
aggregation orders by spec expansion rather than store insertion, so the
same campaign is bit-identical at any worker count.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.campaigns.runners import execute_trial
from repro.campaigns.spec import CampaignSpec, Trial
from repro.campaigns.store import CampaignStore

__all__ = ["RunStats", "TrialOutcome", "run_campaign"]


@dataclass(frozen=True)
class TrialOutcome:
    """One finished trial, as produced by a worker."""

    key: str
    kind: str
    params: dict[str, Any]
    status: str  # "ok" | "error"
    result: dict[str, Any] | None
    error: str | None
    elapsed: float


@dataclass
class RunStats:
    """What one ``run_campaign`` invocation did."""

    total: int = 0  # trials in the expanded campaign
    skipped: int = 0  # already completed in the store (resumed past)
    executed: int = 0  # run this invocation (ok + failed)
    failed: int = 0  # error records written this invocation
    remaining: int = 0  # left pending (max_trials cut the run short)
    fallbacks: int = 0  # chunks re-run in-parent after a worker died
    elapsed: float = 0.0
    outcomes: list[TrialOutcome] = field(default_factory=list)

    @property
    def completed_after(self) -> int:
        return self.skipped + self.executed - self.failed


ProgressFn = Callable[[TrialOutcome, "RunStats"], None]


def _run_trial(trial: Trial, base_seed: int) -> TrialOutcome:
    started = time.perf_counter()
    try:
        result = execute_trial(trial.kind, trial.params, base_seed)
        status, error = "ok", None
    except Exception:
        result, status = None, "error"
        error = traceback.format_exc(limit=20)
    return TrialOutcome(
        key=trial.key,
        kind=trial.kind,
        params=trial.params,
        status=status,
        result=result,
        error=error,
        elapsed=time.perf_counter() - started,
    )


def _run_chunk(trials: Sequence[Trial], base_seed: int) -> list[TrialOutcome]:
    """Worker entry point: run one chunk, every trial individually guarded."""
    return [_run_trial(trial, base_seed) for trial in trials]


def _chunked(trials: Sequence[Trial], size: int) -> list[list[Trial]]:
    return [list(trials[i : i + size]) for i in range(0, len(trials), size)]


def _default_chunk_size(pending: int, workers: int) -> int:
    # aim for ~4 chunks per worker so a crashed worker loses little and
    # stragglers balance, without paying per-trial IPC for tiny trials
    return max(1, min(32, -(-pending // (workers * 4))))


def _record(store: CampaignStore, outcome: TrialOutcome) -> None:
    store.append(
        key=outcome.key,
        kind=outcome.kind,
        params=outcome.params,
        status=outcome.status,
        result=outcome.result,
        error=outcome.error,
        elapsed=outcome.elapsed,
    )


def run_campaign(
    spec: CampaignSpec,
    store: CampaignStore | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    max_trials: int | None = None,
    retry_errors: bool = True,
    progress: ProgressFn | None = None,
) -> RunStats:
    """Run (or resume) a campaign; returns what this invocation did.

    ``store=None`` runs against an ephemeral in-memory store (the
    returned :attr:`RunStats.outcomes` still carry every result).
    ``max_trials`` caps how many pending trials this invocation executes
    — the deterministic stand-in for "the run was interrupted" that the
    resumability tests and the CI smoke job use.  ``retry_errors=False``
    also skips trials whose previous attempt errored.
    """
    if store is None:
        store = CampaignStore(None)
    store.save_spec(spec)

    stats = RunStats()
    started = time.perf_counter()
    trials = spec.trials()
    stats.total = len(trials)

    skip = set(store.completed_keys())
    if not retry_errors:
        skip |= set(store.error_keys())
    pending = [trial for trial in trials if trial.key not in skip]
    stats.skipped = stats.total - len(pending)

    if max_trials is not None:
        stats.remaining = max(0, len(pending) - max_trials)
        pending = pending[:max_trials]

    def land(outcome: TrialOutcome) -> None:
        _record(store, outcome)
        stats.executed += 1
        if outcome.status != "ok":
            stats.failed += 1
        stats.outcomes.append(outcome)
        if progress is not None:
            progress(outcome, stats)

    if workers <= 1 or len(pending) <= 1:
        for trial in pending:
            land(_run_trial(trial, spec.seed))
    else:
        size = chunk_size or _default_chunk_size(len(pending), workers)
        chunks = _chunked(pending, size)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_chunk, chunk, spec.seed): chunk
                for chunk in chunks
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    chunk = futures[future]
                    try:
                        outcomes = future.result()
                    except Exception:
                        # the worker process died (not a trial error —
                        # those are caught inside the chunk): recover by
                        # re-running this chunk in-parent
                        stats.fallbacks += 1
                        outcomes = _run_chunk(chunk, spec.seed)
                    for outcome in outcomes:
                        land(outcome)

    stats.elapsed = time.perf_counter() - started
    return stats
