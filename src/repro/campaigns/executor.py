"""Sharded campaign execution over a ``multiprocessing`` pool.

The executor expands a :class:`~repro.campaigns.spec.CampaignSpec`,
drops every trial the store has already completed (resumability),
partitions the remainder into contiguous chunks, and runs the chunks
either in-process (``workers <= 1``) or on a process pool, streaming
finished records into the store as each chunk lands.

Failure model:

* a trial that raises is recorded as an ``error`` record — never fatal
  to the campaign;
* a *worker process* that dies (OOM-kill, segfault, pool breakage) makes
  its chunk's future raise; the parent falls back to re-running that
  chunk serially in-process, trial-by-trial, so one bad worker cannot
  lose work or wedge the run;
* a killed *campaign* (SIGKILL mid-run) leaves at most one torn JSONL
  line, which the store tolerates; the next run skips everything with an
  ``ok`` record and re-executes only the rest.

Determinism: trial results depend only on the trial's parameters and the
campaign's base seed (see :mod:`repro.campaigns.runners`), and
aggregation orders by spec expansion rather than store insertion, so the
same campaign is bit-identical at any worker count.

Multi-host execution (``claim=True``): the full trial list is cut into a
*deterministic* chunk partition — same spec, same chunk size, same
chunks on every host — and each chunk is guarded by a filesystem lease
(:mod:`repro.campaigns.leases`).  A claiming host writes its results to
its own shard (the store's ``host_id``), heartbeats its lease after
every finished trial, retires the chunk with a ``done`` marker, and
rescans the store between chunks so work other hosts completed is
skipped.  A host that dies mid-chunk stops heartbeating; once the TTL
passes, any other host reclaims the chunk and re-runs only its
unfinished trials.  Because trials are deterministic and shard records
idempotent, the merged campaign is byte-identical to a serial
single-host run at any (host, worker) count.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.campaigns.leases import LeaseManager, chunk_id
from repro.campaigns.runners import execute_trial
from repro.campaigns.spec import CampaignSpec, Trial
from repro.campaigns.store import CampaignStore
from repro.obs import metrics as _obs
from repro.obs import trace as _trace

__all__ = ["RunStats", "TrialOutcome", "claim_chunk_size", "run_campaign"]

_TRIALS_OK = _obs.counter(
    "repro_campaign_trials_total", "finished trials by status",
    {"status": "ok"},
)
_TRIALS_ERROR = _obs.counter(
    "repro_campaign_trials_total", "finished trials by status",
    {"status": "error"},
)


@dataclass(frozen=True)
class TrialOutcome:
    """One finished trial, as produced by a worker."""

    key: str
    kind: str
    params: dict[str, Any]
    status: str  # "ok" | "error"
    result: dict[str, Any] | None
    error: str | None
    elapsed: float


@dataclass
class RunStats:
    """What one ``run_campaign`` invocation did."""

    total: int = 0  # trials in the expanded campaign
    skipped: int = 0  # already completed in the store (resumed past)
    executed: int = 0  # run this invocation (ok + failed)
    failed: int = 0  # error records written this invocation
    remaining: int = 0  # left pending (max_trials cut the run short)
    fallbacks: int = 0  # chunks re-run in-parent after a worker died
    claimed_chunks: int = 0  # chunks this host's leases won (claim mode)
    lease_skips: int = 0  # chunks another live host holds or finished
    reclaimed: int = 0  # stale leases broken (dead-host recovery)
    raced: int = 0  # trials found already done after a claim landed
    elapsed: float = 0.0
    outcomes: list[TrialOutcome] = field(default_factory=list)

    @property
    def completed_after(self) -> int:
        return self.skipped + self.executed - self.failed


ProgressFn = Callable[[TrialOutcome, "RunStats"], None]


def _run_trial(trial: Trial, base_seed: int) -> TrialOutcome:
    started = time.perf_counter()
    with _trace.span("campaign.trial", key=trial.key, kind=trial.kind) as sp:
        try:
            result = execute_trial(trial.kind, trial.params, base_seed)
            status, error = "ok", None
        except Exception:
            result, status = None, "error"
            error = traceback.format_exc(limit=20)
        sp.set(status=status)
    (_TRIALS_OK if status == "ok" else _TRIALS_ERROR).inc()
    return TrialOutcome(
        key=trial.key,
        kind=trial.kind,
        params=trial.params,
        status=status,
        result=result,
        error=error,
        elapsed=time.perf_counter() - started,
    )


def _run_chunk(trials: Sequence[Trial], base_seed: int) -> list[TrialOutcome]:
    """Worker entry point: run one chunk, every trial individually guarded."""
    with _trace.span("campaign.chunk", trials=len(trials)):
        return [_run_trial(trial, base_seed) for trial in trials]


def _chunked(trials: Sequence[Trial], size: int) -> list[list[Trial]]:
    return [list(trials[i : i + size]) for i in range(0, len(trials), size)]


def _default_chunk_size(pending: int, workers: int) -> int:
    # aim for ~4 chunks per worker so a crashed worker loses little and
    # stragglers balance, without paying per-trial IPC for tiny trials
    return max(1, min(32, -(-pending // (workers * 4))))


def claim_chunk_size(total: int) -> int:
    """The lease-partition chunk size every cooperating host derives.

    A pure function of the campaign's *total* trial count (never of the
    per-host pending set, worker count or anything ambient), so all
    hosts cut the identical partition and their chunk ids line up
    without coordination.  ~64 chunks keeps the reclaim unit small while
    leases stay far apart on the filesystem.
    """
    return max(1, min(32, -(-total // 64)))


def _record(store: CampaignStore, outcome: TrialOutcome) -> None:
    store.append(
        key=outcome.key,
        kind=outcome.kind,
        params=outcome.params,
        status=outcome.status,
        result=outcome.result,
        error=outcome.error,
        elapsed=outcome.elapsed,
    )


def run_campaign(
    spec: CampaignSpec,
    store: CampaignStore | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    max_trials: int | None = None,
    retry_errors: bool = True,
    progress: ProgressFn | None = None,
    claim: bool = False,
    lease_ttl: float = 60.0,
) -> RunStats:
    """Run (or resume) a campaign; returns what this invocation did.

    ``store=None`` runs against an ephemeral in-memory store (the
    returned :attr:`RunStats.outcomes` still carry every result).
    ``max_trials`` caps how many pending trials this invocation executes
    — the deterministic stand-in for "the run was interrupted" that the
    resumability tests and the CI smoke job use.  ``retry_errors=False``
    also skips trials whose previous attempt errored.

    ``claim=True`` turns on multi-host chunk claiming (see the module
    docstring): the store must be on disk with a ``host_id``, pending
    work is taken chunk-by-chunk under filesystem leases, and results
    land in this host's shard.  ``chunk_size`` then applies to the lease
    partition and **must agree across cooperating hosts** (the default
    is derived from the spec, so omitting it everywhere always agrees).
    """
    if store is None:
        store = CampaignStore(None)
    store.save_spec(spec)

    stats = RunStats()
    started = time.perf_counter()
    trials = spec.trials()
    stats.total = len(trials)

    skip = set(store.completed_keys())
    if not retry_errors:
        skip |= set(store.error_keys())
    pending = [trial for trial in trials if trial.key not in skip]
    stats.skipped = stats.total - len(pending)

    if claim:
        if store.root is None or store.host_id is None:
            raise ValueError(
                "claim mode needs an on-disk store opened with a host_id"
            )
        _run_claiming(
            spec, store, stats, trials, workers, chunk_size,
            max_trials, retry_errors, progress, lease_ttl,
        )
        stats.elapsed = time.perf_counter() - started
        return stats

    if max_trials is not None:
        stats.remaining = max(0, len(pending) - max_trials)
        pending = pending[:max_trials]

    def land(outcome: TrialOutcome) -> None:
        _record(store, outcome)
        stats.executed += 1
        if outcome.status != "ok":
            stats.failed += 1
        stats.outcomes.append(outcome)
        if progress is not None:
            progress(outcome, stats)

    if workers <= 1 or len(pending) <= 1:
        for trial in pending:
            land(_run_trial(trial, spec.seed))
    else:
        size = chunk_size or _default_chunk_size(len(pending), workers)
        chunks = _chunked(pending, size)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_chunk, chunk, spec.seed): chunk
                for chunk in chunks
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    chunk = futures[future]
                    try:
                        outcomes = future.result()
                    except Exception:
                        # the worker process died (not a trial error —
                        # those are caught inside the chunk): recover by
                        # re-running this chunk in-parent
                        stats.fallbacks += 1
                        outcomes = _run_chunk(chunk, spec.seed)
                    for outcome in outcomes:
                        land(outcome)

    stats.elapsed = time.perf_counter() - started
    return stats


def _run_claiming(
    spec: CampaignSpec,
    store: CampaignStore,
    stats: RunStats,
    trials: Sequence[Trial],
    workers: int,
    chunk_size: int | None,
    max_trials: int | None,
    retry_errors: bool,
    progress: ProgressFn | None,
    lease_ttl: float,
) -> None:
    """The claim-mode executor body: lease, run, heartbeat, retire.

    The chunk partition covers the *full* trial list (not this host's
    pending view) so every host derives identical chunk ids; a chunk
    whose trials are all complete is retired with a ``done`` marker by
    whichever host notices first.  Within a claimed chunk, trials run on
    this host's own process pool (``workers``) and the lease is
    refreshed each time one lands, so the TTL only needs to outlast the
    slowest single trial.
    """
    leases = LeaseManager(
        store.root, store.host_id, ttl=lease_ttl,
    )
    size = chunk_size or claim_chunk_size(len(trials))
    chunks = _chunked(trials, size)
    executed_budget = max_trials

    pool = (
        ProcessPoolExecutor(max_workers=workers) if workers > 1 else None
    )

    def land(outcome: TrialOutcome, chunk_name: str) -> None:
        # another host may have finished the trial while we raced the
        # same reclaimed chunk — its record is already in the manifest
        # and a second byte-identical one would only bloat the shard
        if outcome.status == "ok" and outcome.key in store:
            stats.raced += 1
        else:
            _record(store, outcome)
        stats.executed += 1
        if outcome.status != "ok":
            stats.failed += 1
        stats.outcomes.append(outcome)
        leases.refresh(chunk_name)
        if progress is not None:
            progress(outcome, stats)

    try:
        for chunk in chunks:
            name = chunk_id([trial.key for trial in chunk])
            if leases.is_done(name):
                stats.lease_skips += 1
                continue
            # fold in other hosts' progress before deciding what's left
            store.refresh()
            skip = set(store.completed_keys())
            if not retry_errors:
                skip |= set(store.error_keys())
            todo = [trial for trial in chunk if trial.key not in skip]
            if not todo:
                # complete already: retire it so nobody ever rescans it
                if leases.claim(name):
                    leases.release(name, done=True)
                continue
            if executed_budget is not None and executed_budget <= 0:
                stats.remaining += len(todo)
                continue
            before = leases.reclaimed
            if not leases.claim(name):
                stats.lease_skips += 1
                continue
            stats.reclaimed += leases.reclaimed - before
            stats.claimed_chunks += 1
            if executed_budget is not None and len(todo) > executed_budget:
                stats.remaining += len(todo) - executed_budget
                todo = todo[:executed_budget]
            try:
                with _trace.span(
                    "campaign.chunk", chunk=name, trials=len(todo)
                ):
                    if pool is None:
                        for trial in todo:
                            land(_run_trial(trial, spec.seed), name)
                    else:
                        futures = {
                            pool.submit(_run_trial, trial, spec.seed): trial
                            for trial in todo
                        }
                        outstanding = set(futures)
                        while outstanding:
                            done, outstanding = wait(
                                outstanding, return_when=FIRST_COMPLETED
                            )
                            for future in done:
                                try:
                                    outcome = future.result()
                                except Exception:
                                    stats.fallbacks += 1
                                    outcome = _run_trial(
                                        futures[future], spec.seed
                                    )
                                land(outcome, name)
                if executed_budget is not None:
                    executed_budget -= len(todo)
                # retire the chunk only when every trial (ours or a
                # racing host's) has an ok record; errored trials keep
                # the chunk claimable so a resume can retry them
                store.refresh()
                complete = all(
                    trial.key in store for trial in chunk
                )
                leases.release(name, done=complete)
            except BaseException:
                leases.release(name)
                raise
    finally:
        if pool is not None:
            pool.shutdown()
        leases.release_all()
