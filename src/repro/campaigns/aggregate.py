"""Reducers: roll a campaign's trial records up into paper tables.

A reducer maps ``(spec, store, options)`` to the rendered report text,
reusing :mod:`repro.analysis.tables` so campaign reports read exactly
like the hand-rolled benchmark output they replace.  Reducers iterate in
*spec expansion order* (never store insertion order), so the report is
byte-identical no matter how many workers produced the records or in
which order they landed.

Built-in reducers:

``poa_table``
    Table-1-style rows: one row per alpha, one column per solution
    concept, cells the exact worst-case PoA of the matching ``tree_poa``
    / ``graph_poa`` trial.  This is the cooperation-ladder rendering.
``convergence``
    Groups ``dynamics`` trials by everything but their seed ``index``
    and reduces each group to a
    :class:`~repro.dynamics.convergence.ConvergenceStats` — numerically
    identical to an in-process
    :func:`~repro.dynamics.convergence.convergence_study` with the same
    parameters.
``trial_table``
    A flat listing of every trial and its status — the fallback report
    for any campaign shape.
``weighted_poa_table``
    Traffic-regime-by-alpha rows against concept columns, cells the
    family-relative weighted PoA of the matching ``weighted_poa`` trial.
``costmodel_poa_table``
    Cost-model-regime-by-alpha rows against concept columns, cells the
    family-relative PoA of the matching ``generalized_poa`` trial —
    the linear-vs-concave-vs-convex-vs-max separation rendering.
``poa_fit``
    PoA-vs-alpha scaling fits (:mod:`repro.analysis.fitting`): one row
    per concept column with the ``rho ~ log2(alpha)`` slope, the
    log-log power-law exponent and the relative spread — the shape
    comparison behind the paper's Theta claims, computed from campaign
    records instead of a hand-rolled benchmark loop.
``exact_poa_table``
    Alpha-by-concept table over ``exact_poa`` trials.  A cell may be
    covered by one whole-family trial *or* sharded across an ``m``
    (edge-count layer) axis; layered cells aggregate exactly — PoA is
    the max over layers, equilibria/candidates the sum — so the table is
    byte-identical whether the campaign ran layered or whole.
``conjecture_table``
    One row per ``conjecture_hunt`` cell: graphs scanned, NE counts,
    refutations, and the first replayable certificate.
"""

from __future__ import annotations

import statistics
from fractions import Fraction
from typing import Any, Callable, Mapping

from repro._alpha import as_alpha
from repro.analysis.tables import render_table
from repro.campaigns.spec import CampaignSpec, Trial, trial_key
from repro.campaigns.store import CampaignStore
from repro.core.concepts import Concept
from repro.dynamics.convergence import ConvergenceStats

__all__ = [
    "REDUCERS",
    "convergence_stats",
    "reduce_conjecture_table",
    "reduce_convergence",
    "reduce_costmodel_poa_table",
    "reduce_exact_poa_table",
    "reduce_poa_fit",
    "reduce_poa_table",
    "reduce_trial_table",
    "reduce_weighted_poa_table",
    "render_report",
]

Reducer = Callable[[CampaignSpec, CampaignStore, Mapping[str, Any]], str]


def _concept_of(value) -> Concept:
    if isinstance(value, Concept):
        return value
    return Concept[value] if value in Concept.__members__ else Concept(value)


def reduce_poa_table(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """Alpha-by-concept PoA table (the cooperation-ladder rendering).

    Options: ``n`` (int), ``alphas`` (list), ``columns`` (list of
    ``{"header", "concept", "k"?}``), optional ``kind`` (defaults to the
    campaign kind) and ``title`` (may reference ``{n}``).  Cells of
    trials not yet in the store render as ``?``.
    """
    n = int(options["n"])
    kind = options.get("kind", spec.kind)
    alphas = [as_alpha(a) for a in options["alphas"]]
    columns = list(options["columns"])
    title = options.get(
        "title", "Exact tree PoA by cooperation level (all trees, n={n})"
    ).format(n=n)

    rows = []
    for alpha in alphas:
        cells: list[Any] = [alpha]
        for column in columns:
            result = store.result(
                trial_key(kind, _column_params(n, alpha, column))
            )
            if result is None:
                cells.append("?")
            else:
                poa = result["poa"]
                cells.append(float(poa) if poa else "-")
        rows.append(cells)
    headers = ["alpha"] + [column["header"] for column in columns]
    return render_table(headers, rows, title=title)


def _column_params(
    n: int, alpha, column: Mapping[str, Any]
) -> dict[str, Any]:
    """Trial parameters addressed by one report column (shared lookup)."""
    params: dict[str, Any] = {
        "n": n,
        "alpha": alpha,
        "concept": _concept_of(column["concept"]),
    }
    if column.get("k") is not None:
        params["k"] = int(column["k"])
    for name, value in (column.get("params") or {}).items():
        params[name] = value
    return params


def reduce_weighted_poa_table(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """Traffic-by-alpha rows against concept columns (``weighted_poa``).

    Options: ``n``, ``alphas``, ``traffics`` (list of ``{"label",
    "traffic"}`` with the same spec dicts the grid used), ``columns``
    (``{"header", "concept", "k"?, "params"?}``), optional ``kind`` and
    ``title``.  Cells are the family-relative weighted PoA; trials not
    yet in the store render as ``?``, equilibrium-free cells as ``-``.
    """
    n = int(options["n"])
    kind = options.get("kind", spec.kind)
    alphas = [as_alpha(a) for a in options["alphas"]]
    traffics = list(options["traffics"])
    columns = list(options["columns"])
    title = options.get(
        "title", "Family-relative weighted PoA by traffic regime (n={n})"
    ).format(n=n)

    rows = []
    for regime in traffics:
        for alpha in alphas:
            cells: list[Any] = [regime["label"], alpha]
            for column in columns:
                params = _column_params(n, alpha, column)
                params["traffic"] = regime["traffic"]
                result = store.result(trial_key(kind, params))
                if result is None:
                    cells.append("?")
                else:
                    poa = result["poa"]
                    cells.append(float(poa) if poa else "-")
            rows.append(cells)
    headers = ["traffic", "alpha"] + [column["header"] for column in columns]
    return render_table(headers, rows, title=title)


def reduce_costmodel_poa_table(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """Cost-model-by-alpha rows against concept columns (``generalized_poa``).

    Options: ``n``, ``alphas``, ``models`` (list of ``{"label",
    "costmodel", "traffic"?}`` with the same spec dicts the grid used),
    ``columns`` (``{"header", "concept", "k"?, "params"?}``), optional
    ``kind`` and ``title``.  Cells are the family-relative PoA under the
    regime's cost model; trials not yet in the store render as ``?``,
    equilibrium-free cells as ``-``.  A regime's ``traffic`` key is only
    written into the trial parameters when present, so the lookup matches
    grids that omit the traffic axis entirely.
    """
    n = int(options["n"])
    kind = options.get("kind", spec.kind)
    alphas = [as_alpha(a) for a in options["alphas"]]
    models = list(options["models"])
    columns = list(options["columns"])
    title = options.get(
        "title", "Family-relative PoA by cost model (n={n})"
    ).format(n=n)

    rows = []
    for regime in models:
        for alpha in alphas:
            cells: list[Any] = [regime["label"], alpha]
            for column in columns:
                params = _column_params(n, alpha, column)
                params["costmodel"] = regime["costmodel"]
                if regime.get("traffic") is not None:
                    params["traffic"] = regime["traffic"]
                result = store.result(trial_key(kind, params))
                if result is None:
                    cells.append("?")
                else:
                    poa = result["poa"]
                    cells.append(float(poa) if poa else "-")
            rows.append(cells)
    headers = ["model", "alpha"] + [column["header"] for column in columns]
    return render_table(headers, rows, title=title)


def reduce_poa_fit(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """PoA-vs-alpha scaling fits per concept column.

    Options: ``n``, ``alphas``, ``columns`` (``{"header", "concept",
    "k"?, "params"?}``), optional ``kind`` / ``title``.  Each column's
    ``(alpha, poa)`` points (completed trials with an equilibrium) feed
    :func:`repro.analysis.fitting.fit_log_slope` and
    :func:`~repro.analysis.fitting.fit_power_law`; rows report both
    slopes, their r-squared and the relative spread, so a
    ``Theta(log alpha)`` family shows a stable positive log slope and a
    ``Theta(sqrt alpha)`` family a power exponent near 1/2.
    Deterministic: points aggregate in the listed alpha order.
    """
    from repro.analysis.fitting import (
        fit_log_slope,
        fit_power_law,
        relative_spread,
    )

    n = int(options["n"])
    kind = options.get("kind", spec.kind)
    alphas = [as_alpha(a) for a in options["alphas"]]
    columns = list(options["columns"])
    title = options.get(
        "title", "PoA-vs-alpha scaling fits (n={n})"
    ).format(n=n)

    rows = []
    for column in columns:
        points: list[tuple[Fraction, Fraction]] = []
        for alpha in alphas:
            result = store.result(
                trial_key(kind, _column_params(n, alpha, column))
            )
            if result is None or not result.get("poa"):
                continue
            points.append((alpha, result["poa"]))
        if len(points) < 2:
            rows.append(
                [column["header"], len(points), "-", "-", "-", "-", "-"]
            )
            continue
        xs = [point[0] for point in points]
        ys = [point[1] for point in points]
        log_fit = fit_log_slope(xs, ys)
        power_fit = fit_power_law(xs, ys)
        rows.append(
            [
                column["header"],
                len(points),
                log_fit.slope,
                log_fit.r_squared,
                power_fit.slope,
                power_fit.r_squared,
                relative_spread(ys),
            ]
        )
    headers = [
        "column", "points", "log2 slope", "r2(log)",
        "power exp", "r2(power)", "spread",
    ]
    return render_table(headers, rows, title=title)


def reduce_exact_poa_table(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """Alpha-by-concept table over ``exact_poa`` trials, layer-aware.

    Options: ``n``, ``alphas``, ``columns`` (``{"header", "concept",
    "k"?, "params"?}``), optional ``family`` (merged into every cell's
    params unless the column already pins one), ``kind`` and ``title``.
    A cell's trials are every spec trial whose parameters — with the
    edge-count layer axis ``m`` stripped — match the cell: one whole
    trial or many layered ones.  PoA aggregates as the max over layers,
    equilibria/candidates as sums, so layered and whole campaigns render
    byte-identically.  Cells with any layer still missing render ``?``,
    equilibrium-free cells ``-``.
    """
    n = int(options["n"])
    kind = options.get("kind", spec.kind)
    alphas = [as_alpha(a) for a in options["alphas"]]
    columns = list(options["columns"])
    family = options.get("family")
    title = options.get(
        "title", "Exact PoA over all connected graphs (n={n})"
    ).format(n=n)

    trials = [trial for trial in spec.trials() if trial.kind == kind]
    stripped_keys = [
        trial_key(
            kind,
            {name: value for name, value in trial.items if name != "m"},
        )
        for trial in trials
    ]

    rows = []
    for alpha in alphas:
        cells: list[Any] = [alpha]
        for column in columns:
            cell_params = _column_params(n, alpha, column)
            if family is not None and "family" not in cell_params:
                cell_params["family"] = family
            wanted = trial_key(kind, cell_params)
            matched = [
                trial
                for trial, stripped in zip(trials, stripped_keys)
                if stripped == wanted
            ]
            results = [store.result(trial.key) for trial in matched]
            if not matched or any(result is None for result in results):
                cells.append("?")
                continue
            poas = [
                result["poa"] for result in results
                if result["poa"] is not None
            ]
            cells.append(float(max(poas)) if poas else "-")
        rows.append(cells)
    headers = ["alpha"] + [column["header"] for column in columns]
    return render_table(headers, rows, title=title)


def reduce_conjecture_table(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """Per-cell Corbo–Parkes sweep summary with the first certificate.

    One row per ``conjecture_hunt`` trial in spec order: graphs scanned,
    graphs passing the NE pre-filters, NE-supporting graphs, total NE
    assignments, refuting graphs, and the first refutation certificate
    (break move at the witness's canonical-key digest).  Pending trials
    render ``?``.
    """
    rows = []
    for trial in spec.trials():
        if trial.kind != "conjecture_hunt":
            continue
        params = trial.params
        result = store.result(trial.key)
        if result is None:
            rows.append(
                [params["n"], params["alpha"], "?", "?", "?", "?", "?", "?"]
            )
            continue
        certificates = result.get("certificates") or []
        first = (
            f"{certificates[0]['break']} @ "
            f"{certificates[0]['witness_key'][:12]}"
            if certificates
            else "-"
        )
        rows.append(
            [
                params["n"],
                params["alpha"],
                result["candidates"],
                result["feasible_graphs"],
                result["ne_graphs"],
                result["ne_assignments"],
                result["counterexample_graphs"],
                first,
            ]
        )
    headers = [
        "n", "alpha", "graphs", "feasible", "NE graphs",
        "NE assignments", "refuted", "first certificate",
    ]
    title = options.get(
        "title",
        "Corbo-Parkes conjecture, exhaustively: all NE vs pairwise "
        "stability",
    )
    return render_table(headers, rows, title=title)


def _group_identity(trial: Trial) -> tuple:
    return tuple(
        (name, value) for name, value in trial.items if name != "index"
    )


def convergence_stats(
    spec: CampaignSpec, store: CampaignStore
) -> list[tuple[dict[str, Any], ConvergenceStats]]:
    """Per-group :class:`ConvergenceStats` of a campaign's dynamics trials.

    Groups by every parameter except the seed ``index``; within a group,
    runs aggregate in index order, which makes the float means identical
    to :func:`repro.dynamics.convergence.convergence_study` on the same
    parameters.  Trials without an ``ok`` record are left out (their
    group's ``runs`` shrinks accordingly); a group with no records is
    dropped.
    """
    groups: dict[tuple, list[tuple[int, dict[str, Any]]]] = {}
    order: list[tuple] = []
    for trial in spec.trials():
        if trial.kind != "dynamics":
            continue
        identity = _group_identity(trial)
        if identity not in groups:
            groups[identity] = []
            order.append(identity)
        result = store.result(trial.key)
        if result is not None:
            groups[identity].append((int(trial.params["index"]), result))

    out = []
    for identity in order:
        runs = sorted(groups[identity])
        if not runs:
            continue
        params = dict(identity)
        # final_rho is only present for uniform-linear trials; final_quality
        # is present on every new record and falls back to final_rho on
        # records written before the quality column existed (uniform-only,
        # where the two are bit-identical)
        rhos = [
            result["final_rho"]
            for _, result in runs
            if "final_rho" in result
        ]
        qualities = [
            result.get("final_quality", result.get("final_rho"))
            for _, result in runs
        ]
        out.append(
            (
                params,
                ConvergenceStats(
                    concept=_concept_of(params["concept"]),
                    runs=len(runs),
                    converged=sum(r["converged"] for _, r in runs),
                    cycled=sum(r["cycled"] for _, r in runs),
                    mean_rounds=statistics.fmean(
                        r["rounds"] for _, r in runs
                    ),
                    mean_final_rho=(
                        statistics.fmean(float(rho) for rho in rhos)
                        if rhos
                        else None
                    ),
                    worst_final_rho=float(max(rhos)) if rhos else None,
                    mean_start_instability=statistics.fmean(
                        float(r["start_instability"]) for _, r in runs
                    ),
                    mean_final_quality=statistics.fmean(
                        float(q) for q in qualities
                    ),
                    worst_final_quality=float(max(qualities)),
                ),
            )
        )
    return out


def reduce_convergence(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """Convergence-stats table, one row per dynamics group."""
    title = options.get(
        "title", f"Dynamics convergence — campaign {spec.name}"
    )
    rows = []
    for params, stats in convergence_stats(spec, store):
        rows.append(
            [
                str(_concept_of(params["concept"])),
                params.get("n", "-"),
                params.get("alpha", "-"),
                params.get("scheduler", "first"),
                stats.runs,
                stats.converged,
                stats.cycled,
                stats.mean_rounds,
                # rho is uniform-linear only; weighted/modeled groups
                # report on the regime-aware quality scale instead
                stats.mean_final_rho if stats.mean_final_rho is not None
                else "-",
                stats.worst_final_rho if stats.worst_final_rho is not None
                else "-",
                stats.mean_final_quality,
                stats.worst_final_quality,
                stats.mean_start_instability,
            ]
        )
    headers = [
        "concept", "n", "alpha", "scheduler", "runs", "conv", "cyc",
        "mean rounds", "mean rho", "worst rho", "mean quality",
        "worst quality", "start beta",
    ]
    return render_table(headers, rows, title=title)


def reduce_trial_table(
    spec: CampaignSpec, store: CampaignStore, options: Mapping[str, Any]
) -> str:
    """Flat per-trial listing: parameters, status, headline result."""
    rows = []
    for trial in spec.trials():
        record = store.record_for(trial.key)
        status = "pending" if record is None else record["status"]
        headline = ""
        if record is not None and record["status"] == "ok":
            result = store.result(trial.key)
            # sort: live records carry runner insertion order, reopened
            # ones the JSONL's sorted keys — the report must not differ
            headline = "  ".join(
                f"{name}={_fmt(value)}"
                for name, value in sorted(result.items())
            )
        elif record is not None:
            lines = (record.get("error") or "").strip().splitlines()
            headline = lines[-1] if lines else "error"
        rows.append(
            [
                trial.kind,
                " ".join(f"{k}={_fmt(v)}" for k, v in trial.items),
                status,
                headline,
            ]
        )
    title = options.get("title", f"Campaign {spec.name}: trials")
    return render_table(["kind", "params", "status", "result"], rows, title)


def _fmt(value) -> str:
    if isinstance(value, Concept):
        return value.name
    if isinstance(value, Fraction) and value.denominator == 1:
        return str(value.numerator)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


REDUCERS: dict[str, Reducer] = {
    "poa_table": reduce_poa_table,
    "poa_fit": reduce_poa_fit,
    "convergence": reduce_convergence,
    "trial_table": reduce_trial_table,
    "weighted_poa_table": reduce_weighted_poa_table,
    "costmodel_poa_table": reduce_costmodel_poa_table,
    "exact_poa_table": reduce_exact_poa_table,
    "conjecture_table": reduce_conjecture_table,
}


def render_report(spec: CampaignSpec, store: CampaignStore) -> str:
    """Render the campaign's configured report (``spec.report``)."""
    reducer_name = spec.report.get("reducer", "trial_table")
    try:
        reducer = REDUCERS[reducer_name]
    except KeyError:
        raise ValueError(
            f"unknown reducer {reducer_name!r}; known: {sorted(REDUCERS)}"
        ) from None
    text = reducer(spec, store, spec.report.get("options", {}))
    footer = spec.report.get("footer")
    if footer:
        text += "\n\n" + footer
    return text
