"""``python -m repro.campaigns`` — run, resume, merge and report campaigns.

Subcommands::

    run SPEC [--store DIR] [--workers N] [--chunk-size N]
             [--max-trials N] [--no-retry-errors] [--quiet]
             [--claim] [--host-id ID] [--lease-ttl S]
    status STORE
    merge STORE [--prune]
    report STORE [--out FILE]

``run`` is always a *resume*: trials the store has already completed are
skipped, so interrupting a campaign (Ctrl-C, SIGKILL, a dead machine)
costs only the unfinished trials.  The default store directory is
``.campaigns/<campaign name>`` under the current directory.

``--claim`` cooperates with other hosts on one shared store: pending
work is taken chunk-by-chunk under filesystem leases
(:mod:`repro.campaigns.leases`) and results land in this host's shard
``results-<host id>.jsonl``.  Run the same command on every host;
``merge`` afterwards folds the shards into the canonical
``results.jsonl`` (``--prune`` deletes them once folded).  Reports do
not require a merge — the store scans shards transparently.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
from pathlib import Path

from repro.campaigns.aggregate import render_report
from repro.campaigns.executor import RunStats, TrialOutcome, run_campaign
from repro.campaigns.leases import LeaseManager
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore, merge_shards

__all__ = ["main"]


def default_host_id() -> str:
    """``<hostname>-<pid>`` — unique enough for cooperating processes on
    one machine and across a cluster alike."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _default_store(spec: CampaignSpec) -> Path:
    return Path(".campaigns") / spec.name


def _open_store_dir(path: str) -> CampaignStore:
    store = CampaignStore(path)
    if store.load_spec() is None:
        raise SystemExit(
            f"{path} is not a campaign store (no spec.json); "
            "run the campaign first"
        )
    return store


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    store_dir = Path(args.store) if args.store else _default_store(spec)
    stream = sys.stderr if args.quiet else sys.stdout

    def progress(outcome: TrialOutcome, stats: RunStats) -> None:
        if args.quiet:
            return
        done = stats.skipped + stats.executed
        flag = "ok" if outcome.status == "ok" else "ERR"
        label = " ".join(f"{k}={v}" for k, v in sorted(outcome.params.items()))
        print(
            f"[{done}/{stats.total}] {flag} {outcome.kind} {label} "
            f"({outcome.elapsed:.2f}s)",
            file=stream,
            flush=True,
        )

    host_id = None
    if args.claim:
        host_id = args.host_id or default_host_id()
    elif args.host_id:
        raise SystemExit("--host-id only makes sense with --claim")

    with CampaignStore(store_dir, host_id=host_id) as store:
        try:
            stats = run_campaign(
                spec,
                store,
                workers=args.workers,
                chunk_size=args.chunk_size,
                max_trials=args.max_trials,
                retry_errors=not args.no_retry_errors,
                progress=progress,
                claim=args.claim,
                lease_ttl=args.lease_ttl,
            )
        except KeyboardInterrupt:
            print(
                "\ninterrupted — completed trials are saved; "
                "re-run to resume",
                file=sys.stderr,
            )
            return 130
    claimed = (
        f", {stats.claimed_chunks} chunks claimed as {host_id} "
        f"({stats.lease_skips} held elsewhere, {stats.reclaimed} reclaimed)"
        if args.claim
        else ""
    )
    print(
        f"campaign {spec.name}: {stats.total} trials, "
        f"{stats.skipped} already done, {stats.executed} run "
        f"({stats.failed} failed), {stats.remaining} remaining, "
        f"{stats.elapsed:.2f}s{claimed}",
        file=stream,
    )
    if stats.failed:
        return 1
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    shard_names = [path.name for path in store.shard_paths()]
    if not shard_names:
        print(f"{store.root}: no shards to merge")
        return 0
    stats = merge_shards(store.root, prune=args.prune)
    for name in shard_names:
        corrupt = (
            f", {stats.corrupt_lines[name]} torn lines ignored"
            if stats.corrupt_lines.get(name)
            else ""
        )
        print(
            f"{name}: {stats.records[name]} records, "
            f"{stats.merged[name]} merged, "
            f"{stats.duplicates[name]} duplicates{corrupt}"
        )
    print(
        f"merged {stats.total_merged} records into results.jsonl"
        + (f"; pruned {len(stats.pruned)} shards" if stats.pruned else "")
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    spec = store.load_spec()
    trials = spec.trials()
    completed = store.completed_keys()
    errors = store.error_keys()
    done = sum(1 for trial in trials if trial.key in completed)
    failed = sum(1 for trial in trials if trial.key in errors)
    pending = len(trials) - done - failed
    print(f"campaign:  {spec.name}")
    if spec.description:
        print(f"about:     {spec.description}")
    print(f"store:     {store.root}")
    print(f"trials:    {len(trials)}")
    print(f"completed: {done}")
    print(f"errored:   {failed}")
    print(f"pending:   {pending}")
    shards = store.shard_paths()
    if shards:
        print(f"shards:    {len(shards)} ({', '.join(p.name for p in shards)})")
    leases = (
        LeaseManager(store.root, "status-probe").active()
        if (store.root / "claims").is_dir()
        else []
    )
    for lease in leases:
        print(
            f"lease:     chunk {lease.chunk} held by {lease.host} "
            f"(ttl {lease.ttl:.0f}s)"
        )
    if store.corrupt_lines:
        for name, count in sorted(store.file_corrupt_lines.items()):
            print(f"torn lines ignored in {name}: {count}")
    return 0 if pending == 0 and failed == 0 else 3


def _cmd_report(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    spec = store.load_spec()
    text = render_report(spec, store)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns",
        description="Declarative, parallel, resumable experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run (or resume) a campaign spec")
    run.add_argument("spec", help="path to a campaign spec JSON file")
    run.add_argument("--store", help="result store directory")
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = in-process serial)",
    )
    run.add_argument(
        "--chunk-size", type=int, default=None,
        help="trials per worker chunk (default: auto)",
    )
    run.add_argument(
        "--max-trials", type=int, default=None,
        help="execute at most this many pending trials, then stop",
    )
    run.add_argument(
        "--no-retry-errors", action="store_true",
        help="also skip trials whose previous attempt errored",
    )
    run.add_argument("--quiet", action="store_true")
    run.add_argument(
        "--claim", action="store_true",
        help="cooperate with other hosts: take pending work chunk-by-chunk "
        "under filesystem leases, writing to this host's shard",
    )
    run.add_argument(
        "--host-id", default=None,
        help="shard / lease identity (default: <hostname>-<pid>)",
    )
    run.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="seconds before an unrefreshed lease counts as dead "
        "(default 60; must outlast the slowest single trial)",
    )
    run.set_defaults(fn=_cmd_run)

    status = sub.add_parser("status", help="summarise a campaign store")
    status.add_argument("store", help="campaign store directory")
    status.set_defaults(fn=_cmd_status)

    merge = sub.add_parser(
        "merge", help="fold per-host result shards into results.jsonl"
    )
    merge.add_argument("store", help="campaign store directory")
    merge.add_argument(
        "--prune", action="store_true",
        help="delete each shard after folding it",
    )
    merge.set_defaults(fn=_cmd_merge)

    report = sub.add_parser(
        "report", help="render a completed campaign's report"
    )
    report.add_argument("store", help="campaign store directory")
    report.add_argument("--out", help="also write the report to this file")
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
