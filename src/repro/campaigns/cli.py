"""``python -m repro.campaigns`` — run, resume, merge and report campaigns.

Subcommands::

    run SPEC [--store DIR] [--workers N] [--chunk-size N]
             [--max-trials N] [--no-retry-errors] [--quiet]
             [--claim] [--host-id ID] [--lease-ttl S]
    status STORE
    profile STORE [--trace FILE]
    merge STORE [--prune]
    report STORE [--out FILE]

``run`` is always a *resume*: trials the store has already completed are
skipped, so interrupting a campaign (Ctrl-C, SIGKILL, a dead machine)
costs only the unfinished trials.  The default store directory is
``.campaigns/<campaign name>`` under the current directory.

``--claim`` cooperates with other hosts on one shared store: pending
work is taken chunk-by-chunk under filesystem leases
(:mod:`repro.campaigns.leases`) and results land in this host's shard
``results-<host id>.jsonl``.  Run the same command on every host;
``merge`` afterwards folds the shards into the canonical
``results.jsonl`` (``--prune`` deletes them once folded).  Reports do
not require a merge — the store scans shards transparently.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
from pathlib import Path

from repro.campaigns.aggregate import render_report
from repro.campaigns.executor import RunStats, TrialOutcome, run_campaign
from repro.campaigns.leases import LeaseManager
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore, merge_shards

__all__ = ["main"]


def default_host_id() -> str:
    """``<hostname>-<pid>`` — unique enough for cooperating processes on
    one machine and across a cluster alike."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _default_store(spec: CampaignSpec) -> Path:
    return Path(".campaigns") / spec.name


def _open_store_dir(path: str) -> CampaignStore:
    store = CampaignStore(path)
    if store.load_spec() is None:
        raise SystemExit(
            f"{path} is not a campaign store (no spec.json); "
            "run the campaign first"
        )
    return store


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    store_dir = Path(args.store) if args.store else _default_store(spec)
    stream = sys.stderr if args.quiet else sys.stdout

    def progress(outcome: TrialOutcome, stats: RunStats) -> None:
        if args.quiet:
            return
        done = stats.skipped + stats.executed
        flag = "ok" if outcome.status == "ok" else "ERR"
        label = " ".join(f"{k}={v}" for k, v in sorted(outcome.params.items()))
        print(
            f"[{done}/{stats.total}] {flag} {outcome.kind} {label} "
            f"({outcome.elapsed:.2f}s)",
            file=stream,
            flush=True,
        )

    host_id = None
    if args.claim:
        host_id = args.host_id or default_host_id()
    elif args.host_id:
        raise SystemExit("--host-id only makes sense with --claim")

    with CampaignStore(store_dir, host_id=host_id) as store:
        try:
            stats = run_campaign(
                spec,
                store,
                workers=args.workers,
                chunk_size=args.chunk_size,
                max_trials=args.max_trials,
                retry_errors=not args.no_retry_errors,
                progress=progress,
                claim=args.claim,
                lease_ttl=args.lease_ttl,
            )
        except KeyboardInterrupt:
            print(
                "\ninterrupted — completed trials are saved; "
                "re-run to resume",
                file=sys.stderr,
            )
            return 130
    claimed = (
        f", {stats.claimed_chunks} chunks claimed as {host_id} "
        f"({stats.lease_skips} held elsewhere, {stats.reclaimed} reclaimed)"
        if args.claim
        else ""
    )
    print(
        f"campaign {spec.name}: {stats.total} trials, "
        f"{stats.skipped} already done, {stats.executed} run "
        f"({stats.failed} failed), {stats.remaining} remaining, "
        f"{stats.elapsed:.2f}s{claimed}",
        file=stream,
    )
    if stats.failed:
        return 1
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    shard_names = [path.name for path in store.shard_paths()]
    if not shard_names:
        print(f"{store.root}: no shards to merge")
        return 0
    stats = merge_shards(store.root, prune=args.prune)
    for name in shard_names:
        corrupt = (
            f", {stats.corrupt_lines[name]} torn lines ignored"
            if stats.corrupt_lines.get(name)
            else ""
        )
        print(
            f"{name}: {stats.records[name]} records, "
            f"{stats.merged[name]} merged, "
            f"{stats.duplicates[name]} duplicates{corrupt}"
        )
    print(
        f"merged {stats.total_merged} records into results.jsonl"
        + (f"; pruned {len(stats.pruned)} shards" if stats.pruned else "")
    )
    return 0


def _kind_progress(spec, store):
    """Per-kind ``(total, done, failed, pending, mean_elapsed)`` rows.

    ``mean_elapsed`` comes from the completed trials' recorded wall
    times, or ``None`` for kinds with no completion yet.
    """
    completed = store.completed_keys()
    errors = store.error_keys()
    rows: dict[str, dict] = {}
    for trial in spec.trials():
        row = rows.setdefault(
            trial.kind, {"total": 0, "done": 0, "failed": 0, "elapsed": 0.0}
        )
        row["total"] += 1
        if trial.key in completed:
            row["done"] += 1
            record = store.record_for(trial.key)
            if record is not None:
                row["elapsed"] += float(record.get("elapsed", 0.0))
        elif trial.key in errors:
            row["failed"] += 1
    out = []
    for kind in sorted(rows):
        row = rows[kind]
        pending = row["total"] - row["done"] - row["failed"]
        mean = row["elapsed"] / row["done"] if row["done"] else None
        out.append((kind, row["total"], row["done"], row["failed"],
                    pending, mean))
    return out


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _cmd_status(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    spec = store.load_spec()
    trials = spec.trials()
    completed = store.completed_keys()
    errors = store.error_keys()
    done = sum(1 for trial in trials if trial.key in completed)
    failed = sum(1 for trial in trials if trial.key in errors)
    pending = len(trials) - done - failed
    print(f"campaign:  {spec.name}")
    if spec.description:
        print(f"about:     {spec.description}")
    print(f"store:     {store.root}")
    print(f"trials:    {len(trials)}")
    print(f"completed: {done}")
    print(f"errored:   {failed}")
    print(f"pending:   {pending}")
    # per-kind progress + a naive serial ETA from recorded wall times:
    # pending x mean(elapsed of completed trials of the same kind).  No
    # worker-count correction — it is an upper bound for parallel runs.
    eta_total = 0.0
    eta_known = True
    for kind, total, kdone, kfailed, kpending, mean in _kind_progress(
        spec, store
    ):
        mean_text = f", ~{mean:.2f}s/trial" if mean is not None else ""
        print(
            f"  {kind}: {kdone}/{total} done"
            + (f", {kfailed} errored" if kfailed else "")
            + (f", {kpending} pending" if kpending else "")
            + mean_text
        )
        if kpending:
            if mean is None:
                eta_known = False
            else:
                eta_total += kpending * mean
    if pending and eta_total:
        qualifier = "" if eta_known else ">="
        print(
            f"eta:       {qualifier}{_format_eta(eta_total)} serial "
            "(naive: pending x mean elapsed per kind)"
        )
    shards = store.shard_paths()
    if shards:
        print(f"shards:    {len(shards)} ({', '.join(p.name for p in shards)})")
        # claim-mode breakdown: which host's shard carries how many records
        for path in shards:
            count = store.file_record_counts.get(path.name, 0)
            print(f"  {path.name}: {count} records")
    leases = (
        LeaseManager(store.root, "status-probe").active()
        if (store.root / "claims").is_dir()
        else []
    )
    for lease in leases:
        print(
            f"lease:     chunk {lease.chunk} held by {lease.host} "
            f"(ttl {lease.ttl:.0f}s)"
        )
    if store.corrupt_lines:
        for name, count in sorted(store.file_corrupt_lines.items()):
            print(f"torn lines ignored in {name}: {count}")
    return 0 if pending == 0 and failed == 0 else 3


def _read_spans(path: Path) -> list[dict]:
    """Decode a trace sink, tolerating torn lines like the store scanner."""
    spans = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "span" not in record:
                    continue
            except json.JSONDecodeError:
                continue
            spans.append(record)
    return spans


def _cmd_profile(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    spec = store.load_spec()
    print(f"campaign:  {spec.name}")
    print(f"store:     {store.root}")

    # -- where the time went, from recorded trial wall times ----------------
    kinds = _kind_progress(spec, store)
    grand = sum(
        (mean or 0.0) * kdone for _, _, kdone, _, _, mean in kinds
    )
    print("per-kind elapsed (completed trials):")
    for kind, total, kdone, kfailed, kpending, mean in kinds:
        if not kdone or mean is None:
            print(f"  {kind}: no completed trials yet")
            continue
        spent = mean * kdone
        share = 100.0 * spent / grand if grand else 0.0
        print(
            f"  {kind}: {spent:.2f}s over {kdone} trials "
            f"({mean:.3f}s mean, {share:.0f}%)"
        )
    eta_total = sum(
        kpending * mean
        for _, _, _, _, kpending, mean in kinds
        if mean is not None
    )
    pending_total = sum(kpending for _, _, _, _, kpending, _ in kinds)
    if pending_total:
        print(
            f"eta:       ~{_format_eta(eta_total)} serial "
            f"for {pending_total} pending trials"
        )

    # -- where the time went, by trace span ---------------------------------
    trace_path = None
    if args.trace:
        trace_path = Path(args.trace)
    else:
        candidate = store.root / "trace.jsonl"
        if candidate.exists():
            trace_path = candidate
    if trace_path is None or not trace_path.exists():
        print(
            "trace:     none (run with REPRO_TRACE=<store>/trace.jsonl "
            "or pass --trace)"
        )
        return 0
    spans = _read_spans(trace_path)
    print(f"trace:     {trace_path} ({len(spans)} spans)")
    by_name: dict[str, list[int]] = {}
    for record in spans:
        try:
            dur = int(record["dur_ns"])
        except (KeyError, TypeError, ValueError):
            continue
        by_name.setdefault(str(record["span"]), []).append(dur)
    total_ns = sum(sum(durs) for durs in by_name.values())
    # layers sort by where the time went, heaviest first; ties by name
    # keep the report deterministic
    for name in sorted(
        by_name, key=lambda k: (-sum(by_name[k]), k)
    ):
        durs = by_name[name]
        spent = sum(durs)
        share = 100.0 * spent / total_ns if total_ns else 0.0
        print(
            f"  {name}: {spent / 1e9:.3f}s over {len(durs)} spans "
            f"({spent / len(durs) / 1e6:.3f}ms mean, {share:.0f}%)"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    spec = store.load_spec()
    text = render_report(spec, store)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns",
        description="Declarative, parallel, resumable experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run (or resume) a campaign spec")
    run.add_argument("spec", help="path to a campaign spec JSON file")
    run.add_argument("--store", help="result store directory")
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = in-process serial)",
    )
    run.add_argument(
        "--chunk-size", type=int, default=None,
        help="trials per worker chunk (default: auto)",
    )
    run.add_argument(
        "--max-trials", type=int, default=None,
        help="execute at most this many pending trials, then stop",
    )
    run.add_argument(
        "--no-retry-errors", action="store_true",
        help="also skip trials whose previous attempt errored",
    )
    run.add_argument("--quiet", action="store_true")
    run.add_argument(
        "--claim", action="store_true",
        help="cooperate with other hosts: take pending work chunk-by-chunk "
        "under filesystem leases, writing to this host's shard",
    )
    run.add_argument(
        "--host-id", default=None,
        help="shard / lease identity (default: <hostname>-<pid>)",
    )
    run.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="seconds before an unrefreshed lease counts as dead "
        "(default 60; must outlast the slowest single trial)",
    )
    run.set_defaults(fn=_cmd_run)

    status = sub.add_parser("status", help="summarise a campaign store")
    status.add_argument("store", help="campaign store directory")
    status.set_defaults(fn=_cmd_status)

    profile = sub.add_parser(
        "profile",
        help="per-kind / per-layer time breakdown from recorded trial "
        "elapsed and (if present) a REPRO_TRACE span sink",
    )
    profile.add_argument("store", help="campaign store directory")
    profile.add_argument(
        "--trace", default=None,
        help="trace JSONL sink (default: <store>/trace.jsonl if present)",
    )
    profile.set_defaults(fn=_cmd_profile)

    merge = sub.add_parser(
        "merge", help="fold per-host result shards into results.jsonl"
    )
    merge.add_argument("store", help="campaign store directory")
    merge.add_argument(
        "--prune", action="store_true",
        help="delete each shard after folding it",
    )
    merge.set_defaults(fn=_cmd_merge)

    report = sub.add_parser(
        "report", help="render a completed campaign's report"
    )
    report.add_argument("store", help="campaign store directory")
    report.add_argument("--out", help="also write the report to this file")
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
