"""``python -m repro.campaigns`` — run, resume and report campaigns.

Subcommands::

    run SPEC [--store DIR] [--workers N] [--chunk-size N]
             [--max-trials N] [--no-retry-errors] [--quiet]
    status STORE
    report STORE [--out FILE]

``run`` is always a *resume*: trials the store has already completed are
skipped, so interrupting a campaign (Ctrl-C, SIGKILL, a dead machine)
costs only the unfinished trials.  The default store directory is
``.campaigns/<campaign name>`` under the current directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaigns.aggregate import render_report
from repro.campaigns.executor import RunStats, TrialOutcome, run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import CampaignStore

__all__ = ["main"]


def _default_store(spec: CampaignSpec) -> Path:
    return Path(".campaigns") / spec.name


def _open_store_dir(path: str) -> CampaignStore:
    store = CampaignStore(path)
    if store.load_spec() is None:
        raise SystemExit(
            f"{path} is not a campaign store (no spec.json); "
            "run the campaign first"
        )
    return store


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    store_dir = Path(args.store) if args.store else _default_store(spec)
    stream = sys.stderr if args.quiet else sys.stdout

    def progress(outcome: TrialOutcome, stats: RunStats) -> None:
        if args.quiet:
            return
        done = stats.skipped + stats.executed
        flag = "ok" if outcome.status == "ok" else "ERR"
        label = " ".join(f"{k}={v}" for k, v in sorted(outcome.params.items()))
        print(
            f"[{done}/{stats.total}] {flag} {outcome.kind} {label} "
            f"({outcome.elapsed:.2f}s)",
            file=stream,
            flush=True,
        )

    with CampaignStore(store_dir) as store:
        try:
            stats = run_campaign(
                spec,
                store,
                workers=args.workers,
                chunk_size=args.chunk_size,
                max_trials=args.max_trials,
                retry_errors=not args.no_retry_errors,
                progress=progress,
            )
        except KeyboardInterrupt:
            print(
                "\ninterrupted — completed trials are saved; "
                "re-run to resume",
                file=sys.stderr,
            )
            return 130
    print(
        f"campaign {spec.name}: {stats.total} trials, "
        f"{stats.skipped} already done, {stats.executed} run "
        f"({stats.failed} failed), {stats.remaining} remaining, "
        f"{stats.elapsed:.2f}s",
        file=stream,
    )
    if stats.failed:
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    spec = store.load_spec()
    trials = spec.trials()
    completed = store.completed_keys()
    errors = store.error_keys()
    done = sum(1 for trial in trials if trial.key in completed)
    failed = sum(1 for trial in trials if trial.key in errors)
    pending = len(trials) - done - failed
    print(f"campaign:  {spec.name}")
    if spec.description:
        print(f"about:     {spec.description}")
    print(f"store:     {store.root}")
    print(f"trials:    {len(trials)}")
    print(f"completed: {done}")
    print(f"errored:   {failed}")
    print(f"pending:   {pending}")
    if store.corrupt_lines:
        print(f"torn results lines ignored: {store.corrupt_lines}")
    return 0 if pending == 0 and failed == 0 else 3


def _cmd_report(args: argparse.Namespace) -> int:
    store = _open_store_dir(args.store)
    spec = store.load_spec()
    text = render_report(spec, store)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns",
        description="Declarative, parallel, resumable experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run (or resume) a campaign spec")
    run.add_argument("spec", help="path to a campaign spec JSON file")
    run.add_argument("--store", help="result store directory")
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1 = in-process serial)",
    )
    run.add_argument(
        "--chunk-size", type=int, default=None,
        help="trials per worker chunk (default: auto)",
    )
    run.add_argument(
        "--max-trials", type=int, default=None,
        help="execute at most this many pending trials, then stop",
    )
    run.add_argument(
        "--no-retry-errors", action="store_true",
        help="also skip trials whose previous attempt errored",
    )
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(fn=_cmd_run)

    status = sub.add_parser("status", help="summarise a campaign store")
    status.add_argument("store", help="campaign store directory")
    status.set_defaults(fn=_cmd_status)

    report = sub.add_parser(
        "report", help="render a completed campaign's report"
    )
    report.add_argument("store", help="campaign store directory")
    report.add_argument("--out", help="also write the report to this file")
    report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
