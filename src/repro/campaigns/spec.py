"""Declarative campaign specs and their deterministic trial expansion.

A *campaign* is a grid of experiment parameters — sizes, exact
``Fraction`` edge prices, solution concepts, schedulers, seed ranges —
plus the name of a runner (:mod:`repro.campaigns.runners`) that knows how
to execute one cell of the grid.  :class:`CampaignSpec` is the
declarative description (dataclass with a lossless dict/JSON round-trip,
so specs can be committed next to the code) and :meth:`CampaignSpec.trials`
is its deterministic expansion into individually-addressable
:class:`Trial` objects.

Identity is content-addressed: a trial's :attr:`Trial.key` is a BLAKE2b
hash of its canonical JSON form (runner kind + sorted, exactly-encoded
parameters).  Two spellings of the same trial — ``alpha: 4.5`` vs
``alpha: "9/2"``, axes listed in a different order — hash identically,
and nothing ambient (time, hostname, worker id) ever enters the key, so
a result store keyed by trial hashes stays valid across re-runs,
machines and worker counts.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from fractions import Fraction
from hashlib import blake2b
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro._alpha import as_alpha
from repro.core.concepts import Concept

__all__ = [
    "CampaignSpec",
    "Trial",
    "from_jsonable",
    "to_jsonable",
    "trial_key",
]


# -- exact JSON codec --------------------------------------------------------
#
# Everything a trial touches must survive JSON exactly: Fractions are
# tagged with their ``p/q`` string form (never floats), Concepts with
# their enum name.  Plain ints/strings/bools/None pass through.

_FRACTION_TAG = "$fraction"
_CONCEPT_TAG = "$concept"


def to_jsonable(value: Any) -> Any:
    """Encode a parameter or result value into exact, JSON-safe form."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return {_FRACTION_TAG: str(value.numerator)}
        return {_FRACTION_TAG: f"{value.numerator}/{value.denominator}"}
    if isinstance(value, Concept):
        return {_CONCEPT_TAG: value.name}
    if isinstance(value, (int, str, float)):
        return value
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    raise TypeError(f"cannot encode {value!r} for a campaign record")


def from_jsonable(value: Any) -> Any:
    """Decode :func:`to_jsonable` output back to exact Python values."""
    if isinstance(value, dict):
        if set(value) == {_FRACTION_TAG}:
            return Fraction(value[_FRACTION_TAG])
        if set(value) == {_CONCEPT_TAG}:
            return Concept[value[_CONCEPT_TAG]]
        return {key: from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    return value


def _canonical(kind: str, params: Mapping[str, Any]) -> str:
    payload = {"kind": kind, "params": to_jsonable(dict(params))}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def trial_key(kind: str, params: Mapping[str, Any]) -> str:
    """Content hash of one trial (stable across spellings and sessions).

    Parameters are canonicalised first — ``alpha: 3`` / ``"3"`` /
    ``Fraction(3)`` and ``concept: "PS"`` / ``Concept.PS`` all hash
    identically, and ``None``-valued entries are dropped (absent and
    ``None`` are the same trial).
    """
    canon = {
        name: _normalise_param(name, value)
        for name, value in params.items()
        if value is not None
    }
    return blake2b(
        _canonical(kind, canon).encode("utf-8"), digest_size=16
    ).hexdigest()


# -- trials ------------------------------------------------------------------


@dataclass(frozen=True)
class Trial:
    """One addressable cell of a campaign grid."""

    kind: str
    items: tuple[tuple[str, Any], ...]  # sorted by parameter name

    @property
    def params(self) -> dict[str, Any]:
        return dict(self.items)

    @property
    def key(self) -> str:
        return trial_key(self.kind, self.items_mapping())

    def items_mapping(self) -> dict[str, Any]:
        return dict(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.items)
        return f"Trial({self.kind}: {inner})"


def _normalise_param(name: str, value: Any) -> Any:
    """Exact-type coercion for well-known axis names.

    ``alpha`` always becomes a :class:`Fraction` (accepting ints, dyadic
    floats and ``"p/q"`` strings), ``concept`` a :class:`Concept`
    (accepting enum names or values).  Other axes pass through
    :func:`from_jsonable` so tagged values decode and plain ones survive.
    """
    if name == "alpha":
        return as_alpha(from_jsonable(value))
    if name == "concept":
        decoded = from_jsonable(value)
        if isinstance(decoded, Concept):
            return decoded
        if isinstance(decoded, str):
            try:
                return Concept[decoded]
            except KeyError:
                return Concept(decoded)
        raise TypeError(f"cannot interpret {value!r} as a Concept")
    return from_jsonable(value)


def _emit_param(name: str, value: Any) -> Any:
    """The human-friendly JSON spelling used when serialising specs."""
    if isinstance(value, Fraction):
        return str(value.numerator) if value.denominator == 1 else str(value)
    if isinstance(value, Concept):
        return value.name
    return to_jsonable(value)


# -- the spec ----------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: named grids over exact parameters.

    ``grids`` is a sequence of axis mappings; each grid expands to the
    cross product of its axes (values in listed order, axes in listed
    order), and the campaign's trial list is the concatenation of its
    grids with duplicate trial keys dropped (first occurrence wins).  A
    grid may override the campaign-level runner ``kind`` with its own
    ``"kind"`` entry.  Scalar axis values are treated as singleton lists,
    so ``{"n": 9, "alpha": [2, 4]}`` means two trials.

    ``seed`` is the campaign's base seed; runners derive every trial's
    randomness from it and the trial's own identity, never from ambient
    state.  The ``dynamics`` runner uses the shared
    :func:`repro._rng.trial_seed` formula (bit-compatible with
    ``convergence_study``); runner kinds whose streams must differ
    across more axes than a seed index should derive through
    :func:`repro._rng.derive_seed`.

    ``report`` configures the default aggregation
    (:mod:`repro.campaigns.aggregate`): a mapping with a ``"reducer"``
    name and reducer-specific options, carried verbatim through the
    dict/JSON round-trip.
    """

    name: str
    kind: str
    grids: tuple[Mapping[str, Any], ...]
    description: str = ""
    seed: int = 0
    report: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign needs a name")
        if not self.grids:
            raise ValueError(f"campaign {self.name!r} has no grids")
        object.__setattr__(self, "grids", tuple(dict(g) for g in self.grids))
        object.__setattr__(self, "report", dict(self.report))

    # -- expansion ----------------------------------------------------------

    def trials(self) -> list[Trial]:
        """The deterministic, duplicate-free trial list of this campaign."""
        seen: set[str] = set()
        out: list[Trial] = []
        for trial in self._expand():
            key = trial.key
            if key in seen:
                continue
            seen.add(key)
            out.append(trial)
        return out

    def _expand(self) -> Iterator[Trial]:
        for grid in self.grids:
            kind = grid.get("kind", self.kind)
            if not isinstance(kind, str) or not kind:
                raise ValueError(f"bad runner kind {kind!r} in {self.name!r}")
            axes: list[tuple[str, list[Any]]] = []
            for axis, values in grid.items():
                if axis == "kind":
                    continue
                if isinstance(values, Mapping) and set(values) == {"$range"}:
                    # {"$range": N} / {"$range": [start, stop]}: the usual
                    # spelling for seed-index axes
                    bounds = values["$range"]
                    spread: Sequence[Any] = (
                        list(range(int(bounds)))
                        if isinstance(bounds, int)
                        else list(range(int(bounds[0]), int(bounds[1])))
                    )
                elif isinstance(values, (list, tuple)):
                    spread = values
                else:
                    spread = [values]
                axes.append(
                    (axis, [_normalise_param(axis, v) for v in spread])
                )
            names = [axis for axis, _ in axes]
            for combo in itertools.product(*(vals for _, vals in axes)):
                # absent and None-valued parameters are the same trial:
                # drop Nones so both spellings share one content hash
                params = {
                    name: value
                    for name, value in zip(names, combo)
                    if value is not None
                }
                yield Trial(kind=kind, items=tuple(sorted(params.items())))

    # -- dict / JSON round-trip ---------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "seed": self.seed,
            "grids": [
                {
                    axis: (
                        [_emit_param(axis, v) for v in values]
                        if isinstance(values, (list, tuple))
                        else _emit_param(axis, values)
                    )
                    for axis, values in grid.items()
                }
                for grid in self.grids
            ],
            "report": to_jsonable(dict(self.report)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        unknown = set(payload) - {
            "name", "description", "kind", "seed", "grids", "report",
        }
        if unknown:
            raise ValueError(f"unknown campaign spec fields: {sorted(unknown)}")
        return cls(
            name=payload["name"],
            description=payload.get("description", ""),
            kind=payload["kind"],
            seed=int(payload.get("seed", 0)),
            grids=tuple(payload["grids"]),
            report=from_jsonable(payload.get("report", {})) or {},
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())
