"""Parallel experiment campaigns: declarative sweeps over the engine.

The paper's empirical story — Table 1, the PoA ladder, the convergence
questions of its conclusion — is a grid of instances x exact alpha
regimes x solution concepts x seeds.  This package makes that grid a
first-class object:

* :mod:`~repro.campaigns.spec` — declarative :class:`CampaignSpec`
  (JSON round-trip, committed next to the code) expanding
  deterministically into content-addressed :class:`Trial`\\ s;
* :mod:`~repro.campaigns.runners` — the per-trial execution kinds
  (``tree_poa``, ``graph_poa``, ``dynamics``, ``weighted_poa``,
  ``constructions``, ``ladder_classify``), all riding the
  speculative-evaluation engine, all bit-reproducible from the campaign
  seed;
* :mod:`~repro.campaigns.executor` — sharded ``multiprocessing``
  execution that survives worker crashes and streams records;
* :mod:`~repro.campaigns.store` — append-only JSONL store + manifest
  keyed by trial hash (resume skips completed trials; ``Fraction``\\ s
  survive exactly);
* :mod:`~repro.campaigns.aggregate` — reducers to Table-1-style
  renderings and :class:`~repro.dynamics.convergence.ConvergenceStats`;
* :mod:`~repro.campaigns.cli` — ``python -m repro.campaigns``
  (``run`` / ``status`` / ``report``).
"""

from repro.campaigns.aggregate import (
    REDUCERS,
    convergence_stats,
    render_report,
)
from repro.campaigns.executor import RunStats, TrialOutcome, run_campaign
from repro.campaigns.spec import CampaignSpec, Trial, trial_key
from repro.campaigns.store import CampaignStore

__all__ = [
    "REDUCERS",
    "CampaignSpec",
    "CampaignStore",
    "RunStats",
    "Trial",
    "TrialOutcome",
    "convergence_stats",
    "render_report",
    "run_campaign",
    "trial_key",
]
