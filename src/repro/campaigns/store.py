"""Append-only, content-addressed result store for campaigns.

Layout of a store directory::

    spec.json       the campaign spec that produced the results
    results.jsonl   one JSON record per finished trial, append-only

Each record carries the trial's content hash
(:func:`repro.campaigns.spec.trial_key`), its exactly-encoded parameters
and result (``Fraction`` values survive as tagged ``p/q`` strings —
never floats), a status (``ok`` / ``error``) and the wall time.  The
*manifest* is the key -> record map rebuilt by scanning the JSONL on
open; a campaign run consults it to skip every trial that already has an
``ok`` record, which is what makes runs resumable: kill a campaign at
any point and the next run re-executes only what is missing.

Robustness: a SIGKILL mid-append can leave one torn final line.  The
scanner tolerates undecodable lines (counts them in
:attr:`CampaignStore.corrupt_lines`) instead of failing, so the affected
trial simply re-runs on resume.  Within one store, an ``ok`` record is
final — appending a second ``ok`` for the same key is a bug and raises —
while an errored trial may later gain an ``ok`` record on a retrying
resume (the manifest always prefers ``ok``).

``root=None`` gives an ephemeral in-memory store with the identical
interface, used by the examples and the ported benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterator, Mapping

from repro.campaigns.spec import CampaignSpec, from_jsonable, to_jsonable

__all__ = ["CampaignStore", "TrialRecord"]

_RESULTS_NAME = "results.jsonl"
_SPEC_NAME = "spec.json"

#: A decoded results line: key, kind, params, status, result, error, elapsed.
TrialRecord = dict[str, Any]


class CampaignStore:
    """Manifest + append-only JSONL persistence for one campaign."""

    def __init__(self, root: str | Path | None):
        self.root = Path(root) if root is not None else None
        self._ok: dict[str, TrialRecord] = {}
        self._errors: dict[str, TrialRecord] = {}
        self.corrupt_lines = 0
        self._handle: IO[str] | None = None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._scan()

    # -- scanning / manifest -------------------------------------------------

    @property
    def results_path(self) -> Path | None:
        return None if self.root is None else self.root / _RESULTS_NAME

    @property
    def spec_path(self) -> Path | None:
        return None if self.root is None else self.root / _SPEC_NAME

    def _scan(self) -> None:
        path = self.results_path
        if path is None or not path.exists():
            return
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    status = record["status"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # torn final line from a killed run: the trial it
                    # belonged to simply re-runs on resume
                    self.corrupt_lines += 1
                    continue
                if status == "ok":
                    self._ok[key] = record
                else:
                    self._errors[key] = record

    def completed_keys(self) -> frozenset:
        """Keys with a successful record (skipped on resume)."""
        return frozenset(self._ok)

    def error_keys(self) -> frozenset:
        """Keys whose latest attempt failed (retried on resume by default)."""
        return frozenset(self._errors) - frozenset(self._ok)

    def __len__(self) -> int:
        return len(self._ok)

    def __contains__(self, key: str) -> bool:
        return key in self._ok

    def result(self, key: str) -> dict[str, Any] | None:
        """The decoded (exact) result dict of an ``ok`` trial, else None."""
        record = self._ok.get(key)
        if record is None:
            return None
        return from_jsonable(record["result"])

    def record_for(self, key: str) -> TrialRecord | None:
        return self._ok.get(key) or self._errors.get(key)

    def ok_records(self) -> Iterator[TrialRecord]:
        return iter(self._ok.values())

    # -- appending -----------------------------------------------------------

    def append(
        self,
        key: str,
        kind: str,
        params: Mapping[str, Any],
        status: str,
        result: Mapping[str, Any] | None,
        error: str | None,
        elapsed: float,
    ) -> TrialRecord:
        """Append one finished-trial record (flushed to disk immediately)."""
        if status not in ("ok", "error"):
            raise ValueError(f"bad record status {status!r}")
        if status == "ok" and key in self._ok:
            raise ValueError(f"duplicate ok record for trial {key}")
        record: TrialRecord = {
            "key": key,
            "kind": kind,
            "params": to_jsonable(dict(params)),
            "status": status,
            "result": None if result is None else to_jsonable(dict(result)),
            "error": error,
            "elapsed": elapsed,
        }
        if self.root is not None:
            if self._handle is None:
                path = self.results_path
                # a SIGKILLed run can leave a torn final line with no
                # newline; terminate it before appending so the next
                # record starts on its own line instead of gluing onto
                # the garbage
                needs_newline = False
                if path.exists() and path.stat().st_size > 0:
                    with path.open("rb") as probe:
                        probe.seek(-1, 2)
                        needs_newline = probe.read(1) != b"\n"
                self._handle = path.open("a", encoding="utf-8")
                if needs_newline:
                    self._handle.write("\n")
            self._handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._handle.flush()
        if status == "ok":
            self._ok[key] = record
        else:
            self._errors[key] = record
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the spec ------------------------------------------------------------

    def save_spec(self, spec: CampaignSpec) -> None:
        """Persist the spec into the store (guards against mixing stores)."""
        existing = self.load_spec()
        if existing is not None and existing.name != spec.name:
            raise ValueError(
                f"store at {self.root} belongs to campaign "
                f"{existing.name!r}, not {spec.name!r}"
            )
        if self.spec_path is not None:
            spec.save(self.spec_path)

    def load_spec(self) -> CampaignSpec | None:
        path = self.spec_path
        if path is None or not path.exists():
            return None
        return CampaignSpec.load(path)
