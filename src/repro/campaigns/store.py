"""Append-only, content-addressed result store for campaigns.

Layout of a store directory::

    spec.json            the campaign spec that produced the results
    results.jsonl        canonical record file, append-only
    results-<host>.jsonl per-host shard (``host_id`` stores append here)
    claims/              chunk-claim leases (:mod:`repro.campaigns.leases`)

Each record carries the trial's content hash
(:func:`repro.campaigns.spec.trial_key`), its exactly-encoded parameters
and result (``Fraction`` values survive as tagged ``p/q`` strings —
never floats), a status (``ok`` / ``error``) and the wall time.  The
*manifest* is the key -> record map rebuilt by scanning the JSONL files
on open — the canonical file first, then every shard in sorted name
order; a campaign run consults it to skip every trial that already has
an ``ok`` record, which is what makes runs resumable: kill a campaign at
any point and the next run re-executes only what is missing.

Robustness: a SIGKILL mid-append can leave one torn final line in any
of the files.  The scanner tolerates undecodable lines (counted in
:attr:`CampaignStore.corrupt_lines` overall and per file in
:attr:`CampaignStore.file_corrupt_lines`) instead of failing, so the
affected trial simply re-runs on resume.  Within one file, an ``ok``
record is final — appending a second ``ok`` for the same key is a bug
and raises.  *Across* files the invariant relaxes to idempotence: two
hosts may legitimately race the same trial (a lease reclaimed from a
host presumed dead), and because trials are deterministic their records
must agree byte-for-byte outside the ambient ``elapsed`` field — the
scanner keeps the first and verifies the rest, raising only on a
*disagreement*, which would mean the determinism contract is broken.

:func:`merge_shards` folds the shards into the canonical file (same
idempotence rule, per-shard accounting) so a finished multi-host
campaign collapses back to the single-file layout.

``root=None`` gives an ephemeral in-memory store with the identical
interface, used by the examples and the ported benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterator, Mapping

from repro.campaigns.spec import CampaignSpec, from_jsonable, to_jsonable

__all__ = ["CampaignStore", "MergeStats", "TrialRecord", "merge_shards"]

_RESULTS_NAME = "results.jsonl"
_SHARD_GLOB = "results-*.jsonl"
_SPEC_NAME = "spec.json"

#: A decoded results line: key, kind, params, status, result, error, elapsed.
TrialRecord = dict[str, Any]


def _record_identity(record: TrialRecord) -> dict[str, Any]:
    """A record minus its ambient fields — the cross-shard equality basis.

    ``elapsed`` is wall time and differs between two hosts that ran the
    same deterministic trial; everything else must agree exactly.
    """
    return {k: v for k, v in record.items() if k != "elapsed"}


class CampaignStore:
    """Manifest + append-only JSONL persistence for one campaign.

    ``host_id`` switches the store into *sharded* mode: appends go to
    ``results-<host_id>.jsonl`` instead of the canonical file, so any
    number of cooperating hosts can write to one store directory on a
    shared filesystem without write contention — each host owns its
    shard, and the scanner folds all of them into one manifest.
    """

    def __init__(self, root: str | Path | None, host_id: str | None = None):
        if host_id is not None and (
            not host_id or any(c in host_id for c in "/\\\0")
        ):
            raise ValueError(f"host id {host_id!r} must be filename-safe")
        self.root = Path(root) if root is not None else None
        self.host_id = host_id
        if host_id is not None and self.root is None:
            raise ValueError("sharded (host_id) stores need an on-disk root")
        self._ok: dict[str, TrialRecord] = {}
        self._errors: dict[str, TrialRecord] = {}
        self.corrupt_lines = 0
        self.file_corrupt_lines: dict[str, int] = {}
        #: file name -> decoded records scanned (shard-progress breakdown
        #: for ``python -m repro.campaigns status`` in claim mode)
        self.file_record_counts: dict[str, int] = {}
        self._handle: IO[str] | None = None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._scan()

    # -- scanning / manifest -------------------------------------------------

    @property
    def results_path(self) -> Path | None:
        """The canonical (merged / single-host) record file."""
        return None if self.root is None else self.root / _RESULTS_NAME

    @property
    def append_path(self) -> Path | None:
        """Where this store instance appends: its shard, or the canonical
        file when no ``host_id`` was given."""
        if self.root is None:
            return None
        if self.host_id is None:
            return self.results_path
        return self.root / f"results-{self.host_id}.jsonl"

    @property
    def spec_path(self) -> Path | None:
        return None if self.root is None else self.root / _SPEC_NAME

    def shard_paths(self) -> list[Path]:
        """Every per-host shard present, in sorted (deterministic) order."""
        if self.root is None:
            return []
        return sorted(self.root.glob(_SHARD_GLOB))

    def _scan(self) -> None:
        paths = []
        if self.results_path is not None and self.results_path.exists():
            paths.append(self.results_path)
        paths.extend(self.shard_paths())
        for path in paths:
            self._scan_file(path)

    def _scan_file(self, path: Path) -> None:
        corrupt = 0
        decoded = 0
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    status = record["status"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # torn final line from a killed run: the trial it
                    # belonged to simply re-runs on resume
                    corrupt += 1
                    continue
                decoded += 1
                if status == "ok":
                    existing = self._ok.get(key)
                    if existing is None:
                        self._ok[key] = record
                    elif _record_identity(existing) != _record_identity(
                        record
                    ):
                        raise ValueError(
                            f"shards disagree on trial {key}: two ok "
                            "records with different payloads (trials "
                            "must be deterministic)"
                        )
                    # identical re-run from another shard: idempotent
                else:
                    self._errors.setdefault(key, record)
        self.file_record_counts[path.name] = (
            self.file_record_counts.get(path.name, 0) + decoded
        )
        if corrupt:
            self.file_corrupt_lines[path.name] = (
                self.file_corrupt_lines.get(path.name, 0) + corrupt
            )
            self.corrupt_lines += corrupt

    def refresh(self) -> None:
        """Rescan every record file, folding in other hosts' progress.

        Claiming executors call this between chunks so trials another
        host completed since open are skipped instead of re-run (re-runs
        would still be harmless — records are idempotent — just wasted).
        """
        if self.root is None:
            return
        self._ok.clear()
        self._errors.clear()
        self.corrupt_lines = 0
        self.file_corrupt_lines = {}
        self.file_record_counts = {}
        self._scan()

    def completed_keys(self) -> frozenset:
        """Keys with a successful record (skipped on resume)."""
        return frozenset(self._ok)

    def error_keys(self) -> frozenset:
        """Keys whose latest attempt failed (retried on resume by default)."""
        return frozenset(self._errors) - frozenset(self._ok)

    def __len__(self) -> int:
        return len(self._ok)

    def __contains__(self, key: str) -> bool:
        return key in self._ok

    def result(self, key: str) -> dict[str, Any] | None:
        """The decoded (exact) result dict of an ``ok`` trial, else None."""
        record = self._ok.get(key)
        if record is None:
            return None
        return from_jsonable(record["result"])

    def record_for(self, key: str) -> TrialRecord | None:
        return self._ok.get(key) or self._errors.get(key)

    def ok_records(self) -> Iterator[TrialRecord]:
        return iter(self._ok.values())

    # -- appending -----------------------------------------------------------

    def append(
        self,
        key: str,
        kind: str,
        params: Mapping[str, Any],
        status: str,
        result: Mapping[str, Any] | None,
        error: str | None,
        elapsed: float,
    ) -> TrialRecord:
        """Append one finished-trial record (flushed to disk immediately)."""
        if status not in ("ok", "error"):
            raise ValueError(f"bad record status {status!r}")
        if status == "ok" and key in self._ok:
            raise ValueError(f"duplicate ok record for trial {key}")
        record: TrialRecord = {
            "key": key,
            "kind": kind,
            "params": to_jsonable(dict(params)),
            "status": status,
            "result": None if result is None else to_jsonable(dict(result)),
            "error": error,
            "elapsed": elapsed,
        }
        if self.root is not None:
            if self._handle is None:
                path = self.append_path
                # a SIGKILLed run can leave a torn final line with no
                # newline; terminate it before appending so the next
                # record starts on its own line instead of gluing onto
                # the garbage
                needs_newline = False
                if path.exists() and path.stat().st_size > 0:
                    with path.open("rb") as probe:
                        probe.seek(-1, 2)
                        needs_newline = probe.read(1) != b"\n"
                self._handle = path.open("a", encoding="utf-8")
                if needs_newline:
                    self._handle.write("\n")
            self._handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._handle.flush()
        if status == "ok":
            self._ok[key] = record
        else:
            self._errors[key] = record
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the spec ------------------------------------------------------------

    def save_spec(self, spec: CampaignSpec) -> None:
        """Persist the spec into the store (guards against mixing stores)."""
        existing = self.load_spec()
        if existing is not None and existing.name != spec.name:
            raise ValueError(
                f"store at {self.root} belongs to campaign "
                f"{existing.name!r}, not {spec.name!r}"
            )
        if self.spec_path is not None:
            spec.save(self.spec_path)

    def load_spec(self) -> CampaignSpec | None:
        path = self.spec_path
        if path is None or not path.exists():
            return None
        return CampaignSpec.load(path)


# -- merging shards ----------------------------------------------------------


@dataclass
class MergeStats:
    """What one :func:`merge_shards` invocation did, per shard."""

    #: shard file name -> decoded record count
    records: dict[str, int] = field(default_factory=dict)
    #: shard file name -> records folded into the canonical file
    merged: dict[str, int] = field(default_factory=dict)
    #: shard file name -> idempotent duplicates skipped (verified equal)
    duplicates: dict[str, int] = field(default_factory=dict)
    #: shard file name -> torn/undecodable lines tolerated
    corrupt_lines: dict[str, int] = field(default_factory=dict)
    #: shard files deleted after folding (``prune=True``)
    pruned: list[str] = field(default_factory=list)

    @property
    def total_merged(self) -> int:
        return sum(self.merged.values())


def merge_shards(root: str | Path, prune: bool = False) -> MergeStats:
    """Fold every ``results-<host>.jsonl`` shard into ``results.jsonl``.

    Deterministic: shards fold in sorted file-name order, records in
    file order, so two merges of the same shard set produce the same
    canonical file.  Cross-shard duplicates follow the scanner's
    idempotence rule — verified equal outside ``elapsed`` (first
    occurrence wins, later ones are counted and dropped; a payload
    disagreement raises).  ``error`` records fold only for keys with no
    record yet, mirroring the manifest's ok-beats-error preference.
    ``prune=True`` deletes each shard after it folded, leaving the
    single-file layout (the merge is append+flush first, so a crash
    mid-prune loses no records — re-merging is a no-op).
    """
    root = Path(root)
    canonical = CampaignStore(root)
    try:
        # the canonical manifest must reflect only the canonical file:
        # rebuild from it alone so shard records actually *fold* instead
        # of being pre-marked as present
        canonical._ok.clear()
        canonical._errors.clear()
        canonical.corrupt_lines = 0
        canonical.file_corrupt_lines = {}
        canonical.file_record_counts = {}
        if canonical.results_path.exists():
            canonical._scan_file(canonical.results_path)

        stats = MergeStats()
        shards = canonical.shard_paths()
        for shard in shards:
            name = shard.name
            stats.records[name] = 0
            stats.merged[name] = 0
            stats.duplicates[name] = 0
            stats.corrupt_lines[name] = 0
            with shard.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        key = record["key"]
                        status = record["status"]
                        if status not in ("ok", "error"):
                            raise ValueError(status)
                    except (
                        json.JSONDecodeError, KeyError, TypeError,
                        ValueError,
                    ):
                        stats.corrupt_lines[name] += 1
                        continue
                    stats.records[name] += 1
                    if status == "ok":
                        existing = canonical._ok.get(key)
                        if existing is not None:
                            if _record_identity(existing) != (
                                _record_identity(record)
                            ):
                                raise ValueError(
                                    f"shard {name} disagrees with the "
                                    f"canonical store on trial {key}"
                                )
                            stats.duplicates[name] += 1
                            continue
                    elif key in canonical._ok or key in canonical._errors:
                        stats.duplicates[name] += 1
                        continue
                    canonical.append(
                        key=key,
                        kind=record["kind"],
                        params=from_jsonable(record["params"]),
                        status=status,
                        result=from_jsonable(record["result"]),
                        error=record["error"],
                        elapsed=record["elapsed"],
                    )
                    stats.merged[name] += 1
    finally:
        canonical.close()
    if prune:
        for shard in shards:
            shard.unlink()
            stats.pruned.append(shard.name)
    return stats
