"""Incrementally maintained bridge set for the distance engine.

A *bridge* is an edge whose removal disconnects its component.  The
distance engine cares because removing a bridge has a closed-form effect
on the cached APSP matrix: the component splits into the two sides of the
bridge cut, every cross pair jumps to the unreachable sentinel, and every
within-side distance is unchanged (a simple shortest path cannot cross
the cut twice).  PR 1 exploited this on forests only — where *every* edge
is a bridge — via incremental acyclicity tracking.  :class:`BridgeSet`
generalises it: the engine now knows the exact bridge set of the live
graph at all times, so bridge removals on arbitrary graphs take the
search-free split path.

Maintenance contract (mirrors the engine's ``apply_*`` / ``undo``):

* **build** — one chain decomposition (Schmidt 2013) when the owning
  :class:`~repro.graphs.distances.DistanceMatrix` materialises, counted
  by the :data:`BRIDGE_REBUILDS` spy.  DFS-order the graph, then walk
  each back edge's fundamental cycle upwards through parent pointers;
  tree edges covered by no chain are exactly the bridges.
* **addition of** ``uv`` — if ``u`` and ``v`` were disconnected the new
  edge is itself a bridge and nothing else changes.  Otherwise the new
  edge closes a cycle and the bridges that die are exactly those whose
  cut separates ``u`` from ``v``; for a bridge ``ab`` the side of any
  node ``x`` is readable off the *pre-add* matrix (``d(x, a) < d(x, b)``
  on ``a``'s side, the reverse on ``b``'s, ties only for nodes in other
  components), so the whole test is one vectorised comparison over the
  current bridges — ``O(|bridges|)``, no traversal.
* **removal of a bridge** ``uv`` — the edge leaves the set; no other
  edge's status changes (deleting a cut edge destroys no cycles), so the
  update is ``O(1)``.
* **removal of a non-bridge** ``uv`` — cycles through ``uv`` die, so
  edges may *become* bridges (never the reverse).  All candidates lie in
  the component of ``u``, which one chain-decomposition sweep seeded at
  ``u`` re-derives (:data:`BRIDGE_SWEEPS` spy).  The sweep costs
  ``O(n_c + m_c)`` on that component — strictly dominated by the probe +
  repair BFS work the engine already pays for the matrix on the same
  removal, so the bridge set never changes the removal's complexity.
* **undo** — every mutation returns an ``(added, removed)`` delta that
  the engine stores in its :class:`~repro.graphs.distances.UndoToken`;
  :meth:`BridgeSet.revert` restores the set bit-exactly in LIFO order.

Because the set is exact at every step, ``is_forest`` is simply
``|bridges| == |edges|`` — the engine's previous one-way acyclicity flag
(which could not recover when deletions made a cyclic graph acyclic
again) is subsumed.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.obs import metrics as _obs

__all__ = [
    "BridgeDelta",
    "BridgeSet",
    "bridge_rebuild_count",
    "bridge_sweep_count",
    "component_bridges",
]

#: Number of full chain-decomposition builds since import — a test spy:
#: exactly one per engine materialisation, zero along move trajectories.
#: Registry-backed (thread-safe); ``bridges.BRIDGE_REBUILDS`` stays a
#: read-only alias via module ``__getattr__``.
_BRIDGE_REBUILDS = _obs.counter(
    "repro_engine_bridge_rebuilds_total",
    "full chain-decomposition bridge-set builds",
)

#: Component-local chain-decomposition sweeps (non-bridge removals only)
#: — observability for the one update that is not O(affected);
#: additions, bridge removals and undos never sweep.
_BRIDGE_SWEEPS = _obs.counter(
    "repro_engine_bridge_sweeps_total",
    "component-local bridge sweeps after non-bridge removals",
)

_SPY_ALIASES = {
    "BRIDGE_REBUILDS": _BRIDGE_REBUILDS,
    "BRIDGE_SWEEPS": _BRIDGE_SWEEPS,
}


def __getattr__(name: str) -> int:
    counter = _SPY_ALIASES.get(name)
    if counter is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    return counter.value

#: ``(added, removed)`` bridge-set delta of one engine mutation, stored
#: in the engine's undo token and reversed by :meth:`BridgeSet.revert`.
BridgeDelta = tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]

_NO_CHANGE: BridgeDelta = ((), ())


def bridge_rebuild_count() -> int:
    """How many full chain-decomposition builds have run since import."""
    return _BRIDGE_REBUILDS.value


def bridge_sweep_count() -> int:
    """How many component-local bridge sweeps have run since import."""
    return _BRIDGE_SWEEPS.value


def _edge(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


def component_bridges(adj, roots: Iterable[int]) -> set[tuple[int, int]]:
    """Bridges of the components containing ``roots``, by chain decomposition.

    ``adj`` is a node -> neighbors mapping (e.g. ``networkx.Graph.adj``).
    One iterative DFS per unvisited root records DFS numbers, parents and
    back edges keyed by their ancestor endpoint; walking each back edge's
    fundamental cycle upwards marks the chain-covered tree edges, and the
    uncovered tree edges are exactly the bridges (Schmidt's chain
    decomposition).  ``O(n_c + m_c)`` over the visited components.
    """
    dfn: dict[int, int] = {}
    parent: dict[int, int | None] = {}
    order: list[int] = []
    back_at: dict[int, list[int]] = {}
    for root in roots:
        if root in dfn:
            continue
        dfn[root] = len(dfn)
        parent[root] = None
        order.append(root)
        stack = [(root, iter(adj[root]))]
        while stack:
            node, neighbors = stack[-1]
            descended = False
            for neighbor in neighbors:
                if neighbor not in dfn:
                    dfn[neighbor] = len(dfn)
                    parent[neighbor] = node
                    order.append(neighbor)
                    stack.append((neighbor, iter(adj[neighbor])))
                    descended = True
                    break
                if neighbor != parent[node] and dfn[neighbor] < dfn[node]:
                    # back edge node -> neighbor, keyed by the ancestor
                    back_at.setdefault(neighbor, []).append(node)
            if not descended:
                stack.pop()
    visited: set[int] = set()
    chained: set[tuple[int, int]] = set()
    for node in order:  # ancestors in increasing DFS order
        for descendant in back_at.get(node, ()):
            visited.add(node)
            walk = descendant
            while walk not in visited:
                visited.add(walk)
                step = parent[walk]
                chained.add(_edge(walk, step))
                walk = step
    bridges = set()
    for node in order:
        up = parent[node]
        if up is not None:
            edge = _edge(node, up)
            if edge not in chained:
                bridges.add(edge)
    return bridges


class BridgeSet:
    """The exact bridge set of a live graph, maintained through mutations.

    Owned by :class:`~repro.graphs.distances.DistanceMatrix`; the engine
    calls :meth:`note_add` / :meth:`note_remove` from inside its own
    ``apply_*`` mutators (with the matrix / adjacency state each hook
    documents) and stores the returned deltas in its undo tokens.
    """

    __slots__ = ("_edges", "_first", "_second", "_pos", "_len", "_version")

    def __init__(self, adj, nodes: Iterable[int]):
        _BRIDGE_REBUILDS.inc()
        self._edges: set[tuple[int, int]] = component_bridges(adj, nodes)
        # incremental endpoint-array cache (see _endpoint_arrays):
        # materialised lazily, then maintained through every delta
        self._first: np.ndarray | None = None
        self._second: np.ndarray | None = None
        self._pos: dict[tuple[int, int], int] = {}
        self._len = 0
        self._version = 0

    # -- queries ------------------------------------------------------------

    def is_bridge(self, u: int, v: int) -> bool:
        return _edge(u, v) in self._edges

    def __contains__(self, edge) -> bool:
        return _edge(*edge) in self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._edges)

    def as_frozenset(self) -> frozenset:
        return frozenset(self._edges)

    @property
    def version(self) -> int:
        """Monotone counter bumped by every endpoint-array change.

        Lets consumers holding arrays derived from
        :meth:`_endpoint_arrays` detect staleness without comparing
        contents.
        """
        return self._version

    def _endpoint_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Bridge endpoints as two int64 array views.

        The backing arrays are built once (first query) and then
        maintained *incrementally* through every delta — O(1) amortised
        append for a new bridge, O(1) swap-with-last removal for a dead
        one — instead of being invalidated and re-sorted on each engine
        push/pop.  The exponential searches hammer ``note_add`` once per
        DFS node, so rebuild-per-delta was measurable overhead (the
        PR-3 BNE quick-mode dip).  Order is unspecified (the side test
        in :meth:`note_add` is order-independent); the views are valid
        until the next mutation (:attr:`version` detects that).
        """
        if self._first is None:
            ordered = sorted(self._edges)
            capacity = max(8, 2 * len(ordered))
            self._first = np.empty(capacity, dtype=np.int64)
            self._second = np.empty(capacity, dtype=np.int64)
            for index, (u, v) in enumerate(ordered):
                self._first[index] = u
                self._second[index] = v
            self._pos = {edge: index for index, edge in enumerate(ordered)}
            self._len = len(ordered)
        return self._first[: self._len], self._second[: self._len]

    def _arrays_add(self, edge: tuple[int, int]) -> None:
        if self._first is None:
            return  # cache not materialised yet; nothing to maintain
        self._version += 1
        if self._len == len(self._first):
            grown_first = np.empty(2 * self._len, dtype=np.int64)
            grown_second = np.empty(2 * self._len, dtype=np.int64)
            grown_first[: self._len] = self._first
            grown_second[: self._len] = self._second
            self._first, self._second = grown_first, grown_second
        self._first[self._len] = edge[0]
        self._second[self._len] = edge[1]
        self._pos[edge] = self._len
        self._len += 1

    def _arrays_discard(self, edge: tuple[int, int]) -> None:
        if self._first is None:
            return
        self._version += 1
        index = self._pos.pop(edge)
        last = self._len - 1
        if index != last:
            self._first[index] = self._first[last]
            self._second[index] = self._second[last]
            moved = (int(self._first[index]), int(self._second[index]))
            self._pos[moved] = index
        self._len = last

    # -- mutation hooks (called by the engine) ------------------------------

    def note_add(
        self, u: int, v: int, matrix: np.ndarray, unreachable: int
    ) -> BridgeDelta:
        """Update for the addition of ``uv``; ``matrix`` is **pre-add**.

        ``O(|bridges|)``: one vectorised side test against the cached
        matrix decides which bridges the new cycle kills; a connecting
        addition just inserts itself.
        """
        if matrix[u, v] == unreachable:
            edge = _edge(u, v)
            self._edges.add(edge)
            self._arrays_add(edge)
            return ((edge,), ())
        if not self._edges:
            return _NO_CHANGE
        first, second = self._endpoint_arrays()
        row_u = matrix[u]
        row_v = matrix[v]
        dies = (row_u[first] < row_u[second]) != (row_v[first] < row_v[second])
        if not dies.any():
            return _NO_CHANGE
        dead = tuple(
            (int(a), int(b)) for a, b in zip(first[dies], second[dies])
        )
        self._edges.difference_update(dead)
        for edge in dead:
            self._arrays_discard(edge)
        return ((), dead)

    def note_remove(self, u: int, v: int, adj) -> BridgeDelta:
        """Update for the removal of ``uv``; ``adj`` is **post-removal**.

        Removing a bridge is ``O(1)`` (only the edge itself leaves the
        set).  Removing a non-bridge may promote edges of ``u``'s
        component to bridges — one component-local sweep re-derives them
        (:data:`BRIDGE_SWEEPS`); bridges never demote on a deletion.
        """
        edge = _edge(u, v)
        if edge in self._edges:
            self._edges.discard(edge)
            self._arrays_discard(edge)
            return ((), (edge,))
        _BRIDGE_SWEEPS.inc()
        found = component_bridges(adj, (u,))
        fresh = tuple(sorted(found - self._edges))
        if not fresh:
            return _NO_CHANGE
        self._edges.update(fresh)
        for new_bridge in fresh:
            self._arrays_add(new_bridge)
        return (fresh, ())

    def revert(self, delta: BridgeDelta) -> None:
        """Roll one mutation's delta back (engine undo, LIFO order)."""
        added, removed = delta
        if not added and not removed:
            return
        self._edges.difference_update(added)
        self._edges.update(removed)
        for edge in added:
            self._arrays_discard(edge)
        for edge in removed:
            self._arrays_add(edge)
