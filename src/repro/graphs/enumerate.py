"""Layered, isomorphism-pruned enumeration of trees and connected graphs.

The networkx atlas stops at 7 nodes; these enumerators push the exact
sweeps to n = 8-9 for connected graphs and beyond the atlas entirely for
trees, using nothing but the canonical keys of
:mod:`repro.graphs.canonical` and two complete extension moves:

* **trees, layered by node count** — every tree on ``n`` nodes is a tree
  on ``n - 1`` nodes with one leaf attached, so layer ``n`` is the
  canonical-key deduplication of all single-leaf extensions of layer
  ``n - 1``;
* **connected graphs, layered by edge count** — every connected graph
  with ``m > n - 1`` edges contains a cycle, and deleting a cycle edge
  leaves a connected graph with ``m - 1`` edges, so layer ``m`` is the
  deduplication of all single-edge additions to layer ``m - 1``; the base
  layer ``m = n - 1`` is the tree layer.

Each layer is deduplicated with a per-layer *seen set* of canonical keys
and then **sorted by key**, so enumeration order is a pure function of
``(n, m)`` — bit-stable across runs, machines and cache states.  Layers
are memoised per process (the exact-PoA campaign runners revisit them
trial by trial), and the canonical keys double as content addresses: a
campaign trial keyed by ``(n, m)`` re-derives exactly the same graphs,
which is what makes per-layer resume safe.

:func:`enumerate_labelled_trees` is the weighted counterpart: it sweeps
all ``n**(n-2)`` Pruefer sequences and deduplicates by the **joint**
``(graph, W)`` canonical key, yielding one labelled representative per
joint isomorphism class — the exact family for weighted tree PoA, where
demands break label symmetry (under uniform demands it degenerates to
the unlabelled tree family).

Practical ceilings (pure Python): connected graphs complete in seconds
at n = 8 (11117 classes) and minutes at n = 9 (261080); trees are cheap
through n ~ 16; labelled trees are feasible to n ~ 8 (262144 sequences).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Iterator, Sequence

import networkx as nx

from repro.graphs.canonical import canonical_key, decode_key, key_of_masks

__all__ = [
    "connected_graph_layer",
    "enumerate_connected_graphs",
    "enumerate_labelled_trees",
    "enumerate_trees",
    "max_edge_count",
    "tree_layer_keys",
]

_TREE_LAYERS: dict[int, tuple[bytes, ...]] = {}
_GRAPH_LAYERS: dict[tuple[int, int], tuple[bytes, ...]] = {}


def max_edge_count(n: int) -> int:
    """Edges of the complete graph — the enumerator's last layer."""
    return n * (n - 1) // 2


def _masks_of_key(key: bytes) -> list[int]:
    """Adjacency bitmasks straight from a structural canonical key."""
    n = key[0]
    bit_bytes = (n * (n - 1) // 2 + 7) // 8
    bits = int.from_bytes(key[1 : 1 + bit_bytes], "big")
    masks = [0] * n
    position = n * (n - 1) // 2
    for i in range(n):
        for j in range(i + 1, n):
            position -= 1
            if (bits >> position) & 1:
                masks[i] |= 1 << j
                masks[j] |= 1 << i
    return masks


# -- trees -------------------------------------------------------------------


def tree_layer_keys(n: int) -> tuple[bytes, ...]:
    """Sorted canonical keys of all trees on ``n`` nodes (memoised)."""
    if n <= 0:
        raise ValueError("n must be positive")
    cached = _TREE_LAYERS.get(n)
    if cached is not None:
        return cached
    if n == 1:
        layer = (key_of_masks(1, [0]),)
    else:
        seen: set[bytes] = set()
        for parent in tree_layer_keys(n - 1):
            masks = _masks_of_key(parent)
            masks.append(0)
            leaf_bit = 1 << (n - 1)
            for u in range(n - 1):
                masks[u] |= leaf_bit
                masks[n - 1] = 1 << u
                seen.add(key_of_masks(n, masks))
                masks[u] ^= leaf_bit
        layer = tuple(sorted(seen))
    _TREE_LAYERS[n] = layer
    return layer


def enumerate_trees(n: int) -> Iterator[nx.Graph]:
    """All non-isomorphic trees on ``n`` nodes, canonical, key-sorted."""
    for key in tree_layer_keys(n):
        yield decode_key(key)[0]


# -- connected graphs --------------------------------------------------------


def connected_graph_layer(n: int, m: int) -> tuple[bytes, ...]:
    """Sorted canonical keys of connected graphs on ``n`` nodes with
    exactly ``m`` edges (memoised per layer)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not n - 1 <= m <= max_edge_count(n) or (n == 1 and m != 0):
        raise ValueError(
            f"connected graphs on {n} nodes have "
            f"{max(n - 1, 0)}..{max_edge_count(n)} edges, not {m}"
        )
    cached = _GRAPH_LAYERS.get((n, m))
    if cached is not None:
        return cached
    if m == max(n - 1, 0):
        layer = tree_layer_keys(n)
    else:
        full = (1 << n) - 1
        seen: set[bytes] = set()
        for parent in connected_graph_layer(n, m - 1):
            masks = _masks_of_key(parent)
            for u in range(n):
                candidates = full & ~masks[u] & ~((1 << (u + 1)) - 1)
                while candidates:
                    low = candidates & -candidates
                    candidates ^= low
                    v = low.bit_length() - 1
                    masks[u] |= low
                    masks[v] |= 1 << u
                    seen.add(key_of_masks(n, masks))
                    masks[u] ^= low
                    masks[v] ^= 1 << u
        layer = tuple(sorted(seen))
    _GRAPH_LAYERS[(n, m)] = layer
    return layer


def enumerate_connected_graphs(
    n: int, max_edges: int | None = None
) -> Iterator[nx.Graph]:
    """All non-isomorphic connected graphs on ``n`` nodes, layered by
    edge count (trees first, complete graph last), canonical within each
    layer, key-sorted — a bit-stable order."""
    top = max_edge_count(n) if max_edges is None else max_edges
    for m in range(max(n - 1, 0), top + 1):
        for key in connected_graph_layer(n, m):
            yield decode_key(key)[0]


# -- labelled weighted trees -------------------------------------------------


def _prufer_edges(n: int, sequence: Sequence[int]) -> list[tuple[int, int]]:
    degree = [1] * n
    for x in sequence:
        degree[x] += 1
    leaves = [u for u in range(n) if degree[u] == 1]
    leaves.sort()
    heap = list(leaves)
    edges = []
    for x in sequence:
        leaf = heappop(heap)
        edges.append((leaf, x))
        degree[leaf] = 0
        degree[x] -= 1
        if degree[x] == 1:
            heappush(heap, x)
    u, v = (w for w in range(n) if degree[w] == 1)
    edges.append((u, v))
    return edges


def enumerate_labelled_trees(n: int, traffic) -> Iterator[nx.Graph]:
    """One *labelled* tree per joint ``(tree, W)`` isomorphism class.

    Sweeps every Pruefer sequence (all ``n**(n-2)`` labelled trees) and
    keeps the first representative of each joint canonical key, so the
    family quantifies over all labelled trees exactly, modulo the
    symmetries the demand matrix actually has.  The representative keeps
    its original labels — costs against ``traffic`` depend on them.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        yield nx.empty_graph(1)
        return
    if n == 2:
        yield nx.path_graph(2)
        return
    seen: set[bytes] = set()
    for sequence in itertools.product(range(n), repeat=n - 2):
        graph = nx.empty_graph(n)
        graph.add_edges_from(_prufer_edges(n, sequence))
        key = canonical_key(graph, traffic)
        if key in seen:
            continue
        seen.add(key)
        yield graph
