"""Graph generation: exhaustive small-graph enumeration and random models.

Exhaustive enumeration powers the "worst case over all trees / all graphs"
experiments; random models feed the property-based tests and the dynamics
examples.  Everything is seeded and deterministic.

Enumeration is backed by the canonical-key layered enumerator
(:mod:`repro.graphs.enumerate`): trees come from it at every size, and
connected graphs dispatch to it above the networkx atlas ceiling of 7
nodes (the atlas survives as the n <= 7 cross-validation oracle in the
test suite).
"""

from __future__ import annotations

import random
from typing import Iterator

import networkx as nx

from repro.graphs.distances import canonical_labels

__all__ = [
    "all_connected_graphs",
    "all_trees",
    "random_connected_gnp",
    "random_tree",
]

_ATLAS_MAX_NODES = 7


def all_trees(n: int) -> Iterator[nx.Graph]:
    """All non-isomorphic trees on ``n`` labelled nodes ``0..n-1``.

    Counts: 1, 1, 1, 2, 3, 6, 11, 23, 47, 106 for n = 1..10.

    Backed by the canonical-key leaf-extension enumerator
    (:func:`repro.graphs.enumerate.enumerate_trees`) — atlas-free, so
    there is no hard ceiling; layers are memoised, and graphs arrive in
    canonical key-sorted order (bit-stable across runs).
    """
    from repro.graphs.enumerate import enumerate_trees

    if n <= 0:
        raise ValueError("n must be positive")
    yield from enumerate_trees(n)


def all_connected_graphs(n: int) -> Iterator[nx.Graph]:
    """All non-isomorphic connected graphs on ``n`` nodes.

    Counts: 1, 1, 2, 6, 21, 112, 853, 11117, 261080 for n = 1..9.

    ``n <= 7`` reads the networkx graph atlas (unchanged historical
    order); above the atlas ceiling the canonical-key layered enumerator
    (:func:`repro.graphs.enumerate.enumerate_connected_graphs`) takes
    over — seconds at n = 8, minutes at n = 9 (the practical ceiling).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n > _ATLAS_MAX_NODES:
        from repro.graphs.enumerate import enumerate_connected_graphs

        yield from enumerate_connected_graphs(n)
        return
    for graph in nx.graph_atlas_g():
        if graph.number_of_nodes() != n:
            continue
        if n > 1 and not nx.is_connected(graph):
            continue
        yield canonical_labels(graph)


def random_tree(n: int, rng: random.Random) -> nx.Graph:
    """Uniform random labelled tree via a random Pruefer sequence."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return nx.empty_graph(1)
    if n == 2:
        return nx.path_graph(2)
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(sequence)


def random_connected_gnp(n: int, p: float, rng: random.Random) -> nx.Graph:
    """A connected G(n, p) sample: a random spanning tree plus G(n,p) edges.

    The spanning-tree guarantee keeps the distribution slightly denser than
    conditional G(n,p) but every sample is usable as a game state.
    """
    graph = random_tree(n, rng)
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)
    return graph
