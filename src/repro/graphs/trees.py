"""Rooted-tree structure: layers, subtrees, 1-medians, and exact swap deltas.

The paper's tree arguments are phrased around a tree rooted at a 1-median
``r``: the *layer* ``l(u) = dist(r, u)``, the subtree ``T_u`` of ``u`` and all
its descendants, and the fact that every non-root subtree contains at most
``n / 2`` nodes.  :class:`RootedTree` materialises all of that once in
``O(n)`` and answers the structural queries the checkers and constructions
need.

Removing a tree edge splits the node set into the two components; distances
within each side are untouched and distances across are determined by the
reattachment point.  That makes tree swap/add evaluations exact without any
BFS (see :func:`tree_split_masks`).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "RootedTree",
    "is_tree",
    "one_medians",
    "subtree_sizes_from",
    "tree_split_masks",
]


def is_tree(graph: nx.Graph) -> bool:
    """Connected and ``m = n - 1``."""
    n = graph.number_of_nodes()
    return (
        n > 0
        and graph.number_of_edges() == n - 1
        and nx.is_connected(graph)
    )


def _bfs_order_and_parents(
    graph: nx.Graph, root: int
) -> tuple[list[int], dict[int, int | None]]:
    parent: dict[int, int | None] = {root: None}
    order = [root]
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parent:
                parent[neighbor] = node
                order.append(neighbor)
                queue.append(neighbor)
    return order, parent


def subtree_sizes_from(graph: nx.Graph, root: int) -> dict[int, int]:
    """Size of the subtree hanging below each node when rooted at ``root``."""
    order, parent = _bfs_order_and_parents(graph, root)
    size = {node: 1 for node in order}
    for node in reversed(order):
        above = parent[node]
        if above is not None:
            size[above] += size[node]
    return size


def one_medians(tree: nx.Graph) -> list[int]:
    """The one or two 1-medians of a tree.

    A 1-median is a node minimising total distance; equivalently a node whose
    removal leaves components of size at most ``n / 2``.  Computed in
    ``O(n)`` by the classic subtree-size argument (no distance matrix).
    """
    if not is_tree(tree):
        raise ValueError("one_medians requires a tree")
    n = tree.number_of_nodes()
    root = next(iter(tree.nodes))
    order, parent = _bfs_order_and_parents(tree, root)
    size = subtree_sizes_from(tree, root)
    medians = []
    for node in order:
        largest_piece = n - size[node]  # the component containing the parent
        for neighbor in tree.neighbors(node):
            if neighbor != parent[node]:
                largest_piece = max(largest_piece, size[neighbor])
        if 2 * largest_piece <= n:
            medians.append(node)
    medians.sort()
    if not (1 <= len(medians) <= 2):
        raise AssertionError("a tree has one or two 1-medians")
    return medians


class RootedTree:
    """A tree rooted at a chosen node (by default a 1-median).

    Exposes the vocabulary of the paper's Section 3.2 proofs: layers,
    parents, children, subtree sizes/masks, depth of subtrees, and the
    1-median of any subtree.
    """

    def __init__(self, tree: nx.Graph, root: int | None = None):
        if not is_tree(tree):
            raise ValueError("RootedTree requires a tree")
        self.graph = tree
        self.n = tree.number_of_nodes()
        self.root = one_medians(tree)[0] if root is None else root
        if self.root not in tree:
            raise ValueError(f"root {self.root!r} not in tree")
        self.order, self._parent = _bfs_order_and_parents(tree, self.root)
        self.layer: dict[int, int] = {self.root: 0}
        for node in self.order[1:]:
            self.layer[node] = self.layer[self._parent[node]] + 1
        self.subtree_size = subtree_sizes_from(tree, self.root)
        self._children: dict[int, list[int]] = {node: [] for node in tree}
        for node in self.order[1:]:
            self._children[self._parent[node]].append(node)

    def parent(self, node: int) -> int | None:
        return self._parent[node]

    def children(self, node: int) -> Sequence[int]:
        return self._children[node]

    def depth(self) -> int:
        """``depth(G) = max_v l(v)``."""
        return max(self.layer.values())

    def subtree_nodes(self, node: int) -> list[int]:
        """All nodes of ``T_node`` (node plus descendants), preorder."""
        result = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children[current])
        return result

    def subtree_mask(self, node: int) -> np.ndarray:
        """Boolean membership vector of ``T_node`` (nodes must be 0..n-1)."""
        mask = np.zeros(self.n, dtype=bool)
        for member in self.subtree_nodes(node):
            mask[member] = True
        return mask

    def subtree_depth(self, node: int) -> int:
        """``depth(T_node) = max {dist(node, v) : v in T_node}``."""
        base = self.layer[node]
        return max(self.layer[v] for v in self.subtree_nodes(node)) - base

    def subtree_one_medians(self, node: int) -> list[int]:
        """1-medians of the subtree ``T_node`` viewed as a standalone tree."""
        members = self.subtree_nodes(node)
        subtree = self.graph.subgraph(members).copy()
        return one_medians(subtree)

    def path_to_root(self, node: int) -> list[int]:
        """``node, parent(node), ..., root``."""
        path = [node]
        while (above := self._parent[path[-1]]) is not None:
            path.append(above)
        return path

    def nodes_at_layer(self, layer: int) -> list[int]:
        return [node for node, level in self.layer.items() if level == layer]

    def iter_edges_oriented(self) -> Iterator[tuple[int, int]]:
        """Tree edges as ``(parent, child)`` pairs."""
        for node in self.order[1:]:
            yield self._parent[node], node


def tree_split_masks(
    tree: nx.Graph, u: int, v: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Component masks ``(side_u, side_v)`` after deleting tree edge ``uv``.

    ``side_u[x]`` is ``True`` iff ``x`` lies in the component of ``u``.
    Computed by one traversal from ``u`` that refuses to cross ``uv``.
    """
    if not tree.has_edge(u, v):
        raise ValueError(f"edge {u}-{v} not in tree")
    side_u = np.zeros(n, dtype=bool)
    side_u[u] = True
    stack = [u]
    while stack:
        node = stack.pop()
        for neighbor in tree.neighbors(node):
            if node == u and neighbor == v:
                continue
            if not side_u[neighbor]:
                side_u[neighbor] = True
                stack.append(neighbor)
    return side_u, ~side_u
