"""Graph substrate: distances, bridges, tree structure, and generation."""

from repro.graphs.bridges import (
    BridgeSet,
    bridge_rebuild_count,
    bridge_sweep_count,
    component_bridges,
)
from repro.graphs.distances import (
    DistanceMatrix,
    UndoToken,
    added_edge_dist_gain,
    adjacency_bool,
    apsp_build_count,
    apsp_matrix,
    component_labels,
    dist_vector_after_add,
    is_connected,
    remove_bfs_repair_count,
    removed_edge_dist_vector,
    total_distances,
    totals_rebuild_count,
)
from repro.graphs.trees import RootedTree, one_medians, tree_split_masks
from repro.graphs.generation import (
    all_connected_graphs,
    all_trees,
    random_connected_gnp,
    random_tree,
)

__all__ = [
    "BridgeSet",
    "DistanceMatrix",
    "RootedTree",
    "UndoToken",
    "added_edge_dist_gain",
    "adjacency_bool",
    "all_connected_graphs",
    "all_trees",
    "apsp_build_count",
    "apsp_matrix",
    "bridge_rebuild_count",
    "bridge_sweep_count",
    "component_bridges",
    "component_labels",
    "dist_vector_after_add",
    "is_connected",
    "one_medians",
    "random_connected_gnp",
    "random_tree",
    "remove_bfs_repair_count",
    "removed_edge_dist_vector",
    "total_distances",
    "totals_rebuild_count",
    "tree_split_masks",
]
