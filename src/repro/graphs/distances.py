"""All-pairs shortest paths and incremental one-edge distance updates.

Graphs are ``networkx.Graph`` objects whose nodes are ``0 .. n-1``.  Distances
live in dense ``numpy`` ``int64`` matrices; pairs in different components hold
the game's big constant ``M`` (see :mod:`repro._alpha`), never ``inf``, so all
arithmetic stays integral and exact.

The two identities that make polynomial equilibrium checks fast:

* adding edge ``uv``:  ``d'(u, x) = min(d(u, x), 1 + d(v, x))`` — a shortest
  path uses a fresh edge at most once, and from ``u`` it must start with it;
* removing edge ``uv``: no such shortcut in general graphs, so we re-run a
  single BFS from the interesting endpoint (still ``O(m)``); on trees the
  split into two components gives exact answers without any search
  (see :mod:`repro.graphs.trees`).
"""

from __future__ import annotations

import numpy as np
import networkx as nx
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import (
    breadth_first_order,
    connected_components,
    shortest_path,
)

__all__ = [
    "DistanceMatrix",
    "adjacency_csr",
    "apsp_matrix",
    "added_edge_dist_gain",
    "component_labels",
    "dist_vector_after_add",
    "is_connected",
    "removed_edge_dist_vector",
    "single_source_distances",
    "total_distances",
]


def _require_canonical(graph: nx.Graph) -> int:
    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("graphs must have at least one node")
    if set(graph.nodes) != set(range(n)):
        raise ValueError("graph nodes must be 0..n-1; use canonical_labels()")
    return n


def canonical_labels(graph: nx.Graph) -> nx.Graph:
    """Relabel an arbitrary graph to integer nodes ``0..n-1`` (sorted order).

    Node sorting falls back to string order for mixed-type labels so the
    mapping is deterministic.
    """
    try:
        ordered = sorted(graph.nodes)
    except TypeError:
        ordered = sorted(graph.nodes, key=str)
    mapping = {node: index for index, node in enumerate(ordered)}
    return nx.relabel_nodes(graph, mapping, copy=True)


def adjacency_csr(graph: nx.Graph) -> csr_matrix:
    """Symmetric 0/1 adjacency in CSR form for scipy's C-level BFS."""
    n = _require_canonical(graph)
    m = graph.number_of_edges()
    rows = np.empty(2 * m, dtype=np.int64)
    cols = np.empty(2 * m, dtype=np.int64)
    for index, (u, v) in enumerate(graph.edges):
        rows[2 * index] = u
        cols[2 * index] = v
        rows[2 * index + 1] = v
        cols[2 * index + 1] = u
    data = np.ones(2 * m, dtype=np.int8)
    return csr_matrix((data, (rows, cols)), shape=(n, n))


def apsp_matrix(graph: nx.Graph, unreachable: int) -> np.ndarray:
    """Dense all-pairs shortest path matrix with ``unreachable`` for no path.

    Runs one BFS per node in C via scipy; ``O(n * m)`` total.
    """
    n = _require_canonical(graph)
    if graph.number_of_edges() == 0:
        dist = np.full((n, n), unreachable, dtype=np.int64)
        np.fill_diagonal(dist, 0)
        return dist
    raw = shortest_path(adjacency_csr(graph), method="D", unweighted=True)
    dist = np.where(np.isinf(raw), float(unreachable), raw)
    return dist.astype(np.int64)


def single_source_distances(
    graph: nx.Graph, source: int, unreachable: int
) -> np.ndarray:
    """BFS distances from ``source`` as an int64 vector."""
    n = _require_canonical(graph)
    dist = np.full(n, unreachable, dtype=np.int64)
    dist[source] = 0
    if graph.degree(source) == 0:
        return dist
    adjacency = adjacency_csr(graph)
    order, predecessors = breadth_first_order(
        adjacency, source, directed=False, return_predecessors=True
    )
    for node in order:
        if node == source:
            continue
        dist[node] = dist[predecessors[node]] + 1
    return dist


def is_connected(graph: nx.Graph) -> bool:
    """Connectivity via one BFS (works on canonical graphs of any size)."""
    return nx.is_connected(graph)


def component_labels(graph: nx.Graph) -> np.ndarray:
    """Connected component index per node."""
    _require_canonical(graph)
    if graph.number_of_edges() == 0:
        return np.arange(graph.number_of_nodes(), dtype=np.int64)
    _, labels = connected_components(adjacency_csr(graph), directed=False)
    return labels.astype(np.int64)


def total_distances(dist: np.ndarray) -> np.ndarray:
    """Per-node total distance cost ``dist(u) = sum_v d(u, v)``.

    Safe in int64: ``GameState`` guarantees ``n * M`` fits (see
    :func:`repro._alpha.big_m` and :func:`repro._alpha.fits_int64`).
    """
    return dist.sum(axis=1)


def dist_vector_after_add(dist: np.ndarray, u: int, v: int) -> np.ndarray:
    """Distances from ``u`` after adding edge ``uv``: ``min(d_u, 1 + d_v)``."""
    return np.minimum(dist[u], 1 + dist[v])


def added_edge_dist_gain(dist: np.ndarray, u: int, v: int) -> int:
    """Strict decrease of ``dist(u)`` caused by adding edge ``uv``.

    Always non-negative.  The symmetric gain for ``v`` is obtained by
    swapping the arguments.
    """
    improvement = dist[u] - (1 + dist[v])
    return int(improvement[improvement > 0].sum())


def removed_edge_dist_vector(
    graph: nx.Graph, u: int, v: int, unreachable: int
) -> np.ndarray:
    """Distances from ``u`` after removing edge ``uv`` (one fresh BFS).

    The graph is restored before returning.
    """
    if not graph.has_edge(u, v):
        raise ValueError(f"edge {u}-{v} not in graph")
    graph.remove_edge(u, v)
    try:
        return single_source_distances(graph, u, unreachable)
    finally:
        graph.add_edge(u, v)


class DistanceMatrix:
    """Cached APSP for one graph snapshot, with incremental query helpers.

    This is the workhorse behind all polynomial equilibrium checkers.  The
    matrix is computed once; one-edge *additions* are answered from the
    matrix alone, one-edge *removals* trigger a single BFS.
    """

    def __init__(self, graph: nx.Graph, unreachable: int):
        self.n = _require_canonical(graph)
        self.unreachable = int(unreachable)
        self._graph = graph
        self.matrix = apsp_matrix(graph, self.unreachable)

    def dist(self, u: int, v: int) -> int:
        return int(self.matrix[u, v])

    def row(self, u: int) -> np.ndarray:
        return self.matrix[u]

    def total(self, u: int) -> int:
        return int(self.matrix[u].sum())

    def totals(self) -> np.ndarray:
        return total_distances(self.matrix)

    def eccentricity(self, u: int) -> int:
        return int(self.matrix[u].max())

    def diameter(self) -> int:
        return int(self.matrix.max())

    def add_gain(self, u: int, v: int) -> int:
        """Distance-cost gain for ``u`` when edge ``uv`` is added."""
        return added_edge_dist_gain(self.matrix, u, v)

    def row_after_add(self, u: int, v: int) -> np.ndarray:
        return dist_vector_after_add(self.matrix, u, v)

    def row_after_remove(self, u: int, v: int) -> np.ndarray:
        return removed_edge_dist_vector(self._graph, u, v, self.unreachable)

    def remove_loss(self, u: int, v: int) -> int:
        """Distance-cost increase for ``u`` when edge ``uv`` is removed."""
        after = self.row_after_remove(u, v)
        return int((after - self.matrix[u]).sum())
